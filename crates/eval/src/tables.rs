//! Reproduction of the answer-comparison tables (5, 6, 8, 9).
//!
//! For each workload query both engines run end to end; the row records
//! how many answers each returned and the answer values themselves, in
//! the paper's "N answers: v1, v2, …" style. SQAK's restrictions surface
//! as "N.A." with the reason, exactly as in the paper's tables.

use aqks_core::Engine;
use aqks_relational::Database;
use aqks_sqak::{Sqak, SqakError};
use aqks_sqlgen::ResultTable;

use crate::workload::{acmdl_queries, tpch_queries, EvalQuery, Scale};

/// One engine's outcome on one query.
#[derive(Debug, Clone)]
pub enum EngineOutcome {
    /// The query produced answers.
    Answers {
        /// Number of result rows.
        count: usize,
        /// Rendered answer values (aggregate columns), ordered.
        values: Vec<String>,
        /// The generated SQL.
        sql: String,
    },
    /// The engine cannot process the query (SQAK's "N.A.").
    Unsupported(String),
    /// Unexpected failure.
    Error(String),
}

impl EngineOutcome {
    /// `count` for `Answers`, None otherwise.
    pub fn count(&self) -> Option<usize> {
        match self {
            EngineOutcome::Answers { count, .. } => Some(*count),
            _ => None,
        }
    }

    /// Answer values, if any.
    pub fn values(&self) -> &[String] {
        match self {
            EngineOutcome::Answers { values, .. } => values,
            _ => &[],
        }
    }

    /// Short cell text for the rendered table.
    pub fn cell(&self) -> String {
        match self {
            EngineOutcome::Answers { count, values, .. } => {
                let sample: Vec<&str> = values.iter().take(6).map(String::as_str).collect();
                let ellipsis = if values.len() > 6 { ", ..." } else { "" };
                format!("{count} answer(s): {}{ellipsis}", sample.join(", "))
            }
            EngineOutcome::Unsupported(m) => format!("N.A. ({m})"),
            EngineOutcome::Error(m) => format!("ERROR ({m})"),
        }
    }
}

/// One row of a comparison table.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Query id (T1…A8).
    pub id: &'static str,
    /// The paper's description.
    pub description: &'static str,
    /// The semantic engine's outcome.
    pub ours: EngineOutcome,
    /// SQAK's outcome.
    pub sqak: EngineOutcome,
}

/// Renders the answer values of a result: the aggregate columns (all
/// non-grouping columns), row by row, deterministically ordered.
fn answer_values(result: &ResultTable, group_cols: usize) -> Vec<String> {
    let mut vals: Vec<String> = result
        .rows
        .iter()
        .map(|row| {
            let aggs: Vec<String> = row.iter().skip(group_cols).map(|v| v.to_string()).collect();
            if aggs.len() == 1 {
                aggs.into_iter().next().expect("aggs is non-empty")
            } else {
                format!("<{}>", aggs.join(", "))
            }
        })
        .collect();
    // Numeric-aware ordering so "9" sorts before "10".
    vals.sort_by(|a, b| match (a.parse::<f64>(), b.parse::<f64>()) {
        (Ok(x), Ok(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
        _ => a.cmp(b),
    });
    vals
}

fn run_ours(engine: &Engine, q: &EvalQuery) -> EngineOutcome {
    match engine.answer(q.text, 1) {
        Ok(answers) if !answers.is_empty() => {
            let a = &answers[0];
            let group_cols = a.sql.group_by.len().min(a.result.columns.len());
            EngineOutcome::Answers {
                count: a.result.len(),
                values: answer_values(&a.result, group_cols),
                sql: a.sql_text.clone(),
            }
        }
        Ok(_) => EngineOutcome::Error("no interpretation".into()),
        Err(e) => EngineOutcome::Error(e.to_string()),
    }
}

fn run_sqak(sqak: &Sqak, q: &EvalQuery) -> EngineOutcome {
    match sqak.generate(q.text) {
        Ok(g) => match sqak.answer(q.text) {
            Ok(result) => {
                let group_cols = g.sql.group_by.len().min(result.columns.len());
                EngineOutcome::Answers {
                    count: result.len(),
                    values: answer_values(&result, group_cols),
                    sql: g.sql_text,
                }
            }
            Err(e) => EngineOutcome::Error(e.to_string()),
        },
        Err(SqakError::Unsupported(m)) => EngineOutcome::Unsupported(m),
        Err(e) => EngineOutcome::Error(e.to_string()),
    }
}

fn run_comparison(db: Database, queries: Vec<EvalQuery>) -> Vec<ComparisonRow> {
    let engine = Engine::new(db.clone()).expect("engine builds");
    let sqak = Sqak::new(db);
    queries
        .into_iter()
        .map(|q| ComparisonRow {
            id: q.id,
            description: q.description,
            ours: run_ours(&engine, &q),
            sqak: run_sqak(&sqak, &q),
        })
        .collect()
}

/// Table 5: normalized TPC-H, T1–T8.
pub fn run_table5(scale: Scale) -> Vec<ComparisonRow> {
    run_comparison(crate::workload::tpch_database(scale), tpch_queries())
}

/// Table 6: normalized ACMDL, A1–A8.
pub fn run_table6(scale: Scale) -> Vec<ComparisonRow> {
    run_comparison(crate::workload::acmdl_database(scale), acmdl_queries())
}

/// Table 8: unnormalized TPCH', T1–T8.
pub fn run_table8(scale: Scale) -> Vec<ComparisonRow> {
    run_comparison(crate::workload::tpch_prime_database(scale), tpch_queries())
}

/// Table 9: unnormalized ACMDL', A1–A8.
pub fn run_table9(scale: Scale) -> Vec<ComparisonRow> {
    run_comparison(crate::workload::acmdl_prime_database(scale), acmdl_queries())
}

/// Renders rows as a markdown table in the paper's layout.
pub fn render_markdown(title: &str, rows: &[ComparisonRow]) -> String {
    let mut s = format!("## {title}\n\n");
    s.push_str("| # | SQAK | Our Proposed Approach | Description |\n");
    s.push_str("|---|------|----------------------|-------------|\n");
    for r in rows {
        s.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            r.id,
            r.sqak.cell(),
            r.ours.cell(),
            r.description
        ));
    }
    s
}
