//! Query results: a small column-named row set with deterministic
//! ordering helpers and pretty printing for the evaluation harness.

use std::collections::HashSet;
use std::fmt;

use aqks_relational::{Row, Value};

/// The result of executing a [`crate::SelectStatement`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    /// Output column names, in SELECT order.
    pub columns: Vec<String>,
    /// Result tuples.
    pub rows: Vec<Row>,
}

impl ResultTable {
    /// Creates an empty result with the given columns.
    pub fn new(columns: Vec<String>) -> Self {
        ResultTable { columns, rows: Vec::new() }
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Number of result rows — the explicit-name alias of
    /// [`ResultTable::len`], for call sites where `len` reads as byte or
    /// column count.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of an output column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
    }

    /// All values of one column.
    pub fn column(&self, name: &str) -> Option<Vec<&Value>> {
        let i = self.column_index(name)?;
        Some(self.rows.iter().map(|r| &r[i]).collect())
    }

    /// The single value of a 1x1 result, if it is one.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.columns.len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Returns the rows sorted lexicographically — the deterministic
    /// presentation used in tests and in EXPERIMENTS.md.
    pub fn sorted(mut self) -> Self {
        self.rows.sort();
        self
    }

    /// Stably sorts the rows by value in place. The executor applies
    /// this to every result without an ORDER BY, making row order
    /// deterministic across runs and across plan revisions (eval
    /// snapshots and `aqks explain --analyze` stay reproducible).
    pub fn stabilize(&mut self) {
        self.rows.sort();
    }

    /// Removes duplicate rows in place (used for `SELECT DISTINCT`).
    pub fn dedup_rows(&mut self) {
        let mut seen = HashSet::new();
        self.rows.retain(|r| seen.insert(r.clone()));
    }
}

impl fmt::Display for ResultTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> =
            self.rows.iter().map(|r| r.iter().map(Value::to_string).collect()).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect();
            writeln!(f, "| {} |", padded.join(" | "))
        };
        line(f, &self.columns.to_vec())?;
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", dashes.join("-|-"))?;
        for row in &rendered {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ResultTable {
        ResultTable {
            columns: vec!["Sid".into(), "numCode".into()],
            rows: vec![
                vec![Value::str("s3"), Value::Int(2)],
                vec![Value::str("s2"), Value::Int(1)],
            ],
        }
    }

    #[test]
    fn sorted_orders_rows() {
        let t = table().sorted();
        assert_eq!(t.rows[0][0], Value::str("s2"));
    }

    #[test]
    fn scalar_only_for_1x1() {
        assert!(table().scalar().is_none());
        let t = ResultTable { columns: vec!["n".into()], rows: vec![vec![Value::Int(4)]] };
        assert_eq!(t.scalar(), Some(&Value::Int(4)));
    }

    #[test]
    fn column_lookup_case_insensitive() {
        let t = table();
        assert_eq!(t.column("NUMCODE").unwrap().len(), 2);
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn dedup_rows_removes_exact_duplicates() {
        let mut t = table();
        t.rows.push(vec![Value::str("s2"), Value::Int(1)]);
        t.dedup_rows();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn display_renders_markdown_style() {
        let s = table().sorted().to_string();
        assert!(s.starts_with("| Sid | numCode |"), "{s}");
        assert!(s.contains("| s2  | 1"), "{s}");
    }
}
