//! Quickstart: the paper's opening example, end to end.
//!
//! Q1 = {Green SUM Credit} — "total credits obtained by the student
//! Green". Two students are named Green; the semantic engine notices and
//! returns one total per student, while SQAK-style naive translation
//! would merge them into a single (wrong) 13.0.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use aqks::core::Engine;
use aqks::datasets::university;
use aqks::sqak::Sqak;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = university::normalized();
    println!("university database: {} tuples\n", db.total_rows());

    let engine = Engine::new(db.clone())?;
    let query = "Green SUM Credit";
    println!("keyword query: {query}\n");

    for (rank, interp) in engine.answer(query, 3)?.iter().enumerate() {
        println!("-- interpretation #{} : {}", rank + 1, interp.pattern_description);
        println!("{}\n{}", interp.sql_text, interp.result);
    }

    // The baseline for contrast.
    let sqak = Sqak::new(db);
    println!("-- SQAK's statement for the same query:");
    let g = sqak.generate(query)?;
    println!("{}\n{}", g.sql_text, sqak.answer(query)?);
    println!("(SQAK merges both students named Green into one answer.)");
    Ok(())
}
