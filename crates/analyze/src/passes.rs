//! The five lint passes.
//!
//! Each pass inspects one statement (the analyzer applies every pass to
//! the root and to each derived-table subquery) and appends
//! [`Diagnostic`]s. Codes are stable: `AQ-P1` name/scope resolution,
//! `AQ-P2` type checking, `AQ-P3` join validity, `AQ-P4` aggregate
//! well-formedness, `AQ-P5` duplicate inflation.

use std::collections::BTreeSet;

use aqks_relational::{AttrType, Value};
use aqks_sqlgen::{AggFunc, ColumnRef, Predicate, SelectItem, SpanKind};

use crate::analyzer::StmtContext;
use crate::diagnostics::Diagnostic;
use crate::fdmodel::{self, lower_fd_set};
use crate::scope::{ItemSource, ResolveError};

/// One lint pass over a single statement.
pub trait LintPass {
    /// Short machine-friendly name (`name-resolution`, …).
    fn name(&self) -> &'static str;
    /// The diagnostic code this pass emits.
    fn code(&self) -> &'static str;
    /// Checks `cx.stmt` and appends findings to `out`.
    fn check(&self, cx: &StmtContext<'_>, out: &mut Vec<Diagnostic>);
}

/// The default pass pipeline, in execution order.
pub fn default_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(NameResolution),
        Box::new(TypeCheck),
        Box::new(JoinValidity),
        Box::new(AggregateForm),
        Box::new(DuplicateInflation),
    ]
}

/// Every column reference of a statement with the clause it sits in.
fn column_refs<'a>(cx: &'a StmtContext<'a>) -> Vec<(&'a ColumnRef, SpanKind)> {
    let stmt = cx.stmt;
    let mut out = Vec::new();
    for (i, item) in stmt.items.iter().enumerate() {
        match item {
            SelectItem::Column { col, .. } => out.push((col, SpanKind::SelectItem(i))),
            SelectItem::Aggregate { arg, .. } => out.push((arg, SpanKind::SelectItem(i))),
        }
    }
    for (i, p) in stmt.predicates.iter().enumerate() {
        match p {
            Predicate::JoinEq(a, b) => {
                out.push((a, SpanKind::Predicate(i)));
                out.push((b, SpanKind::Predicate(i)));
            }
            Predicate::Contains(c, _) | Predicate::Eq(c, _) => {
                out.push((c, SpanKind::Predicate(i)));
            }
        }
    }
    for (i, c) in stmt.group_by.iter().enumerate() {
        out.push((c, SpanKind::GroupBy(i)));
    }
    out
}

/// P1 — every qualifier must address exactly one FROM item, every column
/// must exist there, and FROM relations must exist in the schema. An
/// unqualified reference is only legal in ORDER BY, where it names a
/// select-list output.
pub struct NameResolution;

impl LintPass for NameResolution {
    fn name(&self) -> &'static str {
        "name-resolution"
    }
    fn code(&self) -> &'static str {
        "AQ-P1"
    }

    fn check(&self, cx: &StmtContext<'_>, out: &mut Vec<Diagnostic>) {
        let stmt = cx.stmt;

        // Duplicate aliases and unknown relations.
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for (i, item) in cx.scope.items.iter().enumerate() {
            if !seen.insert(item.alias.to_lowercase()) {
                out.push(Diagnostic::error(
                    self.code(),
                    self.name(),
                    cx.path,
                    Some(SpanKind::FromItem(i)),
                    format!("duplicate FROM alias `{}`", item.alias),
                ));
            }
            if matches!(item.source, ItemSource::Unknown) {
                out.push(Diagnostic::error(
                    self.code(),
                    self.name(),
                    cx.path,
                    Some(SpanKind::FromItem(i)),
                    format!("unknown relation behind FROM alias `{}`", item.alias),
                ));
            }
        }

        for (col, clause) in column_refs(cx) {
            if col.qualifier.is_empty() {
                out.push(Diagnostic::error(
                    self.code(),
                    self.name(),
                    cx.path,
                    Some(clause),
                    format!("unqualified column `{}` outside ORDER BY", col.column),
                ));
                continue;
            }
            match cx.scope.resolve(col) {
                Ok(_) | Err(ResolveError::PoisonedItem) => {}
                Err(ResolveError::UnknownAlias(q)) => out.push(Diagnostic::error(
                    self.code(),
                    self.name(),
                    cx.path,
                    Some(clause),
                    format!("`{col}` references undeclared FROM alias `{q}`"),
                )),
                Err(ResolveError::AmbiguousAlias(q)) => out.push(Diagnostic::error(
                    self.code(),
                    self.name(),
                    cx.path,
                    Some(clause),
                    format!("`{col}` is ambiguous: alias `{q}` is declared twice"),
                )),
                Err(ResolveError::UnknownColumn(q, c)) => out.push(Diagnostic::error(
                    self.code(),
                    self.name(),
                    cx.path,
                    Some(clause),
                    format!("`{q}` exposes no column `{c}`"),
                )),
            }
        }

        // ORDER BY: an unqualified key must name a select-list output.
        let outputs: Vec<&str> = stmt.items.iter().map(|i| i.output_name()).collect();
        for (i, key) in stmt.order_by.iter().enumerate() {
            let col = &key.column;
            if col.qualifier.is_empty() {
                if !outputs.iter().any(|o| o.eq_ignore_ascii_case(&col.column)) {
                    out.push(Diagnostic::error(
                        self.code(),
                        self.name(),
                        cx.path,
                        Some(SpanKind::OrderBy(i)),
                        format!("ORDER BY `{}` names no select-list output", col.column),
                    ));
                }
            } else if let Err(ResolveError::UnknownAlias(_) | ResolveError::UnknownColumn(..)) =
                cx.scope.resolve(col)
            {
                out.push(Diagnostic::error(
                    self.code(),
                    self.name(),
                    cx.path,
                    Some(SpanKind::OrderBy(i)),
                    format!("ORDER BY `{col}` does not resolve"),
                ));
            }
        }
    }
}

/// P2 — equi-joins must compare compatible types, `SUM`/`AVG` need
/// numeric arguments, `contains` needs text, literal equalities must
/// match the column type. Numeric (`int`/`float`) comparisons mix freely.
pub struct TypeCheck;

fn numeric(ty: AttrType) -> bool {
    matches!(ty, AttrType::Int | AttrType::Float)
}

impl LintPass for TypeCheck {
    fn name(&self) -> &'static str {
        "type-check"
    }
    fn code(&self) -> &'static str {
        "AQ-P2"
    }

    fn check(&self, cx: &StmtContext<'_>, out: &mut Vec<Diagnostic>) {
        let stmt = cx.stmt;
        let ty_of = |col: &ColumnRef| cx.scope.resolve(col).ok().and_then(|o| o.ty);

        for (i, item) in stmt.items.iter().enumerate() {
            let SelectItem::Aggregate { func, arg, .. } = item else { continue };
            if matches!(func, AggFunc::Sum | AggFunc::Avg) {
                if let Some(ty) = ty_of(arg) {
                    if !numeric(ty) {
                        out.push(Diagnostic::error(
                            self.code(),
                            self.name(),
                            cx.path,
                            Some(SpanKind::SelectItem(i)),
                            format!(
                                "{} over non-numeric column `{arg}` ({})",
                                func.keyword(),
                                ty.name()
                            ),
                        ));
                    }
                }
            }
        }

        for (i, p) in stmt.predicates.iter().enumerate() {
            match p {
                Predicate::JoinEq(a, b) => {
                    let (Some(ta), Some(tb)) = (ty_of(a), ty_of(b)) else { continue };
                    if ta != tb && !(numeric(ta) && numeric(tb)) {
                        out.push(Diagnostic::error(
                            self.code(),
                            self.name(),
                            cx.path,
                            Some(SpanKind::Predicate(i)),
                            format!(
                                "join compares `{a}` ({}) with `{b}` ({})",
                                ta.name(),
                                tb.name()
                            ),
                        ));
                    }
                }
                Predicate::Contains(c, _) => {
                    let Some(ty) = ty_of(c) else { continue };
                    match ty {
                        AttrType::Text => {}
                        // Dates render as text and are searched that way
                        // by the keyword matcher; suspicious, not wrong.
                        AttrType::Date => out.push(Diagnostic::warning(
                            self.code(),
                            self.name(),
                            cx.path,
                            Some(SpanKind::Predicate(i)),
                            format!("`contains` on date column `{c}`"),
                        )),
                        AttrType::Int | AttrType::Float => out.push(Diagnostic::error(
                            self.code(),
                            self.name(),
                            cx.path,
                            Some(SpanKind::Predicate(i)),
                            format!("`contains` on numeric column `{c}` ({})", ty.name()),
                        )),
                    }
                }
                Predicate::Eq(c, v) => {
                    let Some(ty) = ty_of(c) else { continue };
                    let ok = match v {
                        Value::Null => true,
                        Value::Int(_) | Value::Float(_) => numeric(ty),
                        Value::Str(_) => ty == AttrType::Text,
                        Value::Date(_) => ty == AttrType::Date,
                    };
                    if !ok {
                        out.push(Diagnostic::error(
                            self.code(),
                            self.name(),
                            cx.path,
                            Some(SpanKind::Predicate(i)),
                            format!("literal {v:?} compared with `{c}` ({})", ty.name()),
                        ));
                    }
                }
            }
        }
    }
}

/// P3 — every equi-join must follow schema structure: a declared
/// foreign-key edge (either direction, including one column pair of a
/// composite key), an ORM-graph edge, the natural-join unification of two
/// projections of the *same* base attribute name (which is how the
/// Section 4 rewrites join a relation with projections of itself), or an
/// explicitly whitelisted pair.
pub struct JoinValidity;

impl LintPass for JoinValidity {
    fn name(&self) -> &'static str {
        "join-validity"
    }
    fn code(&self) -> &'static str {
        "AQ-P3"
    }

    fn check(&self, cx: &StmtContext<'_>, out: &mut Vec<Diagnostic>) {
        for (i, p) in cx.stmt.predicates.iter().enumerate() {
            let Predicate::JoinEq(a, b) = p else { continue };
            // Joins on aggregate results (or unresolvable sides — P1's
            // findings) have no base provenance to validate against.
            let (Some(pa), Some(pb)) = (
                cx.scope.resolve(a).ok().and_then(|o| o.base.clone()),
                cx.scope.resolve(b).ok().and_then(|o| o.base.clone()),
            ) else {
                continue;
            };
            if join_allowed(cx, &pa, &pb) {
                continue;
            }
            out.push(Diagnostic::error(
                self.code(),
                self.name(),
                cx.path,
                Some(SpanKind::Predicate(i)),
                format!(
                    "join `{a}`=`{b}` ({}.{} with {}.{}) follows no declared \
                     foreign key and is not whitelisted",
                    pa.0, pa.1, pb.0, pb.1
                ),
            ));
        }
    }
}

fn join_allowed(cx: &StmtContext<'_>, a: &(String, String), b: &(String, String)) -> bool {
    // Natural-join unification: both sides project the same-named base
    // attribute (possibly of different relations after 3NF decomposition).
    if a.1.eq_ignore_ascii_case(&b.1) {
        return true;
    }
    let fk_edge = |from: &(String, String), to: &(String, String)| {
        cx.schema.relation(&from.0).is_some_and(|rel| {
            rel.foreign_keys.iter().any(|fk| {
                fk.ref_relation.eq_ignore_ascii_case(&to.0)
                    && fk.attrs.iter().zip(&fk.ref_attrs).any(|(x, y)| {
                        x.eq_ignore_ascii_case(&from.1) && y.eq_ignore_ascii_case(&to.1)
                    })
            })
        })
    };
    if fk_edge(a, b) || fk_edge(b, a) {
        return true;
    }
    if let Some(graph) = cx.graph {
        let on_edge = |x: &(String, String), y: &(String, String)| {
            graph.edges().iter().any(|e| {
                e.a_rel.eq_ignore_ascii_case(&x.0)
                    && e.b_rel.eq_ignore_ascii_case(&y.0)
                    && e.a_attrs
                        .iter()
                        .zip(&e.b_attrs)
                        .any(|(p, q)| p.eq_ignore_ascii_case(&x.1) && q.eq_ignore_ascii_case(&y.1))
            })
        };
        if on_edge(a, b) || on_edge(b, a) {
            return true;
        }
    }
    let key = |p: &(String, String)| format!("{}.{}", p.0.to_lowercase(), p.1.to_lowercase());
    let (ka, kb) = (key(a), key(b));
    cx.options.allowed_joins.iter().any(|(x, y)| {
        let (x, y) = (x.to_lowercase(), y.to_lowercase());
        (x == ka && y == kb) || (x == kb && y == ka)
    })
}

/// P4 — aggregate well-formedness: with aggregates (or a GROUP BY)
/// present, every plain select column must be grouped; `SELECT DISTINCT`
/// cannot be combined with aggregates; `DISTINCT` inside `MIN`/`MAX` is
/// pointless. Nested aggregates are structurally confined to derived
/// tables by the AST (an aggregate argument is a column reference, never
/// an aggregate), so the remaining nesting rule needs no check here.
pub struct AggregateForm;

impl LintPass for AggregateForm {
    fn name(&self) -> &'static str {
        "aggregate-form"
    }
    fn code(&self) -> &'static str {
        "AQ-P4"
    }

    fn check(&self, cx: &StmtContext<'_>, out: &mut Vec<Diagnostic>) {
        let stmt = cx.stmt;
        let has_agg = stmt.has_aggregate();

        if stmt.distinct && has_agg {
            out.push(Diagnostic::error(
                self.code(),
                self.name(),
                cx.path,
                None,
                "SELECT DISTINCT combined with aggregate select items",
            ));
        }

        if has_agg || !stmt.group_by.is_empty() {
            for (i, item) in stmt.items.iter().enumerate() {
                let SelectItem::Column { col, .. } = item else { continue };
                let grouped = stmt.group_by.iter().any(|g| {
                    g.qualifier.eq_ignore_ascii_case(&col.qualifier)
                        && g.column.eq_ignore_ascii_case(&col.column)
                });
                if !grouped {
                    out.push(Diagnostic::error(
                        self.code(),
                        self.name(),
                        cx.path,
                        Some(SpanKind::SelectItem(i)),
                        format!("`{col}` is selected but not in GROUP BY"),
                    ));
                }
            }
        }

        for (i, item) in stmt.items.iter().enumerate() {
            if let SelectItem::Aggregate {
                func: AggFunc::Min | AggFunc::Max,
                distinct: true,
                arg,
                ..
            } = item
            {
                out.push(Diagnostic::warning(
                    self.code(),
                    self.name(),
                    cx.path,
                    Some(SpanKind::SelectItem(i)),
                    format!("DISTINCT inside MIN/MAX over `{arg}` has no effect"),
                ));
            }
        }
    }
}

/// P5 — duplicate-inflation detection: the paper's Section 4 error class,
/// caught statically. Two findings:
///
/// * **merged groups** — a GROUP BY key that is also a `contains`-matched
///   column does not identify its FROM item's rows (SQAK's `GROUP BY
///   S.Sname` merges the two Greens);
/// * **redundant rows** — with a duplicate-sensitive aggregate (`COUNT`,
///   `SUM`, `AVG` without `DISTINCT`), a base relation joins in rows that
///   are redundant copies with respect to every attribute the statement
///   uses: all used attributes lie in the closure of a declared non-key
///   determinant, and pinning that determinant (plus everything already
///   pinned) still does not reach a superkey. Each copy then contributes
///   an identical row to every group it lands in, inflating the
///   aggregate (SQAK on the unnormalized `Ordering`: `AVG(amount)` per
///   `orderkey` reads one copy per part/supplier of the order).
pub struct DuplicateInflation;

impl LintPass for DuplicateInflation {
    fn name(&self) -> &'static str {
        "duplicate-inflation"
    }
    fn code(&self) -> &'static str {
        "AQ-P5"
    }

    fn check(&self, cx: &StmtContext<'_>, out: &mut Vec<Diagnostic>) {
        let stmt = cx.stmt;
        let closure = cx.fds.closure(fdmodel::seeds(stmt));

        // Merged groups: contains-matched GROUP BY keys.
        for (i, g) in stmt.group_by.iter().enumerate() {
            let matched = stmt.predicates.iter().any(|p| {
                matches!(p, Predicate::Contains(c, _)
                    if c.qualifier.eq_ignore_ascii_case(&g.qualifier)
                        && c.column.eq_ignore_ascii_case(&g.column))
            });
            if !matched {
                continue;
            }
            let Ok(item) = cx.scope.item(&g.qualifier) else { continue };
            if !fdmodel::item_row_unique(item, "", &closure) {
                out.push(Diagnostic::error(
                    self.code(),
                    self.name(),
                    cx.path,
                    Some(SpanKind::GroupBy(i)),
                    format!(
                        "GROUP BY `{g}` groups by a text-matched column that does not \
                         identify `{}` rows: distinct entities sharing the value are \
                         merged into one group",
                        item.alias
                    ),
                ));
            }
        }

        // Redundant rows need a duplicate-sensitive aggregate.
        let sensitive: Vec<&SelectItem> = stmt
            .items
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    SelectItem::Aggregate {
                        func: AggFunc::Count | AggFunc::Sum | AggFunc::Avg,
                        distinct: false,
                        ..
                    }
                )
            })
            .collect();
        if sensitive.is_empty() {
            return;
        }

        for (fi, item) in cx.scope.items.iter().enumerate() {
            let ItemSource::Base(rel) = &item.source else { continue };
            let used = used_columns(cx, &item.alias);
            let fds = lower_fd_set(rel);
            let pinned = fdmodel::pinned_for(&closure, &item.alias);
            let flagged = fds.fds.iter().find(|fd| {
                let k = fd.lhs.clone();
                if fds.is_superkey(&k) {
                    return false;
                }
                if !used.is_subset(&fds.closure(k.clone())) {
                    return false;
                }
                let mut pinned_k: BTreeSet<String> = k;
                pinned_k.extend(pinned.iter().cloned());
                !fds.is_superkey(&pinned_k)
            });
            if let Some(fd) = flagged {
                let det: Vec<&str> = fd.lhs.iter().map(String::as_str).collect();
                let agg = match sensitive[0] {
                    SelectItem::Aggregate { func, arg, .. } => {
                        format!("{}({arg})", func.keyword())
                    }
                    SelectItem::Column { .. } => unreachable!("filtered to aggregates"),
                };
                out.push(Diagnostic::error(
                    self.code(),
                    self.name(),
                    cx.path,
                    Some(SpanKind::FromItem(fi)),
                    format!(
                        "`{}` repeats `{{{}}}`-entity rows (declared FD on the \
                         unnormalized relation `{}`): every used attribute is a copy, \
                         so {agg} counts duplicates",
                        item.alias,
                        det.join(", "),
                        rel.name
                    ),
                ));
            }
        }
    }
}

/// Lowercase columns of `alias` referenced anywhere in the statement.
fn used_columns(cx: &StmtContext<'_>, alias: &str) -> BTreeSet<String> {
    let mut used = BTreeSet::new();
    {
        let mut note = |c: &ColumnRef| {
            if c.qualifier.eq_ignore_ascii_case(alias) {
                used.insert(c.column.to_lowercase());
            }
        };
        for item in &cx.stmt.items {
            match item {
                SelectItem::Column { col, .. } => note(col),
                SelectItem::Aggregate { arg, .. } => note(arg),
            }
        }
        for p in &cx.stmt.predicates {
            match p {
                Predicate::JoinEq(a, b) => {
                    note(a);
                    note(b);
                }
                Predicate::Contains(c, _) | Predicate::Eq(c, _) => note(c),
            }
        }
        for c in &cx.stmt.group_by {
            note(c);
        }
        for k in &cx.stmt.order_by {
            note(&k.column);
        }
    }
    used
}
