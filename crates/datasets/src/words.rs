//! Word lists for the synthetic generators. Chosen so that planted query
//! phrases ("royal olive", "Indian black chocolate", …) cannot occur by
//! accident and no generated value collides with a relation or attribute
//! name of either schema.

/// Part-name adjectives (TPC-H flavoured, minus the planted colors).
pub const ADJECTIVES: &[&str] = &[
    "small", "large", "medium", "economy", "standard", "promo", "premium", "budget", "deluxe",
    "compact",
];

/// Part-name colors. Deliberately excludes "royal", "yellow", "pink",
/// "white", "black": those appear only in planted part names.
pub const COLORS: &[&str] = &[
    "almond",
    "azure",
    "beige",
    "blush",
    "chartreuse",
    "cornflower",
    "cyan",
    "forest",
    "indigo",
    "lavender",
    "magenta",
    "maroon",
    "navy",
    "plum",
    "salmon",
    "sienna",
    "teal",
    "turquoise",
];

/// Part-name nouns (excludes "olive", "tomato", "chocolate", "rose").
pub const NOUNS: &[&str] = &[
    "almanac", "anchor", "basin", "beacon", "bobbin", "bracket", "canister", "crate", "dowel",
    "flask", "gasket", "girder", "lantern", "mallet", "pulley", "spindle", "sprocket", "trowel",
];

/// TPC-H part types.
pub const PART_TYPES: &[&str] = &[
    "ECONOMY ANODIZED STEEL",
    "ECONOMY BRUSHED COPPER",
    "LARGE BURNISHED BRASS",
    "MEDIUM PLATED NICKEL",
    "PROMO POLISHED TIN",
    "SMALL ANODIZED COPPER",
    "STANDARD BURNISHED STEEL",
];

/// The five TPC-H market segments.
pub const MKT_SEGMENTS: &[&str] =
    &["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];

/// Order priorities.
pub const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// The 25 TPC-H nations.
pub const NATIONS: &[&str] = &[
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

/// The 5 TPC-H regions (nation `i` belongs to region `i % 5`).
pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Author/editor first names. "John" and "Mary" are planted separately.
pub const FIRST_NAMES: &[&str] = &[
    "Alice", "Bruno", "Carla", "Daniel", "Elena", "Felix", "Grace", "Hugo", "Irene", "Jorge",
    "Katrin", "Liam", "Nadia", "Oscar", "Priya", "Quentin", "Rosa", "Stefan", "Tara", "Viktor",
];

/// Author/editor last names. "Smith" and "Gill" are planted separately.
pub const LAST_NAMES: &[&str] = &[
    "Abbott", "Baxter", "Cortez", "Duval", "Eriksen", "Fontaine", "Garcia", "Hopper", "Iwata",
    "Jensen", "Keller", "Lindgren", "Moreau", "Novak", "Okafor", "Petrov", "Quimby", "Rossi",
    "Sandoval", "Tanaka", "Ueda", "Vargas", "Weber", "Xu", "Yamamoto", "Zhou",
];

/// Words for synthetic paper titles (no "database"/"tuning": the A5
/// phrase is planted).
pub const TITLE_WORDS: &[&str] = &[
    "adaptive",
    "algorithms",
    "analysis",
    "caching",
    "concurrent",
    "distributed",
    "efficient",
    "graphs",
    "incremental",
    "indexing",
    "learning",
    "mining",
    "networks",
    "parallel",
    "processing",
    "queries",
    "ranking",
    "scalable",
    "semantics",
    "streams",
    "transactions",
    "workloads",
];

/// Proceeding acronyms beyond the planted SIGMOD/SIGIR/CIKM.
pub const ACRONYMS: &[&str] = &["VLDB", "ICDE", "EDBT", "KDD", "WWW", "WSDM", "PODS"];

/// Publisher names beyond the planted IEEE group.
pub const PUBLISHERS: &[&str] =
    &["ACM", "Springer", "Elsevier", "Morgan Kaufmann", "Now Publishers", "Open Proceedings"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_phrases_absent_from_wordlists() {
        for planted in ["royal", "olive", "yellow", "tomato", "chocolate", "pink", "rose", "white"]
        {
            assert!(!COLORS.contains(&planted), "{planted}");
            assert!(!NOUNS.contains(&planted), "{planted}");
            assert!(!ADJECTIVES.contains(&planted), "{planted}");
        }
        assert!(!LAST_NAMES.contains(&"Smith"));
        assert!(!LAST_NAMES.contains(&"Gill"));
        assert!(!FIRST_NAMES.contains(&"John"));
        assert!(!FIRST_NAMES.contains(&"Mary"));
        assert!(!TITLE_WORDS.contains(&"database"));
        assert!(!TITLE_WORDS.contains(&"tuning"));
    }

    #[test]
    fn fixed_cardinalities() {
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(REGIONS.len(), 5);
        assert_eq!(MKT_SEGMENTS.len(), 5);
    }
}
