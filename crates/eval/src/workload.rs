//! The query workloads of Tables 3 and 4, plus dataset construction at
//! two scales.

use aqks_datasets::{denormalize_acmdl, denormalize_tpch, generate_acmdl, generate_tpch};
use aqks_datasets::{AcmdlConfig, TpchConfig};
use aqks_relational::Database;

/// Dataset scale for the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast test-sized datasets (sub-second per table).
    Small,
    /// The paper's cardinalities (1000 suppliers, 61 Smiths, …).
    Paper,
}

/// One workload query.
#[derive(Debug, Clone)]
pub struct EvalQuery {
    /// Paper id (T1…T8, A1…A8).
    pub id: &'static str,
    /// The keyword query text.
    pub text: &'static str,
    /// The paper's description / search intention.
    pub description: &'static str,
}

/// Table 3: the TPC-H queries.
pub fn tpch_queries() -> Vec<EvalQuery> {
    vec![
        EvalQuery {
            id: "T1",
            text: "order AVG amount",
            description: "Find the average amount of orders",
        },
        EvalQuery {
            id: "T2",
            text: "MAX COUNT order GROUPBY nation",
            description: "Find the maximum number of orders among nations",
        },
        EvalQuery {
            id: "T3",
            text: r#"COUNT order "royal olive""#,
            description: "Find the number of orders that contains the \"royal olive\"",
        },
        EvalQuery {
            id: "T4",
            text: r#"supplier MAX acctbal "yellow tomato""#,
            description: "Find the maximum balance of suppliers that supply the \"yellow tomato\"",
        },
        EvalQuery {
            id: "T5",
            text: r#"COUNT supplier "Indian black chocolate""#,
            description: "Find the number of suppliers for \"Indian black chocolate\"",
        },
        EvalQuery {
            id: "T6",
            text: "COUNT part GROUPBY supplier",
            description: "Find the number of parts supplied by each supplier",
        },
        EvalQuery {
            id: "T7",
            text: "COUNT order SUM amount GROUPBY mktsegment",
            description: "Find the number of orders and their total amount for each market segment",
        },
        EvalQuery {
            id: "T8",
            text: r#"COUNT supplier "pink rose" "white rose""#,
            description: "Find the number of suppliers for \"pink rose\" and \"white rose\"",
        },
    ]
}

/// Table 4: the ACMDL queries.
pub fn acmdl_queries() -> Vec<EvalQuery> {
    vec![
        EvalQuery {
            id: "A1",
            text: "proceeding AVG pages",
            description: "Find the average pages of proceedings",
        },
        EvalQuery {
            id: "A2",
            text: "COUNT paper GROUPBY proceeding SIGMOD",
            description: "Find the number of papers in each 'SIGMOD' proceeding",
        },
        EvalQuery {
            id: "A3",
            text: "COUNT proceeding editor Smith",
            description: "Find the number of proceedings edited by 'Smith'",
        },
        EvalQuery {
            id: "A4",
            text: "paper MAX date Gill",
            description: "Find the date of the latest papers written by 'Gill'",
        },
        EvalQuery {
            id: "A5",
            text: r#"COUNT author "database tuning""#,
            description: "Find the number of authors for each \"database tuning\" paper",
        },
        EvalQuery {
            id: "A6",
            text: "COUNT paper MAX date IEEE",
            description: "Find the number of papers published by 'IEEE' and most recent date",
        },
        EvalQuery {
            id: "A7",
            text: "COUNT paper author John Mary",
            description: "Find the number of papers co-authored by 'John' and 'Mary'",
        },
        EvalQuery {
            id: "A8",
            text: "COUNT editor SIGIR CIKM",
            description: "Find the number of editors that edit proceedings 'SIGIR' and 'CIKM'",
        },
    ]
}

/// The normalized TPC-H database at the given scale.
pub fn tpch_database(scale: Scale) -> Database {
    let cfg = match scale {
        Scale::Small => TpchConfig::small(),
        Scale::Paper => TpchConfig::paper_scale(),
    };
    generate_tpch(&cfg)
}

/// The normalized ACMDL database at the given scale.
pub fn acmdl_database(scale: Scale) -> Database {
    let cfg = match scale {
        Scale::Small => AcmdlConfig::small(),
        Scale::Paper => AcmdlConfig::paper_scale(),
    };
    generate_acmdl(&cfg)
}

/// The unnormalized TPCH' database (Table 7) at the given scale.
pub fn tpch_prime_database(scale: Scale) -> Database {
    denormalize_tpch(&tpch_database(scale))
}

/// The unnormalized ACMDL' database (Table 7) at the given scale.
pub fn acmdl_prime_database(scale: Scale) -> Database {
    denormalize_acmdl(&acmdl_database(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_queries() {
        assert_eq!(tpch_queries().len(), 8);
        assert_eq!(acmdl_queries().len(), 8);
        for q in tpch_queries().iter().chain(&acmdl_queries()) {
            assert!(!q.text.is_empty() && !q.description.is_empty(), "{}", q.id);
        }
    }
}
