//! Golden-file test for the Prometheus exposition: a deterministically
//! populated registry must render byte-identically run after run —
//! stable metric ordering, stable label ordering, stable number
//! formatting. Regenerate with `UPDATE_GOLDEN=1 cargo test -p aqks-obs`.

use aqks_obs::metrics::{Registry, Unit};

fn golden_registry() -> Registry {
    let r = Registry::new();
    r.counter("aqks_engine_queries").add(120);
    r.counter("aqks_equiv_classes").add(9);
    r.gauge("aqks_flight_retained").set(18);
    r.labeled_counter("aqks_guard_trips", "site", "engine.translate").add(1);
    r.labeled_counter("aqks_guard_trips", "site", "ops.Scan").add(4);
    let phases = r.labeled_histogram("aqks_engine_phase_ns", "phase", "parse", Unit::Nanos);
    for v in [2_400, 3_100, 2_950, 14_000] {
        phases.record(v);
    }
    let exec = r.labeled_histogram("aqks_engine_phase_ns", "phase", "exec", Unit::Nanos);
    for v in [310_000, 250_000, 1_950_000, 420_000, 388_000] {
        exec.record(v);
    }
    let rows = r.histogram("aqks_engine_result_rows", Unit::Count);
    for v in [0, 1, 1, 3, 25, 4_096] {
        rows.record(v);
    }
    let peak = r.labeled_histogram("aqks_ops_peak_bytes", "op", "HashJoin", Unit::Bytes);
    for v in [65_536, 1_048_576] {
        peak.record(v);
    }
    r
}

#[test]
fn prometheus_exposition_matches_golden() {
    let rendered = aqks_obs::expo::render_prometheus(&golden_registry().snapshot());
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (run with UPDATE_GOLDEN=1)", path.display()));
    assert_eq!(
        rendered,
        golden,
        "Prometheus exposition drifted from {}; regenerate with UPDATE_GOLDEN=1 if intended",
        path.display()
    );
}

#[test]
fn exposition_is_deterministic_across_renders() {
    let a = aqks_obs::expo::render_prometheus(&golden_registry().snapshot());
    let b = aqks_obs::expo::render_prometheus(&golden_registry().snapshot());
    assert_eq!(a, b);
}
