//! Satellite: concurrent budget trips against one shared engine.
//!
//! M clients hammer the service with starvation budgets. Every response
//! must be a structured exhaustion (an `OK … degraded=` answer carrying
//! partial results) — never a dropped connection or untyped failure —
//! the flight recorder must retain a tripped exemplar for the
//! starved query, and the always-on counters must account for every
//! query exactly, whether one worker serializes them or eight race.
//!
//! Runs in its own test binary so the process-global metrics registry
//! and flight recorder see only this scenario's traffic.

use std::sync::Arc;
use std::time::Duration;

use aqks_core::Engine;
use aqks_datasets::university;
use aqks_server::{Client, ClientConfig, Request, Server, ServerConfig};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 5;

/// The starved query: several interpretations exist, so an
/// interpretation budget of 1 always trips after the first executes —
/// a structured exhaustion that still carries partial results.
const QUERY: &str = "Green George COUNT Code";

struct Outcome {
    engine_queries: u64,
    flight_recorded: u64,
    ok: u64,
    degraded: u64,
}

fn run_scenario(workers: usize) -> Outcome {
    let snap = || aqks_obs::metrics::global().snapshot();
    let flight = aqks_obs::flight::global();
    let queries_before = snap().counter_total("aqks_engine_queries");
    let recorded_before = flight.recorded();

    let engine = Arc::new(Engine::new(university::normalized()).expect("dataset builds"));
    let cfg = ServerConfig { workers, ..ServerConfig::default() };
    let server = Server::start(engine, cfg).expect("server binds");
    let addr = server.addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(
                    addr,
                    ClientConfig {
                        max_attempts: 1,
                        jitter_seed: 1000 + i as u64,
                        read_timeout: Duration::from_secs(30),
                        ..ClientConfig::default()
                    },
                );
                for _ in 0..REQUESTS_PER_CLIENT {
                    let mut req = Request::new(QUERY);
                    req.k = 3;
                    req.max_interps = Some(1); // starvation budget
                    let answer = client.query(&req).expect("starved query still answers");
                    let degraded = answer.degraded.expect("every response is exhausted");
                    assert!(degraded.starts_with("interpretation"), "{degraded}");
                    assert!(
                        !answer.interpretations.is_empty(),
                        "exhaustion still carries the partial results"
                    );
                }
                client.quit();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }

    // The flight recorder retains the starved query as its most recent
    // tripped exemplar, with the trip annotated.
    let exemplar = flight.last_tripped().expect("tripped exemplar retained");
    assert_eq!(exemplar.query, QUERY);
    let trip = exemplar.tripped.as_deref().expect("exemplar records the trip");
    assert!(trip.contains("interpretation"), "{trip}");

    let stats = server.stats();
    server.shutdown();
    Outcome {
        engine_queries: snap().counter_total("aqks_engine_queries") - queries_before,
        flight_recorded: flight.recorded() - recorded_before,
        ok: stats.ok,
        degraded: stats.degraded,
    }
}

#[test]
fn concurrent_trips_account_exactly_at_any_worker_count() {
    aqks_obs::metrics::set_enabled(true);
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;

    let serial = run_scenario(1);
    let concurrent = run_scenario(8);

    for (label, outcome) in [("1 worker", &serial), ("8 workers", &concurrent)] {
        assert_eq!(outcome.ok, total, "{label}: every request answered OK");
        assert_eq!(outcome.degraded, total, "{label}: every answer degraded");
        assert_eq!(
            outcome.engine_queries, total,
            "{label}: engine counter accounts for each query exactly once"
        );
        assert_eq!(
            outcome.flight_recorded, total,
            "{label}: flight recorder filed each query exactly once"
        );
    }
    // The whole point: observability does not depend on concurrency.
    assert_eq!(serial.engine_queries, concurrent.engine_queries);
    assert_eq!(serial.flight_recorded, concurrent.flight_recorded);
}
