//! Bottom-up property inference over [`PlanNode`] trees.
//!
//! Each operator's output is summarized by a [`NodeProps`]: the column
//! layout annotated with declared types and base-relation provenance, a
//! functional-dependency set over the layout (the plan-level counterpart
//! of `aqks_analyze::fdmodel::StmtFds`), row-distinctness, carried sort
//! order, and a monotone cardinality upper bound. The verifier checks
//! invariants against these summaries; `aqks explain` prints them.
//!
//! FD attributes are *tokens*: the lowercase `"alias.column"` string of a
//! layout position (projection/aggregation outputs, which carry no alias,
//! use `".name"`). Tokens make join composition trivial — FROM aliases
//! are unique within a statement, so a join's FD set is the union of its
//! children's plus the key equalities — and they line up with the
//! path-qualified names the SQL-level analyzer reasons over.

use std::collections::{BTreeSet, HashMap};

use aqks_analyze::fdmodel::lower_fd_set;
use aqks_relational::{AttrType, Database, Fd, FdSet};
use aqks_sqlgen::ast::AggFunc;
use aqks_sqlgen::{PhysAggItem, PhysPred, PlanNode, PlanOp};

/// One output column with its inferred annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColProp {
    /// Lowercased FROM alias ("" for projection/aggregation outputs).
    pub alias: String,
    /// Lowercased column name.
    pub name: String,
    /// Declared type, when it can be traced to the catalog. Aggregates
    /// over untypeable arguments (e.g. `SUM` of a text column, which
    /// executes to NULL) stay `None`.
    pub ty: Option<AttrType>,
    /// Base-relation provenance `(relation, attribute)`, both lowercase,
    /// traced through joins, projections, derived tables and group keys.
    pub base: Option<(String, String)>,
}

impl ColProp {
    /// The FD token of this column.
    pub fn token(&self) -> String {
        format!("{}.{}", self.alias, self.name)
    }
}

/// Inferred properties of one plan node's output.
#[derive(Debug, Clone)]
pub struct NodeProps {
    /// Annotated output columns, parallel to [`PlanNode::cols`].
    pub cols: Vec<ColProp>,
    /// Functional dependencies over the column tokens.
    pub fds: FdSet,
    /// Output rows are pairwise distinct.
    pub unique: bool,
    /// Carried sort order: `(column index, descending)` keys, outermost
    /// first; empty when the output order is unspecified.
    pub order: Vec<(usize, bool)>,
    /// Monotone cardinality upper bound (saturating). The planner's
    /// `est_rows` must never exceed it.
    pub max_rows: usize,
}

impl NodeProps {
    /// Tokens of every output column.
    pub fn tokens(&self) -> Vec<String> {
        self.cols.iter().map(ColProp::token).collect()
    }

    /// A minimal unique column set (greedily minimized, deterministic),
    /// or `None` when output rows are not known to be distinct.
    pub fn key(&self) -> Option<Vec<usize>> {
        if !self.unique {
            return None;
        }
        let tokens = self.tokens();
        let mut keep: Vec<usize> = (0..self.cols.len()).collect();
        // Drop columns back-to-front while the rest still determine all.
        let mut i = keep.len();
        while i > 0 {
            i -= 1;
            let trial: BTreeSet<String> =
                keep.iter().filter(|&&k| k != keep[i]).map(|&k| tokens[k].clone()).collect();
            if self.fds.is_superkey(&trial) {
                keep.remove(i);
            }
        }
        Some(keep)
    }

    /// Compact one-line rendering: `keys=[…] order=[…] rows<=N`.
    pub fn summary(&self, names: &[String]) -> String {
        let name = |i: usize| names.get(i).cloned().unwrap_or_else(|| format!("#{i}"));
        let keys = match self.key() {
            None => "-".to_string(),
            Some(k) if k.is_empty() => "()".to_string(),
            Some(k) => k.iter().map(|&i| name(i)).collect::<Vec<_>>().join(","),
        };
        let order = if self.order.is_empty() {
            "-".to_string()
        } else {
            self.order
                .iter()
                .map(|&(i, desc)| format!("{}{}", name(i), if desc { " desc" } else { "" }))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!("keys=[{keys}] order=[{order}] rows<={}", self.max_rows)
    }
}

/// Infers properties for one node given its children's (already inferred)
/// properties. Pure structural inference: resolution and invariant
/// *checking* live in [`mod@crate::verify`]; this function assumes indices
/// are in range (the verifier checks them first).
pub fn infer(node: &PlanNode, children: &[&NodeProps], db: &Database) -> NodeProps {
    match &node.op {
        PlanOp::Scan { relation, alias, pushed } => scan_props(relation, alias, pushed, db),
        PlanOp::DerivedTable { alias, names } => derived_props(alias, names, children[0]),
        PlanOp::HashJoin { left_keys, right_keys, .. } => {
            join_props(children[0], children[1], Some((left_keys, right_keys)))
        }
        PlanOp::CrossJoin => join_props(children[0], children[1], None),
        PlanOp::Filter { preds } => filter_props(preds, children[0]),
        PlanOp::HashAggregate { group, items, names } => {
            aggregate_props(group, items, names, children[0])
        }
        PlanOp::Project { cols, names } => project_props(cols, names, children[0]),
        PlanOp::Distinct => NodeProps { unique: true, ..children[0].clone() },
        PlanOp::Sort { keys } => NodeProps { order: keys.clone(), ..children[0].clone() },
        PlanOp::Limit { n } => {
            NodeProps { max_rows: children[0].max_rows.min(*n), ..children[0].clone() }
        }
    }
}

fn scan_props(relation: &str, alias: &str, pushed: &[PhysPred], db: &Database) -> NodeProps {
    let Some(table) = db.table(relation) else {
        // Unknown relation: the verifier rejects before using these props.
        return NodeProps {
            cols: Vec::new(),
            fds: FdSet::default(),
            unique: false,
            order: Vec::new(),
            max_rows: 0,
        };
    };
    let rel = &table.schema;
    let cols: Vec<ColProp> = rel
        .attrs
        .iter()
        .map(|a| ColProp {
            alias: alias.to_lowercase(),
            name: a.name.to_lowercase(),
            ty: Some(a.ty),
            base: Some((rel.name.to_lowercase(), a.name.to_lowercase())),
        })
        .collect();
    let tokens: Vec<String> = cols.iter().map(ColProp::token).collect();
    let mut fds = FdSet::new(tokens.iter().cloned());
    // Declared relation FDs (PK -> all, plus extra_fds), token-qualified.
    let prefix = format!("{}.", alias.to_lowercase());
    for fd in lower_fd_set(rel).fds {
        fds.add(Fd::new(
            fd.lhs.iter().map(|a| format!("{prefix}{a}")),
            fd.rhs.iter().map(|a| format!("{prefix}{a}")),
        ));
    }
    add_pred_fds(&mut fds, pushed, &tokens);
    NodeProps {
        cols,
        fds,
        unique: !rel.primary_key.is_empty(),
        order: Vec::new(),
        max_rows: table.len(),
    }
}

fn derived_props(alias: &str, names: &[String], child: &NodeProps) -> NodeProps {
    let cols: Vec<ColProp> = names
        .iter()
        .zip(&child.cols)
        .map(|(n, c)| ColProp {
            alias: alias.to_lowercase(),
            name: n.to_lowercase(),
            ty: c.ty,
            base: c.base.clone(),
        })
        .collect();
    let map: HashMap<String, String> =
        child.cols.iter().zip(&cols).map(|(c, n)| (c.token(), n.token())).collect();
    let mut fds = FdSet::new(cols.iter().map(ColProp::token));
    for fd in remap_fds(&child.fds, &map) {
        fds.add(fd);
    }
    NodeProps { cols, fds, unique: child.unique, order: Vec::new(), max_rows: child.max_rows }
}

fn join_props(
    left: &NodeProps,
    right: &NodeProps,
    keys: Option<(&[usize], &[usize])>,
) -> NodeProps {
    let mut cols = left.cols.clone();
    cols.extend(right.cols.iter().cloned());
    let mut fds = FdSet::new(cols.iter().map(ColProp::token));
    for fd in left.fds.fds.iter().chain(&right.fds.fds) {
        fds.add(fd.clone());
    }
    if let Some((lk, rk)) = keys {
        for (&l, &r) in lk.iter().zip(rk) {
            if let (Some(lc), Some(rc)) = (left.cols.get(l), right.cols.get(r)) {
                let (lt, rt) = (lc.token(), rc.token());
                fds.add(Fd::new([lt.clone()], [rt.clone()]));
                fds.add(Fd::new([rt], [lt]));
            }
        }
    }
    NodeProps {
        cols,
        fds,
        unique: left.unique && right.unique,
        order: Vec::new(),
        max_rows: left
            .max_rows
            .saturating_mul(right.max_rows)
            .max(left.max_rows)
            .max(right.max_rows),
    }
}

fn filter_props(preds: &[PhysPred], child: &NodeProps) -> NodeProps {
    let tokens = child.tokens();
    let mut out = child.clone();
    add_pred_fds(&mut out.fds, preds, &tokens);
    out
}

fn project_props(cols: &[usize], names: &[String], child: &NodeProps) -> NodeProps {
    let out_cols: Vec<ColProp> = cols
        .iter()
        .zip(names)
        .map(|(&i, n)| {
            let c = child.cols.get(i);
            ColProp {
                alias: String::new(),
                name: n.to_lowercase(),
                ty: c.and_then(|c| c.ty),
                base: c.and_then(|c| c.base.clone()),
            }
        })
        .collect();
    let map: HashMap<String, String> = cols
        .iter()
        .zip(&out_cols)
        .filter_map(|(&i, n)| child.cols.get(i).map(|c| (c.token(), n.token())))
        .collect();
    let mut fds = FdSet::new(out_cols.iter().map(ColProp::token));
    for fd in remap_fds(&child.fds, &map) {
        fds.add(fd);
    }
    // Unique rows survive projection only when the retained columns
    // determine every input column (no information is discarded).
    let retained: BTreeSet<String> = map.keys().cloned().collect();
    let unique = child.unique && child.fds.is_superkey(&retained);
    NodeProps { cols: out_cols, fds, unique, order: Vec::new(), max_rows: child.max_rows }
}

fn aggregate_props(
    group: &[usize],
    items: &[PhysAggItem],
    names: &[String],
    child: &NodeProps,
) -> NodeProps {
    let out_cols: Vec<ColProp> = items
        .iter()
        .zip(names)
        .map(|(item, n)| {
            let name = n.to_lowercase();
            match item {
                PhysAggItem::Col(i) => {
                    let c = child.cols.get(*i);
                    ColProp {
                        alias: String::new(),
                        name,
                        ty: c.and_then(|c| c.ty),
                        base: c.and_then(|c| c.base.clone()),
                    }
                }
                PhysAggItem::Agg { func, arg, .. } => ColProp {
                    alias: String::new(),
                    name,
                    ty: agg_type(*func, child.cols.get(*arg).and_then(|c| c.ty)),
                    base: None,
                },
            }
        })
        .collect();
    // Retained (plain) columns carry their FDs through, like a projection.
    let map: HashMap<String, String> = items
        .iter()
        .zip(&out_cols)
        .filter_map(|(item, n)| match item {
            PhysAggItem::Col(i) => child.cols.get(*i).map(|c| (c.token(), n.token())),
            PhysAggItem::Agg { .. } => None,
        })
        .collect();
    let mut fds = FdSet::new(out_cols.iter().map(ColProp::token));
    for fd in remap_fds(&child.fds, &map) {
        fds.add(fd);
    }
    // One output row per group-key value: projected group columns
    // determine every output. With no GROUP BY the output is one row,
    // expressed as the constant FD {} -> all.
    let group_tokens: BTreeSet<String> =
        group.iter().filter_map(|&g| child.cols.get(g).map(ColProp::token)).collect();
    let mut covered: BTreeSet<String> = BTreeSet::new();
    let mut projected_group: BTreeSet<String> = BTreeSet::new();
    for (item, n) in items.iter().zip(&out_cols) {
        if let PhysAggItem::Col(i) = item {
            if let Some(c) = child.cols.get(*i) {
                if group_tokens.contains(&c.token()) {
                    covered.insert(c.token());
                    projected_group.insert(n.token());
                }
            }
        }
    }
    let all_out: Vec<String> = out_cols.iter().map(ColProp::token).collect();
    if group.is_empty() {
        fds.add(Fd::new(Vec::<String>::new(), all_out));
    } else if covered == group_tokens {
        fds.add(Fd::new(projected_group, all_out));
    }
    NodeProps {
        cols: out_cols,
        fds,
        unique: true,
        order: Vec::new(),
        max_rows: if group.is_empty() { 1 } else { child.max_rows },
    }
}

/// Output type of an aggregate given its argument type.
pub fn agg_type(func: AggFunc, arg: Option<AttrType>) -> Option<AttrType> {
    match func {
        AggFunc::Count => Some(AttrType::Int),
        AggFunc::Avg => Some(AttrType::Float),
        AggFunc::Sum => match arg {
            Some(AttrType::Int) => Some(AttrType::Int),
            Some(AttrType::Float) => Some(AttrType::Float),
            _ => None,
        },
        AggFunc::Min | AggFunc::Max => arg,
    }
}

/// Adds the FD contributions of resolved predicates: a column equality
/// pins each side to the other, a literal equality makes the column a
/// constant (`{} -> col`), and `contains` pins nothing (it keeps every
/// row whose value matches a substring).
fn add_pred_fds(fds: &mut FdSet, preds: &[PhysPred], tokens: &[String]) {
    for p in preds {
        match p {
            PhysPred::EqCols(l, r) => {
                if let (Some(lt), Some(rt)) = (tokens.get(*l), tokens.get(*r)) {
                    fds.add(Fd::new([lt.clone()], [rt.clone()]));
                    fds.add(Fd::new([rt.clone()], [lt.clone()]));
                }
            }
            PhysPred::EqLit(i, _) => {
                if let Some(t) = tokens.get(*i) {
                    fds.add(Fd::new(Vec::<String>::new(), [t.clone()]));
                }
            }
            PhysPred::ContainsCi(..) => {}
        }
    }
}

/// Maps a child FD set through a (possibly partial) token renaming.
/// Directly-mapped FDs are renamed; dependencies routed through dropped
/// columns are recovered by closing each declared determinant (and the
/// constant set) over the child FDs and intersecting with the mapping.
fn remap_fds(child: &FdSet, map: &HashMap<String, String>) -> Vec<Fd> {
    let mut out = Vec::new();
    let mapped_rhs = |attrs: &BTreeSet<String>| -> Vec<String> {
        attrs.iter().filter_map(|a| map.get(a).cloned()).collect()
    };
    for fd in &child.fds {
        if !fd.lhs.iter().all(|a| map.contains_key(a)) {
            continue;
        }
        let lhs: Vec<String> = fd.lhs.iter().filter_map(|a| map.get(a).cloned()).collect();
        let rhs = mapped_rhs(&child.closure(fd.lhs.clone()));
        if !rhs.is_empty() {
            out.push(Fd::new(lhs, rhs));
        }
    }
    // Constants survive projection: closure of the empty set.
    let consts = mapped_rhs(&child.closure(BTreeSet::new()));
    if !consts.is_empty() {
        out.push(Fd::new(Vec::<String>::new(), consts));
    }
    // Singleton closures recover transitive chains whose intermediate
    // columns were dropped (a -> dropped -> b).
    for (from, to) in map {
        let cl = child.closure([from.clone()].into_iter().collect());
        let rhs = mapped_rhs(&cl);
        if rhs.len() > 1 {
            out.push(Fd::new([to.clone()], rhs));
        }
    }
    out
}
