//! Deterministic fault-injection sweep (`repro faults`).
//!
//! For every failpoint site in the pipeline, the sweep arms the site,
//! pushes a known-good query through [`aqks_core::Engine::answer`], and
//! checks two properties:
//!
//! 1. **Typed surfacing** — the injected fault comes back as
//!    [`aqks_core::CoreError::Fault`] naming the exact site, not as a
//!    panic, a stringified wrapper, or a silent empty answer;
//! 2. **Recovery** — with the site disarmed, the *same* engine instance
//!    answers the same query correctly: the fault left no torn state.
//!
//! Only compiled with the `failpoints` feature; the sites themselves are
//! no-ops (and dead-code eliminated) in default builds.

use aqks_core::{CoreError, Engine};
use aqks_datasets::university;
use aqks_guard::failpoint;

/// The result of injecting one fault site.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    /// The failpoint site that was armed.
    pub site: &'static str,
    /// The query pushed through the engine.
    pub query: &'static str,
    /// What the engine returned with the site armed.
    pub observed: String,
    /// The fault surfaced as `CoreError::Fault(site)` with the right site.
    pub typed: bool,
    /// The engine answered correctly after disarming the site.
    pub recovered: bool,
}

impl FaultOutcome {
    /// Both properties held.
    pub fn passed(&self) -> bool {
        self.typed && self.recovered
    }
}

/// The pipeline's failpoint sites, each paired with a query guaranteed
/// to reach it on the university dataset: a value term probes the index,
/// and an aggregate over joined relations exercises the hash join build
/// and the aggregate finalizer.
pub const SITES: [(&str, &str); 4] = [
    ("index.lookup", "Green SUM Credit"),
    ("translate", "Green SUM Credit"),
    ("join.build", "Green SUM Credit"),
    ("agg.finalize", "Green SUM Credit"),
];

/// Runs the full sweep on a fresh engine per site.
pub fn run_fault_sweep() -> Vec<FaultOutcome> {
    SITES.iter().map(|&(site, query)| inject(site, query)).collect()
}

fn inject(site: &'static str, query: &'static str) -> FaultOutcome {
    let engine = Engine::new(university::normalized()).expect("university dataset builds");
    failpoint::enable(site);
    let armed = engine.answer(query, 1);
    failpoint::disable(site);
    let (observed, typed) = match &armed {
        Err(CoreError::Fault(s)) => (format!("CoreError::Fault({s:?})"), *s == site),
        Err(other) => (format!("{other}"), false),
        Ok(answers) => (format!("Ok with {} answer(s)", answers.len()), false),
    };
    let recovered = matches!(&engine.answer(query, 1), Ok(a) if !a.is_empty());
    FaultOutcome { site, query, observed, typed, recovered }
}

/// Renders the sweep as a one-line-per-site report; the bool is `true`
/// when every site passed.
pub fn render(outcomes: &[FaultOutcome]) -> (String, bool) {
    let mut out = String::new();
    let mut ok = true;
    for o in outcomes {
        ok &= o.passed();
        out.push_str(&format!(
            "{:<14} {:<24} typed={} recovered={} ({})\n",
            o.site, o.query, o.typed, o.recovered, o.observed
        ));
    }
    (out, ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_site_surfaces_typed_error_and_recovers() {
        let outcomes = run_fault_sweep();
        assert_eq!(outcomes.len(), SITES.len());
        for o in &outcomes {
            assert!(o.typed, "{}: fault not typed — observed {}", o.site, o.observed);
            assert!(o.recovered, "{}: engine did not recover", o.site);
        }
    }

    #[test]
    fn render_reports_all_sites() {
        let (report, ok) = render(&run_fault_sweep());
        assert!(ok, "{report}");
        for (site, _) in SITES {
            assert!(report.contains(site), "{report}");
        }
    }
}
