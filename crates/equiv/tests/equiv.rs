//! End-to-end equivalence tests: canonicalization identifies plans the
//! structural fingerprint tells apart (pushdown on/off, commuted join
//! inputs), keeps corrupted plans apart, rejects unsound rewrites with
//! a typed certificate error, and shared execution returns exactly the
//! per-plan results while moving fewer rows.

use aqks_core::Engine;
use aqks_datasets::university;
use aqks_equiv::{analyze, canonicalize, certify_rewrite, run_shared, shared_set, EquivError};
use aqks_plancheck::{fingerprint, mutate};
use aqks_relational::Database;
use aqks_sqlgen::{
    plan, plan_with_options, render_plan, run_plan, PlanNode, PlanOp, PlanOptions, SelectStatement,
};

const QUERIES: &[&str] = &[
    "Green SUM Credit",
    "Green George COUNT Code",
    "Java SUM Price",
    "Engineering COUNT Department",
    "AVG COUNT Lecturer GROUPBY Course",
];

/// Plans every interpretation the engine generates for `queries`.
fn engine_plans(db: &Database, queries: &[&str]) -> Vec<(SelectStatement, PlanNode)> {
    let engine = Engine::new(db.clone()).expect("engine builds");
    let mut out = Vec::new();
    for q in queries {
        for g in engine.generate(q, 3).expect("interpretations generated") {
            let p = plan(&g.sql, db).expect("statement plans");
            out.push((g.sql, p));
        }
    }
    assert!(!out.is_empty(), "query set produced no plans");
    out
}

#[test]
fn canonical_plan_executes_to_the_same_result() {
    let db = university::normalized();
    for (_, p) in engine_plans(&db, QUERIES) {
        let canon = canonicalize(&p, &db)
            .unwrap_or_else(|e| panic!("canonicalize failed: {e}\n{}", render_plan(&p)));
        assert_eq!(
            canon.perm,
            (0..p.cols.len()).collect::<Vec<_>>(),
            "statement-level plan permuted its output"
        );
        let (a, _) = run_plan(&p, &db).expect("original executes");
        let (b, _) = run_plan(&canon.plan, &db).expect("canonical executes");
        assert_eq!(
            a.clone().sorted().rows,
            b.clone().sorted().rows,
            "canonicalization changed results:\noriginal:\n{}\ncanonical:\n{}",
            render_plan(&p),
            render_plan(&canon.plan)
        );
    }
}

#[test]
fn pushdown_on_and_off_converge_to_one_canonical_form() {
    let db = university::normalized();
    let engine = Engine::new(db.clone()).expect("engine builds");
    let mut converged = 0usize;
    for q in QUERIES {
        for g in engine.generate(q, 3).expect("generates") {
            let on = plan(&g.sql, &db).expect("plans");
            let off = plan_with_options(&g.sql, &db, &PlanOptions { pushdown: false })
                .expect("plans unpushed");
            let con = canonicalize(&on, &db).expect("canonicalizes pushed");
            let coff = canonicalize(&off, &db).expect("canonicalizes unpushed");
            assert_eq!(
                con.fingerprint,
                coff.fingerprint,
                "pushdown on/off did not converge for {q}:\non:\n{}\noff:\n{}\ncanonical on:\n{}\ncanonical off:\n{}",
                render_plan(&on),
                render_plan(&off),
                render_plan(&con.plan),
                render_plan(&coff.plan)
            );
            if fingerprint(&on) != fingerprint(&off) {
                converged += 1; // structurally different, semantically unified
            }
        }
    }
    assert!(converged >= 3, "too few structurally-distinct pairs unified ({converged})");
}

#[test]
fn benign_input_swap_shares_a_class_but_key_swap_does_not() {
    let db = university::normalized();
    let mut swapped = 0usize;
    for (_, p) in engine_plans(&db, QUERIES) {
        let base = canonicalize(&p, &db).expect("canonicalizes").fingerprint;
        if let Some(good) = mutate::apply(&p, mutate::Mutation::SwapJoinInputs) {
            swapped += 1;
            let c = canonicalize(&good, &db).expect("sound swap canonicalizes");
            assert_eq!(c.fingerprint, base, "commuted join inputs left the equivalence class");
        }
        if let Some(bad) = mutate::apply(&p, mutate::Mutation::SwapJoinKeys) {
            // A key swap relates different columns: canonicalization
            // either refuses the broken plan or lands in another class.
            match canonicalize(&bad, &db) {
                Err(_) => {}
                Ok(c) => assert_ne!(
                    c.fingerprint, base,
                    "swapped join keys identified with the original"
                ),
            }
        }
    }
    assert!(swapped >= 3, "too few joins exercised ({swapped})");
}

#[test]
fn unsound_rewrite_is_rejected_with_a_typed_certificate_error() {
    let db = university::normalized();
    let (_, p) = engine_plans(&db, &["Green George COUNT Code"])
        .into_iter()
        .find(|(_, p)| {
            let mut joins = 0;
            p.visit(&mut |n| {
                if matches!(n.op, PlanOp::HashJoin { .. }) {
                    joins += 1;
                }
            });
            joins > 0
        })
        .expect("a join plan exists");
    // A correct input swap paired with a *wrong* (identity) permutation
    // claims nothing moved — the certificate must catch the provenance
    // mismatch with a typed error. Certify at the join node itself: at
    // the statement root the swap really is identity-sound.
    fn find_join(node: &PlanNode) -> Option<&PlanNode> {
        if matches!(node.op, PlanOp::HashJoin { .. }) {
            return Some(node);
        }
        node.children.iter().find_map(find_join)
    }
    let join = find_join(&p).expect("plan has a join");
    let swapped = mutate::apply(join, mutate::Mutation::SwapJoinInputs).expect("join to swap");
    let identity: Vec<usize> = (0..join.cols.len()).collect();
    let err = certify_rewrite("bogus-swap", join, &swapped, &identity, &db)
        .expect_err("unsound rewrite accepted");
    match err {
        EquivError::Certificate { rule, .. } => assert_eq!(rule, "bogus-swap"),
        other => panic!("expected a certificate rejection, got: {other}"),
    }
    // Re-pointing a join key at a neighboring column corrupts the key
    // functional dependencies the certificate tracks.
    if join.children[1].cols.len() > 1 {
        let keyswap = mutate::apply(join, mutate::Mutation::SwapJoinKeys).expect("keys to swap");
        assert!(
            certify_rewrite("swap-keys", join, &keyswap, &identity, &db).is_err(),
            "re-pointed join key passed certification"
        );
    }
}

#[test]
fn shared_execution_matches_per_plan_results_and_saves_rows() {
    let db = university::normalized();
    // Plan every interpretation both with and without pushdown: the
    // pairs converge to one class each, so deduplication is guaranteed
    // to have work to do (mirroring a cache fed by mixed plan sources).
    let engine = Engine::new(db.clone()).expect("engine builds");
    let mut plans: Vec<PlanNode> = Vec::new();
    for q in QUERIES {
        for g in engine.generate(q, 3).expect("generates") {
            plans.push(plan(&g.sql, &db).expect("plans"));
            plans.push(
                plan_with_options(&g.sql, &db, &PlanOptions { pushdown: false })
                    .expect("plans unpushed"),
            );
        }
    }
    let analysis = analyze(&plans, &db).expect("analysis succeeds");
    assert_eq!(analysis.canonical.len(), plans.len());
    assert!(analysis.nontrivial_classes() >= 1, "no nontrivial class in mixed plan set");
    assert!(analysis.duplicates() >= 1, "no duplicates found in mixed plan set");
    let set = shared_set(&analysis);
    assert_eq!(set.plans.len(), analysis.classes.len());
    let run = run_shared(&set, &db).expect("shared set executes");

    // Every class member's individual execution matches the shared run
    // of its representative.
    let mut baseline_rows = 0u64;
    for (ci, class) in analysis.classes.iter().enumerate() {
        for &m in &class.members {
            let (t, stats) = run_plan(&plans[m], &db).expect("member executes");
            baseline_rows += stats.rows_flowed();
            assert_eq!(
                t.sorted().rows,
                run.tables[ci].clone().sorted().rows,
                "shared execution changed results for class {ci} member {m}"
            );
        }
    }
    let shared_rows: u64 =
        run.plan_stats.iter().chain(run.share_stats.iter()).map(|s| s.rows_flowed()).sum();
    assert!(
        shared_rows < baseline_rows,
        "shared execution moved no fewer rows ({shared_rows} vs {baseline_rows})"
    );
}
