//! Static analysis sweep over the evaluation workloads.
//!
//! Runs `aqks-analyze` over every SQL statement both engines generate for
//! the Tables 3/4 queries, on the normalized and unnormalized datasets.
//! This is the static mirror of Tables 5/6/8/9: where those compare
//! *answers*, this compares *plans* — the paper's engine must produce
//! zero error findings, while SQAK's statements trip `AQ-P5`
//! (duplicate inflation) exactly where Section 4 predicts wrong answers.

use aqks_analyze::Analyzer;
use aqks_core::{CoreError, Engine};
use aqks_relational::Database;
use aqks_sqak::{Sqak, SqakError};

use crate::workload::{acmdl_database, tpch_database};
use crate::workload::{
    acmdl_prime_database, acmdl_queries, tpch_prime_database, tpch_queries, EvalQuery, Scale,
};

/// Analysis verdict for one workload query on one system.
#[derive(Debug, Clone)]
pub enum PlanVerdict {
    /// Statements generated; findings (possibly none) collected.
    Analyzed {
        /// Total error-severity findings over the top-k statements.
        errors: usize,
        /// Distinct diagnostic codes observed.
        codes: Vec<&'static str>,
    },
    /// The system cannot express the query (SQAK's N.A. rows).
    Unsupported(String),
}

impl PlanVerdict {
    /// Error findings, zero for unsupported queries.
    pub fn errors(&self) -> usize {
        match self {
            PlanVerdict::Analyzed { errors, .. } => *errors,
            PlanVerdict::Unsupported(_) => 0,
        }
    }

    /// True when the verdict carries the given diagnostic code.
    pub fn has_code(&self, code: &str) -> bool {
        matches!(self, PlanVerdict::Analyzed { codes, .. } if codes.contains(&code))
    }
}

/// One row of the analysis sweep.
#[derive(Debug, Clone)]
pub struct AnalysisRow {
    /// Workload query id (T1…T8, A1…A8).
    pub id: &'static str,
    /// Verdict on the paper engine's top-k statements.
    pub ours: PlanVerdict,
    /// Verdict on SQAK's statement.
    pub sqak: PlanVerdict,
}

fn record(codes: &mut Vec<&'static str>, report: &aqks_analyze::Report) {
    for d in &report.diagnostics {
        if !codes.contains(&d.code) {
            codes.push(d.code);
        }
    }
}

/// Analyzes everything both engines generate for `queries` over `db`.
pub fn analyze_workload(db: &Database, queries: &[EvalQuery], k: usize) -> Vec<AnalysisRow> {
    let schema = db.schema();
    let engine = Engine::new(db.clone()).expect("engine construction");
    let sqak = Sqak::new(db.clone());
    queries
        .iter()
        .map(|q| {
            let ours = match engine.generate(q.text, k) {
                Ok(generated) => {
                    let mut errors = 0;
                    let mut codes = Vec::new();
                    for g in &generated {
                        errors += g.diagnostics.error_count();
                        record(&mut codes, &g.diagnostics);
                    }
                    PlanVerdict::Analyzed { errors, codes }
                }
                // Debug builds refuse statements with error findings
                // inside `generate` itself; surface that as an error.
                Err(CoreError::Analysis(_)) => {
                    PlanVerdict::Analyzed { errors: 1, codes: vec!["AQ-REJECTED"] }
                }
                Err(e) => PlanVerdict::Unsupported(e.to_string()),
            };
            let sqak_verdict = match sqak.generate(q.text) {
                Ok(g) => {
                    let report = Analyzer::new(&schema).analyze(&g.sql);
                    let mut codes = Vec::new();
                    record(&mut codes, &report);
                    PlanVerdict::Analyzed { errors: report.error_count(), codes }
                }
                Err(SqakError::Unsupported(m)) => PlanVerdict::Unsupported(m),
                Err(e) => PlanVerdict::Unsupported(e.to_string()),
            };
            AnalysisRow { id: q.id, ours, sqak: sqak_verdict }
        })
        .collect()
}

/// Sweeps all four workload databases at the given scale. Returns
/// `(tpch, acmdl, tpch', acmdl')` rows.
pub fn run_analysis(
    scale: Scale,
    k: usize,
) -> (Vec<AnalysisRow>, Vec<AnalysisRow>, Vec<AnalysisRow>, Vec<AnalysisRow>) {
    (
        analyze_workload(&tpch_database(scale), &tpch_queries(), k),
        analyze_workload(&acmdl_database(scale), &acmdl_queries(), k),
        analyze_workload(&tpch_prime_database(scale), &tpch_queries(), k),
        analyze_workload(&acmdl_prime_database(scale), &acmdl_queries(), k),
    )
}
