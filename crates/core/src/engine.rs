//! The end-to-end engine (Algorithm 2).
//!
//! [`Engine::new`] inspects the database: if every relation is in 3NF
//! (under its declared FDs) the ORM schema graph is built directly on the
//! schema; otherwise Algorithm 1 builds the normalized view `D'` first
//! and everything — matching, pattern generation, translation — runs over
//! `D'`, with the final SQL mapped back to the original relations and
//! simplified by the Section 4.1 rewrite rules.
//!
//! [`Engine::generate`] produces the ranked SQL statements (what
//! Figure 11 times); [`Engine::answer`] additionally executes them.

use aqks_analyze::{Analyzer, Report};
use aqks_guard::{Budget, Exhaustion, Governor};
use aqks_obs::metrics::{Counter, Gauge, Histogram, LabeledHistogram, Unit};
use aqks_obs::{PipelineTrace, Recorder};
use aqks_orm::OrmGraph;
use aqks_relational::{Database, DatabaseSchema, NormalizedView};
use aqks_sqlgen::{ExecStats, ResultTable, SelectStatement};

use crate::annotate::disambiguate;
use crate::error::CoreError;
use crate::matching::{Matcher, TermMatch, TermRole};
use crate::pattern::{generate_patterns, QueryPattern};
use crate::query::{KeywordQuery, Operator, Term};
use crate::rank::rank_patterns;
use crate::translate::{translate_ex, TranslateOptions};
use crate::unnormalized::{rewrite, RewriteOptions};

/// Answered keyword queries (every `answer`/`answer_governed` call).
static QUERIES: Counter = Counter::new("aqks_engine_queries");

/// End-to-end `answer` latency.
static ANSWER_NS: Histogram = Histogram::new("aqks_engine_answer_ns", Unit::Nanos);

/// Total result rows per answered query, summed over interpretations.
static RESULT_ROWS: Histogram = Histogram::new("aqks_engine_result_rows", Unit::Count);

/// Per-phase latency, labeled by pipeline phase name. Each occurrence
/// of a phase span is one sample (`plan`/`exec` run once per
/// interpretation, the front-end phases once per query).
static PHASE_NS: LabeledHistogram =
    LabeledHistogram::new("aqks_engine_phase_ns", "phase", Unit::Nanos);

/// Entries currently held by the global flight recorder (ring +
/// out-of-ring exemplars).
static FLIGHT_RETAINED: Gauge = Gauge::new("aqks_flight_retained");

/// Maps a span name to its static phase label; `None` for spans that
/// are not top-level pipeline phases. The label set is closed so the
/// labeled histogram's cardinality is bounded by the pipeline's shape.
fn phase_label(name: &str) -> Option<&'static str> {
    Some(match name {
        "parse" => "parse",
        "match" => "match",
        "pattern" => "pattern",
        "annotate" => "annotate",
        "rank" => "rank",
        "translate" => "translate",
        "analyze" => "analyze",
        "plan" => "plan",
        "plancheck" => "plancheck",
        "exec" => "exec",
        "guard" => "guard",
        _ => return None,
    })
}

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Translation rules (ablation switches).
    pub translate: TranslateOptions,
    /// Rewrite rules for unnormalized databases (ablation switches).
    pub rewrite: RewriteOptions,
    /// Skip the Section 4.1 rewriting entirely when true.
    pub skip_rewrites: bool,
    /// Run instance-level FD discovery before deciding whether the
    /// database is normalized — for unnormalized databases whose schema
    /// declares no FDs (the paper assumes FDs are given; a deployed
    /// system has to mine them).
    pub discover_fds: bool,
}

/// A generated (not yet executed) interpretation.
#[derive(Debug, Clone)]
pub struct GeneratedSql {
    /// The annotated query pattern.
    pub pattern: QueryPattern,
    /// The SQL statement.
    pub sql: SelectStatement,
    /// Rendered SQL text.
    pub sql_text: String,
    /// The pattern's rank key (smaller ranks first); interpretations are
    /// returned in rank order.
    pub score: crate::rank::RankKey,
    /// Findings of the static analyzer (`aqks-analyze`) on `sql`. Debug
    /// builds refuse to return statements with error-severity findings;
    /// release builds record them here.
    pub diagnostics: Report,
}

/// An executed interpretation.
#[derive(Debug, Clone)]
pub struct Interpretation {
    /// Human-readable pattern description.
    pub pattern_description: String,
    /// The SQL statement.
    pub sql: SelectStatement,
    /// Rendered SQL text.
    pub sql_text: String,
    /// The answer rows (deterministically sorted).
    pub result: ResultTable,
    /// Per-operator execution metrics of the physical plan that produced
    /// [`Interpretation::result`] (see [`aqks_sqlgen::render_plan_with_stats`]).
    pub stats: ExecStats,
}

/// A result produced under a [`Budget`]: the value, plus the structured
/// [`Exhaustion`] report when a budget dimension tripped. `exhaustion`
/// is `None` when the call completed within its budget; when set,
/// `value` holds whatever completed before the trip (possibly nothing —
/// see [`Exhaustion::partial`]).
#[derive(Debug, Clone)]
pub struct Governed<T> {
    /// The (possibly partial) result.
    pub value: T,
    /// Which budget tripped, where, and whether `value` is non-empty.
    pub exhaustion: Option<Exhaustion>,
}

/// How one query term matched the database (see [`Engine::explain`]).
#[derive(Debug, Clone)]
pub struct TermReport {
    /// The term's text (operators in their keyword form).
    pub term: String,
    /// True for aggregate/GROUPBY operators.
    pub is_operator: bool,
    /// Human-readable descriptions of each match.
    pub matches: Vec<String>,
}

/// One ranked interpretation in an [`Explanation`].
#[derive(Debug, Clone)]
pub struct PatternReport {
    /// One-line pattern description.
    pub description: String,
    /// Graphviz rendering of the pattern.
    pub dot: String,
    /// The rank key (smaller ranks first).
    pub score: crate::rank::RankKey,
}

/// The interpretation trace of a query (see [`Engine::explain`]).
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Per-term match reports, in query order.
    pub terms: Vec<TermReport>,
    /// All generated patterns, ranked best-first.
    pub patterns: Vec<PatternReport>,
}

/// Per-thread trace recorders. Every OS thread calling into a shared
/// engine gets its own lazily-created [`Recorder`], so concurrent
/// `answer` calls — the query server runs many workers over one
/// `Arc<Engine>` — never steal each other's spans, traces, or always-on
/// observations. Entries are created on first use and live for the
/// engine's lifetime; worker pools are fixed-size, so the map stays
/// small and the per-call cost is one short-held lock.
struct ThreadRecorders {
    map: std::sync::Mutex<std::collections::HashMap<std::thread::ThreadId, Recorder>>,
}

impl ThreadRecorders {
    fn new() -> ThreadRecorders {
        ThreadRecorders { map: std::sync::Mutex::new(std::collections::HashMap::new()) }
    }

    /// The calling thread's recorder (created disabled on first use).
    fn get(&self) -> Recorder {
        let id = std::thread::current().id();
        let mut map = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(id).or_insert_with(Recorder::disabled).clone()
    }
}

/// The semantic keyword-search engine.
///
/// `Engine` is `Send + Sync`: after construction every field is either
/// immutable (schema, ORM graph, inverted index) or behind a lock (the
/// per-thread recorder map), so one engine can be shared across a
/// worker pool via `Arc` — the query server does exactly that.
pub struct Engine {
    db: Database,
    original_schema: DatabaseSchema,
    namespace: DatabaseSchema,
    graph: OrmGraph,
    matcher: Matcher,
    view: Option<NormalizedView>,
    options: EngineOptions,
    /// Worker threads for parallel plan execution (1 = sequential).
    threads: usize,
    /// Per-thread pipeline tracing sinks; disabled by default, so every
    /// span below costs one atomic load until someone asks for a trace.
    recorders: ThreadRecorders,
}

/// Compile-time proof that a shared engine can cross a worker-pool
/// boundary: a future non-`Sync` interior cache is a build error here,
/// not a data race in production (mirrors `sqlgen::par`'s asserts).
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<Engine>();
const _: () = assert_send_sync::<std::sync::Arc<Engine>>();
const _: () = assert_send_sync::<Governed<Vec<Interpretation>>>();
const _: () = assert_send_sync::<Interpretation>();
const _: () = assert_send_sync::<CoreError>();

impl Engine {
    /// Builds an engine with default options.
    pub fn new(db: Database) -> Result<Engine, CoreError> {
        Engine::with_options(db, EngineOptions::default())
    }

    /// Builds an engine with explicit options.
    pub fn with_options(mut db: Database, options: EngineOptions) -> Result<Engine, CoreError> {
        if options.discover_fds {
            db.discover_and_declare_fds(&aqks_relational::DiscoveryOptions::default());
        }
        let schema = db.schema();
        if NormalizedView::is_normalized(&schema) {
            let graph = OrmGraph::build(&schema)?;
            let matcher = Matcher::normalized(&db);
            Ok(Engine {
                db,
                original_schema: schema.clone(),
                namespace: schema,
                graph,
                matcher,
                view: None,
                options,
                threads: 1,
                recorders: ThreadRecorders::new(),
            })
        } else {
            let view = NormalizedView::build(&schema);
            let namespace = view.schema();
            let graph = OrmGraph::build(&namespace)?;
            let matcher = Matcher::unnormalized(&db, view.clone());
            Ok(Engine {
                db,
                original_schema: schema,
                namespace,
                graph,
                matcher,
                view: Some(view),
                options,
                threads: 1,
                recorders: ThreadRecorders::new(),
            })
        }
    }

    /// Sets the worker thread count for plan execution. Results are
    /// identical at every value (the executor's merge orders are
    /// deterministic); only wall time changes. Clamped to at least 1.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured worker thread count for plan execution.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when the database required a normalized view (Section 4).
    pub fn is_unnormalized(&self) -> bool {
        self.view.is_some()
    }

    /// The ORM schema graph the engine works over.
    pub fn orm_graph(&self) -> &OrmGraph {
        &self.graph
    }

    /// The pattern-namespace schema (`D` or `D'`).
    pub fn namespace(&self) -> &DatabaseSchema {
        &self.namespace
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The calling thread's trace recorder for this engine. Disabled
    /// (and effectively free) by default; enable it around a call — or
    /// use [`Engine::answer_traced`] / [`Engine::explain_traced`] — to
    /// collect a [`PipelineTrace`]. Recorders are per thread, so
    /// concurrent callers on a shared engine observe independently.
    pub fn recorder(&self) -> Recorder {
        self.recorders.get()
    }

    /// Parses, matches, generates, ranks, and translates — everything but
    /// execution. This is the work Figure 11 measures.
    ///
    /// Library panics are caught at this boundary and surface as
    /// [`CoreError::Internal`].
    pub fn generate(&self, query: &str, k: usize) -> Result<Vec<GeneratedSql>, CoreError> {
        shielded(|| self.generate_inner(query, k))
    }

    /// [`Engine::generate`] with each interpretation lowered to its
    /// physical plan — the input shape equivalence analysis
    /// (`aqks-equiv`) and the CLI's `--equiv`/`--shared` surfaces
    /// consume: one `(statement, plan)` pair per interpretation.
    pub fn interpretation_plans(
        &self,
        query: &str,
        k: usize,
    ) -> Result<Vec<(GeneratedSql, aqks_sqlgen::PlanNode)>, CoreError> {
        let generated = self.generate(query, k)?;
        let mut out = Vec::with_capacity(generated.len());
        for g in generated {
            let plan = aqks_sqlgen::plan(&g.sql, &self.db)?;
            out.push((g, plan));
        }
        Ok(out)
    }

    /// [`Engine::generate`] under a resource [`Budget`]: interpretations
    /// completed before a trip are returned alongside the structured
    /// [`Exhaustion`] report. Only genuine errors — not exhaustion —
    /// surface as `Err`.
    pub fn generate_governed(
        &self,
        query: &str,
        k: usize,
        budget: &Budget,
    ) -> Result<Governed<Vec<GeneratedSql>>, CoreError> {
        self.governed(budget, || self.generate_inner(query, k))
    }

    fn generate_inner(&self, query: &str, k: usize) -> Result<Vec<GeneratedSql>, CoreError> {
        let rec = self.recorders.get();
        let query = {
            let _s = rec.span("parse");
            KeywordQuery::parse(query)?
        };
        let matches = {
            let s = rec.span("match");
            let matches = self.term_matches(&query)?;
            s.add("matches.total", matches.iter().map(Vec::len).sum::<usize>() as u64);
            matches
        };
        let patterns = {
            let s = rec.span("pattern");
            let patterns = generate_patterns(&query, &matches, &self.graph, &self.namespace)?;
            s.add("patterns.generated", patterns.len() as u64);
            patterns
        };
        let patterns = {
            let _s = rec.span("annotate");
            disambiguate(patterns, &self.namespace)
        };
        let patterns = {
            let s = rec.span("rank");
            let ranked = rank_patterns(patterns);
            s.add("patterns.ranked", ranked.len() as u64);
            ranked
        };

        // Translate all top-k patterns, then analyze all statements, so a
        // trace shows exactly one `translate` and one `analyze` phase.
        let translated = {
            let s = rec.span("translate");
            let mut translated = Vec::new();
            for p in patterns.into_iter().take(k) {
                // Each translated pattern is one interpretation charged
                // against the budget; on a trip the interpretations
                // finished so far are kept as partials.
                if aqks_guard::charge_interpretations("engine.translate", 1).is_err()
                    || aqks_guard::checkpoint("engine.translate").is_err()
                {
                    break;
                }
                let t = translate_ex(
                    &p,
                    &self.graph,
                    &self.namespace,
                    self.view.as_ref(),
                    &self.options.translate,
                )?;
                let sql = if self.view.is_some() && !self.options.skip_rewrites {
                    rewrite(&t.stmt, &t.derived_keys, &self.db.schema(), &self.options.rewrite)
                } else {
                    t.stmt
                };
                let sql_text = sql.to_string();
                translated.push((p, sql, sql_text));
            }
            s.add("patterns.translated", translated.len() as u64);
            translated
        };

        let _s = rec.span("analyze");
        let mut out = Vec::with_capacity(translated.len());
        for (p, sql, sql_text) in translated {
            let diagnostics = self.analyze(&sql);
            if cfg!(debug_assertions) && diagnostics.has_errors() {
                return Err(CoreError::Analysis(format!(
                    "{}\n{sql_text}",
                    diagnostics.render(&sql).trim_end()
                )));
            }
            let score = crate::rank::rank_key(&p);
            out.push(GeneratedSql { pattern: p, sql, sql_text, score, diagnostics });
        }
        Ok(out)
    }

    /// Statically analyzes a generated statement. Base relations in the
    /// final SQL always come from the original schema — normalized-view
    /// relations only ever appear as derived projections *over* original
    /// relations — so the analysis resolves against it. The ORM graph
    /// describes the namespace, so pass P3 consults it only when the two
    /// schemas coincide (no view).
    fn analyze(&self, sql: &SelectStatement) -> Report {
        let analyzer = Analyzer::new(&self.original_schema);
        if self.view.is_none() {
            analyzer.with_graph(&self.graph).analyze(sql)
        } else {
            analyzer.analyze(sql)
        }
    }

    /// Full Algorithm 2: generate the top-`k` interpretations and execute
    /// them against the database.
    ///
    /// Library panics are caught at this boundary and surface as
    /// [`CoreError::Internal`].
    pub fn answer(&self, query: &str, k: usize) -> Result<Vec<Interpretation>, CoreError> {
        let obs = self.begin_observation();
        let result = {
            let _root = self.recorders.get().span("answer");
            shielded(|| self.answer_inner(query, k))
        };
        if let Some(t0) = obs {
            let rows = result
                .as_ref()
                .map(|v| v.iter().map(|i| i.result.row_count() as u64).sum())
                .unwrap_or(0);
            self.finish_observation(query, t0, rows, None);
        }
        result
    }

    /// [`Engine::answer`] under a resource [`Budget`]: the engine
    /// degrades gracefully on exhaustion, returning the interpretations
    /// that completed before the trip plus the structured [`Exhaustion`]
    /// report naming the budget and site that tripped. Only genuine
    /// errors surface as `Err`.
    pub fn answer_governed(
        &self,
        query: &str,
        k: usize,
        budget: &Budget,
    ) -> Result<Governed<Vec<Interpretation>>, CoreError> {
        let obs = self.begin_observation();
        let result = {
            let _root = self.recorders.get().span("answer");
            self.governed(budget, || self.answer_inner(query, k))
        };
        if let Some(t0) = obs {
            let (rows, tripped) = match &result {
                Ok(g) => (
                    g.value.iter().map(|i| i.result.row_count() as u64).sum(),
                    g.exhaustion.as_ref().map(|e| e.to_string()),
                ),
                Err(_) => (0, None),
            };
            self.finish_observation(query, t0, rows, tripped);
        }
        result
    }

    fn answer_inner(&self, query: &str, k: usize) -> Result<Vec<Interpretation>, CoreError> {
        let rec = self.recorders.get();
        let generated = self.generate_inner(query, k)?;
        let mut out = Vec::with_capacity(generated.len());
        for g in generated {
            // Between interpretations is the natural cancellation point:
            // answers already executed are kept as partials.
            if aqks_guard::checkpoint("engine.answer").is_err() {
                break;
            }
            let plan = {
                let _s = rec.span("plan");
                aqks_sqlgen::plan(&g.sql, &self.db).map_err(CoreError::from)?
            };
            {
                // Debug builds statically verify every plan before it
                // runs; release builds skip in a branch (the span keeps
                // traces shape-stable across profiles).
                let s = rec.span("plancheck");
                if cfg!(debug_assertions) {
                    s.add("plancheck.checked", 1);
                }
                if let Err(e) = aqks_plancheck::verify_in_debug(&plan, &self.db, Some(&g.sql)) {
                    s.add(format!("plancheck.rejected.{}", e.kind.name()), 1);
                    return Err(CoreError::Analysis(format!(
                        "plan verification failed: {e}\n{}",
                        g.sql_text
                    )));
                }
            }
            let run = {
                let s = rec.span("exec");
                let run = aqks_sqlgen::run_plan_opts(
                    &plan,
                    &self.db,
                    &aqks_sqlgen::SharedRows::new(),
                    aqks_sqlgen::ExecOptions::with_threads(self.threads),
                );
                if let Ok((result, _)) = &run {
                    s.add("exec.rows_out", result.row_count() as u64);
                }
                run
            };
            let (result, stats) = match run {
                Ok(r) => r,
                // A budget trip mid-plan cancels this interpretation but
                // keeps the completed ones; the governor records the site.
                Err(aqks_sqlgen::ExecError::Budget(_)) => break,
                Err(e) => return Err(e.into()),
            };
            out.push(Interpretation {
                pattern_description: g.pattern.describe(),
                sql: g.sql,
                sql_text: g.sql_text,
                result: result.sorted(),
                stats,
            });
        }
        Ok(out)
    }

    /// [`Engine::answer`] with tracing: enables the recorder for the
    /// duration of the call and returns the collected [`PipelineTrace`]
    /// alongside the interpretations.
    pub fn answer_traced(
        &self,
        query: &str,
        k: usize,
    ) -> Result<(Vec<Interpretation>, PipelineTrace), CoreError> {
        self.traced(|| self.answer(query, k))
    }

    /// [`Engine::answer_governed`] with tracing: budget trips appear in
    /// the trace as a `guard` span with `guard.trip.<site>` counters.
    pub fn answer_traced_governed(
        &self,
        query: &str,
        k: usize,
        budget: &Budget,
    ) -> Result<(Governed<Vec<Interpretation>>, PipelineTrace), CoreError> {
        self.traced(|| self.answer_governed(query, k, budget))
    }

    /// Runs `f` with a [`Governor`] for `budget` installed ambiently,
    /// converting a budget trip into a graceful [`Governed`] result and
    /// recording it on the trace (a `guard` span + counters). The
    /// governor is only installed when the budget actually limits
    /// something, so unlimited calls stay on the zero-cost path.
    fn governed<T>(
        &self,
        budget: &Budget,
        f: impl FnOnce() -> Result<Vec<T>, CoreError>,
    ) -> Result<Governed<Vec<T>>, CoreError> {
        let gov = Governor::new(budget);
        let result = {
            let _installed =
                if budget.is_unlimited() { None } else { Some(aqks_guard::install(&gov)) };
            shielded(f)
        };
        let value = match result {
            Ok(v) => v,
            // A trip that unwound the whole pipeline: no partials exist.
            Err(CoreError::Budget(_)) => Vec::new(),
            Err(e) => return Err(e),
        };
        let exhaustion = gov.trip().map(|t| {
            let s = self.recorders.get().span("guard");
            s.add("guard.trips", 1);
            s.add(format!("guard.trip.{}", t.site), 1);
            t.exhaust(!value.is_empty())
        });
        Ok(Governed { value, exhaustion })
    }

    /// [`Engine::explain`] with tracing (see [`Engine::answer_traced`]).
    pub fn explain_traced(&self, query: &str) -> Result<(Explanation, PipelineTrace), CoreError> {
        self.traced(|| self.explain(query))
    }

    /// Starts the always-on observation of one `answer` call: enables
    /// the recorder (so phase spans land somewhere) and returns the
    /// start instant. Returns `None` — observation off — when metrics
    /// are globally disabled, or when the recorder is already enabled
    /// by an enclosing `*_traced` call, whose trace must not be stolen.
    fn begin_observation(&self) -> Option<std::time::Instant> {
        let rec = self.recorders.get();
        if !aqks_obs::metrics::enabled() || rec.is_enabled() {
            return None;
        }
        rec.enable();
        let _ = rec.take(); // discard stale spans
        Some(std::time::Instant::now())
    }

    /// Finishes an observation started by [`Engine::begin_observation`]:
    /// harvests the pipeline trace, folds its phase timings into the
    /// global histograms, and files the trace with the flight recorder.
    fn finish_observation(
        &self,
        query: &str,
        t0: std::time::Instant,
        rows: u64,
        tripped: Option<String>,
    ) {
        let rec = self.recorders.get();
        let trace = rec.take();
        rec.disable();
        let total_ns = t0.elapsed().as_nanos() as u64;
        QUERIES.add(1);
        ANSWER_NS.observe(total_ns);
        RESULT_ROWS.observe(rows);
        if let Some(root) = trace.roots.iter().find(|r| r.name == "answer") {
            for child in &root.children {
                if let Some(label) = phase_label(&child.name) {
                    PHASE_NS.observe(label, child.total_ns);
                }
            }
        }
        let flight = aqks_obs::flight::global();
        flight.record(query, total_ns, tripped, trace);
        FLIGHT_RETAINED.set(flight.retained() as i64);
    }

    /// Runs `f` with the recorder enabled and snapshots the trace.
    /// Restores the previous enabled state afterwards, and drops
    /// anything recorded before the call so the trace covers `f` only.
    fn traced<T>(
        &self,
        f: impl FnOnce() -> Result<T, CoreError>,
    ) -> Result<(T, PipelineTrace), CoreError> {
        let rec = self.recorders.get();
        let was_enabled = rec.is_enabled();
        if !was_enabled {
            rec.enable();
        }
        let _ = rec.take(); // discard stale spans
        let result = f();
        let trace = rec.take();
        if !was_enabled {
            rec.disable();
        }
        Ok((result?, trace))
    }

    /// Explains how a query is interpreted: each term's matches and the
    /// ranked patterns with their scores — the trace behind
    /// [`Engine::generate`], for debugging and the CLI's `--explain`.
    pub fn explain(&self, query: &str) -> Result<Explanation, CoreError> {
        let rec = self.recorders.get();
        let _root = rec.span("explain");
        let parsed = {
            let _s = rec.span("parse");
            KeywordQuery::parse(query)?
        };
        let matches = {
            let s = rec.span("match");
            let matches = self.term_matches(&parsed)?;
            s.add("matches.total", matches.iter().map(Vec::len).sum::<usize>() as u64);
            matches
        };
        let term_reports = parsed
            .terms
            .iter()
            .zip(&matches)
            .map(|(t, ms)| {
                let text = match t {
                    Term::Basic(s) => s.clone(),
                    Term::Op(Operator::GroupBy) => "GROUPBY".to_string(),
                    Term::Op(Operator::Agg(f)) => f.keyword().to_string(),
                };
                let descriptions = ms
                    .iter()
                    .map(|m| match m {
                        TermMatch::RelationName { relation } => {
                            format!("relation `{relation}`")
                        }
                        TermMatch::AttributeName { relation, attribute } => {
                            format!("attribute `{relation}.{attribute}`")
                        }
                        TermMatch::Value { relation, attribute, tuple_count } => {
                            format!("value of `{relation}.{attribute}` ({tuple_count} object(s))")
                        }
                    })
                    .collect();
                TermReport {
                    term: text,
                    is_operator: matches!(t, Term::Op(_)),
                    matches: descriptions,
                }
            })
            .collect();

        let patterns = {
            let s = rec.span("pattern");
            let patterns = generate_patterns(&parsed, &matches, &self.graph, &self.namespace)?;
            s.add("patterns.generated", patterns.len() as u64);
            patterns
        };
        let annotated = {
            let _s = rec.span("annotate");
            disambiguate(patterns, &self.namespace)
        };
        let ranked = {
            let _s = rec.span("rank");
            rank_patterns(annotated)
        };
        let pattern_reports = ranked
            .iter()
            .map(|p| PatternReport {
                description: p.describe(),
                dot: p.to_dot(),
                score: crate::rank::rank_key(p),
            })
            .collect();
        Ok(Explanation { terms: term_reports, patterns: pattern_reports })
    }

    fn term_matches(&self, query: &KeywordQuery) -> Result<Vec<Vec<TermMatch>>, CoreError> {
        let mut out = Vec::with_capacity(query.terms.len());
        for (i, t) in query.terms.iter().enumerate() {
            out.push(match t {
                Term::Basic(text) => {
                    let role = if query.is_operand(i) {
                        match query.terms[i - 1] {
                            Term::Op(Operator::Agg(aqks_sqlgen::AggFunc::Count))
                            | Term::Op(Operator::GroupBy) => TermRole::CountGroupByOperand,
                            Term::Op(Operator::Agg(_)) => TermRole::AggOperand,
                            Term::Basic(_) => TermRole::Free,
                        }
                    } else {
                        TermRole::Free
                    };
                    self.matcher.matches(&self.db, text, role)?
                }
                Term::Op(_) => Vec::new(),
            });
        }
        Ok(out)
    }
}

/// Runs `f` behind a panic shield: a panic anywhere in the pipeline is
/// caught and surfaced as [`CoreError::Internal`] instead of unwinding
/// through the caller. The engine owns no interior mutability that a
/// mid-panic unwind could corrupt, so `AssertUnwindSafe` is sound here.
fn shielded<T>(f: impl FnOnce() -> Result<T, CoreError>) -> Result<T, CoreError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(CoreError::Internal(msg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqks_datasets::university;
    use aqks_relational::Value;

    #[test]
    fn q1_end_to_end() {
        let engine = Engine::new(university::normalized()).unwrap();
        let answers = engine.answer("Green SUM Credit", 1).unwrap();
        let r = &answers[0].result;
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0].last().unwrap(), &Value::Float(5.0));
        assert_eq!(r.rows[1].last().unwrap(), &Value::Float(8.0));
    }

    #[test]
    fn q2_end_to_end() {
        let engine = Engine::new(university::normalized()).unwrap();
        let answers = engine.answer("Java SUM Price", 3).unwrap();
        let textbook = answers
            .iter()
            .find(|a| a.result.column_index("sumPrice").is_some())
            .expect("textbook interpretation");
        assert_eq!(textbook.result.rows[0].last().unwrap(), &Value::Int(25));
    }

    /// Q3 on Figure 2: the unnormalized engine counts 1 department in
    /// Engineering (SQAK's join over duplicated Lecturer rows says 2).
    #[test]
    fn q3_unnormalized_fig2() {
        let engine = Engine::new(university::unnormalized_fig2()).unwrap();
        assert!(engine.is_unnormalized());
        let answers = engine.answer("Engineering COUNT Department", 1).unwrap();
        let r = &answers[0].result;
        assert_eq!(r.rows[0].last().unwrap(), &Value::Int(1), "{}\n{r}", answers[0].sql_text);
    }

    /// Example 9/10 end to end on the Figure-8 database.
    #[test]
    fn fig8_green_george_count_code() {
        let engine = Engine::new(university::enrolment_fig8()).unwrap();
        assert!(engine.is_unnormalized());
        let answers = engine.answer("Green George COUNT Code", 1).unwrap();
        let r = &answers[0].result;
        assert_eq!(r.len(), 2, "{}\n{r}", answers[0].sql_text);
        assert_eq!(r.rows[0].last().unwrap(), &Value::Int(1));
        assert_eq!(r.rows[1].last().unwrap(), &Value::Int(2));
        // The rewritten SQL runs on the original Enrolment relation.
        assert!(answers[0].sql_text.contains("Enrolment"));
    }

    /// FD discovery substitutes for declared FDs: an Enrolment database
    /// with *no* declared dependencies still gets decomposed, and every
    /// discovered dependency holds on the instance, so the answers match
    /// the declared-FD engine.
    #[test]
    fn discovery_substitutes_for_declared_fds() {
        let declared = Engine::new(university::enrolment_fig8()).unwrap();

        let mut undeclared = university::enrolment_fig8();
        // Strip the declared FDs (and naming hints) from the schema.
        let mut bare = aqks_relational::Database::new("fig8-bare");
        let mut schema = undeclared.table("Enrolment").unwrap().schema.clone();
        schema.extra_fds.clear();
        schema.entity_names.clear();
        bare.add_relation(schema).unwrap();
        for row in undeclared.table("Enrolment").unwrap().rows() {
            bare.insert("Enrolment", row.clone()).unwrap();
        }
        undeclared = bare;

        // Without discovery the engine treats the relation as normalized.
        let naive = Engine::new(undeclared.clone()).unwrap();
        assert!(!naive.is_unnormalized());

        let discovering = Engine::with_options(
            undeclared,
            EngineOptions { discover_fds: true, ..Default::default() },
        )
        .unwrap();
        assert!(discovering.is_unnormalized());

        let a = &declared.answer("Green George COUNT Code", 1).unwrap()[0];
        let b = &discovering.answer("Green George COUNT Code", 1).unwrap()[0];
        let left: Vec<&Value> = a.result.rows.iter().map(|r| r.last().unwrap()).collect();
        let right: Vec<&Value> = b.result.rows.iter().map(|r| r.last().unwrap()).collect();
        assert_eq!(left, right, "{}\nvs\n{}", a.sql_text, b.sql_text);
    }

    #[test]
    fn nonexistent_term_errors() {
        let engine = Engine::new(university::normalized()).unwrap();
        assert!(matches!(engine.answer("zebra COUNT Code", 1), Err(CoreError::NoMatch(_))));
    }

    #[test]
    fn explain_reports_matches_and_patterns() {
        let engine = Engine::new(university::normalized()).unwrap();
        let ex = engine.explain("Green SUM Credit").unwrap();
        assert_eq!(ex.terms.len(), 3);
        assert!(ex.terms[0].matches[0].contains("Student.Sname"), "{:?}", ex.terms);
        assert!(ex.terms[1].is_operator);
        assert!(ex.patterns.len() >= 2, "merged + per-Green");
        // Ranked: scores are non-decreasing.
        for w in ex.patterns.windows(2) {
            assert!(w[0].score <= w[1].score);
        }
        assert!(ex.patterns[0].dot.starts_with("graph pattern {"));
    }

    #[test]
    fn answer_carries_execution_stats() {
        let engine = Engine::new(university::normalized()).unwrap();
        let answers = engine.answer("Green SUM Credit", 1).unwrap();
        let s = &answers[0].stats;
        assert!(!s.ops.is_empty());
        assert!(s.ops.iter().any(|m| m.rows_out > 0), "{s:?}");
        // The plan and the stats vector index the same node ids.
        let plan = aqks_sqlgen::plan(&answers[0].sql, engine.database()).unwrap();
        assert_eq!(s.ops.len(), plan.max_id() + 1);
    }

    #[test]
    fn generate_does_not_execute() {
        let engine = Engine::new(university::normalized()).unwrap();
        let gen = engine.generate("COUNT Lecturer GROUPBY Course", 2).unwrap();
        assert!(!gen.is_empty());
        assert!(gen[0].sql_text.contains("COUNT"));
    }

    /// Every pipeline phase appears exactly once under the `answer` root
    /// (k=1), operator spans graft under `exec`, analyzer pass spans
    /// under `analyze`, and index counters flow up via the ambient stack.
    #[test]
    fn answer_traced_covers_every_phase_once() {
        let engine = Engine::new(university::normalized()).unwrap();
        let (answers, trace) = engine.answer_traced("Green SUM Credit", 1).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(trace.roots.len(), 1, "{trace:?}");
        let root = &trace.roots[0];
        assert_eq!(root.name, "answer");
        for phase in [
            "parse",
            "match",
            "pattern",
            "annotate",
            "rank",
            "translate",
            "analyze",
            "plan",
            "exec",
        ] {
            let n = root.children.iter().filter(|c| c.name == phase).count();
            assert_eq!(n, 1, "phase `{phase}` appeared {n} times");
        }
        let exec = root.children.iter().find(|c| c.name == "exec").unwrap();
        assert!(exec.children.iter().all(|c| c.name.starts_with("op:")), "{exec:?}");
        assert!(!exec.children.is_empty());
        let analyze = root.children.iter().find(|c| c.name == "analyze").unwrap();
        assert!(analyze.children.iter().any(|c| c.name.starts_with("pass:")), "{analyze:?}");
        // Leaf-layer counters reached the trace without API plumbing.
        assert!(trace.counters.contains_key("index.probes"), "{:?}", trace.counters);
        assert!(trace.counters.contains_key("exec.rows_out"), "{:?}", trace.counters);
        // The recorder is back off afterwards.
        assert!(!engine.recorder().is_enabled());
    }

    #[test]
    fn explain_traced_has_interpretation_phases() {
        let engine = Engine::new(university::normalized()).unwrap();
        let (ex, trace) = engine.explain_traced("Green SUM Credit").unwrap();
        assert!(!ex.patterns.is_empty());
        let root = &trace.roots[0];
        assert_eq!(root.name, "explain");
        for phase in ["parse", "match", "pattern", "annotate", "rank"] {
            assert!(root.children.iter().any(|c| c.name == phase), "{phase} missing");
        }
    }

    /// Untraced calls leave nothing behind: the recorder stays disabled
    /// and a later traced call sees only its own spans.
    #[test]
    fn untraced_answer_records_nothing() {
        let engine = Engine::new(university::normalized()).unwrap();
        engine.answer("Green SUM Credit", 1).unwrap();
        assert!(!engine.recorder().is_enabled());
        assert!(engine.recorder().take().is_empty());
        let (_, trace) = engine.answer_traced("Java SUM Price", 1).unwrap();
        assert_eq!(trace.roots.len(), 1);
    }

    /// Plain `answer` feeds the always-on metrics and files its trace
    /// with the flight recorder; a governed trip lands there too, as
    /// the most recent tripped exemplar. Assertions are delta-based
    /// because the registry and flight recorder are process-global and
    /// tests run concurrently.
    #[test]
    fn answer_feeds_metrics_and_flight() {
        aqks_obs::metrics::set_enabled(true);
        let engine = Engine::new(university::normalized()).unwrap();
        let snap = || aqks_obs::metrics::global().snapshot();
        let flight = aqks_obs::flight::global();

        let queries_before = snap().counter_total("aqks_engine_queries");
        let recorded_before = flight.recorded();
        engine.answer("Green SUM Credit", 1).unwrap();
        assert!(snap().counter_total("aqks_engine_queries") > queries_before);
        assert!(flight.recorded() > recorded_before);
        let phases = snap();
        for phase in ["parse", "exec"] {
            let m = phases
                .find("aqks_engine_phase_ns", Some(phase))
                .unwrap_or_else(|| panic!("phase `{phase}` histogram missing"));
            match &m.value {
                aqks_obs::metrics::MetricValue::Histogram(h) => assert!(h.count > 0),
                other => panic!("expected histogram, got {other:?}"),
            }
        }

        // A governed trip files a tripped exemplar.
        let budget = Budget::unlimited().with_max_patterns(1);
        let g = engine.answer_governed("Green George COUNT Code", 3, &budget).unwrap();
        assert!(g.exhaustion.is_some());
        let tripped = flight.last_tripped().expect("tripped exemplar retained");
        assert!(tripped.tripped.is_some());

        // The traced surface is unaffected: its trace is not stolen by
        // the observation path, and untraced state stays clean.
        let (_, trace) = engine.answer_traced("Green SUM Credit", 1).unwrap();
        assert_eq!(trace.roots.len(), 1);
        assert!(!engine.recorder().is_enabled());
    }

    #[test]
    fn unlimited_budget_matches_ungoverned_answer() {
        let engine = Engine::new(university::normalized()).unwrap();
        let plain = engine.answer("Java SUM Price", 3).unwrap();
        let governed = engine.answer_governed("Java SUM Price", 3, &Budget::unlimited()).unwrap();
        assert!(governed.exhaustion.is_none());
        assert_eq!(governed.value.len(), plain.len());
        for (a, b) in plain.iter().zip(&governed.value) {
            assert_eq!(a.sql_text, b.sql_text);
            assert_eq!(a.result, b.result);
        }
    }

    #[test]
    fn pattern_cap_trips_enumeration_with_structured_report() {
        let engine = Engine::new(university::normalized()).unwrap();
        // "Green George COUNT Code" enumerates 2 interpretation combos.
        let budget = Budget::unlimited().with_max_patterns(1);
        let g = engine.answer_governed("Green George COUNT Code", 3, &budget).unwrap();
        let ex = g.exhaustion.expect("pattern budget should trip");
        assert_eq!(ex.kind, aqks_guard::BudgetKind::Patterns);
        assert_eq!(ex.site, "pattern.enumerate");
        assert_eq!(ex.partial, !g.value.is_empty());
    }

    #[test]
    fn interpretation_cap_keeps_completed_answers() {
        let engine = Engine::new(university::normalized()).unwrap();
        // Baseline: "Green SUM Credit" yields 2 interpretations.
        let all = engine.answer("Green SUM Credit", 3).unwrap();
        assert!(all.len() >= 2, "fixture needs >=2 interpretations");
        let budget = Budget::unlimited().with_max_interpretations(1);
        let g = engine.answer_governed("Green SUM Credit", 3, &budget).unwrap();
        assert_eq!(g.value.len(), 1, "one interpretation completed before the trip");
        let ex = g.exhaustion.expect("interpretation budget should trip");
        assert_eq!(ex.kind, aqks_guard::BudgetKind::Interpretations);
        assert_eq!(ex.site, "engine.translate");
        assert!(ex.partial);
        // The survivor is the top-ranked interpretation.
        assert_eq!(g.value[0].sql_text, all[0].sql_text);
    }

    #[test]
    fn expired_deadline_reports_exhaustion_not_error() {
        let engine = Engine::new(university::normalized()).unwrap();
        let budget = Budget::unlimited().with_timeout(std::time::Duration::ZERO);
        let g = engine.answer_governed("Green SUM Credit", 1, &budget).unwrap();
        let ex = g.exhaustion.expect("deadline should trip");
        assert_eq!(ex.kind, aqks_guard::BudgetKind::Deadline);
        assert!(g.value.is_empty());
        assert!(!ex.partial);
        // Exhaustion renders a one-line human-readable report.
        let msg = ex.to_string();
        assert!(msg.contains("deadline budget exhausted"), "{msg}");
    }

    #[test]
    fn row_cap_returns_partial_results_through_engine() {
        let engine = Engine::new(university::normalized()).unwrap();
        // Generous pattern allowance, tiny row allowance: generation
        // succeeds, execution trips inside an operator.
        let budget = Budget::unlimited().with_max_rows(1);
        let g = engine.answer_governed("Java SUM Price", 3, &budget).unwrap();
        let ex = g.exhaustion.expect("row budget should trip");
        assert_eq!(ex.kind, aqks_guard::BudgetKind::Rows);
        assert!(ex.site.starts_with("ops.") || ex.site.starts_with("index."), "{}", ex.site);
    }

    /// Governance is scoped to the call: after a governed call trips,
    /// plain `answer` on the same engine runs unrestricted.
    #[test]
    fn governor_does_not_leak_past_the_call() {
        let engine = Engine::new(university::normalized()).unwrap();
        let budget = Budget::unlimited().with_max_rows(1);
        let g = engine.answer_governed("Green SUM Credit", 1, &budget).unwrap();
        assert!(g.exhaustion.is_some());
        let plain = engine.answer("Green SUM Credit", 1).unwrap();
        assert_eq!(plain.len(), 1);
    }

    /// Budget trips show up in the pipeline trace as a `guard` span with
    /// per-site counters.
    #[test]
    fn governed_trip_is_visible_in_trace() {
        let engine = Engine::new(university::normalized()).unwrap();
        let budget = Budget::unlimited().with_max_patterns(1);
        let (g, trace) =
            engine.answer_traced_governed("Green George COUNT Code", 3, &budget).unwrap();
        assert!(g.exhaustion.is_some());
        let root = &trace.roots[0];
        assert_eq!(root.name, "answer");
        assert!(root.children.iter().any(|c| c.name == "guard"), "{trace:?}");
        assert_eq!(trace.counters.get("guard.trips"), Some(&1));
        assert_eq!(trace.counters.get("guard.trip.pattern.enumerate"), Some(&1));
    }

    /// The shield converts library panics into `CoreError::Internal`
    /// instead of unwinding through the caller.
    #[test]
    fn shield_converts_panics_to_internal_error() {
        let r = shielded::<()>(|| panic!("boom at {}", "site"));
        match r {
            Err(CoreError::Internal(m)) => assert!(m.contains("boom"), "{m}"),
            other => panic!("expected Internal, got {other:?}"),
        }
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn translate_failpoint_surfaces_typed_fault() {
        let engine = Engine::new(university::normalized()).unwrap();
        aqks_guard::failpoint::enable("translate");
        let r = engine.answer("Green SUM Credit", 1);
        aqks_guard::failpoint::disable("translate");
        assert!(matches!(r, Err(CoreError::Fault("translate"))), "{r:?}");
        // With the failpoint disarmed the same query succeeds.
        assert_eq!(engine.answer("Green SUM Credit", 1).unwrap().len(), 1);
    }
}
