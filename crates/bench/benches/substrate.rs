//! Micro-benches of the substrates the pipeline stands on: match-index
//! construction, ORM graph construction, FD-driven 3NF synthesis
//! (Algorithm 1), and the executor's join/aggregate core.

use aqks_eval::{workload, Scale};
use aqks_orm::OrmGraph;
use aqks_relational::{MatchIndex, NormalizedView};
use aqks_sqlgen::{
    execute, AggFunc, ColumnRef, Predicate, SelectItem, SelectStatement, TableExpr,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn substrate(c: &mut Criterion) {
    let tpch = workload::tpch_database(Scale::Small);
    let prime = workload::tpch_prime_database(Scale::Small);

    c.bench_function("match_index_build", |b| {
        b.iter(|| black_box(MatchIndex::build(&tpch)))
    });

    let schema = tpch.schema();
    c.bench_function("orm_graph_build", |b| b.iter(|| black_box(OrmGraph::build(&schema))));

    let prime_schema = prime.schema();
    c.bench_function("normalize_3nf_synthesis", |b| {
        b.iter(|| black_box(NormalizedView::build(&prime_schema)))
    });

    // Executor core: 3-way join + grouped aggregate (T6's plan).
    let stmt = SelectStatement {
        distinct: false,
        items: vec![
            SelectItem::Column { col: ColumnRef::new("S", "suppkey"), alias: None },
            SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: ColumnRef::new("P", "partkey"),
                distinct: false,
                alias: "numpartkey".into(),
            },
        ],
        from: vec![
            TableExpr::Relation { name: "Part".into(), alias: "P".into() },
            TableExpr::Relation { name: "Lineitem".into(), alias: "L".into() },
            TableExpr::Relation { name: "Supplier".into(), alias: "S".into() },
        ],
        predicates: vec![
            Predicate::JoinEq(ColumnRef::new("L", "partkey"), ColumnRef::new("P", "partkey")),
            Predicate::JoinEq(ColumnRef::new("L", "suppkey"), ColumnRef::new("S", "suppkey")),
        ],
        group_by: vec![ColumnRef::new("S", "suppkey")],
        ..Default::default()
    };
    c.bench_function("exec_join_group_aggregate", |b| {
        b.iter(|| black_box(execute(&stmt, &tpch).unwrap()))
    });

    // Value matching through the inverted index (phrase query).
    let index = MatchIndex::build(&tpch);
    c.bench_function("index_phrase_match", |b| {
        b.iter(|| black_box(index.match_values(&tpch, "royal olive").unwrap()))
    });
}

criterion_group!(benches, substrate);
criterion_main!(benches);
