//! Closed-loop load benchmark for the `aqks-server` query service,
//! serialized as `BENCH_serve.json`.
//!
//! An in-process server on a loopback port (university dataset, shared
//! `Arc<Engine>`) is driven by N closed-loop client threads issuing a
//! Zipf-weighted mix of known-good keyword queries through the shipped
//! retrying [`aqks_server::Client`]. Each thread records every
//! request's wall latency; the harness reports throughput, exact
//! p50/p99 over the pooled latencies, and the server's shed rate.
//!
//! At the bench's trivial load (a handful of clients against a default
//! queue) admission control must never fire: the harness *fails* on any
//! protocol-level error or nonzero shed count, which is exactly the CI
//! smoke gate. With the `failpoints` feature, `run_chaos_sweep` arms
//! each server-side failpoint process-globally, proves the fault comes
//! back as the right typed wire error while the connection and pool
//! survive, and re-answers a query after disarming.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aqks_core::Engine;
use aqks_datasets::university;
use aqks_server::{Client, ClientConfig, ClientError, Request, Server, ServerConfig, ServerStats};

/// The query mix: known-good keyword queries over the university
/// dataset, weighted by a Zipf-like popularity so a few queries
/// dominate (as real query logs do) while the tail still runs.
const MIX: [&str; 4] = [
    "Green SUM Credit",
    "Java SUM Price",
    "COUNT Lecturer GROUPBY Course",
    "Green George COUNT Code",
];

/// Configuration of one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Closed-loop client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Server worker threads.
    pub workers: usize,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig { clients: 4, requests_per_client: 50, workers: 4 }
    }
}

/// The measured outcome of one load run.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// The run's configuration.
    pub clients: usize,
    /// Requests each client issued.
    pub requests_per_client: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Successful answers observed by clients.
    pub ok: u64,
    /// Typed server errors observed by clients.
    pub server_errors: u64,
    /// Protocol/transport failures observed by clients — must be zero.
    pub protocol_errors: u64,
    /// Answers carrying a `degraded=` flag.
    pub degraded: u64,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Requests answered per second.
    pub throughput_rps: f64,
    /// Median request latency, microseconds (exact, pooled).
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds (exact, pooled).
    pub p99_us: f64,
    /// Shed requests / admitted+shed requests, from server counters.
    pub shed_rate: f64,
    /// The server's own cumulative statistics.
    pub stats: ServerStats,
}

/// Deterministic Zipf(s≈1) picker over [`MIX`]: weight of rank r is
/// 1/(r+1), sampled with a splitmix-style hash of (seed, step).
fn pick_query(seed: u64, step: u64) -> &'static str {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(step);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    let weights = [12u64, 6, 4, 3]; // ~ 1/1, 1/2, 1/3, 1/4
    let total: u64 = weights.iter().sum();
    let mut draw = x % total;
    for (i, w) in weights.iter().enumerate() {
        if draw < *w {
            return MIX[i];
        }
        draw -= w;
    }
    MIX[0]
}

/// Runs the closed-loop load and measures it.
pub fn run_serve_bench(cfg: &LoadConfig) -> ServeBench {
    let engine =
        Arc::new(Engine::new(university::normalized()).expect("university dataset builds"));
    let server = Server::start(
        engine,
        ServerConfig { workers: cfg.workers.max(1), ..ServerConfig::default() },
    )
    .expect("server binds a loopback port");
    let addr = server.addr();

    let ok = Arc::new(AtomicU64::new(0));
    let server_errors = Arc::new(AtomicU64::new(0));
    let protocol_errors = Arc::new(AtomicU64::new(0));
    let degraded = Arc::new(AtomicU64::new(0));

    let t0 = Instant::now();
    let handles: Vec<std::thread::JoinHandle<Vec<u64>>> = (0..cfg.clients.max(1))
        .map(|c| {
            let (ok, server_errors, protocol_errors, degraded) = (
                Arc::clone(&ok),
                Arc::clone(&server_errors),
                Arc::clone(&protocol_errors),
                Arc::clone(&degraded),
            );
            let requests = cfg.requests_per_client;
            std::thread::spawn(move || {
                let mut client = Client::connect(
                    addr,
                    ClientConfig { jitter_seed: 77 + c as u64, ..ClientConfig::default() },
                );
                let mut latencies = Vec::with_capacity(requests);
                for step in 0..requests {
                    let mut req = Request::new(pick_query(c as u64 + 1, step as u64));
                    req.k = 1;
                    let t = Instant::now();
                    match client.query(&req) {
                        Ok(answer) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            if answer.degraded.is_some() {
                                degraded.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(ClientError::Server(_)) => {
                            server_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            protocol_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    latencies.push(t.elapsed().as_micros() as u64);
                }
                client.quit();
                latencies
            })
        })
        .collect();

    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread panicked"));
    }
    let wall = t0.elapsed();
    let stats = server.stats();
    server.shutdown();

    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)] as f64
    };
    let total = latencies.len() as u64;
    let offered = stats.admitted + stats.shed();
    ServeBench {
        clients: cfg.clients.max(1),
        requests_per_client: cfg.requests_per_client,
        workers: cfg.workers.max(1),
        ok: ok.load(Ordering::Relaxed),
        server_errors: server_errors.load(Ordering::Relaxed),
        protocol_errors: protocol_errors.load(Ordering::Relaxed),
        degraded: degraded.load(Ordering::Relaxed),
        wall,
        throughput_rps: if wall.as_secs_f64() > 0.0 {
            total as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        shed_rate: if offered > 0 { stats.shed() as f64 / offered as f64 } else { 0.0 },
        stats,
    }
}

/// Serializes the bench as `BENCH_serve.json`.
pub fn render_json(bench: &ServeBench, chaos: Option<&ChaosSummary>) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"clients\": {},\n", bench.clients));
    s.push_str(&format!("  \"requests_per_client\": {},\n", bench.requests_per_client));
    s.push_str(&format!("  \"workers\": {},\n", bench.workers));
    s.push_str(&format!("  \"ok\": {},\n", bench.ok));
    s.push_str(&format!("  \"server_errors\": {},\n", bench.server_errors));
    s.push_str(&format!("  \"protocol_errors\": {},\n", bench.protocol_errors));
    s.push_str(&format!("  \"degraded\": {},\n", bench.degraded));
    s.push_str(&format!("  \"wall_ms\": {:.1},\n", bench.wall.as_secs_f64() * 1000.0));
    s.push_str(&format!("  \"throughput_rps\": {:.1},\n", bench.throughput_rps));
    s.push_str(&format!("  \"p50_us\": {:.1},\n", bench.p50_us));
    s.push_str(&format!("  \"p99_us\": {:.1},\n", bench.p99_us));
    s.push_str(&format!("  \"shed_rate\": {:.4},\n", bench.shed_rate));
    s.push_str(&format!("  \"shed_depth\": {},\n", bench.stats.shed_depth));
    s.push_str(&format!("  \"shed_age\": {},\n", bench.stats.shed_age));
    match chaos {
        Some(c) => {
            s.push_str("  \"chaos\": {\n");
            s.push_str(&format!("    \"sites\": {},\n", c.sites));
            s.push_str(&format!("    \"typed_errors\": {},\n", c.typed_errors));
            s.push_str(&format!("    \"recoveries\": {},\n", c.recoveries));
            s.push_str(&format!("    \"passed\": {}\n", c.passed()));
            s.push_str("  }\n");
        }
        None => s.push_str("  \"chaos\": null\n"),
    }
    s.push_str("}\n");
    s
}

/// The outcome of the server chaos sweep.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSummary {
    /// Failpoint sites exercised.
    pub sites: usize,
    /// Sites whose injected fault surfaced as the expected typed error.
    pub typed_errors: usize,
    /// Sites after which the same server answered correctly again.
    pub recoveries: usize,
}

impl ChaosSummary {
    /// Every site must fault typed AND recover.
    pub fn passed(&self) -> bool {
        self.typed_errors == self.sites && self.recoveries == self.sites
    }
}

/// Arms each server-side failpoint (and one engine-internal site)
/// process-globally against a live server, asserting that every
/// injected fault surfaces as a typed wire error and that the same
/// server answers correctly after disarming. Failpoints builds only.
#[cfg(feature = "failpoints")]
pub fn run_chaos_sweep() -> ChaosSummary {
    use aqks_guard::failpoint;
    use aqks_server::ErrorCode;

    let engine =
        Arc::new(Engine::new(university::normalized()).expect("university dataset builds"));
    let server =
        Server::start(engine, ServerConfig::default()).expect("server binds a loopback port");
    let cfg = ClientConfig { max_attempts: 1, ..ClientConfig::default() };
    let mut client = Client::connect(server.addr(), cfg);

    let sites: [(&str, ErrorCode); 5] = [
        ("server.enqueue", ErrorCode::Fault),
        ("server.execute", ErrorCode::Fault),
        ("server.respond", ErrorCode::Fault),
        ("index.lookup", ErrorCode::Fault),
        ("server.worker.panic", ErrorCode::Internal),
    ];
    let mut summary = ChaosSummary { sites: sites.len(), typed_errors: 0, recoveries: 0 };
    for (site, expected) in sites {
        failpoint::enable_global(site);
        match client.query(&Request::new("Green SUM Credit")) {
            Err(ClientError::Server(w)) if w.code == expected => {
                eprintln!("chaos {site}: typed `{}` error ({})", w.code.name(), w.message);
                summary.typed_errors += 1;
            }
            other => eprintln!("chaos {site}: UNEXPECTED outcome {other:?}"),
        }
        failpoint::disable_global(site);
        match client.query(&Request::new("Green SUM Credit")) {
            Ok(answer)
                if answer.interpretations.len() == 1
                    && !answer.interpretations[0].rows.is_empty() =>
            {
                summary.recoveries += 1;
            }
            other => eprintln!("chaos {site}: NO RECOVERY ({other:?})"),
        }
    }
    failpoint::clear_global();

    // Post-sweep, a fresh connection must still answer correctly.
    let mut fresh =
        Client::connect(server.addr(), ClientConfig { max_attempts: 1, ..ClientConfig::default() });
    match fresh.query(&Request::new("Java SUM Price")) {
        Ok(a) if !a.interpretations.is_empty() => {}
        other => {
            eprintln!("chaos post-sweep: server no longer answers ({other:?})");
            summary.recoveries = 0; // force failure
        }
    }
    server.shutdown();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_mix_is_skewed_and_total() {
        let mut counts = [0usize; 4];
        for step in 0..4000 {
            let q = pick_query(3, step);
            let idx = MIX.iter().position(|m| *m == q).expect("query from the mix");
            counts[idx] += 1;
        }
        // Head dominates the tail, and every query appears.
        assert!(counts[0] > counts[3], "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn trivial_load_runs_clean() {
        let cfg = LoadConfig { clients: 2, requests_per_client: 5, workers: 2 };
        let bench = run_serve_bench(&cfg);
        assert_eq!(bench.ok, 10);
        assert_eq!(bench.protocol_errors, 0);
        assert_eq!(bench.server_errors, 0);
        assert_eq!(bench.stats.shed(), 0);
        assert!(bench.p99_us >= bench.p50_us);
        assert!(bench.throughput_rps > 0.0);
        let json = render_json(&bench, None);
        assert!(json.contains("\"shed_rate\": 0.0000"), "{json}");
        assert!(json.contains("\"chaos\": null"), "{json}");
    }
}
