//! Figure 11(b): SQL-generation time on ACMDL, queries A1–A8, the
//! semantic engine vs SQAK.

use aqks_bench::acmdl_engines;
use aqks_eval::acmdl_queries;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn fig11_acmdl(c: &mut Criterion) {
    let (engine, sqak, _db) = acmdl_engines();
    let mut group = c.benchmark_group("fig11_acmdl");
    for q in acmdl_queries() {
        group.bench_with_input(BenchmarkId::new("ours", q.id), &q, |b, q| {
            b.iter(|| black_box(engine.generate(q.text, 1)))
        });
        group.bench_with_input(BenchmarkId::new("sqak", q.id), &q, |b, q| {
            b.iter(|| black_box(sqak.generate(q.text)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig11_acmdl);
criterion_main!(benches);
