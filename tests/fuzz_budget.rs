//! Fixed-seed fuzz of the governed engine boundary: arbitrary keyword
//! strings — valid, malformed, adversarial — pushed through
//! [`Engine::answer_governed`] under a tight budget must always come
//! back as either a governed result or a *typed* error. In particular
//! `CoreError::Internal` (the panic shield's variant) must never appear:
//! that would mean some input panicked the pipeline.
//!
//! The generator is SplitMix64 with a fixed seed (the same style as
//! `tests/properties.rs`), so every run exercises the identical case
//! set and a failure reproduces deterministically.

use std::time::Duration;

use aqks::core::{Budget, CoreError, Engine};
use aqks::datasets::university;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Tokens mixing real university-dataset vocabulary, operators (legal
/// and dangling), unmatched junk, quotes, and pathological strings.
const TOKENS: [&str; 24] = [
    "Green",
    "George",
    "Java",
    "Credit",
    "Price",
    "Course",
    "Student",
    "Lecturer",
    "SUM",
    "COUNT",
    "AVG",
    "MIN",
    "MAX",
    "GROUPBY",
    "zebra",
    "\"royal",
    "olive\"",
    "\"\"",
    "&!@#$%",
    "0",
    "-1",
    "héllo",
    "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
    "GROUPBY GROUPBY",
];

fn arb_query(rng: &mut Rng) -> String {
    let n = rng.below(7); // 0..=6 tokens; empty queries included
    (0..n).map(|_| TOKENS[rng.below(TOKENS.len())]).collect::<Vec<_>>().join(" ")
}

#[test]
fn governed_answer_never_panics_on_arbitrary_input() {
    let engine = Engine::new(university::normalized()).unwrap();
    let budget = Budget::unlimited()
        .with_timeout(Duration::from_millis(50))
        .with_max_rows(10_000)
        .with_max_patterns(100)
        .with_max_interpretations(5);
    let mut rng = Rng(0xA7_5EED);
    let mut answered = 0;
    let mut exhausted = 0;
    let mut errored = 0;
    for case in 0..400 {
        let q = arb_query(&mut rng);
        match engine.answer_governed(&q, 3, &budget) {
            Ok(g) => {
                if g.exhaustion.is_some() {
                    exhausted += 1;
                } else {
                    answered += 1;
                }
                // Partiality bookkeeping stays coherent on junk input.
                if let Some(ex) = g.exhaustion {
                    assert_eq!(ex.partial, !g.value.is_empty(), "case {case} `{q}`: {ex:?}");
                }
            }
            Err(CoreError::Internal(m)) => {
                panic!("case {case} `{q}`: pipeline panicked under the shield: {m}")
            }
            Err(CoreError::Budget(t)) => {
                panic!("case {case} `{q}`: raw Budget error escaped the governed path: {t}")
            }
            Err(_) => errored += 1, // typed Parse/NoMatch/BadOperand/NoPattern…
        }
    }
    // The token mix must actually exercise all three regimes.
    assert!(answered > 0, "some fuzz cases answered ({answered}/{errored}/{exhausted})");
    assert!(errored > 0, "some fuzz cases errored ({answered}/{errored}/{exhausted})");
}

/// The same sweep under a zero deadline: every interpretable query
/// exhausts instead of erroring, and nothing panics.
#[test]
fn zero_deadline_fuzz_always_returns_structured_exhaustion() {
    let engine = Engine::new(university::normalized()).unwrap();
    let budget = Budget::unlimited().with_timeout(Duration::ZERO);
    let mut rng = Rng(0xBEEF);
    for case in 0..200 {
        let q = arb_query(&mut rng);
        match engine.answer_governed(&q, 2, &budget) {
            Ok(g) => {
                if let Some(ex) = g.exhaustion {
                    assert_eq!(ex.kind, aqks::guard::BudgetKind::Deadline, "case {case} `{q}`");
                }
            }
            Err(CoreError::Internal(m)) => panic!("case {case} `{q}`: panic under shield: {m}"),
            Err(_) => {} // parse/match errors can fire before any checkpoint
        }
    }
}
