//! Equivalence-analysis benchmark: measures how much duplicate work the
//! semantic canonicalizer (`aqks-equiv`) removes from the bundled
//! workloads, serialized as `BENCH_equiv.json`.
//!
//! For every workload query the engine's top interpretations are planned
//! twice — with and without predicate pushdown — mirroring a plan cache
//! fed from mixed sources. The structural fingerprint tells the variants
//! apart; the canonical fingerprint identifies them. The bench reports,
//! per workload, the class partition (plans vs. classes vs. duplicates),
//! the number of shared subtrees in the deduplicated execution set, and
//! the executed-rows reduction of running one canonical representative
//! per class (with common subtrees materialized once) against running
//! every plan individually. Every class member is also executed and
//! compared against its representative's shared-run table, so the bench
//! doubles as a differential-correctness sweep.

use aqks_core::Engine;
use aqks_datasets::university;
use aqks_equiv::{analyze, run_shared, shared_set};
use aqks_relational::Database;
use aqks_sqlgen::{plan, plan_with_options, run_plan, PlanNode, PlanOptions};

use crate::plans::university_queries;
use crate::workload::{
    acmdl_database, acmdl_prime_database, acmdl_queries, tpch_database, tpch_prime_database,
    tpch_queries, EvalQuery, Scale,
};

/// Equivalence-analysis results for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadEquivBench {
    /// Workload name (`university`, `tpch`, `acmdl`, `tpch-prime`,
    /// `acmdl-prime`).
    pub workload: &'static str,
    /// Interpretations planned (before the pushdown-variant doubling).
    pub interpretations: usize,
    /// Plans analyzed (interpretations × pushdown on/off).
    pub plans: usize,
    /// Equivalence classes the plans partition into.
    pub classes: usize,
    /// Classes with two or more members.
    pub nontrivial_classes: usize,
    /// Plans beyond the first in their class — work dedup eliminates.
    pub duplicates: usize,
    /// Subtrees shared by two or more class representatives.
    pub shared_subtrees: usize,
    /// Rows flowed executing every plan individually.
    pub baseline_rows: u64,
    /// Rows flowed executing one representative per class with shared
    /// subtrees materialized once.
    pub shared_rows: u64,
    /// Failures: planning errors, canonicalization rejections, or
    /// differential mismatches between a member and its representative.
    pub errors: Vec<String>,
}

impl WorkloadEquivBench {
    /// Rows saved by deduplicated, shared execution.
    pub fn rows_saved(&self) -> u64 {
        self.baseline_rows.saturating_sub(self.shared_rows)
    }
}

fn bench_workload(
    db: &Database,
    queries: &[EvalQuery],
    workload: &'static str,
    k: usize,
) -> WorkloadEquivBench {
    let mut out = WorkloadEquivBench {
        workload,
        interpretations: 0,
        plans: 0,
        classes: 0,
        nontrivial_classes: 0,
        duplicates: 0,
        shared_subtrees: 0,
        baseline_rows: 0,
        shared_rows: 0,
        errors: Vec::new(),
    };
    let engine = match Engine::new(db.clone()) {
        Ok(e) => e,
        Err(e) => {
            out.errors.push(format!("engine: {e}"));
            return out;
        }
    };
    let mut plans_vec: Vec<PlanNode> = Vec::new();
    for q in queries {
        let generated = match engine.generate(q.text, k) {
            Ok(g) => g,
            Err(e) => {
                out.errors.push(format!("{}: generate: {e}", q.id));
                continue;
            }
        };
        for g in generated {
            out.interpretations += 1;
            match plan(&g.sql, db) {
                Ok(p) => plans_vec.push(p),
                Err(e) => out.errors.push(format!("{}: plan: {e}", q.id)),
            }
            match plan_with_options(&g.sql, db, &PlanOptions { pushdown: false }) {
                Ok(p) => plans_vec.push(p),
                Err(e) => out.errors.push(format!("{}: plan (no pushdown): {e}", q.id)),
            }
        }
    }
    out.plans = plans_vec.len();
    let analysis = match analyze(&plans_vec, db) {
        Ok(a) => a,
        Err(e) => {
            out.errors.push(format!("canonicalization rejected a planner plan: {e}"));
            return out;
        }
    };
    out.classes = analysis.classes.len();
    out.nontrivial_classes = analysis.nontrivial_classes();
    out.duplicates = analysis.duplicates();
    let set = shared_set(&analysis);
    out.shared_subtrees = set.shares.len();
    let run = match run_shared(&set, db) {
        Ok(r) => r,
        Err(e) => {
            out.errors.push(format!("shared execution: {e}"));
            return out;
        }
    };
    out.shared_rows =
        run.plan_stats.iter().chain(run.share_stats.iter()).map(|s| s.rows_flowed()).sum();
    // Baseline: every plan individually; differential check against the
    // shared run of the member's class representative.
    for (ci, class) in analysis.classes.iter().enumerate() {
        for &m in &class.members {
            match run_plan(&plans_vec[m], db) {
                Ok((table, stats)) => {
                    out.baseline_rows += stats.rows_flowed();
                    if table.sorted().rows != run.tables[ci].clone().sorted().rows {
                        out.errors.push(format!(
                            "class {ci} member {m}: shared run diverged from direct execution"
                        ));
                    }
                }
                Err(e) => out.errors.push(format!("plan {m}: execute: {e}")),
            }
        }
    }
    out
}

/// Runs the equivalence benchmark over all bundled workloads with the
/// top-`k` interpretations per query.
pub fn run_equiv_bench(scale: Scale, k: usize) -> Vec<WorkloadEquivBench> {
    vec![
        bench_workload(&university::normalized(), &university_queries(), "university", k),
        bench_workload(&tpch_database(scale), &tpch_queries(), "tpch", k),
        bench_workload(&acmdl_database(scale), &acmdl_queries(), "acmdl", k),
        bench_workload(&tpch_prime_database(scale), &tpch_queries(), "tpch-prime", k),
        bench_workload(&acmdl_prime_database(scale), &acmdl_queries(), "acmdl-prime", k),
    ]
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes benchmark rows as the `BENCH_equiv.json` document.
pub fn render_json(rows: &[WorkloadEquivBench], scale: Scale, k: usize) -> String {
    let scale_name = match scale {
        Scale::Small => "small",
        Scale::Paper => "paper-scale",
    };
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"scale\": \"{scale_name}\",\n  \"k\": {k},\n"));
    s.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"workload\": \"{}\",\n", r.workload));
        s.push_str(&format!("      \"interpretations\": {},\n", r.interpretations));
        s.push_str(&format!("      \"plans\": {},\n", r.plans));
        s.push_str(&format!("      \"classes\": {},\n", r.classes));
        s.push_str(&format!("      \"nontrivial_classes\": {},\n", r.nontrivial_classes));
        s.push_str(&format!("      \"duplicates\": {},\n", r.duplicates));
        s.push_str(&format!("      \"shared_subtrees\": {},\n", r.shared_subtrees));
        s.push_str(&format!("      \"baseline_rows\": {},\n", r.baseline_rows));
        s.push_str(&format!("      \"shared_rows\": {},\n", r.shared_rows));
        s.push_str(&format!("      \"rows_saved\": {},\n", r.rows_saved()));
        let errors: Vec<String> =
            r.errors.iter().map(|e| format!("\"{}\"", json_escape(e))).collect();
        s.push_str(&format!("      \"errors\": [{}]\n", errors.join(", ")));
        s.push_str(&format!("    }}{}\n", if i + 1 < rows.len() { "," } else { "" }));
    }
    s.push_str("  ]\n}\n");
    s
}
