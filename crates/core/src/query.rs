//! The extended keyword query language of Definition 1.
//!
//! A query is a sequence of terms; each term is either a *basic term*
//! (matching a relation name, attribute name, or tuple value) or an
//! *operator* (one of the five aggregate functions or `GROUPBY`).
//! Multi-word values are written as quoted phrases
//! (`COUNT order "royal olive"`).
//!
//! Structural constraints checked at parse time:
//!
//! 1. the last term must be basic;
//! 2. an aggregate operator must be followed by a basic term or (the
//!    nested-aggregate relaxation of Section 3.2) another aggregate;
//! 3. `GROUPBY` must be followed by a basic term.
//!
//! The match-level constraints (an aggregate's operand must match an
//! attribute name, `COUNT`/`GROUPBY` operands a relation or attribute
//! name) are enforced during term matching.

use aqks_sqlgen::AggFunc;

use crate::error::CoreError;

/// An operator term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operator {
    /// One of `COUNT`, `SUM`, `AVG`, `MIN`, `MAX`.
    Agg(AggFunc),
    /// `GROUPBY`.
    GroupBy,
}

impl Operator {
    /// Parses a token as an operator (case-insensitive).
    pub fn parse(token: &str) -> Option<Operator> {
        if token.eq_ignore_ascii_case("GROUPBY") {
            return Some(Operator::GroupBy);
        }
        AggFunc::parse(token).map(Operator::Agg)
    }
}

/// One term of a keyword query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A basic term (the matched text; quoted phrases keep their spaces).
    Basic(String),
    /// An operator.
    Op(Operator),
}

impl Term {
    /// The basic term's text, if this is one.
    pub fn as_basic(&self) -> Option<&str> {
        match self {
            Term::Basic(s) => Some(s),
            Term::Op(_) => None,
        }
    }
}

/// A parsed keyword query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordQuery {
    /// Terms in query order.
    pub terms: Vec<Term>,
    /// The original query text.
    pub raw: String,
}

impl KeywordQuery {
    /// Tokenizes and validates a query string.
    pub fn parse(input: &str) -> Result<KeywordQuery, CoreError> {
        let tokens = tokenize(input)?;
        if tokens.is_empty() {
            return Err(CoreError::Parse("empty query".into()));
        }
        let terms: Vec<Term> = tokens
            .into_iter()
            .map(|(text, quoted)| {
                if !quoted {
                    if let Some(op) = Operator::parse(&text) {
                        return Term::Op(op);
                    }
                }
                Term::Basic(text)
            })
            .collect();

        // Constraint 1: last term is basic.
        if matches!(terms.last(), Some(Term::Op(_))) {
            return Err(CoreError::Parse(
                "the last term cannot be an aggregate function or GROUPBY".into(),
            ));
        }
        // Constraints 2-3 (structural part).
        for (i, term) in terms.iter().enumerate() {
            match term {
                Term::Op(Operator::GroupBy) => {
                    if !matches!(terms.get(i + 1), Some(Term::Basic(_))) {
                        return Err(CoreError::Parse(
                            "GROUPBY must be followed by a relation or attribute name".into(),
                        ));
                    }
                }
                Term::Op(Operator::Agg(_)) => {
                    if terms.get(i + 1).is_none() {
                        return Err(CoreError::Parse(
                            "an aggregate function needs an operand".into(),
                        ));
                    }
                }
                Term::Basic(_) => {}
            }
        }
        Ok(KeywordQuery { terms, raw: input.to_string() })
    }

    /// Indices and texts of the basic terms, in order.
    pub fn basic_terms(&self) -> Vec<(usize, &str)> {
        self.terms.iter().enumerate().filter_map(|(i, t)| t.as_basic().map(|s| (i, s))).collect()
    }

    /// True if any term is an operator (an *aggregate query*).
    pub fn is_aggregate_query(&self) -> bool {
        self.terms.iter().any(|t| matches!(t, Term::Op(_)))
    }

    /// True if term `i` is the operand of an operator (the preceding term
    /// is an operator).
    pub fn is_operand(&self, i: usize) -> bool {
        i > 0 && matches!(self.terms[i - 1], Term::Op(_))
    }
}

/// Splits on whitespace, honouring double-quoted phrases. Returns
/// (text, was_quoted) pairs.
fn tokenize(input: &str) -> Result<Vec<(String, bool)>, CoreError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut phrase = String::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some(ch) => phrase.push(ch),
                    None => return Err(CoreError::Parse("unterminated quote".into())),
                }
            }
            if phrase.trim().is_empty() {
                return Err(CoreError::Parse("empty quoted phrase".into()));
            }
            out.push((phrase, true));
        } else {
            let mut word = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() || ch == '"' {
                    break;
                }
                word.push(ch);
                chars.next();
            }
            out.push((word, false));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_operators_and_phrases() {
        let q = KeywordQuery::parse(r#"COUNT order "royal olive""#).unwrap();
        assert_eq!(q.terms.len(), 3);
        assert_eq!(q.terms[0], Term::Op(Operator::Agg(AggFunc::Count)));
        assert_eq!(q.terms[1], Term::Basic("order".into()));
        assert_eq!(q.terms[2], Term::Basic("royal olive".into()));
        assert!(q.is_aggregate_query());
        assert!(q.is_operand(1));
        assert!(!q.is_operand(2));
    }

    #[test]
    fn quoted_operator_word_is_basic() {
        let q = KeywordQuery::parse(r#""count" Student"#).unwrap();
        assert_eq!(q.terms[0], Term::Basic("count".into()));
        assert!(!q.is_aggregate_query());
    }

    #[test]
    fn rejects_trailing_operator() {
        assert!(KeywordQuery::parse("Green SUM").is_err());
        assert!(KeywordQuery::parse("Student GROUPBY").is_err());
    }

    #[test]
    fn rejects_groupby_followed_by_operator() {
        assert!(KeywordQuery::parse("COUNT Lecturer GROUPBY COUNT Course").is_err());
    }

    #[test]
    fn nested_aggregates_allowed() {
        let q = KeywordQuery::parse("AVG COUNT Lecturer GROUPBY Course").unwrap();
        assert_eq!(q.terms.len(), 5);
        assert_eq!(q.basic_terms().len(), 2);
    }

    #[test]
    fn rejects_empty_and_unterminated() {
        assert!(KeywordQuery::parse("   ").is_err());
        assert!(KeywordQuery::parse(r#"Green "unterminated"#).is_err());
        assert!(KeywordQuery::parse(r#""""#).is_err());
    }

    #[test]
    fn groupby_case_insensitive() {
        let q = KeywordQuery::parse("count Student groupby Course").unwrap();
        assert_eq!(q.terms[0], Term::Op(Operator::Agg(AggFunc::Count)));
        assert_eq!(q.terms[2], Term::Op(Operator::GroupBy));
    }
}
