//! Property-based tests on the substrates' invariants: FD theory
//! (closures, candidate keys, 3NF synthesis), the value type's total
//! order, executor correctness against a naive reference evaluator, and
//! engine determinism.

use std::collections::BTreeSet;

use aqks::relational::{AttrType, Database, Fd, FdSet, RelationSchema, Value};
use aqks::sqlgen::{
    execute, AggFunc, ColumnRef, Predicate, SelectItem, SelectStatement, TableExpr,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// FD theory
// ---------------------------------------------------------------------

const UNIVERSE: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

fn arb_attrs() -> impl Strategy<Value = BTreeSet<String>> {
    proptest::collection::btree_set(0..UNIVERSE.len(), 1..=3)
        .prop_map(|idx| idx.into_iter().map(|i| UNIVERSE[i].to_string()).collect())
}

fn arb_fdset() -> impl Strategy<Value = FdSet> {
    proptest::collection::vec((arb_attrs(), arb_attrs()), 0..6).prop_map(|pairs| {
        let mut f = FdSet::new(UNIVERSE.iter().map(|s| s.to_string()));
        for (lhs, rhs) in pairs {
            f.add(Fd::new(lhs, rhs));
        }
        f
    })
}

proptest! {
    /// X ⊆ X+ and closure is idempotent and monotone.
    #[test]
    fn closure_laws(f in arb_fdset(), x in arb_attrs(), extra in arb_attrs()) {
        let cx = f.closure(x.clone());
        prop_assert!(x.is_subset(&cx));
        prop_assert_eq!(f.closure(cx.clone()), cx.clone());
        let mut bigger = x.clone();
        bigger.extend(extra);
        prop_assert!(cx.is_subset(&f.closure(bigger)));
    }

    /// Candidate keys are superkeys, and no key contains another.
    #[test]
    fn candidate_keys_are_minimal_superkeys(f in arb_fdset()) {
        let keys = f.candidate_keys();
        prop_assert!(!keys.is_empty());
        for k in &keys {
            prop_assert!(f.is_superkey(k), "{k:?}");
        }
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.is_subset(b), "{a:?} ⊆ {b:?}");
                }
            }
        }
    }

    /// The minimal cover implies exactly the same dependencies (checked
    /// on the declared FDs in both directions).
    #[test]
    fn minimal_cover_is_equivalent(f in arb_fdset()) {
        let mut g = FdSet::new(UNIVERSE.iter().map(|s| s.to_string()));
        g.fds = f.minimal_cover();
        for fd in &f.fds {
            prop_assert!(g.implies(&fd.lhs, &fd.rhs), "cover lost {fd}");
        }
        for fd in &g.fds {
            prop_assert!(f.implies(&fd.lhs, &fd.rhs), "cover invented {fd}");
        }
    }

    /// 3NF synthesis covers every attribute, keys its relations correctly,
    /// and produces only 3NF relations.
    #[test]
    fn synthesis_is_sound(f in arb_fdset()) {
        let rels = f.synthesize_3nf();
        let covered: BTreeSet<String> = rels.iter().flat_map(|(h, _)| h.clone()).collect();
        prop_assert_eq!(covered, f.attrs.clone());
        // Some relation contains a candidate key of the original.
        let keys = f.candidate_keys();
        prop_assert!(rels.iter().any(|(h, _)| keys.iter().any(|k| k.is_subset(h))));
        for (heading, key) in &rels {
            prop_assert!(key.is_subset(heading));
            // The key determines its heading under the original FDs.
            let closure = f.closure(key.clone());
            prop_assert!(heading.is_subset(&closure), "{key:?} -> {heading:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Value ordering
// ---------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1000i32..1000, 1u32..100).prop_map(|(n, d)| Value::Float(n as f64 / d as f64)),
        "[a-z]{0,6}".prop_map(Value::str),
        (1990i32..2030, 1u8..=12, 1u8..=28)
            .prop_map(|(y, m, d)| Value::Date(aqks::relational::Date::new(y, m, d))),
    ]
}

proptest! {
    /// The order is total and consistent: antisymmetric and transitive,
    /// and equality implies equal hashes.
    #[test]
    fn value_order_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        if a == b {
            use std::hash::{Hash, Hasher};
            let h = |v: &Value| {
                let mut s = std::collections::hash_map::DefaultHasher::new();
                v.hash(&mut s);
                s.finish()
            };
            prop_assert_eq!(h(&a), h(&b));
        }
    }
}

// ---------------------------------------------------------------------
// Executor vs naive reference
// ---------------------------------------------------------------------

/// Random two-table instances with small key domains so joins, filters,
/// and groupings all hit interesting cases (dangling keys, duplicates,
/// NULLs).
fn arb_join_db() -> impl Strategy<Value = Database> {
    let r_rows = proptest::collection::vec((0i64..6, proptest::option::of(0i64..5)), 0..24);
    let s_rows = proptest::collection::vec((0i64..6, 0i64..9), 0..24);
    (r_rows, s_rows).prop_map(|(r_rows, s_rows)| {
        let mut db = Database::new("prop");
        let mut r = RelationSchema::new("R");
        r.add_attr("k", AttrType::Int).add_attr("v", AttrType::Int);
        db.add_relation(r).unwrap();
        let mut s = RelationSchema::new("S");
        s.add_attr("k", AttrType::Int).add_attr("w", AttrType::Int);
        db.add_relation(s).unwrap();
        for (k, v) in r_rows {
            db.insert("R", vec![Value::Int(k), v.map(Value::Int).unwrap_or(Value::Null)])
                .unwrap();
        }
        for (k, w) in s_rows {
            db.insert("S", vec![Value::Int(k), Value::Int(w)]).unwrap();
        }
        db
    })
}

/// Naive reference: nested-loop join, then grouped aggregation.
fn reference_join_count(db: &Database) -> Vec<(Value, i64, Option<i64>)> {
    let r = db.table("R").unwrap();
    let s = db.table("S").unwrap();
    let mut groups: std::collections::BTreeMap<Value, (i64, Option<i64>)> = Default::default();
    for rr in r.rows() {
        for sr in s.rows() {
            if rr[0].is_null() || rr[0] != sr[0] {
                continue;
            }
            let e = groups.entry(rr[0].clone()).or_insert((0, None));
            e.0 += 1;
            if let Value::Int(v) = rr[1] {
                e.1 = Some(e.1.unwrap_or(0) + v);
            }
        }
    }
    groups.into_iter().map(|(k, (c, sum))| (k, c, sum)).collect()
}

proptest! {
    /// Hash-join + grouped COUNT/SUM equals the nested-loop reference.
    #[test]
    fn executor_matches_reference(db in arb_join_db()) {
        let stmt = SelectStatement {
            distinct: false,
            items: vec![
                SelectItem::Column { col: ColumnRef::new("R", "k"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: ColumnRef::new("S", "w"),
                    distinct: false,
                    alias: "n".into(),
                },
                SelectItem::Aggregate {
                    func: AggFunc::Sum,
                    arg: ColumnRef::new("R", "v"),
                    distinct: false,
                    alias: "s".into(),
                },
            ],
            from: vec![
                TableExpr::Relation { name: "R".into(), alias: "R".into() },
                TableExpr::Relation { name: "S".into(), alias: "S".into() },
            ],
            predicates: vec![Predicate::JoinEq(
                ColumnRef::new("R", "k"),
                ColumnRef::new("S", "k"),
            )],
            group_by: vec![ColumnRef::new("R", "k")],
            ..Default::default()
        };
        let got = execute(&stmt, &db).unwrap().sorted();
        let expected = reference_join_count(&db);
        prop_assert_eq!(got.len(), expected.len());
        for (row, (k, c, sum)) in got.rows.iter().zip(&expected) {
            prop_assert_eq!(&row[0], k);
            prop_assert_eq!(&row[1], &Value::Int(*c));
            match sum {
                Some(s) => prop_assert_eq!(&row[2], &Value::Int(*s)),
                None => prop_assert_eq!(&row[2], &Value::Null),
            }
        }
    }

    /// SELECT DISTINCT is idempotent and never larger than the input.
    #[test]
    fn distinct_is_idempotent(db in arb_join_db()) {
        let proj = |distinct| SelectStatement {
            distinct,
            items: vec![SelectItem::Column { col: ColumnRef::new("R", "k"), alias: None }],
            from: vec![TableExpr::Relation { name: "R".into(), alias: "R".into() }],
            predicates: vec![],
            group_by: vec![],
            ..Default::default()
        };
        let all = execute(&proj(false), &db).unwrap();
        let distinct = execute(&proj(true), &db).unwrap();
        prop_assert!(distinct.len() <= all.len());
        let mut set: Vec<_> = all.rows.clone();
        set.sort();
        set.dedup();
        prop_assert_eq!(distinct.sorted().rows, set);
    }
}

// ---------------------------------------------------------------------
// Engine determinism
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// The engine is deterministic: identical queries yield identical SQL
    /// and answers across engine instances.
    #[test]
    fn engine_is_deterministic(seed in 0u8..4) {
        let q = ["Green SUM Credit", "COUNT Lecturer GROUPBY Course",
                 "Green George COUNT Code", "Java SUM Price"][seed as usize];
        let db = aqks::datasets::university::normalized();
        let e1 = aqks::core::Engine::new(db.clone()).unwrap();
        let e2 = aqks::core::Engine::new(db).unwrap();
        let a1 = e1.answer(q, 3).unwrap();
        let a2 = e2.answer(q, 3).unwrap();
        prop_assert_eq!(a1.len(), a2.len());
        for (x, y) in a1.iter().zip(&a2) {
            prop_assert_eq!(&x.sql_text, &y.sql_text);
            prop_assert_eq!(&x.result.rows, &y.result.rows);
        }
    }
}

// ---------------------------------------------------------------------
// Whole-pipeline fuzz
// ---------------------------------------------------------------------

/// Tokens assembled into random keyword queries: operators, metadata,
/// values, and junk.
const FUZZ_TOKENS: &[&str] = &[
    "COUNT", "SUM", "AVG", "MIN", "MAX", "GROUPBY", "Student", "Course", "Enrol", "Teach",
    "Lecturer", "Textbook", "Department", "Faculty", "Sname", "Credit", "Price", "Age", "Code",
    "Green", "George", "Java", "Database", "Engineering", "Steven", "zebra", "\"royal olive\"",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Any token soup either errors typed or yields interpretations whose
    /// SQL executes; nothing panics.
    #[test]
    fn pipeline_never_panics(idx in proptest::collection::vec(0..FUZZ_TOKENS.len(), 1..6)) {
        let query: String =
            idx.iter().map(|&i| FUZZ_TOKENS[i]).collect::<Vec<_>>().join(" ");
        let db = aqks::datasets::university::normalized();
        let engine = aqks::core::Engine::new(db.clone()).unwrap();
        match engine.answer(&query, 3) {
            Ok(answers) => {
                for a in &answers {
                    prop_assert!(!a.result.columns.is_empty(), "{query}: {}", a.sql_text);
                }
            }
            Err(_typed) => {}
        }
        // SQAK must be equally panic-free.
        let sqak = aqks::sqak::Sqak::new(db);
        let _ = sqak.answer(&query);
    }
}
