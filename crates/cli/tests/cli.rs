//! End-to-end tests of the `aqks` binary: spawn the compiled executable
//! and assert on its stdout/stderr/exit codes, exactly as a user runs it.

use std::process::{Command, Stdio};

fn aqks() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aqks"))
}

#[test]
fn one_shot_query_prints_sql_and_answers() {
    let out =
        aqks().args(["--dataset", "university", "Green SUM Credit"]).output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("GROUP BY S.Sid"), "{stdout}");
    assert!(stdout.contains("| s2  | 5.0"), "{stdout}");
    assert!(stdout.contains("| s3  | 8.0"), "{stdout}");
}

#[test]
fn sqak_flag_adds_baseline_section() {
    let out =
        aqks().args(["--dataset", "university", "--sqak", "Green SUM Credit"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SQAK baseline"), "{stdout}");
    assert!(stdout.contains("13.0"), "SQAK's merged answer shown: {stdout}");
}

#[test]
fn unknown_dataset_exits_2() {
    let out = aqks().args(["--dataset", "mars", "x"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}

#[test]
fn repl_commands_work_over_stdin() {
    let mut child = aqks()
        .args(["--dataset", "university"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    use std::io::Write;
    child.stdin.as_mut().unwrap().write_all(b"\\schema\n\\graph\nLecturer George\n\\q\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Student(Sid, Sname, Age)"), "{stdout}");
    assert!(stdout.contains("[relationship] Teach"), "{stdout}");
    assert!(stdout.contains("Lname contains 'George'"), "{stdout}");
}

#[test]
fn export_then_import_roundtrip() {
    let dir = std::env::temp_dir().join(format!("aqks-cli-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = aqks()
        .args(["--dataset", "fig8", "--export", dir.to_str().unwrap(), "Green SUM Credit"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let first = String::from_utf8_lossy(&out.stdout).to_string();

    let out =
        aqks().args(["--dataset", dir.to_str().unwrap(), "Green SUM Credit"]).output().unwrap();
    assert!(out.status.success());
    let second = String::from_utf8_lossy(&out.stdout);
    // Same answer table either way (the SQL may name the directory-backed
    // relations identically since schema.txt round-trips names).
    for needle in ["| s2  | 5.0", "| s3  | 8.0"] {
        assert!(first.contains(needle), "{first}");
        assert!(second.contains(needle), "{second}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_prints_physical_plan() {
    let out = aqks()
        .args(["explain", "--dataset", "university", "COUNT Lecturer GROUPBY Course"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("HashAggregate"), "{stdout}");
    assert!(stdout.contains("Scan"), "{stdout}");
    assert!(stdout.contains("Project"), "{stdout}");
    // Plain explain shows estimates, not measurements.
    assert!(!stdout.contains("time="), "{stdout}");
}

#[test]
fn explain_analyze_adds_per_operator_metrics() {
    let out = aqks()
        .args(["explain", "--analyze", "--dataset", "tpch", "COUNT order \"royal olive\""])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Scan"), "{stdout}");
    assert!(stdout.contains("rows="), "{stdout}");
    assert!(stdout.contains("time="), "{stdout}");
    assert!(stdout.contains("total:"), "{stdout}");
}

#[test]
fn malformed_query_reports_typed_error() {
    let out = aqks().args(["--dataset", "university", "Green SUM"]).output().unwrap();
    // The engine error is printed to stdout (the REPL keeps running on
    // errors; one-shot mode reports and exits 0).
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("parse error"), "{stdout}");
}
