//! Graphviz (DOT) export of the ORM schema graph, for documentation and
//! debugging. Object nodes render as ellipses, relationship nodes as
//! diamonds, mixed nodes as double ellipses — mirroring the legend of
//! Figure 3.

use crate::graph::{NodeKind, OrmGraph};

/// Escapes a DOT string literal.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl OrmGraph {
    /// Renders the graph as a Graphviz `graph` (undirected) document.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("graph orm {\n  node [fontname=\"Helvetica\"];\n");
        for n in self.nodes() {
            let shape = match n.kind {
                NodeKind::Object => "ellipse",
                NodeKind::Relationship => "diamond",
                NodeKind::Mixed => "doublecircle",
            };
            let label = if n.components.is_empty() {
                n.relation.clone()
            } else {
                format!("{}\\n[{}]", n.relation, n.components.join(", "))
            };
            out.push_str(&format!("  n{} [label=\"{}\", shape={}];\n", n.id, esc(&label), shape));
        }
        for e in self.edges() {
            out.push_str(&format!(
                "  n{} -- n{} [label=\"{}\"];\n",
                e.a,
                e.b,
                esc(&e.a_attrs.join(","))
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqks_relational::{AttrType, DatabaseSchema, RelationSchema};

    #[test]
    fn dot_contains_nodes_edges_and_shapes() {
        let mut student = RelationSchema::new("Student");
        student.add_attr("Sid", AttrType::Text);
        student.set_primary_key(["Sid"]);
        let mut course = RelationSchema::new("Course");
        course.add_attr("Code", AttrType::Text);
        course.set_primary_key(["Code"]);
        let mut enrol = RelationSchema::new("Enrol");
        enrol.add_attr("Sid", AttrType::Text).add_attr("Code", AttrType::Text);
        enrol.set_primary_key(["Sid", "Code"]);
        enrol.add_foreign_key(["Sid"], "Student", ["Sid"]);
        enrol.add_foreign_key(["Code"], "Course", ["Code"]);
        let g =
            OrmGraph::build(&DatabaseSchema { relations: vec![student, course, enrol] }).unwrap();

        let dot = g.to_dot();
        assert!(dot.starts_with("graph orm {"));
        assert!(dot.contains("label=\"Student\", shape=ellipse"), "{dot}");
        assert!(dot.contains("label=\"Enrol\", shape=diamond"), "{dot}");
        assert_eq!(dot.matches(" -- ").count(), 2, "{dot}");
    }

    #[test]
    fn dot_escapes_quotes() {
        assert_eq!(esc(r#"a"b\c"#), r#"a\"b\\c"#);
    }
}
