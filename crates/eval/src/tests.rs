//! Smoke tests for the harness itself (the substantive shape assertions
//! live in the workspace-level `tests/table_shapes.rs`).

use crate::analysis::{analyze_workload, PlanVerdict};
use crate::tables::{render_markdown, run_table5};
use crate::workload::{
    acmdl_database, acmdl_prime_database, acmdl_queries, tpch_database, tpch_prime_database,
    tpch_queries, Scale,
};
use crate::{fig11, run_fig11};

#[test]
fn table5_renders_all_rows() {
    let rows = run_table5(Scale::Small);
    assert_eq!(rows.len(), 8);
    let md = render_markdown("Table 5", &rows);
    for id in ["T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"] {
        assert!(md.contains(&format!("| {id} |")), "{md}");
    }
    assert!(md.contains("N.A."), "T7/T8 unsupported rows render: {md}");
}

#[test]
fn fig11_produces_positive_timings() {
    let (tpch, acmdl) = run_fig11(Scale::Small, 3);
    assert_eq!((tpch.len(), acmdl.len()), (8, 8));
    for r in tpch.iter().chain(&acmdl) {
        assert!(r.ours_us > 0.0, "{}", r.id);
        assert!(r.sqak_us >= 0.0, "{}", r.id);
    }
    let md = fig11::render_markdown("Fig 11", &tpch);
    assert!(md.contains("| T1 |"), "{md}");
}

#[test]
fn outcome_cell_truncates_long_answer_lists() {
    use crate::tables::EngineOutcome;
    let o = EngineOutcome::Answers {
        count: 10,
        values: (0..10).map(|i| i.to_string()).collect(),
        sql: String::new(),
    };
    let cell = o.cell();
    assert!(cell.starts_with("10 answer(s):"), "{cell}");
    assert!(cell.ends_with(", ..."), "{cell}");
    let u = EngineOutcome::Unsupported("self join".into());
    assert_eq!(u.cell(), "N.A. (self join)");
}

/// The paper engine's statements carry zero error-severity findings on
/// every workload query, normalized and unnormalized alike.
#[test]
fn engine_plans_are_statically_clean() {
    let sweeps = [
        analyze_workload(&tpch_database(Scale::Small), &tpch_queries(), 3),
        analyze_workload(&acmdl_database(Scale::Small), &acmdl_queries(), 3),
        analyze_workload(&tpch_prime_database(Scale::Small), &tpch_queries(), 3),
        analyze_workload(&acmdl_prime_database(Scale::Small), &acmdl_queries(), 3),
    ];
    for rows in &sweeps {
        assert_eq!(rows.len(), 8);
        for row in rows {
            assert!(
                matches!(row.ours, PlanVerdict::Analyzed { .. }),
                "{}: engine produced nothing to analyze: {:?}",
                row.id,
                row.ours
            );
            assert_eq!(row.ours.errors(), 0, "{}: {:?}", row.id, row.ours);
        }
    }
}

/// SQAK's statements over the unnormalized datasets trip the
/// duplicate-inflation pass — the static counterpart of the wrong
/// answers Tables 8 and 9 report.
#[test]
fn sqak_plans_trip_duplicate_inflation_on_unnormalized_data() {
    for (db, queries) in [
        (tpch_prime_database(Scale::Small), tpch_queries()),
        (acmdl_prime_database(Scale::Small), acmdl_queries()),
    ] {
        let rows = analyze_workload(&db, &queries, 3);
        let flagged = rows.iter().filter(|r| r.sqak.has_code("AQ-P5")).count();
        assert!(flagged >= 1, "no AQ-P5 on {}: {rows:?}", db.name);
        // And every flag is an error, not a warning.
        for r in rows.iter().filter(|r| r.sqak.has_code("AQ-P5")) {
            assert!(r.sqak.errors() >= 1, "{}: {:?}", r.id, r.sqak);
        }
    }
}
