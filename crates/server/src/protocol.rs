//! The wire protocol: UTF-8 lines over TCP, one frame per line.
//!
//! The grammar is deliberately small enough to debug with `nc`:
//!
//! ```text
//! request  = "Q" SP *(key "=" value SP) "|" text LF   ; keyword query
//!          | "PING" LF                                ; liveness probe
//!          | "QUIT" LF                                ; orderly close
//! keys     = "k" | "timeout_ms" | "max_rows" | "max_patterns"
//!          | "max_interps"
//!
//! response = "OK" SP "n=" count SP "rows=" count SP "us=" micros
//!            [SP "degraded=" kind "@" site] [SP "partial=" bool] LF
//!            *( "S" SP sql LF                          ; one per interp
//!               "C" SP col *(TAB col) LF
//!               *( "R" SP val *(TAB val) LF ) )
//!            "." LF                                    ; end of response
//!          | "ERR" SP "code=" code SP "retryable=" bool SP "msg=" text LF
//!          | "PONG" LF
//!          | "BYE" LF
//! ```
//!
//! Every free-text field (query, SQL, column names, values, error
//! messages) is backslash-escaped so it can never contain a raw LF or
//! TAB; frames therefore always stay one line and the framing can never
//! be corrupted by data. The error taxonomy is closed ([`ErrorCode`])
//! and each code carries its retry class on the wire, so clients never
//! guess whether retrying is safe.

use std::fmt;

/// Escapes a free-text field for the wire: backslash, LF, CR, and TAB
/// become two-character escapes. The result contains no control
/// characters that could break line or field framing.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`]. Unknown escapes and a trailing lone backslash
/// decode to the literal character, so a buggy peer degrades to mojibake
/// instead of a framing error.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// The closed error taxonomy of the wire protocol. Retryability is a
/// property of the code, stated on the wire, so client and server can
/// never disagree about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Admission control rejected the request (queue full, connection
    /// limit, or the request aged out in the queue). Retryable — the
    /// overload is transient by construction.
    Overloaded,
    /// The server is draining for shutdown; retry against a healthy
    /// replica (or the same address after restart).
    Shutdown,
    /// An I/O deadline expired mid-exchange. Retryable: the request may
    /// simply be re-sent.
    Timeout,
    /// The query text violates the keyword-query grammar. Not
    /// retryable — the same request can never succeed.
    Parse,
    /// A term matches nothing / no interpretation exists. Semantically
    /// final: not retryable.
    NoMatch,
    /// The engine rejected the query for semantic reasons (bad operand,
    /// no pattern, analysis rejection). Not retryable.
    Semantic,
    /// A malformed frame: unknown verb, bad key, or an over-long line.
    /// Not retryable as-is.
    Protocol,
    /// A deterministic failpoint fired (fault-injection builds only).
    /// Not retryable by default — chaos sweeps assert on seeing it.
    Fault,
    /// The engine or server hit a bug (caught panic, lost worker). The
    /// connection survives; the request is not retryable because the
    /// failure is not known to be transient.
    Internal,
}

impl ErrorCode {
    /// The stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Parse => "parse",
            ErrorCode::NoMatch => "nomatch",
            ErrorCode::Semantic => "semantic",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Fault => "fault",
            ErrorCode::Internal => "internal",
        }
    }

    /// Whether a client may safely retry the identical request.
    pub fn retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded | ErrorCode::Shutdown | ErrorCode::Timeout)
    }

    /// Parses a wire name back into the taxonomy.
    pub fn parse(name: &str) -> Option<ErrorCode> {
        Some(match name {
            "overloaded" => ErrorCode::Overloaded,
            "shutdown" => ErrorCode::Shutdown,
            "timeout" => ErrorCode::Timeout,
            "parse" => ErrorCode::Parse,
            "nomatch" => ErrorCode::NoMatch,
            "semantic" => ErrorCode::Semantic,
            "protocol" => ErrorCode::Protocol,
            "fault" => ErrorCode::Fault,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parsed query request: the keyword text plus per-request resource
/// hints. Hints are *requests*; the server clamps them by its policy
/// (a client cannot ask for a longer deadline than the server allows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The keyword query text.
    pub text: String,
    /// Top-k interpretations to return.
    pub k: usize,
    /// Requested deadline in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Requested intermediate-row cap.
    pub max_rows: Option<u64>,
    /// Requested enumerated-pattern cap.
    pub max_patterns: Option<u64>,
    /// Requested interpretation cap.
    pub max_interps: Option<u64>,
}

impl Request {
    /// A request with default hints (server policy decides everything).
    pub fn new(text: impl Into<String>) -> Request {
        Request {
            text: text.into(),
            k: 1,
            timeout_ms: None,
            max_rows: None,
            max_patterns: None,
            max_interps: None,
        }
    }

    /// Renders the request as its wire line (without the trailing LF).
    pub fn render(&self) -> String {
        let mut line = String::from("Q ");
        if self.k != 1 {
            line.push_str(&format!("k={} ", self.k));
        }
        if let Some(v) = self.timeout_ms {
            line.push_str(&format!("timeout_ms={v} "));
        }
        if let Some(v) = self.max_rows {
            line.push_str(&format!("max_rows={v} "));
        }
        if let Some(v) = self.max_patterns {
            line.push_str(&format!("max_patterns={v} "));
        }
        if let Some(v) = self.max_interps {
            line.push_str(&format!("max_interps={v} "));
        }
        line.push('|');
        line.push_str(&escape(&self.text));
        line
    }
}

/// One frame sent by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientFrame {
    /// A keyword query with resource hints.
    Query(Request),
    /// Liveness probe; the server answers `PONG`.
    Ping,
    /// Orderly close; the server answers `BYE` and closes.
    Quit,
}

/// Parses one client line (no trailing LF). Errors are human-readable
/// fragments for the `ERR code=protocol` message.
pub fn parse_frame(line: &str) -> Result<ClientFrame, String> {
    let line = line.trim_end_matches('\r');
    if line == "PING" {
        return Ok(ClientFrame::Ping);
    }
    if line == "QUIT" {
        return Ok(ClientFrame::Quit);
    }
    let Some(rest) = line.strip_prefix("Q ").or(if line == "Q" { Some("") } else { None }) else {
        let verb = line.split_whitespace().next().unwrap_or("");
        return Err(format!("unknown verb `{}`", truncate(verb, 32)));
    };
    let Some((opts, text)) = rest.split_once('|') else {
        return Err("query frame missing `|` separator".to_string());
    };
    let mut req = Request::new(unescape(text));
    for tok in opts.split_whitespace() {
        let Some((key, value)) = tok.split_once('=') else {
            return Err(format!("malformed option `{}` (expected key=value)", truncate(tok, 32)));
        };
        let parsed: u64 = value.parse().map_err(|_| {
            format!("option `{key}` has non-numeric value `{}`", truncate(value, 32))
        })?;
        match key {
            "k" => req.k = (parsed as usize).max(1),
            "timeout_ms" => req.timeout_ms = Some(parsed),
            "max_rows" => req.max_rows = Some(parsed),
            "max_patterns" => req.max_patterns = Some(parsed),
            "max_interps" => req.max_interps = Some(parsed),
            other => return Err(format!("unknown option `{}`", truncate(other, 32))),
        }
    }
    if req.text.trim().is_empty() {
        return Err("empty query text".to_string());
    }
    Ok(ClientFrame::Query(req))
}

fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

/// One executed interpretation in a success response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireInterp {
    /// The SQL the interpretation executed.
    pub sql: String,
    /// Column names of the result table.
    pub columns: Vec<String>,
    /// Result rows, values rendered as text.
    pub rows: Vec<Vec<String>>,
}

/// A complete response to one query frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The query was answered (possibly degraded under its budget).
    Ok(Answer),
    /// A typed error; the connection stays open.
    Err(WireError),
}

/// The payload of an `OK` response.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Answer {
    /// Executed interpretations, best-ranked first.
    pub interpretations: Vec<WireInterp>,
    /// `Some("<kind>@<site>")` when a resource budget tripped and the
    /// answer degraded to whatever completed before the trip.
    pub degraded: Option<String>,
    /// True when a degraded answer still carries partial results.
    pub partial: bool,
    /// Server-side wall time in microseconds.
    pub server_us: u64,
}

/// The payload of an `ERR` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The taxonomy code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error payload.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError { code, message: message.into() }
    }

    /// Renders the single `ERR` line (without trailing LF).
    pub fn render(&self) -> String {
        format!(
            "ERR code={} retryable={} msg={}",
            self.code.name(),
            self.code.retryable(),
            escape(&self.message)
        )
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl Answer {
    /// Renders the multi-line `OK` block including the terminating `.`
    /// line (without trailing LF after the dot).
    pub fn render(&self) -> String {
        let total_rows: usize = self.interpretations.iter().map(|i| i.rows.len()).sum();
        let mut out = format!(
            "OK n={} rows={} us={}",
            self.interpretations.len(),
            total_rows,
            self.server_us
        );
        if let Some(d) = &self.degraded {
            out.push_str(&format!(" degraded={}", escape(d)));
            out.push_str(&format!(" partial={}", self.partial));
        }
        out.push('\n');
        for interp in &self.interpretations {
            out.push_str("S ");
            out.push_str(&escape(&interp.sql));
            out.push('\n');
            out.push_str("C ");
            let cols: Vec<String> = interp.columns.iter().map(|c| escape(c)).collect();
            out.push_str(&cols.join("\t"));
            out.push('\n');
            for row in &interp.rows {
                out.push_str("R ");
                let vals: Vec<String> = row.iter().map(|v| escape(v)).collect();
                out.push_str(&vals.join("\t"));
                out.push('\n');
            }
        }
        out.push('.');
        out
    }
}

/// Parses an `OK` header line (after the `OK ` prefix was matched);
/// returns the answer shell whose interpretation blocks follow.
pub fn parse_ok_header(rest: &str) -> Result<Answer, String> {
    let mut answer = Answer::default();
    for tok in rest.split_whitespace() {
        let Some((key, value)) = tok.split_once('=') else {
            return Err(format!("malformed OK field `{}`", truncate(tok, 32)));
        };
        match key {
            "n" | "rows" => {} // derivable from the blocks; validated by framing
            "us" => answer.server_us = value.parse().map_err(|_| "bad us field".to_string())?,
            "degraded" => answer.degraded = Some(unescape(value)),
            "partial" => answer.partial = value == "true",
            other => return Err(format!("unknown OK field `{}`", truncate(other, 32))),
        }
    }
    Ok(answer)
}

/// Parses an `ERR` line (after the `ERR ` prefix was matched).
pub fn parse_err_line(rest: &str) -> Result<WireError, String> {
    let mut code = None;
    let mut message = String::new();
    for tok in rest.splitn(3, ' ') {
        if let Some(v) = tok.strip_prefix("code=") {
            code = ErrorCode::parse(v);
        } else if let Some(v) = tok.strip_prefix("msg=") {
            message = unescape(v);
        }
        // retryable= is derivable from the code; ignored on parse.
    }
    match code {
        Some(code) => Ok(WireError { code, message }),
        None => Err("ERR line missing a known code".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_control_characters() {
        let nasty = "a\tb\nc\rd\\e|f";
        let wire = escape(nasty);
        assert!(!wire.contains('\n') && !wire.contains('\t') && !wire.contains('\r'));
        assert_eq!(unescape(&wire), nasty);
        // Lenient decode of a lone trailing backslash.
        assert_eq!(unescape("x\\"), "x\\");
        assert_eq!(unescape("x\\q"), "xq");
    }

    #[test]
    fn request_render_parse_round_trips() {
        let req = Request {
            text: "Green SUM Credit".to_string(),
            k: 3,
            timeout_ms: Some(250),
            max_rows: Some(10_000),
            max_patterns: None,
            max_interps: Some(5),
        };
        let line = req.render();
        match parse_frame(&line).unwrap() {
            ClientFrame::Query(parsed) => assert_eq!(parsed, req),
            other => panic!("expected query frame, got {other:?}"),
        }
        assert_eq!(parse_frame("PING").unwrap(), ClientFrame::Ping);
        assert_eq!(parse_frame("QUIT").unwrap(), ClientFrame::Quit);
    }

    #[test]
    fn query_text_with_pipe_and_newline_survives() {
        let req = Request::new("weird | query \n text");
        let line = req.render();
        assert_eq!(line.lines().count(), 1, "{line:?}");
        match parse_frame(&line).unwrap() {
            ClientFrame::Query(parsed) => assert_eq!(parsed.text, "weird | query \n text"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_frames_are_rejected_with_reasons() {
        assert!(parse_frame("FROB x").unwrap_err().contains("unknown verb"));
        assert!(parse_frame("Q k=3 no-separator").unwrap_err().contains("missing `|`"));
        assert!(parse_frame("Q bogus=1 |x").unwrap_err().contains("unknown option"));
        assert!(parse_frame("Q k=banana |x").unwrap_err().contains("non-numeric"));
        assert!(parse_frame("Q |   ").unwrap_err().contains("empty query"));
    }

    #[test]
    fn error_codes_carry_retry_class() {
        for code in [ErrorCode::Overloaded, ErrorCode::Shutdown, ErrorCode::Timeout] {
            assert!(code.retryable(), "{code}");
        }
        for code in [
            ErrorCode::Parse,
            ErrorCode::NoMatch,
            ErrorCode::Semantic,
            ErrorCode::Protocol,
            ErrorCode::Fault,
            ErrorCode::Internal,
        ] {
            assert!(!code.retryable(), "{code}");
        }
        for code in [ErrorCode::Overloaded, ErrorCode::Parse, ErrorCode::Internal] {
            assert_eq!(ErrorCode::parse(code.name()), Some(code));
        }
        assert_eq!(ErrorCode::parse("gremlins"), None);
    }

    #[test]
    fn err_line_round_trips() {
        let err = WireError::new(ErrorCode::Overloaded, "queue full (depth 64)");
        let line = err.render();
        assert!(line.starts_with("ERR code=overloaded retryable=true msg="));
        let parsed = parse_err_line(line.strip_prefix("ERR ").unwrap()).unwrap();
        assert_eq!(parsed, err);
    }

    #[test]
    fn ok_block_renders_framing() {
        let answer = Answer {
            interpretations: vec![WireInterp {
                sql: "SELECT a FROM t".to_string(),
                columns: vec!["a".to_string(), "b\tc".to_string()],
                rows: vec![vec!["1".to_string(), "x\ny".to_string()]],
            }],
            degraded: Some("deadline@ops.Scan".to_string()),
            partial: true,
            server_us: 42,
        };
        let block = answer.render();
        let lines: Vec<&str> = block.lines().collect();
        assert_eq!(lines[0], "OK n=1 rows=1 us=42 degraded=deadline@ops.Scan partial=true");
        assert!(lines[1].starts_with("S "));
        assert!(lines[2].starts_with("C "));
        assert!(lines[3].starts_with("R "));
        assert_eq!(*lines.last().unwrap(), ".");
        // Embedded tabs/newlines in values never add lines or fields.
        assert_eq!(lines.len(), 5);
        let header = parse_ok_header(lines[0].strip_prefix("OK ").unwrap()).unwrap();
        assert_eq!(header.degraded.as_deref(), Some("deadline@ops.Scan"));
        assert!(header.partial);
        assert_eq!(header.server_us, 42);
    }
}
