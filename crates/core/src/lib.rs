#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # aqks-core
//!
//! The paper's contribution: a *semantic* engine answering keyword
//! queries involving aggregates and GROUPBY over relational databases
//! (Zeng, Lee, Ling — EDBT 2016).
//!
//! Pipeline (Algorithm 2):
//!
//! 1. [`query`] — parse the extended keyword language (Definition 1);
//! 2. [`matching`] — find each basic term's relation/attribute/value
//!    matches (over the normalized view `D'` when the database is
//!    unnormalized);
//! 3. [`pattern`] — generate annotated query patterns: minimal connected
//!    instantiations of the ORM schema graph, one per interpretation;
//! 4. [`annotate`] — fork per-object variants (`GROUPBY(id)`) for
//!    conditions matching several objects;
//! 5. [`rank`] — rank interpretations;
//! 6. [`mod@translate`] — emit SQL with the two ORA-semantics rules
//!    (relationship FK-projection dedup, object-id grouping);
//! 7. [`unnormalized`] — map the SQL back onto unnormalized relations and
//!    simplify it (rewrite Rules 1-3);
//! 8. [`engine`] — tie it together and execute.
//!
//! ```
//! use aqks_core::Engine;
//! use aqks_datasets::university;
//!
//! let engine = Engine::new(university::normalized()).unwrap();
//! let answers = engine.answer("Green SUM Credit", 1).unwrap();
//! // One row per student named Green — 5.0 and 8.0, not SQAK's 13.
//! assert_eq!(answers[0].result.len(), 2);
//! ```

pub mod annotate;
pub mod engine;
pub mod error;
pub mod matching;
pub mod pattern;
pub mod query;
pub mod rank;
pub mod translate;
pub mod unnormalized;

pub use aqks_guard::{Budget, BudgetKind, Exhaustion, Tripped};
pub use engine::{
    Engine, EngineOptions, Explanation, GeneratedSql, Governed, Interpretation, PatternReport,
    TermReport,
};
pub use error::CoreError;
pub use matching::{Matcher, TermMatch, TermRole};
pub use pattern::{NodeAnnotation, PatternNode, QueryPattern};
pub use query::{KeywordQuery, Operator, Term};
pub use rank::{rank_key, rank_patterns, RankKey};
pub use translate::{translate, TranslateOptions};
pub use unnormalized::{rewrite, RewriteOptions};
