//! The `SELECT` statement AST.
//!
//! The shapes here are exactly those produced by pattern translation
//! (Section 3.1.3), nested aggregates (Section 3.2), and the
//! unnormalized-database pipeline (Section 4): conjunctive queries with
//! equi-joins, `contains`/equality selections, GROUP BY, aggregate select
//! items, optional `SELECT DISTINCT`, and derived tables in FROM.

use aqks_relational::Value;

/// The five aggregate functions of Definition 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl AggFunc {
    /// Uppercase SQL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Parses a query term as an aggregate keyword (case-insensitive).
    pub fn parse(term: &str) -> Option<AggFunc> {
        match term.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// Prefix used when auto-naming aggregate result columns, mirroring
    /// the paper's `numLid` / `avgnumLid` style.
    pub fn alias_prefix(self) -> &'static str {
        match self {
            AggFunc::Count => "num",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// A qualified column reference `alias.column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// FROM-item alias (e.g. `S1`).
    pub qualifier: String,
    /// Column name within the aliased relation/derived table.
    pub column: String,
}

impl ColumnRef {
    /// Creates a reference.
    pub fn new(qualifier: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef { qualifier: qualifier.into(), column: column.into() }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // An empty qualifier addresses an output alias (ORDER BY n).
        if self.qualifier.is_empty() {
            write!(f, "{}", self.column)
        } else {
            write!(f, "{}.{}", self.qualifier, self.column)
        }
    }
}

/// One item of the SELECT clause.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain column, optionally aliased.
    Column {
        /// The column.
        col: ColumnRef,
        /// Optional output alias.
        alias: Option<String>,
    },
    /// An aggregate over a column.
    Aggregate {
        /// Aggregate function.
        func: AggFunc,
        /// Aggregated column.
        arg: ColumnRef,
        /// `COUNT(DISTINCT …)`-style duplicate elimination inside the
        /// aggregate. The paper's translation prefers DISTINCT *subqueries*
        /// (Example 6); this flag exists for the ablation variants.
        distinct: bool,
        /// Output alias (`numLid`, `avgnumLid`, …).
        alias: String,
    },
}

impl SelectItem {
    /// The output column name of this item.
    pub fn output_name(&self) -> &str {
        match self {
            SelectItem::Column { col, alias } => alias.as_deref().unwrap_or(&col.column),
            SelectItem::Aggregate { alias, .. } => alias,
        }
    }
}

/// One item of the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableExpr {
    /// A base relation with an alias.
    Relation {
        /// Relation name in the database.
        name: String,
        /// Alias used by column references.
        alias: String,
    },
    /// A parenthesized subquery with an alias (derived table).
    Derived {
        /// The subquery.
        query: Box<SelectStatement>,
        /// Alias used by column references.
        alias: String,
    },
}

impl TableExpr {
    /// The alias of this FROM item.
    pub fn alias(&self) -> &str {
        match self {
            TableExpr::Relation { alias, .. } | TableExpr::Derived { alias, .. } => alias,
        }
    }
}

/// A conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Equi-join `a = b`.
    JoinEq(ColumnRef, ColumnRef),
    /// The paper's `column contains 'text'` (case-insensitive substring).
    Contains(ColumnRef, String),
    /// Exact equality with a literal.
    Eq(ColumnRef, Value),
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// Output column name (an alias from the SELECT list) or a qualified
    /// column of a FROM item.
    pub column: ColumnRef,
    /// Descending order when true.
    pub desc: bool,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStatement {
    /// `SELECT DISTINCT` when true.
    pub distinct: bool,
    /// Select list (never empty for a well-formed statement).
    pub items: Vec<SelectItem>,
    /// FROM items, joined by the equi-join predicates.
    pub from: Vec<TableExpr>,
    /// Conjunctive WHERE clause.
    pub predicates: Vec<Predicate>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// ORDER BY keys, applied to the output rows.
    pub order_by: Vec<OrderKey>,
    /// LIMIT on the output row count.
    pub limit: Option<usize>,
}

impl SelectStatement {
    /// Creates an empty statement (builder style).
    pub fn new() -> Self {
        Self::default()
    }

    /// True if any select item is an aggregate.
    pub fn has_aggregate(&self) -> bool {
        self.items.iter().any(|i| matches!(i, SelectItem::Aggregate { .. }))
    }

    /// Number of aggregate select items.
    pub fn aggregate_count(&self) -> usize {
        self.items.iter().filter(|i| matches!(i, SelectItem::Aggregate { .. })).count()
    }

    /// Pre-order walk over this statement and every derived-table
    /// subquery. The visitor receives each statement together with its
    /// *path*: the chain of FROM indices leading to it from the root
    /// (empty for the root itself). The same path addressing is used by
    /// [`crate::render::SqlSpan`], so a visitor can correlate statements
    /// with rendered-SQL locations.
    pub fn walk<'a, F>(&'a self, f: &mut F)
    where
        F: FnMut(&[usize], &'a SelectStatement),
    {
        fn go<'a, F>(stmt: &'a SelectStatement, path: &mut Vec<usize>, f: &mut F)
        where
            F: FnMut(&[usize], &'a SelectStatement),
        {
            f(path, stmt);
            for (i, item) in stmt.from.iter().enumerate() {
                if let TableExpr::Derived { query, .. } = item {
                    path.push(i);
                    go(query, path, f);
                    path.pop();
                }
            }
        }
        go(self, &mut Vec::new(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_parse_roundtrip() {
        for (s, f) in [
            ("count", AggFunc::Count),
            ("SUM", AggFunc::Sum),
            ("Avg", AggFunc::Avg),
            ("MIN", AggFunc::Min),
            ("max", AggFunc::Max),
        ] {
            assert_eq!(AggFunc::parse(s), Some(f));
            assert_eq!(AggFunc::parse(f.keyword()), Some(f));
        }
        assert_eq!(AggFunc::parse("GROUPBY"), None);
        assert_eq!(AggFunc::parse("total"), None);
    }

    #[test]
    fn select_item_output_names() {
        let c = SelectItem::Column { col: ColumnRef::new("S", "Sid"), alias: None };
        assert_eq!(c.output_name(), "Sid");
        let a = SelectItem::Aggregate {
            func: AggFunc::Count,
            arg: ColumnRef::new("C", "Code"),
            distinct: false,
            alias: "numCode".into(),
        };
        assert_eq!(a.output_name(), "numCode");
    }

    #[test]
    fn has_aggregate_detection() {
        let mut s = SelectStatement::new();
        s.items.push(SelectItem::Column { col: ColumnRef::new("S", "Sid"), alias: None });
        assert!(!s.has_aggregate());
        s.items.push(SelectItem::Aggregate {
            func: AggFunc::Sum,
            arg: ColumnRef::new("C", "Credit"),
            distinct: false,
            alias: "sumCredit".into(),
        });
        assert!(s.has_aggregate());
        assert_eq!(s.aggregate_count(), 1);
    }
}
