//! The ORM schema graph (Figures 3 and 9).
//!
//! Each node bundles an object/relationship/mixed relation with its
//! component relations; nodes are connected when a foreign-key reference
//! exists between relations in the two nodes. Parallel edges are kept
//! (a recursive relationship contributes two edges between the same
//! pair), and every edge records the exact join attributes so pattern
//! translation can emit the WHERE clause.

use std::collections::{HashMap, VecDeque};

use aqks_relational::{DatabaseSchema, Error, Result};

use crate::classify::{classify_relation, RelationKind};

/// Index of a node in the graph.
pub type NodeId = usize;

/// Node type shown in the legend of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Objects only.
    Object,
    /// An m:n (possibly n-ary) relationship.
    Relationship,
    /// Objects plus embedded many-to-one relationships.
    Mixed,
}

/// One node: a primary relation plus its folded component relations.
#[derive(Debug, Clone)]
pub struct OrmNode {
    /// This node's index.
    pub id: NodeId,
    /// Object / Relationship / Mixed.
    pub kind: NodeKind,
    /// The primary relation (canonical name).
    pub relation: String,
    /// Primary key of the primary relation — the node's object/relationship
    /// identifier, which aggregates and GROUPBY bind to.
    pub primary_key: Vec<String>,
    /// Component relations folded into this node.
    pub components: Vec<String>,
}

/// An undirected edge derived from a foreign key `a_rel.a_attrs ->
/// b_rel.b_attrs`.
#[derive(Debug, Clone)]
pub struct OrmEdge {
    /// Node owning the referencing relation.
    pub a: NodeId,
    /// Node owning the referenced relation.
    pub b: NodeId,
    /// Referencing relation (may be a component of node `a`).
    pub a_rel: String,
    /// Referencing attributes.
    pub a_attrs: Vec<String>,
    /// Referenced relation.
    pub b_rel: String,
    /// Referenced attributes.
    pub b_attrs: Vec<String>,
}

impl OrmEdge {
    /// The node on the other side of this edge from `n` (self-loops
    /// return `n`).
    pub fn other(&self, n: NodeId) -> NodeId {
        if self.a == n {
            self.b
        } else {
            self.a
        }
    }
}

/// The ORM schema graph.
#[derive(Debug, Clone)]
pub struct OrmGraph {
    nodes: Vec<OrmNode>,
    edges: Vec<OrmEdge>,
    adjacency: Vec<Vec<usize>>,
    by_relation: HashMap<String, NodeId>,
}

impl OrmGraph {
    /// Builds the graph from a database schema. Fails only if a component
    /// relation's parent cannot be resolved.
    pub fn build(schema: &DatabaseSchema) -> Result<OrmGraph> {
        let mut kinds: Vec<RelationKind> = Vec::with_capacity(schema.relations.len());
        for rel in &schema.relations {
            kinds.push(classify_relation(rel));
        }

        // Resolve each relation to the primary relation of its node,
        // following component chains (a component of a component folds
        // into the grandparent's node).
        let mut primary_of: HashMap<String, String> = HashMap::new();
        for (rel, kind) in schema.relations.iter().zip(&kinds) {
            let mut current = rel.name.clone();
            let mut kind = kind.clone();
            let mut hops = 0;
            while let RelationKind::Component { parent } = kind {
                hops += 1;
                if hops > schema.relations.len() {
                    return Err(Error::InvalidSchema(format!(
                        "component cycle involving `{}`",
                        rel.name
                    )));
                }
                let parent_rel = schema.relation(&parent).ok_or_else(|| {
                    Error::InvalidSchema(format!(
                        "component `{current}` references unknown parent `{parent}`"
                    ))
                })?;
                current = parent_rel.name.clone();
                kind = classify_relation(parent_rel);
            }
            primary_of.insert(rel.name.to_lowercase(), current);
        }

        // Create one node per primary relation, in schema order.
        let mut nodes: Vec<OrmNode> = Vec::new();
        let mut by_relation: HashMap<String, NodeId> = HashMap::new();
        for (rel, kind) in schema.relations.iter().zip(&kinds) {
            let node_kind = match kind {
                RelationKind::Object => NodeKind::Object,
                RelationKind::Relationship => NodeKind::Relationship,
                RelationKind::Mixed => NodeKind::Mixed,
                RelationKind::Component { .. } => continue,
            };
            let id = nodes.len();
            by_relation.insert(rel.name.to_lowercase(), id);
            nodes.push(OrmNode {
                id,
                kind: node_kind,
                relation: rel.name.clone(),
                primary_key: rel.primary_key.clone(),
                components: Vec::new(),
            });
        }
        // Attach components and index them.
        for rel in &schema.relations {
            let primary = &primary_of[&rel.name.to_lowercase()];
            if primary.eq_ignore_ascii_case(&rel.name) {
                continue;
            }
            let id = *by_relation.get(&primary.to_lowercase()).ok_or_else(|| {
                Error::InvalidSchema(format!("component parent `{primary}` has no node"))
            })?;
            nodes[id].components.push(rel.name.clone());
            by_relation.insert(rel.name.to_lowercase(), id);
        }

        // Edges: every FK whose endpoints live in different nodes (or a
        // self-loop on the same node when it is not the internal
        // component->parent link).
        let mut edges: Vec<OrmEdge> = Vec::new();
        for rel in &schema.relations {
            let a = by_relation[&rel.name.to_lowercase()];
            for fk in &rel.foreign_keys {
                let b = *by_relation.get(&fk.ref_relation.to_lowercase()).ok_or_else(|| {
                    Error::InvalidSchema(format!(
                        "`{}` references unknown relation `{}`",
                        rel.name, fk.ref_relation
                    ))
                })?;
                if a == b {
                    // Internal link (component -> parent or self-reference
                    // within the node): not a graph edge.
                    continue;
                }
                edges.push(OrmEdge {
                    a,
                    b,
                    a_rel: rel.name.clone(),
                    a_attrs: fk.attrs.clone(),
                    b_rel: fk.ref_relation.clone(),
                    b_attrs: fk.ref_attrs.clone(),
                });
            }
        }

        let mut adjacency = vec![Vec::new(); nodes.len()];
        for (ei, e) in edges.iter().enumerate() {
            adjacency[e.a].push(ei);
            adjacency[e.b].push(ei);
        }

        Ok(OrmGraph { nodes, edges, adjacency, by_relation })
    }

    /// All nodes.
    pub fn nodes(&self) -> &[OrmNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[OrmEdge] {
        &self.edges
    }

    /// One node.
    pub fn node(&self, id: NodeId) -> &OrmNode {
        &self.nodes[id]
    }

    /// One edge.
    pub fn edge(&self, idx: usize) -> &OrmEdge {
        &self.edges[idx]
    }

    /// The node owning `relation` (primary or component), if any.
    pub fn node_of_relation(&self, relation: &str) -> Option<NodeId> {
        self.by_relation.get(&relation.to_lowercase()).copied()
    }

    /// Edge indices incident to `id`.
    pub fn incident_edges(&self, id: NodeId) -> &[usize] {
        &self.adjacency[id]
    }

    /// Distinct object/mixed nodes directly connected to `id` — the
    /// "participating objects" of a relationship node used by the
    /// duplicate-elimination rule of Section 3.1.3.
    pub fn adjacent_object_mixed(&self, id: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.adjacency[id]
            .iter()
            .map(|&ei| self.edges[ei].other(id))
            .filter(|&n| {
                n != id && matches!(self.nodes[n].kind, NodeKind::Object | NodeKind::Mixed)
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// BFS distance between two nodes (None if disconnected).
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<usize> {
        self.shortest_path_edges(from, to).map(|p| p.len())
    }

    /// A shortest path as edge indices from `from` to `to`; ties broken
    /// deterministically by edge index. `Some(vec![])` when `from == to`.
    pub fn shortest_path_edges(&self, from: NodeId, to: NodeId) -> Option<Vec<usize>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut prev: Vec<Option<(NodeId, usize)>> = vec![None; self.nodes.len()];
        let mut visited = vec![false; self.nodes.len()];
        visited[from] = true;
        let mut q = VecDeque::new();
        q.push_back(from);
        while let Some(n) = q.pop_front() {
            for &ei in &self.adjacency[n] {
                let m = self.edges[ei].other(n);
                if m == n || visited[m] {
                    continue;
                }
                visited[m] = true;
                prev[m] = Some((n, ei));
                if m == to {
                    let mut path = Vec::new();
                    let mut cur = to;
                    while let Some((p, e)) = prev[cur] {
                        path.push(e);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                q.push_back(m);
            }
        }
        None
    }

    /// All node-simple paths from `from` to `to` whose length is at most
    /// `shortest + slack`, capped at `cap` paths. Used to enumerate
    /// alternative query-pattern connections.
    pub fn paths_within(
        &self,
        from: NodeId,
        to: NodeId,
        slack: usize,
        cap: usize,
    ) -> Vec<Vec<usize>> {
        let Some(shortest) = self.distance(from, to) else { return Vec::new() };
        let max_len = shortest + slack;
        let mut out = Vec::new();
        let mut stack_nodes = vec![from];
        let mut stack_edges: Vec<usize> = Vec::new();
        self.dfs_paths(from, to, max_len, cap, &mut stack_nodes, &mut stack_edges, &mut out);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_paths(
        &self,
        cur: NodeId,
        to: NodeId,
        max_len: usize,
        cap: usize,
        nodes: &mut Vec<NodeId>,
        edges: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if out.len() >= cap {
            return;
        }
        if cur == to && !edges.is_empty() {
            out.push(edges.clone());
            return;
        }
        if edges.len() >= max_len {
            return;
        }
        for &ei in &self.adjacency[cur] {
            let next = self.edges[ei].other(cur);
            if next == cur || nodes.contains(&next) {
                continue;
            }
            nodes.push(next);
            edges.push(ei);
            self.dfs_paths(next, to, max_len, cap, nodes, edges, out);
            nodes.pop();
            edges.pop();
        }
    }

    /// Text dump of the graph (used by examples and docs).
    pub fn describe(&self) -> String {
        let mut s = String::new();
        for n in &self.nodes {
            let kind = match n.kind {
                NodeKind::Object => "object",
                NodeKind::Relationship => "relationship",
                NodeKind::Mixed => "mixed",
            };
            s.push_str(&format!("[{kind}] {}", n.relation));
            if !n.components.is_empty() {
                s.push_str(&format!(" (components: {})", n.components.join(", ")));
            }
            s.push('\n');
        }
        for e in &self.edges {
            s.push_str(&format!(
                "{} -- {}  ({}.{} = {}.{})\n",
                self.nodes[e.a].relation,
                self.nodes[e.b].relation,
                e.a_rel,
                e.a_attrs.join(","),
                e.b_rel,
                e.b_attrs.join(","),
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqks_relational::{AttrType, RelationSchema};

    /// Builds the full Figure 1 schema.
    fn university_schema() -> DatabaseSchema {
        let mut rels = Vec::new();

        let mut r = RelationSchema::new("Student");
        r.add_attr("Sid", AttrType::Text)
            .add_attr("Sname", AttrType::Text)
            .add_attr("Age", AttrType::Int);
        r.set_primary_key(["Sid"]);
        rels.push(r);

        let mut r = RelationSchema::new("Course");
        r.add_attr("Code", AttrType::Text)
            .add_attr("Title", AttrType::Text)
            .add_attr("Credit", AttrType::Float);
        r.set_primary_key(["Code"]);
        rels.push(r);

        let mut r = RelationSchema::new("Enrol");
        r.add_attr("Sid", AttrType::Text)
            .add_attr("Code", AttrType::Text)
            .add_attr("Grade", AttrType::Text);
        r.set_primary_key(["Sid", "Code"]);
        r.add_foreign_key(["Sid"], "Student", ["Sid"]);
        r.add_foreign_key(["Code"], "Course", ["Code"]);
        rels.push(r);

        let mut r = RelationSchema::new("Lecturer");
        r.add_attr("Lid", AttrType::Text)
            .add_attr("Lname", AttrType::Text)
            .add_attr("Did", AttrType::Text);
        r.set_primary_key(["Lid"]);
        r.add_foreign_key(["Did"], "Department", ["Did"]);
        rels.push(r);

        let mut r = RelationSchema::new("Teach");
        r.add_attr("Code", AttrType::Text)
            .add_attr("Lid", AttrType::Text)
            .add_attr("Bid", AttrType::Text);
        r.set_primary_key(["Code", "Lid", "Bid"]);
        r.add_foreign_key(["Code"], "Course", ["Code"]);
        r.add_foreign_key(["Lid"], "Lecturer", ["Lid"]);
        r.add_foreign_key(["Bid"], "Textbook", ["Bid"]);
        rels.push(r);

        let mut r = RelationSchema::new("Textbook");
        r.add_attr("Bid", AttrType::Text)
            .add_attr("Tname", AttrType::Text)
            .add_attr("Price", AttrType::Int);
        r.set_primary_key(["Bid"]);
        rels.push(r);

        let mut r = RelationSchema::new("Department");
        r.add_attr("Did", AttrType::Text)
            .add_attr("Dname", AttrType::Text)
            .add_attr("Fid", AttrType::Text);
        r.set_primary_key(["Did"]);
        r.add_foreign_key(["Fid"], "Faculty", ["Fid"]);
        rels.push(r);

        let mut r = RelationSchema::new("Faculty");
        r.add_attr("Fid", AttrType::Text).add_attr("Fname", AttrType::Text);
        r.set_primary_key(["Fid"]);
        rels.push(r);

        DatabaseSchema { relations: rels }
    }

    /// The graph matches Figure 3: 8 nodes, 7 edges, kinds as drawn.
    #[test]
    fn figure3_graph() {
        let g = OrmGraph::build(&university_schema()).unwrap();
        assert_eq!(g.nodes().len(), 8);
        assert_eq!(g.edges().len(), 7);

        let kind = |name: &str| g.node(g.node_of_relation(name).unwrap()).kind;
        assert_eq!(kind("Student"), NodeKind::Object);
        assert_eq!(kind("Course"), NodeKind::Object);
        assert_eq!(kind("Textbook"), NodeKind::Object);
        assert_eq!(kind("Faculty"), NodeKind::Object);
        assert_eq!(kind("Enrol"), NodeKind::Relationship);
        assert_eq!(kind("Teach"), NodeKind::Relationship);
        assert_eq!(kind("Lecturer"), NodeKind::Mixed);
        assert_eq!(kind("Department"), NodeKind::Mixed);
    }

    #[test]
    fn teach_has_three_participants() {
        let g = OrmGraph::build(&university_schema()).unwrap();
        let teach = g.node_of_relation("Teach").unwrap();
        assert_eq!(g.adjacent_object_mixed(teach).len(), 3);
        let enrol = g.node_of_relation("Enrol").unwrap();
        assert_eq!(g.adjacent_object_mixed(enrol).len(), 2);
    }

    #[test]
    fn shortest_path_student_to_course_goes_through_enrol() {
        let g = OrmGraph::build(&university_schema()).unwrap();
        let s = g.node_of_relation("Student").unwrap();
        let c = g.node_of_relation("Course").unwrap();
        let path = g.shortest_path_edges(s, c).unwrap();
        assert_eq!(path.len(), 2);
        let mid = g.edge(path[0]).other(s);
        assert_eq!(g.node(mid).relation, "Enrol");
    }

    #[test]
    fn paths_within_enumerates_alternatives() {
        let g = OrmGraph::build(&university_schema()).unwrap();
        let s = g.node_of_relation("Student").unwrap();
        let t = g.node_of_relation("Textbook").unwrap();
        // Student-Enrol-Course-Teach-Textbook is the only simple route.
        let paths = g.paths_within(s, t, 2, 10);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 4);
    }

    #[test]
    fn components_fold_into_parent_node() {
        let mut schema = university_schema();
        let mut hobby = RelationSchema::new("StudentHobby");
        hobby.add_attr("Sid", AttrType::Text).add_attr("Hobby", AttrType::Text);
        hobby.set_primary_key(["Sid", "Hobby"]);
        hobby.add_foreign_key(["Sid"], "Student", ["Sid"]);
        schema.relations.push(hobby);

        let g = OrmGraph::build(&schema).unwrap();
        assert_eq!(g.nodes().len(), 8, "component adds no node");
        let student = g.node_of_relation("Student").unwrap();
        assert_eq!(g.node_of_relation("StudentHobby"), Some(student));
        assert_eq!(g.node(student).components, vec!["StudentHobby".to_string()]);
        // The component's FK to its parent adds no edge.
        assert_eq!(g.edges().len(), 7);
    }

    #[test]
    fn disconnected_nodes_have_no_path() {
        let mut schema = DatabaseSchema::new();
        let mut a = RelationSchema::new("A");
        a.add_attr("id", AttrType::Int);
        a.set_primary_key(["id"]);
        schema.relations.push(a);
        let mut b = RelationSchema::new("B");
        b.add_attr("id", AttrType::Int);
        b.set_primary_key(["id"]);
        schema.relations.push(b);
        let g = OrmGraph::build(&schema).unwrap();
        assert_eq!(g.distance(0, 1), None);
        assert_eq!(g.distance(0, 0), Some(0));
    }

    #[test]
    fn describe_mentions_kinds() {
        let g = OrmGraph::build(&university_schema()).unwrap();
        let d = g.describe();
        assert!(d.contains("[relationship] Teach"), "{d}");
        assert!(d.contains("[mixed] Lecturer"), "{d}");
    }
}
