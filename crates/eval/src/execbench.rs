//! Executor micro-benchmark: plans and runs the Tables 5/6 workloads
//! (T1–T8 on TPC-H, A1–A8 on ACMDL) through the physical-operator
//! pipeline and reports per-query min/median/p95 wall time, a per-phase
//! pipeline breakdown (from an `aqks-obs` trace), and per-operator rows
//! and timings, serialized as `BENCH_exec.json`.
//!
//! Unlike [`crate::fig11`], which times SQL *generation*, this measures
//! *execution* of the generated plans — the cost the Volcano operators
//! (`aqks_sqlgen::ops`) add or save. One engine is built and warmed per
//! query set; every generated plan is prepared before any timing starts.
//! CI runs the `--smoke` variant (few repetitions, small data) to catch
//! regressions that break planning or execution of any workload query.

use std::time::Instant;

use aqks_core::Engine;
use aqks_sqlgen::{plan, run_plan, run_plan_opts, ExecOptions, ExecStats, PlanNode, SharedRows};

use crate::timing::TimingSummary;
use crate::workload::{acmdl_queries, tpch_queries, EvalQuery, Scale};

/// The engine phases reported in the per-query breakdown, in pipeline
/// order. `plan`/`exec` come from this harness; the rest are the
/// [`Engine::answer`] generation phases.
pub const PHASES: [&str; 7] = ["match", "pattern", "annotate", "rank", "translate", "plan", "exec"];

/// Measured metrics of one operator in one benchmarked plan.
#[derive(Debug, Clone)]
pub struct OpBenchRow {
    /// Plan node id (stable across the run).
    pub id: usize,
    /// Operator label as rendered by EXPLAIN.
    pub label: String,
    /// Rows received from all inputs (median run).
    pub rows_in: u64,
    /// Rows emitted (median run).
    pub rows_out: u64,
    /// Inclusive wall time of the operator, microseconds (median run).
    pub wall_us: f64,
}

/// Execution benchmark of one workload query.
#[derive(Debug, Clone)]
pub struct QueryExecBench {
    /// Paper query id (T1…T8, A1…A8).
    pub id: &'static str,
    /// Workload name (`tpch` or `acmdl`).
    pub workload: &'static str,
    /// The generated SQL text that was executed.
    pub sql: String,
    /// Result cardinality.
    pub result_rows: usize,
    /// End-to-end plan execution time over the repetitions.
    pub wall: TimingSummary,
    /// Per-phase wall times (microseconds) of one traced end-to-end
    /// `answer` run, keyed by [`PHASES`] names.
    pub phases: Vec<(String, f64)>,
    /// Per-operator metrics from the median-time run.
    pub ops: Vec<OpBenchRow>,
    /// Failure message when the query could not be planned or run.
    pub error: Option<String>,
}

fn failed(q: &EvalQuery, workload: &'static str, msg: String) -> QueryExecBench {
    QueryExecBench {
        id: q.id,
        workload,
        sql: String::new(),
        result_rows: 0,
        wall: TimingSummary::zero(),
        phases: Vec::new(),
        ops: Vec::new(),
        error: Some(msg),
    }
}

/// One query prepared for timing: its generated SQL text and plan.
struct Prepared {
    query: EvalQuery,
    sql_text: String,
    plan: PlanNode,
}

/// Extracts per-phase wall times from a traced `answer` run. Phases that
/// occur more than once (`plan`/`exec` with k > 1) are summed.
fn phase_breakdown(trace: &aqks_obs::PipelineTrace, out: &mut Vec<(String, f64)>) {
    let Some(root) = trace.roots.iter().find(|r| r.name == "answer") else { return };
    for phase in PHASES {
        let us: f64 = root.children.iter().filter(|c| c.name == phase).map(|c| c.total_us()).sum();
        out.push((phase.to_string(), us));
    }
}

/// Runs every query of one workload `reps` times and keeps the median.
fn bench_workload(
    db: aqks_relational::Database,
    queries: Vec<EvalQuery>,
    workload: &'static str,
    reps: usize,
) -> Vec<QueryExecBench> {
    let engine = match Engine::new(db) {
        Ok(e) => e,
        Err(e) => {
            return queries.iter().map(|q| failed(q, workload, format!("engine: {e}"))).collect()
        }
    };
    // Prepare (generate + plan) the whole set on the shared warmed
    // engine before any timing, so no timed rep pays first-touch costs.
    let prepared: Vec<Result<Prepared, Box<QueryExecBench>>> = queries
        .into_iter()
        .map(|q| {
            let generated = match engine.generate(q.text, 1) {
                Ok(g) if !g.is_empty() => g,
                Ok(_) => return Err(Box::new(failed(&q, workload, "no interpretation".into()))),
                Err(e) => return Err(Box::new(failed(&q, workload, format!("generate: {e}")))),
            };
            let g = generated
                .into_iter()
                .next()
                .expect("generate returned at least one interpretation");
            let p = match plan(&g.sql, engine.database()) {
                Ok(p) => p,
                Err(e) => return Err(Box::new(failed(&q, workload, format!("plan: {e}")))),
            };
            Ok(Prepared { query: q, sql_text: g.sql_text, plan: p })
        })
        .collect();
    prepared
        .into_iter()
        .map(|r| {
            let prep = match r {
                Ok(p) => p,
                Err(row) => return *row,
            };
            let q = &prep.query;
            // One traced end-to-end run attributes wall time to pipeline
            // phases; the timed repetitions below then run untraced.
            let mut phases = Vec::with_capacity(PHASES.len());
            match engine.answer_traced(q.text, 1) {
                Ok((_, trace)) => phase_breakdown(&trace, &mut phases),
                Err(e) => return failed(q, workload, format!("answer: {e}")),
            }
            // Warm-up, then `reps` timed runs; keep the stats of the
            // median-time run so operator timings sum to the reported
            // median wall time.
            if let Err(e) = run_plan(&prep.plan, engine.database()) {
                return failed(q, workload, format!("execute: {e}"));
            }
            let mut samples: Vec<(f64, usize, ExecStats)> = Vec::with_capacity(reps);
            for _ in 0..reps.max(1) {
                let t = Instant::now();
                match run_plan(&prep.plan, engine.database()) {
                    Ok((table, stats)) => {
                        samples.push((t.elapsed().as_secs_f64() * 1e6, table.row_count(), stats))
                    }
                    Err(e) => return failed(q, workload, format!("execute: {e}")),
                }
            }
            let wall =
                TimingSummary::from_samples(&samples.iter().map(|s| s.0).collect::<Vec<f64>>());
            samples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("timing samples are finite"));
            let (_, result_rows, stats) = samples.swap_remove(samples.len() / 2);
            QueryExecBench {
                id: q.id,
                workload,
                sql: prep.sql_text.clone(),
                result_rows,
                wall,
                phases,
                ops: op_rows(&prep.plan, &stats),
                error: None,
            }
        })
        .collect()
}

/// Flattens a plan and its stats into per-operator rows, in node-id order.
fn op_rows(p: &PlanNode, stats: &ExecStats) -> Vec<OpBenchRow> {
    let mut rows = Vec::with_capacity(p.node_count());
    p.visit(&mut |n| {
        let m = &stats.ops[n.id];
        rows.push(OpBenchRow {
            id: n.id,
            label: n.label(),
            rows_in: m.rows_in,
            rows_out: m.rows_out,
            wall_us: m.wall.as_secs_f64() * 1e6,
        });
    });
    rows.sort_by_key(|r| r.id);
    rows
}

/// Runs the full benchmark: T1–T8 on TPC-H and A1–A8 on ACMDL.
pub fn run_exec_bench(scale: Scale, reps: usize) -> Vec<QueryExecBench> {
    let mut out =
        bench_workload(crate::workload::tpch_database(scale), tpch_queries(), "tpch", reps);
    out.extend(bench_workload(
        crate::workload::acmdl_database(scale),
        acmdl_queries(),
        "acmdl",
        reps,
    ));
    out
}

/// One thread count's timing of one sweep query.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Executor worker threads used for this measurement.
    pub threads: usize,
    /// Wall time over the repetitions at this thread count.
    pub wall: TimingSummary,
}

/// The thread-scaling measurement of one aggregate workload query.
#[derive(Debug, Clone)]
pub struct ThreadSweepRow {
    /// Paper query id (T1…T8).
    pub id: &'static str,
    /// The generated SQL text that was executed.
    pub sql: String,
    /// Result cardinality (identical at every thread count, or the row
    /// carries a divergence error).
    pub result_rows: usize,
    /// Median wall times per thread count, ascending thread order.
    pub points: Vec<SweepPoint>,
    /// Speedup of the highest thread count over single-threaded
    /// execution (median over median).
    pub speedup: f64,
    /// Planning failure or cross-thread-count result divergence.
    pub error: Option<String>,
}

/// The full thread-scaling sweep: per-query scaling rows plus the
/// median speedup across queries at the highest thread count.
#[derive(Debug, Clone)]
pub struct ThreadSweep {
    /// Thread counts measured, ascending (always starts at 1).
    pub threads: Vec<usize>,
    /// CPUs available to this process — on a single-CPU host the sweep
    /// still verifies determinism, but no wall-clock speedup is
    /// physically possible and `median_speedup` reflects pure overhead.
    pub host_cpus: usize,
    /// Per-query scaling measurements.
    pub rows: Vec<ThreadSweepRow>,
    /// Median across queries of each query's `speedup`.
    pub median_speedup: f64,
}

/// Power-of-two thread counts up to `max`, always including 1 and
/// `max` itself: `thread_counts(4)` is `[1, 2, 4]`, `thread_counts(6)`
/// is `[1, 2, 4, 6]`.
pub fn thread_counts(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut out = vec![1];
    let mut n = 2;
    while n < max {
        out.push(n);
        n *= 2;
    }
    if max > 1 {
        out.push(max);
    }
    out
}

/// A denormalized TPC-H' instance sized so the aggregate workload
/// queries move tens of thousands of wide rows per plan — enough for
/// the executor's parallel scan/join/aggregate paths to engage.
pub(crate) fn sweep_database() -> aqks_relational::Database {
    let cfg = aqks_datasets::TpchConfig {
        seed: 42,
        parts: 400,
        suppliers: 300,
        customers: 200,
        orders: 20_000,
        parts_per_supplier: 80,
        max_orders_per_pair: 3,
    };
    aqks_datasets::denormalize_tpch(&aqks_datasets::generate_tpch(&cfg))
}

/// Runs the TPC-H' aggregate workload at every thread count in
/// `thread_counts(max_threads)` and reports per-query scaling. Each
/// query's stabilized result at every thread count is compared against
/// the single-threaded result; any divergence is recorded as the row's
/// `error` (the determinism contract is part of the benchmark).
pub fn run_thread_sweep(max_threads: usize, reps: usize) -> ThreadSweep {
    let threads = thread_counts(max_threads);
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let engine = match Engine::new(sweep_database()) {
        Ok(e) => e,
        Err(e) => {
            let rows = tpch_queries()
                .iter()
                .map(|q| ThreadSweepRow {
                    id: q.id,
                    sql: String::new(),
                    result_rows: 0,
                    points: Vec::new(),
                    speedup: 0.0,
                    error: Some(format!("engine: {e}")),
                })
                .collect();
            return ThreadSweep { threads, host_cpus, rows, median_speedup: 0.0 };
        }
    };
    let db = engine.database();
    let none = SharedRows::new();
    let rows: Vec<ThreadSweepRow> = tpch_queries()
        .into_iter()
        .map(|q| {
            let fail = |msg: String| ThreadSweepRow {
                id: q.id,
                sql: String::new(),
                result_rows: 0,
                points: Vec::new(),
                speedup: 0.0,
                error: Some(msg),
            };
            let generated = match engine.generate(q.text, 1) {
                Ok(g) if !g.is_empty() => g,
                Ok(_) => return fail("no interpretation".into()),
                Err(e) => return fail(format!("generate: {e}")),
            };
            let g = generated.into_iter().next().expect("non-empty");
            let p = match plan(&g.sql, db) {
                Ok(p) => p,
                Err(e) => return fail(format!("plan: {e}")),
            };
            let mut baseline = None;
            let mut points = Vec::with_capacity(threads.len());
            let mut result_rows = 0;
            for &t in &threads {
                let opts = ExecOptions::with_threads(t);
                // Warm-up run doubles as the determinism check.
                let table = match run_plan_opts(&p, db, &none, opts) {
                    Ok((table, _)) => table,
                    Err(e) => return fail(format!("execute (threads={t}): {e}")),
                };
                result_rows = table.row_count();
                match &baseline {
                    None => baseline = Some(table),
                    Some(b) if *b != table => {
                        return fail(format!("result at threads={t} diverges from threads=1"))
                    }
                    Some(_) => {}
                }
                let mut samples = Vec::with_capacity(reps.max(1));
                for _ in 0..reps.max(1) {
                    let start = Instant::now();
                    if let Err(e) = run_plan_opts(&p, db, &none, opts) {
                        return fail(format!("execute (threads={t}): {e}"));
                    }
                    samples.push(start.elapsed().as_secs_f64() * 1e6);
                }
                points.push(SweepPoint { threads: t, wall: TimingSummary::from_samples(&samples) });
            }
            let speedup = match (points.first(), points.last()) {
                (Some(a), Some(b)) if b.wall.median_us > 0.0 => a.wall.median_us / b.wall.median_us,
                _ => 0.0,
            };
            ThreadSweepRow { id: q.id, sql: g.sql_text, result_rows, points, speedup, error: None }
        })
        .collect();
    let mut speedups: Vec<f64> =
        rows.iter().filter(|r| r.error.is_none()).map(|r| r.speedup).collect();
    speedups.sort_by(|a, b| a.partial_cmp(b).expect("speedups are finite"));
    let median_speedup = if speedups.is_empty() { 0.0 } else { speedups[speedups.len() / 2] };
    ThreadSweep { threads, host_cpus, rows, median_speedup }
}

/// Serializes a thread sweep as the `threads_sweep` JSON object.
pub fn render_sweep_json(sweep: &ThreadSweep) -> String {
    let mut s = String::from("{\n");
    let counts: Vec<String> = sweep.threads.iter().map(|t| t.to_string()).collect();
    s.push_str(&format!("    \"threads\": [{}],\n", counts.join(", ")));
    s.push_str(&format!("    \"host_cpus\": {},\n", sweep.host_cpus));
    s.push_str(&format!("    \"median_speedup\": {:.3},\n", sweep.median_speedup));
    s.push_str("    \"queries\": [\n");
    for (i, r) in sweep.rows.iter().enumerate() {
        s.push_str("      {");
        s.push_str(&format!("\"id\": \"{}\", ", r.id));
        if let Some(err) = &r.error {
            s.push_str(&format!("\"error\": \"{}\"", json_escape(err)));
        } else {
            s.push_str(&format!("\"result_rows\": {}, ", r.result_rows));
            s.push_str(&format!("\"speedup\": {:.3}, ", r.speedup));
            let walls: Vec<String> = r
                .points
                .iter()
                .map(|p| format!("\"{}\": {:.1}", p.threads, p.wall.median_us))
                .collect();
            s.push_str(&format!("\"wall_us\": {{{}}}", walls.join(", ")));
        }
        s.push_str(&format!("}}{}\n", if i + 1 < sweep.rows.len() { "," } else { "" }));
    }
    s.push_str("    ]\n  }");
    s
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes benchmark rows as the `BENCH_exec.json` document; a
/// thread sweep, when run, lands under the `threads_sweep` key.
pub fn render_json(
    rows: &[QueryExecBench],
    scale: Scale,
    reps: usize,
    sweep: Option<&ThreadSweep>,
) -> String {
    let scale_name = match scale {
        Scale::Small => "small",
        Scale::Paper => "paper-scale",
    };
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"scale\": \"{scale_name}\",\n  \"reps\": {reps},\n"));
    s.push_str("  \"queries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"id\": \"{}\",\n", r.id));
        s.push_str(&format!("      \"workload\": \"{}\",\n", r.workload));
        if let Some(err) = &r.error {
            s.push_str(&format!("      \"error\": \"{}\"\n", json_escape(err)));
        } else {
            s.push_str(&format!("      \"sql\": \"{}\",\n", json_escape(&r.sql)));
            s.push_str(&format!("      \"result_rows\": {},\n", r.result_rows));
            s.push_str(&format!("      \"wall_min_us\": {:.1},\n", r.wall.min_us));
            s.push_str(&format!("      \"wall_us\": {:.1},\n", r.wall.median_us));
            s.push_str(&format!("      \"wall_p95_us\": {:.1},\n", r.wall.p95_us));
            let phases: Vec<String> = r
                .phases
                .iter()
                .map(|(name, us)| format!("\"{}\": {:.1}", json_escape(name), us))
                .collect();
            s.push_str(&format!("      \"phases_us\": {{{}}},\n", phases.join(", ")));
            s.push_str("      \"operators\": [\n");
            for (j, op) in r.ops.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"id\": {}, \"label\": \"{}\", \"rows_in\": {}, \"rows_out\": {}, \"wall_us\": {:.1}}}{}\n",
                    op.id,
                    json_escape(&op.label),
                    op.rows_in,
                    op.rows_out,
                    op.wall_us,
                    if j + 1 < r.ops.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
        }
        s.push_str(&format!("    }}{}\n", if i + 1 < rows.len() { "," } else { "" }));
    }
    s.push_str("  ]");
    if let Some(sweep) = sweep {
        s.push_str(&format!(",\n  \"threads_sweep\": {}", render_sweep_json(sweep)));
    }
    s.push_str("\n}\n");
    s
}
