//! Normalized plan fingerprints.
//!
//! A fingerprint is a 64-bit FNV-1a hash over a canonical pre-order
//! encoding of the plan: operator tags, operand indices, key directions,
//! literal values, layouts and declared names. Node ids and cardinality
//! estimates are deliberately excluded, so the fingerprint is stable
//! across planner runs (ids are assignment-order artifacts) and across
//! statistics refreshes — two plans share a fingerprint exactly when
//! they compute the same thing the same way. Plan/result caching keys
//! on this value.

use aqks_sqlgen::{PhysAggItem, PhysPred, PlanNode, PlanOp};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn bytes(&mut self, b: &[u8]) {
        for &byte in b {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }

    fn usize(&mut self, v: usize) {
        self.bytes(&(v as u64).to_le_bytes());
    }

    // Length-prefixed so adjacent strings cannot alias each other.
    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }
}

/// Computes the normalized fingerprint of a plan tree.
pub fn fingerprint(plan: &PlanNode) -> u64 {
    let mut h = Fnv(FNV_OFFSET);
    hash_node(plan, &mut h);
    h.0
}

/// The fingerprint formatted as 16 lowercase hex digits (the form shown
/// by `aqks explain` and consumed as a cache key).
pub fn fingerprint_hex(plan: &PlanNode) -> String {
    format!("{:016x}", fingerprint(plan))
}

fn hash_node(node: &PlanNode, h: &mut Fnv) {
    match &node.op {
        PlanOp::Scan { relation, alias, pushed } => {
            h.u8(0);
            h.str(&relation.to_lowercase());
            h.str(alias);
            hash_preds(pushed, h);
        }
        PlanOp::DerivedTable { alias, names } => {
            h.u8(1);
            h.str(alias);
            hash_names(names, h);
        }
        PlanOp::HashJoin { left_keys, right_keys, build_left } => {
            h.u8(2);
            h.usize(left_keys.len());
            for (&l, &r) in left_keys.iter().zip(right_keys) {
                h.usize(l);
                h.usize(r);
            }
            h.u8(u8::from(*build_left));
        }
        PlanOp::CrossJoin => h.u8(3),
        PlanOp::Filter { preds } => {
            h.u8(4);
            hash_preds(preds, h);
        }
        PlanOp::HashAggregate { group, items, names } => {
            h.u8(5);
            h.usize(group.len());
            for &g in group {
                h.usize(g);
            }
            h.usize(items.len());
            for item in items {
                match item {
                    PhysAggItem::Col(i) => {
                        h.u8(0);
                        h.usize(*i);
                    }
                    PhysAggItem::Agg { func, arg, distinct } => {
                        h.u8(1);
                        h.str(func.keyword());
                        h.usize(*arg);
                        h.u8(u8::from(*distinct));
                    }
                }
            }
            hash_names(names, h);
        }
        PlanOp::Project { cols, names } => {
            h.u8(6);
            h.usize(cols.len());
            for &c in cols {
                h.usize(c);
            }
            hash_names(names, h);
        }
        PlanOp::Distinct => h.u8(7),
        PlanOp::Sort { keys } => {
            h.u8(8);
            h.usize(keys.len());
            for &(i, desc) in keys {
                h.usize(i);
                h.u8(u8::from(desc));
            }
        }
        PlanOp::Limit { n } => {
            h.u8(9);
            h.usize(*n);
        }
    }
    h.usize(node.children.len());
    for c in &node.children {
        hash_node(c, h);
    }
}

fn hash_names(names: &[String], h: &mut Fnv) {
    h.usize(names.len());
    for n in names {
        h.str(&n.to_lowercase());
    }
}

fn hash_preds(preds: &[PhysPred], h: &mut Fnv) {
    h.usize(preds.len());
    for p in preds {
        match p {
            PhysPred::EqCols(l, r) => {
                h.u8(0);
                h.usize(*l);
                h.usize(*r);
            }
            PhysPred::ContainsCi(i, s) => {
                h.u8(1);
                h.usize(*i);
                h.str(s);
            }
            PhysPred::EqLit(i, v) => {
                h.u8(2);
                h.usize(*i);
                h.str(&v.to_string());
            }
        }
    }
}
