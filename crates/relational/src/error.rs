//! Error type shared across the relational substrate.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by schema manipulation, data loading, and normalization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A relation with this name already exists in the database.
    DuplicateRelation(String),
    /// The named relation does not exist.
    UnknownRelation(String),
    /// The named attribute does not exist in the given relation.
    UnknownAttribute {
        /// Relation searched.
        relation: String,
        /// Attribute that was not found.
        attribute: String,
    },
    /// A tuple had the wrong number of values for its relation.
    ArityMismatch {
        /// Target relation.
        relation: String,
        /// Declared attribute count.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A value's type did not match the attribute's declared type.
    TypeMismatch {
        /// Target relation.
        relation: String,
        /// Offending attribute.
        attribute: String,
        /// Declared type name.
        expected: String,
        /// Supplied value's type name.
        got: String,
    },
    /// Inserting a tuple would duplicate an existing primary-key value.
    DuplicateKey {
        /// Target relation.
        relation: String,
        /// Rendered key value.
        key: String,
    },
    /// A foreign-key value has no matching referenced tuple.
    ForeignKeyViolation {
        /// Referencing relation.
        relation: String,
        /// Rendered foreign-key description.
        fk: String,
    },
    /// A schema was declared inconsistently (bad PK/FK attribute, etc.).
    InvalidSchema(String),
    /// A resource budget tripped during an index probe (cooperative
    /// cancellation; see `aqks-guard`).
    Budget(aqks_guard::Tripped),
    /// A deterministic failpoint fired (fault-injection builds only).
    Fault(&'static str),
}

impl From<aqks_guard::Tripped> for Error {
    fn from(t: aqks_guard::Tripped) -> Self {
        Error::Budget(t)
    }
}

impl From<aqks_guard::FailpointError> for Error {
    fn from(f: aqks_guard::FailpointError) -> Self {
        Error::Fault(f.site)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateRelation(r) => write!(f, "relation `{r}` already exists"),
            Error::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            Error::UnknownAttribute { relation, attribute } => {
                write!(f, "unknown attribute `{attribute}` in relation `{relation}`")
            }
            Error::ArityMismatch { relation, expected, got } => {
                write!(f, "relation `{relation}` expects {expected} values, got {got}")
            }
            Error::TypeMismatch { relation, attribute, expected, got } => write!(
                f,
                "type mismatch for `{relation}.{attribute}`: expected {expected}, got {got}"
            ),
            Error::DuplicateKey { relation, key } => {
                write!(f, "duplicate primary key {key} in relation `{relation}`")
            }
            Error::ForeignKeyViolation { relation, fk } => {
                write!(f, "foreign key violation in `{relation}`: {fk}")
            }
            Error::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            Error::Budget(t) => write!(f, "{t}"),
            Error::Fault(site) => write!(f, "injected fault at `{site}`"),
        }
    }
}

impl std::error::Error for Error {}
