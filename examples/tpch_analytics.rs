//! The TPC-H workload of Table 3 (T1–T8) on the synthetic generator,
//! side by side: semantic engine vs SQAK. This is a human-readable
//! version of the `repro table5` output, showing the SQL both engines
//! emit, not just the answers.
//!
//! ```text
//! cargo run --example tpch_analytics
//! ```

use aqks::core::Engine;
use aqks::datasets::{generate_tpch, TpchConfig};
use aqks::sqak::Sqak;

const QUERIES: &[(&str, &str)] = &[
    ("T1", "order AVG amount"),
    ("T2", "MAX COUNT order GROUPBY nation"),
    ("T3", r#"COUNT order "royal olive""#),
    ("T4", r#"supplier MAX acctbal "yellow tomato""#),
    ("T5", r#"COUNT supplier "Indian black chocolate""#),
    ("T6", "COUNT part GROUPBY supplier"),
    ("T7", "COUNT order SUM amount GROUPBY mktsegment"),
    ("T8", r#"COUNT supplier "pink rose" "white rose""#),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = generate_tpch(&TpchConfig::small());
    println!("synthetic TPC-H: {} tuples\n", db.total_rows());

    let engine = Engine::new(db.clone())?;
    let sqak = Sqak::new(db);

    for (id, query) in QUERIES {
        println!("==== {id}: {query} ====\n");
        match engine.answer(query, 1) {
            Ok(answers) => {
                let a = &answers[0];
                println!(
                    "[ours] {}\n       -> {} answer(s)",
                    a.sql_text.replace('\n', "\n       "),
                    a.result.len()
                );
                for row in a.result.rows.iter().take(4) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("          {}", cells.join(" | "));
                }
                if a.result.len() > 4 {
                    println!("          ... ({} more)", a.result.len() - 4);
                }
            }
            Err(e) => println!("[ours] error: {e}"),
        }
        match sqak.generate(query) {
            Ok(g) => {
                let r = sqak.answer(query)?;
                println!(
                    "[sqak] {}\n       -> {} answer(s)",
                    g.sql_text.replace('\n', "\n       "),
                    r.len()
                );
            }
            Err(e) => println!("[sqak] N.A.: {e}"),
        }
        println!();
    }
    Ok(())
}
