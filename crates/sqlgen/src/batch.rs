//! Typed columnar batches — the executor's data representation.
//!
//! A [`ColumnBatch`] is a fixed window of rows stored column-major: one
//! typed vector per column plus a validity bitmap marking NULL slots.
//! Columns whose non-null values are uniformly `Int`, `Float` or `Str`
//! get a dense typed vector; mixed-type columns (and date columns) fall
//! back to a `Vec<Value>` so no value representation is ever lossy.
//!
//! Columns are individually reference-counted (`Arc<Column>`), which
//! makes two hot paths allocation-free: `Project` re-arranges `Arc`s
//! without touching data, and the shared-subplan replay
//! (`aqks-equiv` → `CachedRows`) re-emits a materialized batch per
//! consumer for the cost of a handful of `Arc` bumps instead of a deep
//! row-by-row clone. Batches are `Send + Sync`, so parallel operator
//! sections can hand them across the morsel worker pool.

use std::sync::Arc;

use aqks_relational::{Row, Value};

/// A packed validity bitmap: bit `i` set means slot `i` holds a
/// non-NULL value.
#[derive(Debug, Clone, PartialEq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
    zeros: usize,
}

impl Bitmap {
    /// An empty bitmap with room for `cap` bits.
    pub fn with_capacity(cap: usize) -> Bitmap {
        Bitmap { words: Vec::with_capacity(cap.div_ceil(64)), len: 0, zeros: 0 }
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        } else {
            self.zeros += 1;
        }
        self.len += 1;
    }

    /// Bit `i` (true = valid / non-NULL).
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when every bit is set (no NULLs) — the fast-path guard that
    /// lets kernels skip per-slot validity checks.
    pub fn all_valid(&self) -> bool {
        self.zeros == 0
    }

    /// Appends all bits of `other`.
    pub fn extend(&mut self, other: &Bitmap) {
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }
}

/// The typed storage of one column. NULL slots hold a type-default
/// placeholder (`0`, `0.0`, `""`); the validity bitmap is authoritative.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// All non-null values are `Value::Int`.
    Int(Vec<i64>),
    /// All non-null values are `Value::Float`.
    Float(Vec<f64>),
    /// All non-null values are `Value::Str`.
    Str(Vec<String>),
    /// Mixed-type, date, or all-NULL column: verbatim values.
    Any(Vec<Value>),
}

/// One column of a [`ColumnBatch`]: typed data plus validity.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Bitmap,
}

impl Column {
    /// Builds a column from row-major values, choosing the densest
    /// representation whose non-null values are type-uniform.
    pub fn from_values(vals: Vec<Value>) -> Column {
        let (mut ints, mut floats, mut strs, mut others) = (0usize, 0usize, 0usize, 0usize);
        for v in &vals {
            match v {
                Value::Null => {}
                Value::Int(_) => ints += 1,
                Value::Float(_) => floats += 1,
                Value::Str(_) => strs += 1,
                _ => others += 1,
            }
        }
        let non_null = ints + floats + strs + others;
        let mut validity = Bitmap::with_capacity(vals.len());
        let data = if non_null > 0 && ints == non_null {
            let mut out = Vec::with_capacity(vals.len());
            for v in &vals {
                match v {
                    Value::Int(i) => {
                        validity.push(true);
                        out.push(*i);
                    }
                    _ => {
                        validity.push(false);
                        out.push(0);
                    }
                }
            }
            ColumnData::Int(out)
        } else if non_null > 0 && floats == non_null {
            let mut out = Vec::with_capacity(vals.len());
            for v in &vals {
                match v {
                    Value::Float(f) => {
                        validity.push(true);
                        out.push(*f);
                    }
                    _ => {
                        validity.push(false);
                        out.push(0.0);
                    }
                }
            }
            ColumnData::Float(out)
        } else if non_null > 0 && strs == non_null {
            let mut out = Vec::with_capacity(vals.len());
            for v in vals {
                match v {
                    Value::Str(s) => {
                        validity.push(true);
                        out.push(s);
                    }
                    _ => {
                        validity.push(false);
                        out.push(String::new());
                    }
                }
            }
            ColumnData::Str(out)
        } else {
            for v in &vals {
                validity.push(!v.is_null());
            }
            ColumnData::Any(vals)
        };
        Column { data, validity }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// True when the column holds no slots.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// The typed storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The validity bitmap.
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// True when slot `i` holds a non-NULL value.
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.get(i)
    }

    /// Exact bytes of this column's typed storage and validity bitmap:
    /// element storage (including per-`String`/`Value` heap payloads)
    /// plus the bitmap words. Vec spare capacity is not counted — the
    /// figure is the data actually resident, which is what operator
    /// memory accounting reports.
    pub fn byte_size(&self) -> u64 {
        let data = match &self.data {
            ColumnData::Int(v) => v.len() * std::mem::size_of::<i64>(),
            ColumnData::Float(v) => v.len() * std::mem::size_of::<f64>(),
            ColumnData::Str(v) => v.iter().map(|s| std::mem::size_of::<String>() + s.len()).sum(),
            ColumnData::Any(v) => v
                .iter()
                .map(|val| {
                    std::mem::size_of::<Value>()
                        + match val {
                            Value::Str(s) => s.len(),
                            _ => 0,
                        }
                })
                .sum(),
        };
        (data + self.validity.words.len() * std::mem::size_of::<u64>()) as u64
    }

    /// Slot `i` as an owned [`Value`] (NULL slots yield `Value::Null`).
    pub fn value(&self, i: usize) -> Value {
        if !self.validity.get(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Any(v) => v[i].clone(),
        }
    }

    /// A new column holding `self[idx[0]], self[idx[1]], …`, preserving
    /// the typed representation.
    pub fn gather(&self, idx: &[u32]) -> Column {
        let mut validity = Bitmap::with_capacity(idx.len());
        for &i in idx {
            validity.push(self.validity.get(i as usize));
        }
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => ColumnData::Float(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Str(v) => {
                ColumnData::Str(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColumnData::Any(v) => {
                ColumnData::Any(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        Column { data, validity }
    }

    /// Concatenates columns in order. Typed storage is preserved when
    /// every input shares a representation; otherwise the result falls
    /// back to `Any`.
    pub fn concat(cols: &[&Column]) -> Column {
        let total: usize = cols.iter().map(|c| c.len()).sum();
        let same_kind = |probe: fn(&ColumnData) -> bool| cols.iter().all(|c| probe(&c.data));
        let mut validity = Bitmap::with_capacity(total);
        for c in cols {
            validity.extend(&c.validity);
        }
        let data = if same_kind(|d| matches!(d, ColumnData::Int(_))) {
            let mut out = Vec::with_capacity(total);
            for c in cols {
                if let ColumnData::Int(v) = &c.data {
                    out.extend_from_slice(v);
                }
            }
            ColumnData::Int(out)
        } else if same_kind(|d| matches!(d, ColumnData::Float(_))) {
            let mut out = Vec::with_capacity(total);
            for c in cols {
                if let ColumnData::Float(v) = &c.data {
                    out.extend_from_slice(v);
                }
            }
            ColumnData::Float(out)
        } else if same_kind(|d| matches!(d, ColumnData::Str(_))) {
            let mut out = Vec::with_capacity(total);
            for c in cols {
                if let ColumnData::Str(v) = &c.data {
                    out.extend_from_slice(v);
                }
            }
            ColumnData::Str(out)
        } else {
            let mut out = Vec::with_capacity(total);
            for c in cols {
                for i in 0..c.len() {
                    out.push(c.value(i));
                }
            }
            ColumnData::Any(out)
        };
        Column { data, validity }
    }
}

/// A window of rows stored column-major. Columns are `Arc`-shared, so
/// column-preserving transforms (projection, replay) are zero-copy.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    len: usize,
    columns: Vec<Arc<Column>>,
}

impl ColumnBatch {
    /// An empty batch with `width` (empty) columns.
    pub fn empty(width: usize) -> ColumnBatch {
        ColumnBatch::from_row_refs(width, &[])
    }

    /// Builds a batch from borrowed rows (each of `width` values).
    pub fn from_row_refs(width: usize, rows: &[&Row]) -> ColumnBatch {
        let columns = (0..width)
            .map(|j| Arc::new(Column::from_values(rows.iter().map(|r| r[j].clone()).collect())))
            .collect();
        ColumnBatch { len: rows.len(), columns }
    }

    /// Builds a batch from owned rows.
    pub fn from_rows(width: usize, rows: &[Row]) -> ColumnBatch {
        let refs: Vec<&Row> = rows.iter().collect();
        ColumnBatch::from_row_refs(width, &refs)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Column `c`.
    pub fn column(&self, c: usize) -> &Column {
        &self.columns[c]
    }

    /// The `Arc` handle of column `c` (for zero-copy re-use).
    pub fn column_arc(&self, c: usize) -> Arc<Column> {
        Arc::clone(&self.columns[c])
    }

    /// Value at (column `c`, row `i`) as an owned [`Value`].
    pub fn value(&self, c: usize, i: usize) -> Value {
        self.columns[c].value(i)
    }

    /// Exact resident bytes of the batch: the sum of its columns'
    /// [`Column::byte_size`]. `Arc`-shared columns are counted in every
    /// batch that references them — the figure answers "how much data
    /// does this batch address", not unique heap ownership.
    pub fn byte_size(&self) -> u64 {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    /// Row `i` materialized as an owned row.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// All rows, materialized row-major.
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Zero-copy column projection: the output shares the selected
    /// columns' storage (only `Arc` reference counts move).
    pub fn select(&self, cols: &[usize]) -> ColumnBatch {
        ColumnBatch {
            len: self.len,
            columns: cols.iter().map(|&c| Arc::clone(&self.columns[c])).collect(),
        }
    }

    /// Row selection: the output holds rows `idx[0], idx[1], …` in that
    /// order (duplicates allowed).
    pub fn gather(&self, idx: &[u32]) -> ColumnBatch {
        ColumnBatch {
            len: idx.len(),
            columns: self.columns.iter().map(|c| Arc::new(c.gather(idx))).collect(),
        }
    }

    /// The first `n` rows (the whole batch when `n >= len`).
    pub fn head(&self, n: usize) -> ColumnBatch {
        if n >= self.len {
            return self.clone();
        }
        let idx: Vec<u32> = (0..n as u32).collect();
        self.gather(&idx)
    }

    /// Horizontal concatenation: `left`'s columns then `right`'s, for
    /// join output assembly. Both sides must have equal row counts.
    pub fn hcat(left: &ColumnBatch, right: &ColumnBatch) -> ColumnBatch {
        debug_assert_eq!(left.len, right.len);
        ColumnBatch {
            len: left.len,
            columns: left.columns.iter().chain(&right.columns).cloned().collect(),
        }
    }

    /// Vertical concatenation of `width`-column batches into one batch.
    pub fn concat(width: usize, batches: &[ColumnBatch]) -> ColumnBatch {
        let len = batches.iter().map(|b| b.len).sum();
        let columns = (0..width)
            .map(|j| {
                let cols: Vec<&Column> = batches.iter().map(|b| &*b.columns[j]).collect();
                Arc::new(Column::concat(&cols))
            })
            .collect();
        ColumnBatch { len, columns }
    }
}

/// Compile-time `Send + Sync` guarantees for everything the parallel
/// executor shares across worker threads (and the `aqks-server`
/// groundwork: batches and shared state must be safe to move between
/// request handlers).
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Bitmap>();
    assert_send_sync::<Column>();
    assert_send_sync::<ColumnData>();
    assert_send_sync::<ColumnBatch>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use aqks_relational::Date;

    fn rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::str("a"), Value::Float(1.5), Value::Int(7)],
            vec![Value::Null, Value::str("b"), Value::Null, Value::Float(2.5)],
            vec![
                Value::Int(3),
                Value::Null,
                Value::Float(-0.5),
                Value::Date(Date::new(2011, 6, 13)),
            ],
        ]
    }

    #[test]
    fn roundtrip_preserves_values_and_nulls() {
        let rs = rows();
        let b = ColumnBatch::from_rows(4, &rs);
        assert_eq!(b.len(), 3);
        assert_eq!(b.width(), 4);
        assert_eq!(b.to_rows(), rs);
    }

    #[test]
    fn typed_columns_are_detected() {
        let b = ColumnBatch::from_rows(4, &rows());
        assert!(matches!(b.column(0).data(), ColumnData::Int(_)));
        assert!(matches!(b.column(1).data(), ColumnData::Str(_)));
        assert!(matches!(b.column(2).data(), ColumnData::Float(_)));
        // Mixed Int/Float/Date column falls back to verbatim values.
        assert!(matches!(b.column(3).data(), ColumnData::Any(_)));
        assert!(!b.column(0).validity().all_valid());
    }

    #[test]
    fn all_null_column_is_any() {
        let c = Column::from_values(vec![Value::Null, Value::Null]);
        assert!(matches!(c.data(), ColumnData::Any(_)));
        assert_eq!(c.value(0), Value::Null);
    }

    #[test]
    fn gather_reorders_and_duplicates() {
        let b = ColumnBatch::from_rows(4, &rows());
        let g = b.gather(&[2, 0, 2]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.value(0, 0), Value::Int(3));
        assert_eq!(g.value(0, 1), Value::Int(1));
        assert_eq!(g.row(2), b.row(2));
    }

    #[test]
    fn select_is_zero_copy() {
        let b = ColumnBatch::from_rows(4, &rows());
        let s = b.select(&[1, 0]);
        assert!(Arc::ptr_eq(&s.column_arc(0), &b.column_arc(1)));
        assert_eq!(s.row(0), vec![Value::str("a"), Value::Int(1)]);
    }

    #[test]
    fn concat_unifies_typed_and_mixed() {
        let a = ColumnBatch::from_rows(1, &[vec![Value::Int(1)], vec![Value::Int(2)]]);
        let b = ColumnBatch::from_rows(1, &[vec![Value::Float(0.5)]]);
        let same = ColumnBatch::concat(1, &[a.clone(), a.clone()]);
        assert!(matches!(same.column(0).data(), ColumnData::Int(_)));
        assert_eq!(same.len(), 4);
        let mixed = ColumnBatch::concat(1, &[a, b]);
        assert!(matches!(mixed.column(0).data(), ColumnData::Any(_)));
        assert_eq!(mixed.value(0, 2), Value::Float(0.5));
    }

    #[test]
    fn head_truncates() {
        let b = ColumnBatch::from_rows(4, &rows());
        assert_eq!(b.head(2).len(), 2);
        assert_eq!(b.head(10).len(), 3);
    }

    #[test]
    fn hcat_appends_columns() {
        let b = ColumnBatch::from_rows(4, &rows());
        let j = ColumnBatch::hcat(&b.select(&[0]), &b.select(&[1]));
        assert_eq!(j.width(), 2);
        assert_eq!(j.row(0), vec![Value::Int(1), Value::str("a")]);
    }
}
