//! Plain-text persistence: a schema description format and CSV data
//! files, so users can bring their own databases to the engine (and the
//! bundled datasets can be exported for inspection).
//!
//! ## Schema format
//!
//! One relation per block, `#` comments, blank-line separated:
//!
//! ```text
//! relation Student
//!   attr Sid text
//!   attr Sname text
//!   attr Age int
//!   key Sid
//!
//! relation Enrol
//!   attr Sid text
//!   attr Code text
//!   attr Grade text
//!   key Sid Code
//!   fk Sid -> Student(Sid)
//!   fk Code -> Course(Code)
//!   fd Sid -> Sname Age          # extra FDs for unnormalized relations
//!   entity Sid = Student          # naming hint for 3NF synthesis
//! ```
//!
//! Types: `int`, `float`, `text`, `date`.
//!
//! ## CSV format
//!
//! One file per relation, first row the attribute names, comma-separated,
//! RFC-4180 quoting (`"` doubles inside quoted fields). Empty unquoted
//! fields are NULL; dates are `YYYY-MM-DD`.

use std::fmt::Write as _;
use std::path::Path;

use crate::database::Database;
use crate::error::{Error, Result};
use crate::schema::{AttrType, DatabaseSchema, RelationSchema};
use crate::table::Table;
use crate::value::{Date, Value};

// ---------------------------------------------------------------------
// Schema text
// ---------------------------------------------------------------------

/// Renders a database schema in the format of the module docs.
pub fn schema_to_text(schema: &DatabaseSchema) -> String {
    let mut out = String::new();
    for rel in &schema.relations {
        let _ = writeln!(out, "relation {}", rel.name);
        for a in &rel.attrs {
            let _ = writeln!(out, "  attr {} {}", a.name, a.ty.name());
        }
        if !rel.primary_key.is_empty() {
            let _ = writeln!(out, "  key {}", rel.primary_key.join(" "));
        }
        for fk in &rel.foreign_keys {
            let _ = writeln!(
                out,
                "  fk {} -> {}({})",
                fk.attrs.join(" "),
                fk.ref_relation,
                fk.ref_attrs.join(" ")
            );
        }
        for fd in &rel.extra_fds {
            let lhs: Vec<&str> = fd.lhs.iter().map(String::as_str).collect();
            let rhs: Vec<&str> = fd.rhs.iter().map(String::as_str).collect();
            let _ = writeln!(out, "  fd {} -> {}", lhs.join(" "), rhs.join(" "));
        }
        for (attrs, name) in &rel.entity_names {
            let _ = writeln!(out, "  entity {} = {}", attrs.join(" "), name);
        }
        out.push('\n');
    }
    out
}

fn parse_type(s: &str) -> Result<AttrType> {
    match s.to_ascii_lowercase().as_str() {
        "int" => Ok(AttrType::Int),
        "float" => Ok(AttrType::Float),
        "text" => Ok(AttrType::Text),
        "date" => Ok(AttrType::Date),
        other => Err(Error::InvalidSchema(format!("unknown type `{other}`"))),
    }
}

/// Parses the schema text format.
pub fn schema_from_text(text: &str) -> Result<DatabaseSchema> {
    let mut schema = DatabaseSchema::new();
    let mut current: Option<RelationSchema> = None;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| Error::InvalidSchema(format!("line {}: {msg}", ln + 1));
        let mut words = line.split_whitespace();
        match words.next() {
            Some("relation") => {
                if let Some(rel) = current.take() {
                    schema.relations.push(rel);
                }
                let name = words.next().ok_or_else(|| err("relation needs a name"))?;
                current = Some(RelationSchema::new(name));
            }
            Some("attr") => {
                let rel = current.as_mut().ok_or_else(|| err("attr outside relation"))?;
                let name = words.next().ok_or_else(|| err("attr needs a name"))?;
                let ty = words.next().ok_or_else(|| err("attr needs a type"))?;
                rel.add_attr(name, parse_type(ty)?);
            }
            Some("key") => {
                let rel = current.as_mut().ok_or_else(|| err("key outside relation"))?;
                rel.set_primary_key(words.map(str::to_string).collect::<Vec<_>>());
            }
            Some("fk") => {
                let rel = current.as_mut().ok_or_else(|| err("fk outside relation"))?;
                let rest: Vec<&str> = line["fk".len()..].trim().split("->").collect();
                if rest.len() != 2 {
                    return Err(err("fk syntax: fk a b -> Target(x y)"));
                }
                let attrs: Vec<String> = rest[0].split_whitespace().map(str::to_string).collect();
                let target = rest[1].trim();
                let open = target.find('(').ok_or_else(|| err("fk target needs (attrs)"))?;
                let close = target.rfind(')').ok_or_else(|| err("fk target needs (attrs)"))?;
                let ref_rel = target[..open].trim().to_string();
                let ref_attrs: Vec<String> = target[open + 1..close]
                    .split([',', ' '])
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().to_string())
                    .collect();
                rel.add_foreign_key(attrs, ref_rel, ref_attrs);
            }
            Some("fd") => {
                let rel = current.as_mut().ok_or_else(|| err("fd outside relation"))?;
                let rest: Vec<&str> = line["fd".len()..].trim().split("->").collect();
                if rest.len() != 2 {
                    return Err(err("fd syntax: fd a b -> c d"));
                }
                rel.add_fd(
                    rest[0].split_whitespace().map(str::to_string).collect::<Vec<_>>(),
                    rest[1].split_whitespace().map(str::to_string).collect::<Vec<_>>(),
                );
            }
            Some("entity") => {
                let rel = current.as_mut().ok_or_else(|| err("entity outside relation"))?;
                let rest: Vec<&str> = line["entity".len()..].trim().split('=').collect();
                if rest.len() != 2 {
                    return Err(err("entity syntax: entity a b = Name"));
                }
                rel.name_entity(
                    rest[0].split_whitespace().map(str::to_string).collect::<Vec<_>>(),
                    rest[1].trim(),
                );
            }
            Some(other) => return Err(err(&format!("unknown directive `{other}`"))),
            None => {}
        }
    }
    if let Some(rel) = current.take() {
        schema.relations.push(rel);
    }
    schema.validate()?;
    Ok(schema)
}

// ---------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders a table as CSV (header + rows). NULL renders as an empty
/// unquoted field.
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table.schema.attr_names().map(csv_escape).collect();
    let _ = writeln!(out, "{}", header.join(","));
    for row in table.rows() {
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                other => csv_escape(&other.to_string()),
            })
            .collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

/// Splits one CSV record (RFC-4180 quoting). Returns (fields, was_quoted).
fn split_csv_line(line: &str) -> Result<Vec<(String, bool)>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' if cur.is_empty() => {
                    in_quotes = true;
                    quoted = true;
                }
                ',' => {
                    fields.push((std::mem::take(&mut cur), quoted));
                    quoted = false;
                }
                other => cur.push(other),
            }
        }
    }
    if in_quotes {
        return Err(Error::InvalidSchema("unterminated CSV quote".into()));
    }
    fields.push((cur, quoted));
    Ok(fields)
}

fn parse_value(text: &str, quoted: bool, ty: AttrType, relation: &str) -> Result<Value> {
    if text.is_empty() && !quoted {
        return Ok(Value::Null);
    }
    let bad = |msg: String| Error::TypeMismatch {
        relation: relation.to_string(),
        attribute: String::new(),
        expected: ty.name().to_string(),
        got: msg,
    };
    Ok(match ty {
        AttrType::Int => Value::Int(text.parse().map_err(|_| bad(text.into()))?),
        AttrType::Float => Value::Float(text.parse().map_err(|_| bad(text.into()))?),
        AttrType::Text => Value::str(text),
        AttrType::Date => {
            let parts: Vec<&str> = text.split('-').collect();
            if parts.len() != 3 {
                return Err(bad(text.into()));
            }
            let y = parts[0].parse().map_err(|_| bad(text.into()))?;
            let m = parts[1].parse().map_err(|_| bad(text.into()))?;
            let d = parts[2].parse().map_err(|_| bad(text.into()))?;
            if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
                return Err(bad(text.into()));
            }
            Value::Date(Date::new(y, m, d))
        }
    })
}

/// Loads CSV rows into an existing relation of the database. The header
/// must list the relation's attributes (any order).
pub fn load_csv(db: &mut Database, relation: &str, csv: &str) -> Result<usize> {
    let schema = db
        .table(relation)
        .ok_or_else(|| Error::UnknownRelation(relation.to_string()))?
        .schema
        .clone();
    let mut lines = csv.lines();
    let header = lines.next().ok_or_else(|| Error::InvalidSchema("empty CSV".into()))?;
    let cols: Vec<usize> = split_csv_line(header)?
        .into_iter()
        .map(|(name, _)| {
            schema.attr_index(&name).ok_or_else(|| Error::UnknownAttribute {
                relation: relation.to_string(),
                attribute: name,
            })
        })
        .collect::<Result<_>>()?;
    if cols.len() != schema.attrs.len() {
        return Err(Error::InvalidSchema(format!(
            "CSV header for `{relation}` must list all {} attributes",
            schema.attrs.len()
        )));
    }
    let mut count = 0;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let fields = split_csv_line(line)?;
        if fields.len() != cols.len() {
            return Err(Error::ArityMismatch {
                relation: relation.to_string(),
                expected: cols.len(),
                got: fields.len(),
            });
        }
        let mut row = vec![Value::Null; schema.attrs.len()];
        for ((text, quoted), &idx) in fields.into_iter().zip(&cols) {
            row[idx] = parse_value(&text, quoted, schema.attrs[idx].ty, relation)?;
        }
        db.insert(relation, row)?;
        count += 1;
    }
    Ok(count)
}

// ---------------------------------------------------------------------
// Directory import/export
// ---------------------------------------------------------------------

/// Writes `schema.txt` plus one `<Relation>.csv` per relation.
pub fn export_dir(db: &Database, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("schema.txt"), schema_to_text(&db.schema()))?;
    for table in db.tables() {
        std::fs::write(dir.join(format!("{}.csv", table.schema.name)), table_to_csv(table))?;
    }
    Ok(())
}

/// Reads a directory written by [`export_dir`] (or hand-authored in the
/// same format) into a new database named after the directory.
pub fn import_dir(dir: &Path) -> Result<Database> {
    let read = |p: std::path::PathBuf| {
        std::fs::read_to_string(&p)
            .map_err(|e| Error::InvalidSchema(format!("{}: {e}", p.display())))
    };
    let schema = schema_from_text(&read(dir.join("schema.txt"))?)?;
    let name = dir.file_name().and_then(|s| s.to_str()).unwrap_or("imported").to_string();
    let mut db = Database::new(name);
    for rel in schema.relations {
        db.add_relation(rel)?;
    }
    let relations: Vec<String> = db.tables().iter().map(|t| t.schema.name.clone()).collect();
    for rel in relations {
        let path = dir.join(format!("{rel}.csv"));
        if path.exists() {
            load_csv(&mut db, &rel, &read(path)?)?;
        }
    }
    db.validate()?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new("io");
        let mut s = RelationSchema::new("Student");
        s.add_attr("Sid", AttrType::Text)
            .add_attr("Sname", AttrType::Text)
            .add_attr("Age", AttrType::Int)
            .add_attr("Gpa", AttrType::Float)
            .add_attr("Since", AttrType::Date);
        s.set_primary_key(["Sid"]);
        s.add_fd(["Sname"], ["Age"]);
        s.name_entity(["Sid"], "Student");
        db.add_relation(s).unwrap();
        db.insert(
            "Student",
            vec![
                Value::str("s1"),
                Value::str("Quote \"Me\", please"),
                Value::Int(22),
                Value::Float(3.5),
                Value::Date(Date::new(2020, 9, 1)),
            ],
        )
        .unwrap();
        db.insert(
            "Student",
            vec![Value::str("s2"), Value::Null, Value::Null, Value::Null, Value::Null],
        )
        .unwrap();
        db
    }

    #[test]
    fn schema_text_roundtrip() {
        let db = sample_db();
        let text = schema_to_text(&db.schema());
        let parsed = schema_from_text(&text).unwrap();
        assert_eq!(parsed.relations.len(), 1);
        let rel = &parsed.relations[0];
        assert_eq!(rel.name, "Student");
        assert_eq!(rel.primary_key, vec!["Sid"]);
        assert_eq!(rel.extra_fds.len(), 1);
        assert_eq!(rel.entity_name_for(["Sid"]), Some("Student"));
        assert_eq!(rel.attrs[4].ty, AttrType::Date);
    }

    #[test]
    fn schema_text_with_fk_and_comments() {
        let text = "\
# university
relation Student
  attr Sid text
  key Sid

relation Enrol
  attr Sid text
  attr Code text
  key Sid Code
  fk Sid -> Student(Sid)   # reference
";
        let schema = schema_from_text(text).unwrap();
        assert_eq!(schema.relations.len(), 2);
        assert_eq!(schema.relations[1].foreign_keys[0].ref_relation, "Student");
    }

    #[test]
    fn schema_text_errors() {
        assert!(schema_from_text("attr x int").is_err());
        assert!(schema_from_text("relation R\n  attr x blob").is_err());
        assert!(schema_from_text("relation R\n  attr x int\n  fk x Student").is_err());
        assert!(schema_from_text("relation R\n  bogus").is_err());
    }

    #[test]
    fn csv_roundtrip_with_quotes_and_nulls() {
        let db = sample_db();
        let csv = table_to_csv(db.table("Student").unwrap());
        assert!(csv.contains("\"Quote \"\"Me\"\", please\""), "{csv}");

        let mut fresh = Database::new("fresh");
        fresh.add_relation(db.table("Student").unwrap().schema.clone()).unwrap();
        let n = load_csv(&mut fresh, "Student", &csv).unwrap();
        assert_eq!(n, 2);
        assert_eq!(fresh.table("Student").unwrap().rows(), db.table("Student").unwrap().rows());
    }

    #[test]
    fn csv_quoted_empty_is_empty_string_not_null() {
        let mut db = Database::new("t");
        let mut r = RelationSchema::new("R");
        r.add_attr("a", AttrType::Text).add_attr("b", AttrType::Text);
        r.set_primary_key(["a"]);
        db.add_relation(r).unwrap();
        load_csv(&mut db, "R", "a,b\nx,\ny,\"\"\n").unwrap();
        let rows = db.table("R").unwrap().rows();
        assert_eq!(rows[0][1], Value::Null);
        assert_eq!(rows[1][1], Value::str(""));
    }

    #[test]
    fn csv_rejects_bad_arity_and_types() {
        let mut db = sample_db();
        assert!(load_csv(&mut db, "Student", "Sid\nz1\n").is_err(), "partial header");
        assert!(load_csv(&mut db, "Student", "Sid,Sname,Age,Gpa,Since\nz1,a\n").is_err());
        assert!(load_csv(
            &mut db,
            "Student",
            "Sid,Sname,Age,Gpa,Since\nz1,a,notint,1.0,2020-01-01\n"
        )
        .is_err());
        assert!(
            load_csv(&mut db, "Student", "Sid,Sname,Age,Gpa,Since\nz1,a,1,1.0,2020-13-01\n")
                .is_err(),
            "month out of range"
        );
    }

    #[test]
    fn directory_roundtrip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join(format!("aqks-io-test-{}", std::process::id()));
        export_dir(&db, &dir).unwrap();
        let back = import_dir(&dir).unwrap();
        assert_eq!(back.table("Student").unwrap().rows(), db.table("Student").unwrap().rows());
        std::fs::remove_dir_all(&dir).ok();
    }
}
