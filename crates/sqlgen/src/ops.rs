//! Volcano-style execution of physical plans over columnar batches.
//!
//! Every operator implements the batch-`next` `Operator` protocol
//! (`open`/`next`/`close`) over [`ColumnBatch`]es; pipeline-friendly
//! operators (scan with pushdown, filter, project, distinct, limit)
//! stream batches, while pipeline breakers (hash-join build,
//! aggregation, sort) drain their input inside `open`. Each operator is
//! wrapped in a `Metered` shim that records rows in/out, batch counts
//! and inclusive wall time into the plan-indexed [`ExecStats`], so
//! `aqks explain --analyze` and the bench harness can attribute cost
//! operator by operator.
//!
//! With [`ExecOptions::threads`] > 1 the heavy operators go parallel:
//! the scan filters fixed-size morsels on a scoped worker pool, the
//! hash-join build radix-partitions its keys and builds per-partition
//! tables concurrently, and the aggregate folds contiguous input chunks
//! into per-chunk partial states merged deterministically at finalize.
//! Results are *identical* at every thread count: morsel/chunk results
//! are re-assembled in input order, per-key join match lists stay in
//! global build order, and group output keeps first-appearance order.
//! `threads == 1` (the default) takes the exact sequential legacy code
//! paths, including the lazy scan and streaming join probe.
//!
//! SQL semantics are inherited unchanged from the original interpreter:
//! aggregates skip NULLs, `SUM`/`MIN`/`MAX`/`AVG` over an empty group
//! yield NULL while `COUNT` yields 0, `AVG` is always a float, a global
//! aggregate returns exactly one row, and NULL join keys never match.
//! When the statement has no ORDER BY, output rows are stably sorted by
//! value so results are reproducible across runs and across plans.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use aqks_relational::{Database, Row, Value};

use crate::ast::AggFunc;
use crate::batch::{ColumnBatch, ColumnData};
use crate::exec::ExecError;
use crate::par::{self, ExecOptions, MORSEL_SIZE, PAR_THRESHOLD};
use crate::plan::{PhysAggItem, PhysPred, PlanNode, PlanOp};
use crate::result::ResultTable;

/// Rows per batch handed between operators.
const BATCH_SIZE: usize = 1024;

/// Rows between cooperative deadline re-checks inside a parallel
/// section (workers have no ambient thread-local governor, so they poll
/// a captured handle mid-morsel).
const CHECK_EVERY: usize = 512;

/// Live metrics of one operator (indexed by [`PlanNode::id`]).
#[derive(Debug, Clone, Default)]
pub struct OpMetrics {
    /// Rows received from all inputs.
    pub rows_in: u64,
    /// Rows emitted.
    pub rows_out: u64,
    /// Batches emitted.
    pub batches: u64,
    /// Inclusive wall time (this operator plus its inputs).
    pub wall: Duration,
    /// Worker threads used by this operator's parallel sections
    /// (1 = fully sequential).
    pub threads: u32,
    /// Inclusive wall time spent inside parallel sections.
    pub parallel_wall: Duration,
    /// Estimated peak resident bytes attributable to this operator: the
    /// larger of its retained columnar state (hash-join build side,
    /// sort/aggregate input buffers) and its largest emitted batch.
    /// Exact per [`ColumnBatch::byte_size`] column accounting.
    pub peak_bytes: u64,
    /// Operator-specific annotation (e.g. hash-join build/probe sizes).
    pub note: Option<String>,
}

impl OpMetrics {
    /// Fraction of this operator's inclusive wall time spent in
    /// parallel sections, in `0.0..=1.0`.
    pub fn parallel_fraction(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            (self.parallel_wall.as_secs_f64() / self.wall.as_secs_f64()).clamp(0.0, 1.0)
        }
    }
}

/// Per-operator metrics of one plan execution.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Metrics, indexed by [`PlanNode::id`].
    pub ops: Vec<OpMetrics>,
    /// End-to-end wall time of the plan run.
    pub wall: Duration,
}

impl ExecStats {
    /// Total rows emitted across all operators (a volume proxy: each row
    /// counted once per operator boundary it crosses).
    pub fn rows_flowed(&self) -> u64 {
        self.ops.iter().map(|m| m.rows_out).sum()
    }

    /// The widest worker-pool any operator used (1 = the whole plan ran
    /// sequentially).
    pub fn max_threads(&self) -> u32 {
        self.ops.iter().map(|m| m.threads.max(1)).max().unwrap_or(1)
    }

    /// How many operators actually executed a parallel section.
    pub fn parallel_ops(&self) -> usize {
        self.ops.iter().filter(|m| m.threads > 1).count()
    }
}

impl std::fmt::Display for ExecStats {
    /// One-line summary — the single place execution stats are
    /// formatted for humans (the CLIs print this instead of
    /// hand-assembling the same fields).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} operator(s), {} row(s) flowed, wall {}",
            self.ops.len(),
            self.rows_flowed(),
            crate::plan::fmt_dur(self.wall)
        )?;
        if self.max_threads() > 1 {
            write!(f, ", {} parallel op(s) x{}", self.parallel_ops(), self.max_threads())?;
        }
        Ok(())
    }
}

type StatsCell = Arc<Mutex<Vec<OpMetrics>>>;

/// The Volcano operator protocol: `open` prepares (pipeline breakers do
/// their work here), `next` yields owned column batches until `None`,
/// `close` releases state and finalizes metrics annotations.
trait Operator {
    /// Prepares the operator (and its inputs) for iteration.
    fn open(&mut self) -> Result<(), ExecError>;
    /// The next batch of rows, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<ColumnBatch>, ExecError>;
    /// Releases state; called once after iteration.
    fn close(&mut self);
    /// Operator-specific metrics annotation, read at `close`.
    fn note(&self) -> Option<String> {
        None
    }
    /// `(threads, parallel wall)` when a parallel section ran, read at
    /// `close` like [`Operator::note`].
    fn parallel_info(&self) -> Option<(u32, Duration)> {
        None
    }
    /// Bytes of columnar state this operator retained (build sides,
    /// buffered inputs, materialized outputs), read just *before*
    /// `close` while the state is still live. Streaming operators
    /// return 0 and are accounted by their largest emitted batch.
    fn mem_bytes(&self) -> u64 {
        0
    }
}

/// Shim recording metrics around an operator.
struct Metered<'a> {
    id: usize,
    stats: StatsCell,
    inner: Box<dyn Operator + 'a>,
}

impl Metered<'_> {
    fn bump<R>(&self, f: impl FnOnce(&mut OpMetrics) -> R) -> R {
        f(&mut par::relock(&self.stats)[self.id])
    }
}

impl Operator for Metered<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        let t = Instant::now();
        let r = self.inner.open();
        self.bump(|m| m.wall += t.elapsed());
        r
    }

    fn next(&mut self) -> Result<Option<ColumnBatch>, ExecError> {
        let t = Instant::now();
        let r = self.inner.next();
        let elapsed = t.elapsed();
        self.bump(|m| {
            m.wall += elapsed;
            if let Ok(Some(batch)) = &r {
                m.rows_out += batch.len() as u64;
                m.batches += 1;
                m.peak_bytes = m.peak_bytes.max(batch.byte_size());
            }
        });
        r
    }

    fn close(&mut self) {
        let t = Instant::now();
        // Retained-state bytes must be read while the state is live —
        // `close` is where operators drop it.
        let mem = self.inner.mem_bytes();
        self.inner.close();
        let note = self.inner.note();
        let par_info = self.inner.parallel_info();
        self.bump(|m| {
            m.wall += t.elapsed();
            m.note = note;
            m.peak_bytes = m.peak_bytes.max(mem);
            if let Some((threads, pw)) = par_info {
                m.threads = threads;
                m.parallel_wall = pw;
            }
        });
    }
}

/// Shim enforcing the ambient `aqks-guard` budget around an operator,
/// mirroring [`Metered`]: a deadline checkpoint before every `next` call
/// and a row charge for every batch emitted. Only inserted by [`build`]
/// when a governor is installed, so ungoverned plans pay nothing. Row
/// charging always happens here on the plan's thread, never inside
/// worker pools, so budget accounting is byte-identical across thread
/// counts.
struct Guarded<'a> {
    /// Charge site, e.g. `"ops.HashJoin"` — names the operator whose
    /// output crossed the budget.
    site: &'static str,
    inner: Box<dyn Operator + 'a>,
}

impl Operator for Guarded<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        aqks_guard::checkpoint(self.site)?;
        self.inner.open()
    }

    fn next(&mut self) -> Result<Option<ColumnBatch>, ExecError> {
        aqks_guard::checkpoint(self.site)?;
        let r = self.inner.next()?;
        if let Some(batch) = &r {
            aqks_guard::charge_rows(self.site, batch.len() as u64)?;
        }
        Ok(r)
    }

    fn close(&mut self) {
        self.inner.close();
    }

    fn note(&self) -> Option<String> {
        self.inner.note()
    }

    fn parallel_info(&self) -> Option<(u32, Duration)> {
        self.inner.parallel_info()
    }

    fn mem_bytes(&self) -> u64 {
        self.inner.mem_bytes()
    }
}

/// Replays batches materialized once by a shared subplan (see
/// `aqks-equiv`): the consumer site's whole subtree is replaced by this
/// operator, so the shared work executes exactly once per set. Because
/// batches share their columns behind `Arc`s, re-emitting them is a
/// handful of reference-count bumps per consumer — O(consumers), not
/// O(consumers x rows). The shim stack above (metering, budget
/// checkpoints at the `ops.Cached` site) is preserved, so replayed rows
/// are metered and charged like any other operator output.
struct CachedRows {
    batches: Arc<Vec<ColumnBatch>>,
    rows: u64,
    pos: usize,
}

impl Operator for CachedRows {
    fn open(&mut self) -> Result<(), ExecError> {
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<ColumnBatch>, ExecError> {
        if self.pos >= self.batches.len() {
            return Ok(None);
        }
        let batch = self.batches[self.pos].clone();
        self.pos += 1;
        Ok(Some(batch))
    }

    fn close(&mut self) {}

    fn note(&self) -> Option<String> {
        Some(format!("cached rows={}", self.rows))
    }

    fn mem_bytes(&self) -> u64 {
        self.batches.iter().map(ColumnBatch::byte_size).sum()
    }
}

/// Budget charge site of an operator (static so [`aqks_guard::Tripped`]
/// can carry it without allocating).
fn guard_site(op: &PlanOp) -> &'static str {
    match op {
        PlanOp::Scan { .. } => "ops.Scan",
        PlanOp::DerivedTable { .. } => "ops.DerivedTable",
        PlanOp::Filter { .. } => "ops.Filter",
        PlanOp::HashJoin { .. } => "ops.HashJoin",
        PlanOp::CrossJoin => "ops.CrossJoin",
        PlanOp::HashAggregate { .. } => "ops.HashAggregate",
        PlanOp::Project { .. } => "ops.Project",
        PlanOp::Distinct => "ops.Distinct",
        PlanOp::Sort { .. } => "ops.Sort",
        PlanOp::Limit { .. } => "ops.Limit",
    }
}

// ---------------------------------------------------------------------------
// Columnar predicate evaluation
// ---------------------------------------------------------------------------

/// Indices of the rows in `batch` satisfying every predicate, with
/// typed fast paths where the column representation makes them exact.
/// Fast paths are restricted to same-typed comparisons: `Value`
/// equality compares `Int`/`Float` numerically, so mixed-type columns
/// go through the generic per-value path.
fn filter_indices(batch: &ColumnBatch, preds: &[PhysPred]) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..batch.len() as u32).collect();
    for p in preds {
        filter_pred(batch, p, &mut idx);
    }
    idx
}

fn filter_pred(batch: &ColumnBatch, pred: &PhysPred, idx: &mut Vec<u32>) {
    match pred {
        PhysPred::EqCols(l, r) => {
            let (lc, rc) = (batch.column(*l), batch.column(*r));
            match (lc.data(), rc.data()) {
                (ColumnData::Int(a), ColumnData::Int(b)) => idx.retain(|&i| {
                    let i = i as usize;
                    lc.is_valid(i) && rc.is_valid(i) && a[i] == b[i]
                }),
                (ColumnData::Str(a), ColumnData::Str(b)) => idx.retain(|&i| {
                    let i = i as usize;
                    lc.is_valid(i) && rc.is_valid(i) && a[i] == b[i]
                }),
                _ => idx.retain(|&i| {
                    let v = lc.value(i as usize);
                    !v.is_null() && v == rc.value(i as usize)
                }),
            }
        }
        PhysPred::ContainsCi(c, needle) => {
            let col = batch.column(*c);
            match col.data() {
                ColumnData::Str(s) => idx.retain(|&i| {
                    col.is_valid(i as usize)
                        && s[i as usize].to_lowercase().contains(needle.as_str())
                }),
                _ => idx.retain(|&i| col.value(i as usize).contains_ci(needle)),
            }
        }
        PhysPred::EqLit(c, v) => {
            let col = batch.column(*c);
            match (col.data(), v) {
                (ColumnData::Int(a), Value::Int(want)) => {
                    idx.retain(|&i| col.is_valid(i as usize) && a[i as usize] == *want)
                }
                (ColumnData::Str(a), Value::Str(want)) => {
                    idx.retain(|&i| col.is_valid(i as usize) && a[i as usize] == *want)
                }
                _ => idx.retain(|&i| col.value(i as usize) == *v),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

/// Sequential or morsel-parallel scan with scan-time predicate
/// evaluation. At `threads == 1` (or under [`PAR_THRESHOLD`] rows) the
/// scan stays lazy, pulling [`BATCH_SIZE`] rows per `next` so `LIMIT`
/// can short-circuit it. The parallel path filters [`MORSEL_SIZE`]-row
/// morsels on the worker pool at `open` and emits the surviving batches
/// in morsel order, so output order matches the sequential path.
struct Scan<'a> {
    rows: &'a [Row],
    preds: &'a [PhysPred],
    threads: usize,
    width: usize,
    pos: usize,
    batches: Option<Vec<ColumnBatch>>,
    emitted: usize,
    par_threads: u32,
    par_wall: Duration,
}

impl Operator for Scan<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.pos = 0;
        self.emitted = 0;
        self.width = self.rows.first().map_or(0, Vec::len);
        if self.threads > 1 && self.rows.len() >= PAR_THRESHOLD {
            let (rows, preds, width) = (self.rows, self.preds, self.width);
            let n_morsels = rows.len().div_ceil(MORSEL_SIZE);
            let gov = aqks_guard::current();
            let t = Instant::now();
            let out = par::run_tasks(self.threads, n_morsels, "ops.Scan", |m| {
                let start = m * MORSEL_SIZE;
                let end = (start + MORSEL_SIZE).min(rows.len());
                let mut keep: Vec<&Row> = Vec::new();
                for (off, row) in rows[start..end].iter().enumerate() {
                    if off % CHECK_EVERY == CHECK_EVERY - 1 {
                        if let Some(g) = &gov {
                            g.check_deadline("ops.Scan")?;
                        }
                    }
                    if preds.iter().all(|p| p.eval(row)) {
                        keep.push(row);
                    }
                }
                Ok(if keep.is_empty() {
                    None
                } else {
                    Some(ColumnBatch::from_row_refs(width, &keep))
                })
            })?;
            self.par_wall = t.elapsed();
            self.par_threads = self.threads.min(n_morsels) as u32;
            self.batches = Some(out.into_iter().flatten().collect());
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<ColumnBatch>, ExecError> {
        if let Some(batches) = &self.batches {
            if self.emitted >= batches.len() {
                return Ok(None);
            }
            self.emitted += 1;
            return Ok(Some(batches[self.emitted - 1].clone()));
        }
        let mut out: Vec<&Row> = Vec::new();
        while self.pos < self.rows.len() && out.len() < BATCH_SIZE {
            let row = &self.rows[self.pos];
            self.pos += 1;
            if self.preds.iter().all(|p| p.eval(row)) {
                out.push(row);
            }
        }
        if out.is_empty() && self.pos >= self.rows.len() {
            Ok(None)
        } else {
            Ok(Some(ColumnBatch::from_row_refs(self.width, &out)))
        }
    }

    fn close(&mut self) {
        self.batches = None;
    }

    fn parallel_info(&self) -> Option<(u32, Duration)> {
        (self.par_threads > 1).then_some((self.par_threads, self.par_wall))
    }

    fn mem_bytes(&self) -> u64 {
        // The parallel path materializes every surviving batch at open.
        self.batches.as_ref().map_or(0, |bs| bs.iter().map(ColumnBatch::byte_size).sum())
    }
}

/// Alias boundary over a planned subquery: forwards batches unchanged
/// (the rename is plan metadata only).
struct Passthrough<'a> {
    child: Metered<'a>,
}

impl Operator for Passthrough<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<ColumnBatch>, ExecError> {
        self.child.next()
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// Residual predicate application over columnar batches.
struct Filter<'a> {
    child: Metered<'a>,
    preds: &'a [PhysPred],
}

impl Operator for Filter<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<ColumnBatch>, ExecError> {
        while let Some(batch) = self.child.next()? {
            let keep = filter_indices(&batch, self.preds);
            if keep.len() == batch.len() && !keep.is_empty() {
                return Ok(Some(batch));
            }
            if !keep.is_empty() {
                return Ok(Some(batch.gather(&keep)));
            }
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// Hash of a join key, used only to pick a radix partition; partition
/// assignment never affects output order, but `DefaultHasher` with
/// fixed keys is deterministic anyway.
fn part_of(key: &[Value], mask: u64) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() & mask) as usize
}

/// Join key at row `i` of `batch`, or `None` when any component is NULL
/// (NULL never joins).
fn key_at(batch: &ColumnBatch, keys: &[usize], i: usize) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(keys.len());
    for &k in keys {
        let v = batch.value(k, i);
        if v.is_null() {
            return None;
        }
        key.push(v);
    }
    Some(key)
}

/// `(key, build-row-index)` pairs routed to one radix partition.
type KeyedIdx = Vec<(Vec<Value>, u32)>;

/// Partition-indexed hash table over build-side row indices. Per-key
/// index lists are in ascending global build order, which pins the
/// probe-output match order to what the sequential build produces.
#[derive(Default)]
struct JoinTable {
    partitions: Vec<HashMap<Vec<Value>, Vec<u32>>>,
    mask: u64,
}

impl JoinTable {
    fn get(&self, key: &[Value]) -> Option<&Vec<u32>> {
        if self.partitions.is_empty() {
            return None;
        }
        let p = if self.partitions.len() == 1 { 0 } else { part_of(key, self.mask) };
        self.partitions[p].get(key)
    }
}

/// Builds the join table over `data`'s key columns. Sequential at
/// `workers <= 1`; otherwise radix-partitioned in two parallel phases:
/// morsels route `(key, index)` pairs into per-morsel partition
/// buckets, then one task per partition folds the buckets *in morsel
/// order* into its hash map — every per-key index list comes out in
/// ascending global row order, exactly like the sequential build.
fn build_join_table(
    data: &ColumnBatch,
    keys: &[usize],
    threads: usize,
) -> Result<(JoinTable, u32, Duration), ExecError> {
    let n = data.len();
    let workers = if threads > 1 && n >= PAR_THRESHOLD { threads } else { 1 };
    if workers <= 1 {
        let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        for i in 0..n {
            if let Some(key) = key_at(data, keys, i) {
                map.entry(key).or_default().push(i as u32);
            }
        }
        return Ok((JoinTable { partitions: vec![map], mask: 0 }, 1, Duration::ZERO));
    }
    /// Radix fan-out: enough partitions to keep 8-16 workers busy
    /// without fragmenting small builds.
    const PARTITIONS: usize = 32;
    let mask = (PARTITIONS - 1) as u64;
    let gov = aqks_guard::current();
    let t = Instant::now();
    let n_morsels = n.div_ceil(MORSEL_SIZE);
    let morsels = par::run_tasks(workers, n_morsels, "ops.HashJoin", |mi| {
        let start = mi * MORSEL_SIZE;
        let end = (start + MORSEL_SIZE).min(n);
        let mut buckets: Vec<KeyedIdx> = (0..PARTITIONS).map(|_| Vec::new()).collect();
        for i in start..end {
            if (i - start) % CHECK_EVERY == CHECK_EVERY - 1 {
                if let Some(g) = &gov {
                    g.check_deadline("ops.HashJoin")?;
                }
            }
            if let Some(key) = key_at(data, keys, i) {
                let p = part_of(&key, mask);
                buckets[p].push((key, i as u32));
            }
        }
        Ok(buckets)
    })?;
    // Route each morsel's buckets to its partition slot (cheap Vec
    // moves), preserving morsel order per partition.
    let slots: Vec<Mutex<Vec<KeyedIdx>>> =
        (0..PARTITIONS).map(|_| Mutex::new(Vec::with_capacity(morsels.len()))).collect();
    for mut morsel in morsels {
        for (p, bucket) in morsel.drain(..).enumerate() {
            par::relock(&slots[p]).push(bucket);
        }
    }
    let partitions = par::run_tasks(workers, PARTITIONS, "ops.HashJoin", |p| {
        let chunks = std::mem::take(&mut *par::relock(&slots[p]));
        let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        for chunk in chunks {
            for (key, i) in chunk {
                map.entry(key).or_default().push(i);
            }
        }
        Ok(map)
    })?;
    Ok((JoinTable { partitions, mask }, workers.min(n_morsels) as u32, t.elapsed()))
}

/// Multi-key hash equi-join. The build side (chosen by the planner from
/// cardinality estimates) is drained and indexed at `open` (radix-
/// partitioned in parallel when threads allow); the probe side streams
/// at `threads == 1` and is probed batch-parallel otherwise. Output
/// columns are always left then right, whichever side built, and match
/// order within a probe row follows global build order at every thread
/// count. NULL keys never match on either side.
struct HashJoin<'a> {
    left: Metered<'a>,
    right: Metered<'a>,
    left_keys: &'a [usize],
    right_keys: &'a [usize],
    build_left: bool,
    threads: usize,
    build_data: Option<ColumnBatch>,
    table: JoinTable,
    out: Option<Vec<ColumnBatch>>,
    emitted: usize,
    build_rows: u64,
    probe_rows: u64,
    par_threads: u32,
    par_wall: Duration,
}

impl Operator for HashJoin<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        aqks_guard::failpoint!("join.build");
        self.left.open()?;
        self.right.open()?;
        let (build, keys) = if self.build_left {
            (&mut self.left, self.left_keys)
        } else {
            (&mut self.right, self.right_keys)
        };
        let mut batches = Vec::new();
        while let Some(batch) = build.next()? {
            // Retained hash-table state is charged against the budget on
            // top of the child's streaming charge: materialized rows are
            // the memory hazard a row cap exists to bound. Charged here
            // on the plan's thread, identically at every thread count.
            aqks_guard::charge_rows("ops.HashJoin.build", batch.len() as u64)?;
            self.build_rows += batch.len() as u64;
            if !batch.is_empty() {
                batches.push(batch);
            }
        }
        if !batches.is_empty() {
            let data = ColumnBatch::concat(batches[0].width(), &batches);
            let (table, threads, wall) = build_join_table(&data, keys, self.threads)?;
            self.table = table;
            self.par_threads = threads;
            self.par_wall = wall;
            self.build_data = Some(data);
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<ColumnBatch>, ExecError> {
        let (probe, keys) = if self.build_left {
            (&mut self.right, self.right_keys)
        } else {
            (&mut self.left, self.left_keys)
        };
        if self.threads > 1 {
            // Parallel mode: drain the probe side once, probe every
            // batch on the pool, emit outputs in probe-batch order.
            if self.out.is_none() {
                let mut probe_batches = Vec::new();
                while let Some(batch) = probe.next()? {
                    self.probe_rows += batch.len() as u64;
                    if !batch.is_empty() {
                        probe_batches.push(batch);
                    }
                }
                let produced = if let Some(data) = &self.build_data {
                    let (table, build_left) = (&self.table, self.build_left);
                    let gov = aqks_guard::current();
                    let t = Instant::now();
                    let res =
                        par::run_tasks(self.threads, probe_batches.len(), "ops.HashJoin", |bi| {
                            let batch = &probe_batches[bi];
                            let mut bidx: Vec<u32> = Vec::new();
                            let mut pidx: Vec<u32> = Vec::new();
                            for i in 0..batch.len() {
                                if i % CHECK_EVERY == CHECK_EVERY - 1 {
                                    if let Some(g) = &gov {
                                        g.check_deadline("ops.HashJoin")?;
                                    }
                                }
                                let Some(key) = key_at(batch, keys, i) else { continue };
                                if let Some(matches) = table.get(&key) {
                                    for &m in matches {
                                        bidx.push(m);
                                        pidx.push(i as u32);
                                    }
                                }
                            }
                            if bidx.is_empty() {
                                return Ok(None);
                            }
                            let bside = data.gather(&bidx);
                            let pside = batch.gather(&pidx);
                            Ok(Some(if build_left {
                                ColumnBatch::hcat(&bside, &pside)
                            } else {
                                ColumnBatch::hcat(&pside, &bside)
                            }))
                        })?;
                    self.par_wall += t.elapsed();
                    self.par_threads =
                        self.par_threads.max(self.threads.min(probe_batches.len()) as u32);
                    res.into_iter().flatten().collect()
                } else {
                    Vec::new()
                };
                self.out = Some(produced);
                self.emitted = 0;
            }
            let out = self.out.as_ref().map_or(&[][..], Vec::as_slice);
            if self.emitted >= out.len() {
                return Ok(None);
            }
            self.emitted += 1;
            return Ok(Some(out[self.emitted - 1].clone()));
        }
        // Sequential mode: stream the probe side.
        while let Some(batch) = probe.next()? {
            self.probe_rows += batch.len() as u64;
            let mut bidx: Vec<u32> = Vec::new();
            let mut pidx: Vec<u32> = Vec::new();
            for i in 0..batch.len() {
                let Some(key) = key_at(&batch, keys, i) else { continue };
                if let Some(matches) = self.table.get(&key) {
                    for &m in matches {
                        bidx.push(m);
                        pidx.push(i as u32);
                    }
                }
            }
            if bidx.is_empty() {
                continue;
            }
            let Some(data) = &self.build_data else { continue };
            let bside = data.gather(&bidx);
            let pside = batch.gather(&pidx);
            return Ok(Some(if self.build_left {
                ColumnBatch::hcat(&bside, &pside)
            } else {
                ColumnBatch::hcat(&pside, &bside)
            }));
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.table = JoinTable::default();
        self.build_data = None;
        self.out = None;
        self.left.close();
        self.right.close();
    }

    fn note(&self) -> Option<String> {
        Some(format!("build rows={} probe rows={}", self.build_rows, self.probe_rows))
    }

    fn parallel_info(&self) -> Option<(u32, Duration)> {
        (self.par_threads > 1).then_some((self.par_threads, self.par_wall))
    }

    fn mem_bytes(&self) -> u64 {
        // Build side plus (in parallel mode) the materialized probe
        // output; the hash table's key index is not columnar and is
        // not counted.
        self.build_data.as_ref().map_or(0, ColumnBatch::byte_size)
            + self.out.as_ref().map_or(0, |o| o.iter().map(ColumnBatch::byte_size).sum())
    }
}

/// Cross product, used only when no equi-join connects the inputs. The
/// right (planner-chosen smallest) side is buffered; the left streams.
struct CrossJoin<'a> {
    left: Metered<'a>,
    right: Metered<'a>,
    buffer: Option<ColumnBatch>,
}

impl Operator for CrossJoin<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.left.open()?;
        self.right.open()?;
        let mut batches = Vec::new();
        while let Some(batch) = self.right.next()? {
            aqks_guard::charge_rows("ops.CrossJoin.build", batch.len() as u64)?;
            if !batch.is_empty() {
                batches.push(batch);
            }
        }
        if !batches.is_empty() {
            self.buffer = Some(ColumnBatch::concat(batches[0].width(), &batches));
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<ColumnBatch>, ExecError> {
        let Some(buf) = &self.buffer else { return Ok(None) };
        while let Some(batch) = self.left.next()? {
            if batch.is_empty() {
                continue;
            }
            let (nl, nr) = (batch.len(), buf.len());
            let mut lidx = Vec::with_capacity(nl * nr);
            let mut ridx = Vec::with_capacity(nl * nr);
            for l in 0..nl as u32 {
                for r in 0..nr as u32 {
                    lidx.push(l);
                    ridx.push(r);
                }
            }
            return Ok(Some(ColumnBatch::hcat(&batch.gather(&lidx), &buf.gather(&ridx))));
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.buffer = None;
        self.left.close();
        self.right.close();
    }

    fn mem_bytes(&self) -> u64 {
        self.buffer.as_ref().map_or(0, ColumnBatch::byte_size)
    }
}

// ---------------------------------------------------------------------------
// Aggregation states
// ---------------------------------------------------------------------------

/// Mergeable per-group accumulator of one output item. `Vals` collects
/// the non-null input values *in row order* and defers to [`aggregate`]
/// at finalize — `SUM`/`AVG` and all DISTINCT aggregates use it, so
/// float summation order (and hence the bits of the result) is
/// identical at every thread count.
#[derive(Debug, Clone)]
enum AggState {
    /// Non-null count.
    Count(u64),
    /// Current minimum (first minimal element wins, like `Iterator::min`).
    Min(Option<Value>),
    /// Current maximum (last maximal element wins, like `Iterator::max`).
    Max(Option<Value>),
    /// Ordered non-null values, finalized via [`aggregate`].
    Vals(Vec<Value>),
    /// First row's value (group-by column passthrough), NULL included.
    First(Option<Value>),
}

fn new_states(items: &[PhysAggItem]) -> Vec<AggState> {
    items
        .iter()
        .map(|item| match item {
            PhysAggItem::Col(_) => AggState::First(None),
            PhysAggItem::Agg { func, distinct, .. } => {
                if *distinct {
                    AggState::Vals(Vec::new())
                } else {
                    match func {
                        AggFunc::Count => AggState::Count(0),
                        AggFunc::Min => AggState::Min(None),
                        AggFunc::Max => AggState::Max(None),
                        AggFunc::Sum | AggFunc::Avg => AggState::Vals(Vec::new()),
                    }
                }
            }
        })
        .collect()
}

fn acc_state(state: &mut AggState, v: Value) {
    match state {
        AggState::Count(n) => {
            if !v.is_null() {
                *n += 1;
            }
        }
        AggState::Min(cur) => {
            if !v.is_null() {
                match cur {
                    Some(c) if v >= *c => {}
                    _ => *cur = Some(v),
                }
            }
        }
        AggState::Max(cur) => {
            if !v.is_null() {
                match cur {
                    Some(c) if v < *c => {}
                    _ => *cur = Some(v),
                }
            }
        }
        AggState::Vals(vs) => {
            if !v.is_null() {
                vs.push(v);
            }
        }
        AggState::First(f) => {
            if f.is_none() {
                *f = Some(v);
            }
        }
    }
}

/// Merges a later chunk's state `b` into `a` (chunks arrive in input
/// order, so "later" means later rows).
fn merge_state(a: &mut AggState, b: AggState) {
    match (a, b) {
        (AggState::Count(x), AggState::Count(y)) => *x += y,
        (AggState::Min(x), AggState::Min(Some(vy))) => match x {
            // The earlier chunk's minimum wins ties, matching the
            // sequential pass's first-among-equals behaviour.
            Some(vx) if vy >= *vx => {}
            _ => *x = Some(vy),
        },
        (AggState::Max(x), AggState::Max(Some(vy))) => match x {
            Some(vx) if vy < *vx => {}
            _ => *x = Some(vy),
        },
        (AggState::Vals(x), AggState::Vals(y)) => x.extend(y),
        (AggState::First(x @ None), AggState::First(y)) => *x = y,
        // States are built per item from the same plan: kinds always line up.
        _ => {}
    }
}

fn finalize_state(state: AggState, item: &PhysAggItem) -> Value {
    match state {
        AggState::Count(n) => Value::Int(n as i64),
        AggState::Min(v) | AggState::Max(v) | AggState::First(v) => v.unwrap_or(Value::Null),
        AggState::Vals(vs) => match item {
            PhysAggItem::Agg { func, distinct, .. } => aggregate(*func, *distinct, vs.iter()),
            PhysAggItem::Col(_) => Value::Null,
        },
    }
}

/// One chunk's grouped partial states, keys in first-appearance order.
struct Partial {
    order: Vec<Vec<Value>>,
    groups: HashMap<Vec<Value>, Vec<AggState>>,
}

impl Partial {
    fn new() -> Partial {
        Partial { order: Vec::new(), groups: HashMap::new() }
    }
}

/// Folds one batch into a partial, polling the captured governor's
/// deadline mid-chunk when present.
fn accumulate_batch(
    p: &mut Partial,
    batch: &ColumnBatch,
    group: &[usize],
    items: &[PhysAggItem],
    gov: Option<&aqks_guard::Governor>,
) -> Result<(), ExecError> {
    for i in 0..batch.len() {
        if i % CHECK_EVERY == CHECK_EVERY - 1 {
            if let Some(g) = gov {
                g.check_deadline("ops.HashAggregate")?;
            }
        }
        let key: Vec<Value> = group.iter().map(|&c| batch.value(c, i)).collect();
        let states = match p.groups.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                p.order.push(e.key().clone());
                e.insert(new_states(items))
            }
        };
        for (state, item) in states.iter_mut().zip(items) {
            let col = match item {
                PhysAggItem::Col(c) => *c,
                PhysAggItem::Agg { arg, .. } => *arg,
            };
            acc_state(state, batch.value(col, i));
        }
    }
    Ok(())
}

/// Splits `batches` into up to `workers` contiguous chunks balanced by
/// row count. Contiguity is what makes the parallel merge trivial to
/// keep deterministic: chunk order *is* input row order.
fn chunk_ranges(batches: &[ColumnBatch], workers: usize) -> Vec<(usize, usize)> {
    let total: usize = batches.iter().map(ColumnBatch::len).sum();
    let target = total.div_ceil(workers).max(1);
    let mut out = Vec::new();
    let (mut start, mut acc) = (0usize, 0usize);
    for (i, b) in batches.iter().enumerate() {
        acc += b.len();
        if acc >= target {
            out.push((start, i + 1));
            start = i + 1;
            acc = 0;
        }
    }
    if start < batches.len() {
        out.push((start, batches.len()));
    }
    out
}

/// Grouped/global aggregation (pipeline breaker). Two-phase when
/// parallel: contiguous input chunks fold into per-chunk [`Partial`]s
/// on the pool, then the partials merge *in chunk order* — group output
/// order (first appearance) and `Vals` row order both come out equal to
/// the sequential fold's, at any thread count.
struct HashAggregate<'a> {
    child: Metered<'a>,
    group: &'a [usize],
    items: &'a [PhysAggItem],
    threads: usize,
    output: Vec<Row>,
    emitted: usize,
    in_rows: u64,
    in_bytes: u64,
    groups_out: u64,
    par_threads: u32,
    par_wall: Duration,
}

impl Operator for HashAggregate<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()?;
        let mut batches = Vec::new();
        while let Some(batch) = self.child.next()? {
            // Grouped rows are retained until finalize; charge them like
            // hash-join build state (on the plan's thread, always).
            aqks_guard::charge_rows("ops.HashAggregate.build", batch.len() as u64)?;
            self.in_rows += batch.len() as u64;
            self.in_bytes += batch.byte_size();
            if !batch.is_empty() {
                batches.push(batch);
            }
        }
        aqks_guard::failpoint!("agg.finalize");
        let total: usize = batches.iter().map(ColumnBatch::len).sum();
        let workers = if self.threads > 1 && total >= PAR_THRESHOLD { self.threads } else { 1 };
        let (group, items) = (self.group, self.items);
        let (mut order, mut groups) = if workers <= 1 {
            let mut p = Partial::new();
            for b in &batches {
                accumulate_batch(&mut p, b, group, items, None)?;
            }
            (p.order, p.groups)
        } else {
            let chunks = chunk_ranges(&batches, workers);
            let gov = aqks_guard::current();
            let t = Instant::now();
            let partials = par::run_tasks(workers, chunks.len(), "ops.HashAggregate", |ci| {
                let (s, e) = chunks[ci];
                let mut p = Partial::new();
                for b in &batches[s..e] {
                    accumulate_batch(&mut p, b, group, items, gov.as_ref())?;
                }
                Ok(p)
            })?;
            self.par_wall = t.elapsed();
            self.par_threads = workers.min(chunks.len()) as u32;
            let mut order: Vec<Vec<Value>> = Vec::new();
            let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
            for mut p in partials {
                for key in p.order {
                    let Some(states) = p.groups.remove(&key) else { continue };
                    match groups.entry(key) {
                        Entry::Occupied(mut e) => {
                            for (a, b) in e.get_mut().iter_mut().zip(states) {
                                merge_state(a, b);
                            }
                        }
                        Entry::Vacant(e) => {
                            order.push(e.key().clone());
                            e.insert(states);
                        }
                    }
                }
            }
            (order, groups)
        };
        // A global aggregate over an empty input still yields one row.
        if order.is_empty() && self.group.is_empty() {
            order.push(Vec::new());
            groups.insert(Vec::new(), new_states(items));
        }
        self.groups_out = order.len() as u64;
        for key in order {
            let Some(states) = groups.remove(&key) else { continue };
            let row: Row = states
                .into_iter()
                .zip(items)
                .map(|(state, item)| finalize_state(state, item))
                .collect();
            self.output.push(row);
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<ColumnBatch>, ExecError> {
        if self.emitted >= self.output.len() {
            return Ok(None);
        }
        let end = (self.emitted + BATCH_SIZE).min(self.output.len());
        let batch = ColumnBatch::from_rows(self.items.len(), &self.output[self.emitted..end]);
        self.emitted = end;
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.output.clear();
        self.child.close();
    }

    fn note(&self) -> Option<String> {
        Some(format!("groups={} from rows={}", self.groups_out, self.in_rows))
    }

    fn parallel_info(&self) -> Option<(u32, Duration)> {
        (self.par_threads > 1).then_some((self.par_threads, self.par_wall))
    }

    fn mem_bytes(&self) -> u64 {
        // Peak is the buffered input (held until finalize), measured
        // as the batches streamed in.
        self.in_bytes
    }
}

/// Column projection — zero-copy: the output batch shares the selected
/// columns' storage.
struct Project<'a> {
    child: Metered<'a>,
    cols: &'a [usize],
}

impl Operator for Project<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<ColumnBatch>, ExecError> {
        match self.child.next()? {
            Some(batch) => Ok(Some(batch.select(self.cols))),
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        self.child.close();
    }
}

/// Streaming duplicate elimination.
struct Distinct<'a> {
    child: Metered<'a>,
    seen: HashSet<Row>,
    seen_bytes: u64,
}

impl Operator for Distinct<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<ColumnBatch>, ExecError> {
        while let Some(batch) = self.child.next()? {
            let mut fresh: Vec<u32> = Vec::new();
            for i in 0..batch.len() {
                if self.seen.insert(batch.row(i)) {
                    fresh.push(i as u32);
                }
            }
            if !fresh.is_empty() {
                let out = batch.gather(&fresh);
                // The seen-set retains exactly the distinct rows — the
                // rows this operator emits.
                self.seen_bytes += out.byte_size();
                return Ok(Some(out));
            }
        }
        Ok(None)
    }

    fn close(&mut self) {
        self.seen.clear();
        self.child.close();
    }

    fn mem_bytes(&self) -> u64 {
        self.seen_bytes
    }
}

/// ORDER BY over the output columns (pipeline breaker).
struct Sort<'a> {
    child: Metered<'a>,
    keys: &'a [(usize, bool)],
    width: usize,
    buffer: Vec<Row>,
    in_bytes: u64,
    emitted: usize,
}

impl Operator for Sort<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()?;
        while let Some(batch) = self.child.next()? {
            self.width = self.width.max(batch.width());
            self.in_bytes += batch.byte_size();
            self.buffer.extend(batch.to_rows());
        }
        let keys = self.keys;
        self.buffer.sort_by(|a, b| {
            for &(i, desc) in keys {
                let ord = a[i].cmp(&b[i]);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(())
    }

    fn next(&mut self) -> Result<Option<ColumnBatch>, ExecError> {
        if self.emitted >= self.buffer.len() {
            return Ok(None);
        }
        let end = (self.emitted + BATCH_SIZE).min(self.buffer.len());
        let batch = ColumnBatch::from_rows(self.width, &self.buffer[self.emitted..end]);
        self.emitted = end;
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.buffer.clear();
        self.child.close();
    }

    fn mem_bytes(&self) -> u64 {
        // The whole input is buffered until emitted, measured as the
        // batches streamed in.
        self.in_bytes
    }
}

/// LIMIT: stops pulling from its input once satisfied.
struct Limit<'a> {
    child: Metered<'a>,
    remaining: usize,
}

impl Operator for Limit<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<ColumnBatch>, ExecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.child.next()? {
            Some(batch) => {
                let batch =
                    if batch.len() > self.remaining { batch.head(self.remaining) } else { batch };
                self.remaining -= batch.len();
                Ok(Some(batch))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) {
        self.child.close();
    }
}

// ---------------------------------------------------------------------------
// Building and running
// ---------------------------------------------------------------------------

/// Materialized batches substituted for plan subtrees by node id — the
/// executor half of `aqks-equiv`'s shared-subplan DAG. The batch list
/// is `Arc`-shared so every consumer replays the same storage.
pub type SharedRows = HashMap<usize, Arc<Vec<ColumnBatch>>>;

// Everything the parallel executor shares across threads (and the
// future `aqks-server` shares across request handlers) must be
// `Send + Sync`; enforced at compile time so an `Rc`/`RefCell` can't
// creep back in.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<SharedRows>();
    assert_send_sync::<StatsCell>();
    assert_send_sync::<JoinTable>();
    assert_send_sync::<Partial>();
    assert_send_sync::<ExecStats>();
    assert_send_sync::<OpMetrics>();
};

fn build<'a>(
    node: &'a PlanNode,
    db: &'a Database,
    stats: &StatsCell,
    governed: bool,
    shared: &SharedRows,
    opts: ExecOptions,
) -> Result<Metered<'a>, ExecError> {
    if let Some(batches) = shared.get(&node.id) {
        let rows = batches.iter().map(|b| b.len() as u64).sum();
        let inner: Box<dyn Operator + 'a> =
            Box::new(CachedRows { batches: Arc::clone(batches), rows, pos: 0 });
        let inner: Box<dyn Operator + 'a> =
            if governed { Box::new(Guarded { site: "ops.Cached", inner }) } else { inner };
        return Ok(Metered { id: node.id, stats: stats.clone(), inner });
    }
    let inner: Box<dyn Operator + 'a> = match &node.op {
        PlanOp::Scan { relation, pushed, .. } => {
            let table =
                db.table(relation).ok_or_else(|| ExecError::UnknownRelation(relation.clone()))?;
            Box::new(Scan {
                rows: table.rows(),
                preds: pushed,
                threads: opts.threads,
                width: 0,
                pos: 0,
                batches: None,
                emitted: 0,
                par_threads: 0,
                par_wall: Duration::ZERO,
            })
        }
        PlanOp::DerivedTable { .. } => Box::new(Passthrough {
            child: build(&node.children[0], db, stats, governed, shared, opts)?,
        }),
        PlanOp::Filter { preds } => Box::new(Filter {
            child: build(&node.children[0], db, stats, governed, shared, opts)?,
            preds,
        }),
        PlanOp::HashJoin { left_keys, right_keys, build_left } => Box::new(HashJoin {
            left: build(&node.children[0], db, stats, governed, shared, opts)?,
            right: build(&node.children[1], db, stats, governed, shared, opts)?,
            left_keys,
            right_keys,
            build_left: *build_left,
            threads: opts.threads,
            build_data: None,
            table: JoinTable::default(),
            out: None,
            emitted: 0,
            build_rows: 0,
            probe_rows: 0,
            par_threads: 0,
            par_wall: Duration::ZERO,
        }),
        PlanOp::CrossJoin => Box::new(CrossJoin {
            left: build(&node.children[0], db, stats, governed, shared, opts)?,
            right: build(&node.children[1], db, stats, governed, shared, opts)?,
            buffer: None,
        }),
        PlanOp::HashAggregate { group, items, .. } => Box::new(HashAggregate {
            child: build(&node.children[0], db, stats, governed, shared, opts)?,
            group,
            items,
            threads: opts.threads,
            output: Vec::new(),
            emitted: 0,
            in_rows: 0,
            in_bytes: 0,
            groups_out: 0,
            par_threads: 0,
            par_wall: Duration::ZERO,
        }),
        PlanOp::Project { cols, .. } => Box::new(Project {
            child: build(&node.children[0], db, stats, governed, shared, opts)?,
            cols,
        }),
        PlanOp::Distinct => Box::new(Distinct {
            child: build(&node.children[0], db, stats, governed, shared, opts)?,
            seen: HashSet::new(),
            seen_bytes: 0,
        }),
        PlanOp::Sort { keys } => Box::new(Sort {
            child: build(&node.children[0], db, stats, governed, shared, opts)?,
            keys,
            width: 0,
            buffer: Vec::new(),
            in_bytes: 0,
            emitted: 0,
        }),
        PlanOp::Limit { n } => Box::new(Limit {
            child: build(&node.children[0], db, stats, governed, shared, opts)?,
            remaining: *n,
        }),
    };
    // Budget enforcement sits inside the metering shim so governed wall
    // time is attributed to the operator it bounds.
    let inner: Box<dyn Operator + 'a> =
        if governed { Box::new(Guarded { site: guard_site(&node.op), inner }) } else { inner };
    Ok(Metered { id: node.id, stats: stats.clone(), inner })
}

/// Executes a physical plan against `db`, returning the result table and
/// the per-operator metrics. When the plan carries no ORDER BY the rows
/// are stably sorted by value, so results are reproducible across runs
/// and plan changes.
pub fn run_plan(plan: &PlanNode, db: &Database) -> Result<(ResultTable, ExecStats), ExecError> {
    run_plan_opts(plan, db, &SharedRows::new(), ExecOptions::default())
}

/// [`run_plan`] with shared-subplan substitution: any node whose id
/// appears in `shared` is executed as a cached-batch replay instead of
/// its subtree (the subtree below it never builds or runs). The
/// `aqks-equiv` shared-subplan DAG materializes each shared subtree
/// once via [`materialize_batches`] and feeds the batches to every
/// consumer through this entry point.
pub fn run_plan_with_shared(
    plan: &PlanNode,
    db: &Database,
    shared: &SharedRows,
) -> Result<(ResultTable, ExecStats), ExecError> {
    run_plan_opts(plan, db, shared, ExecOptions::default())
}

/// The fully-parameterized plan runner: shared-subplan substitution
/// plus execution options (worker thread count). Results are identical
/// at every `opts.threads` value; only the wall time changes.
pub fn run_plan_opts(
    plan: &PlanNode,
    db: &Database,
    shared: &SharedRows,
    opts: ExecOptions,
) -> Result<(ResultTable, ExecStats), ExecError> {
    let (batches, stats) = pull_batches(plan, db, shared, opts)?;
    let mut rows: Vec<Row> = Vec::new();
    for b in &batches {
        rows.extend(b.to_rows());
    }
    if !plan.is_ordered() {
        rows.sort();
    }
    let mut table = ResultTable::new(plan.output_names());
    table.rows = rows;
    Ok((table, stats))
}

/// Executes a plan and returns its raw output rows, *without* the
/// stabilizing sort or column naming of [`run_plan`] — kept for callers
/// that want row-major output; shared-subtree materialization itself
/// uses [`materialize_batches`] to stay columnar.
pub fn materialize_plan(
    plan: &PlanNode,
    db: &Database,
) -> Result<(Vec<Row>, ExecStats), ExecError> {
    let (batches, stats) = pull_batches(plan, db, &SharedRows::new(), ExecOptions::default())?;
    let mut rows = Vec::new();
    for b in &batches {
        rows.extend(b.to_rows());
    }
    Ok((rows, stats))
}

/// Executes a plan and returns its raw output *batches* in operator
/// output order — the materialization primitive for shared subtrees,
/// whose consumers replay the columnar storage without a row detour.
pub fn materialize_batches(
    plan: &PlanNode,
    db: &Database,
    opts: ExecOptions,
) -> Result<(Vec<ColumnBatch>, ExecStats), ExecError> {
    pull_batches(plan, db, &SharedRows::new(), opts)
}

/// [`materialize_batches`] with shared-subtree replay: plan nodes whose
/// ids appear in `shared` are replaced by cached-row replays of the
/// supplied batches. Because batches are `Arc`-shared column sets, a
/// replay costs reference-count bumps per batch — the per-consumer work
/// is independent of the cached row count.
pub fn materialize_shared(
    plan: &PlanNode,
    db: &Database,
    shared: &SharedRows,
    opts: ExecOptions,
) -> Result<(Vec<ColumnBatch>, ExecStats), ExecError> {
    pull_batches(plan, db, shared, opts)
}

/// Builds, opens and drains a plan, collecting all batches and metrics.
fn pull_batches(
    plan: &PlanNode,
    db: &Database,
    shared: &SharedRows,
    opts: ExecOptions,
) -> Result<(Vec<ColumnBatch>, ExecStats), ExecError> {
    let t0 = Instant::now();
    let stats: StatsCell = Arc::new(Mutex::new(vec![OpMetrics::default(); plan.max_id() + 1]));
    // One ambient probe per plan: ungoverned runs skip the Guarded shims
    // entirely, keeping the default path free.
    let governed = aqks_guard::current().is_some();
    let mut root = build(plan, db, &stats, governed, shared, opts)?;
    root.open()?;
    let mut batches: Vec<ColumnBatch> = Vec::new();
    while let Some(batch) = root.next()? {
        if !batch.is_empty() {
            batches.push(batch);
        }
    }
    root.close();
    drop(root);

    let mut ops = Arc::try_unwrap(stats)
        .map(|m| m.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
        .unwrap_or_else(|arc| par::relock(&arc).clone());
    // rows-in is the sum of each node's children's rows-out (zero below
    // a cached replay: those subtrees never ran).
    plan.visit(&mut |node| {
        let rows_in: u64 = node.children.iter().map(|c| ops[c.id].rows_out).sum();
        ops[node.id].rows_in = rows_in;
    });
    for m in &mut ops {
        if m.threads == 0 {
            m.threads = 1;
        }
    }
    // When an observability recorder is active on this thread (the
    // engine's `exec` span), graft the per-operator metrics into its
    // span tree so operator costs and pipeline phases land in one trace.
    if let Some(rec) = aqks_obs::current() {
        record_op_spans(&rec, plan, &ops, t0, None);
    }
    // Always-on cumulative telemetry: per-operator-kind rows/batches
    // counters and wall/peak-bytes histograms in the global registry.
    if aqks_obs::metrics::enabled() {
        plan.visit(&mut |node| {
            let m = &ops[node.id];
            let name = op_name(&node.op);
            OP_ROWS.add(name, m.rows_out);
            OP_BATCHES.add(name, m.batches);
            OP_WALL_NS.observe(name, m.wall.as_nanos() as u64);
            OP_PEAK_BYTES.observe(name, m.peak_bytes);
        });
    }
    Ok((batches, ExecStats { ops, wall: t0.elapsed() }))
}

/// Cumulative per-operator-kind metrics, labeled by [`op_name`].
static OP_ROWS: aqks_obs::LabeledCounter = aqks_obs::LabeledCounter::new("aqks_ops_rows", "op");
static OP_BATCHES: aqks_obs::LabeledCounter =
    aqks_obs::LabeledCounter::new("aqks_ops_batches", "op");
static OP_WALL_NS: aqks_obs::LabeledHistogram =
    aqks_obs::LabeledHistogram::new("aqks_ops_wall_ns", "op", aqks_obs::Unit::Nanos);
static OP_PEAK_BYTES: aqks_obs::LabeledHistogram =
    aqks_obs::LabeledHistogram::new("aqks_ops_peak_bytes", "op", aqks_obs::Unit::Bytes);

/// Short operator name for trace spans (the EXPLAIN label minus its
/// plan-specific detail, so span names are stable across queries).
fn op_name(op: &PlanOp) -> &'static str {
    match op {
        PlanOp::Scan { .. } => "Scan",
        PlanOp::DerivedTable { .. } => "DerivedTable",
        PlanOp::Filter { .. } => "Filter",
        PlanOp::HashJoin { .. } => "HashJoin",
        PlanOp::CrossJoin => "CrossJoin",
        PlanOp::HashAggregate { .. } => "HashAggregate",
        PlanOp::Project { .. } => "Project",
        PlanOp::Distinct => "Distinct",
        PlanOp::Sort { .. } => "Sort",
        PlanOp::Limit { .. } => "Limit",
    }
}

/// Records one completed span per plan operator, nested by plan
/// structure. Operator wall times are *inclusive* (an operator's clock
/// runs while it pulls from its inputs), so parent/child spans nest like
/// an icicle graph and per-span self time is meaningful. Spans start at
/// the plan run's `t0`: operators execute interleaved, so only the
/// durations — not the offsets — are physical. A `threads` counter is
/// added only when the operator actually went parallel, keeping
/// sequential traces byte-identical to the pre-parallel executor.
fn record_op_spans(
    rec: &aqks_obs::Recorder,
    node: &PlanNode,
    ops: &[OpMetrics],
    t0: Instant,
    parent: Option<&aqks_obs::SpanHandle>,
) {
    let m = &ops[node.id];
    let mut counters =
        vec![("rows_in", m.rows_in), ("rows_out", m.rows_out), ("batches", m.batches)];
    if m.threads > 1 {
        counters.push(("threads", u64::from(m.threads)));
    }
    let handle =
        rec.record_span(parent, format!("op:{}", op_name(&node.op)), t0, m.wall, &counters);
    for c in &node.children {
        record_op_spans(rec, c, ops, t0, Some(&handle));
    }
}

/// Evaluates one aggregate over a group's values (NULLs skipped).
pub(crate) fn aggregate<'a, I: Iterator<Item = &'a Value>>(
    func: AggFunc,
    distinct: bool,
    vals: I,
) -> Value {
    let mut non_null: Vec<&Value> = vals.filter(|v| !v.is_null()).collect();
    if distinct {
        let mut seen = HashSet::new();
        non_null.retain(|v| seen.insert((*v).clone()));
    }
    match func {
        AggFunc::Count => Value::Int(non_null.len() as i64),
        AggFunc::Sum => {
            let all_int = non_null.iter().all(|v| matches!(v, Value::Int(_)));
            let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                // Empty group, or nothing numeric (SUM over text): NULL.
                Value::Null
            } else if all_int {
                Value::Int(nums.iter().map(|&f| f as i64).sum())
            } else {
                Value::Float(nums.iter().sum())
            }
        }
        AggFunc::Avg => {
            let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFunc::Min => non_null.iter().min().map(|v| (*v).clone()).unwrap_or(Value::Null),
        AggFunc::Max => non_null.iter().max().map(|v| (*v).clone()).unwrap_or(Value::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ColumnRef, Predicate, SelectItem, SelectStatement, TableExpr};
    use crate::exec::{execute, execute_with_stats};
    use crate::plan::plan;
    use aqks_relational::{AttrType, RelationSchema};

    fn col(q: &str, c: &str) -> ColumnRef {
        ColumnRef::new(q, c)
    }

    /// Two relations keyed on (a, b) with NULLs in the key columns on
    /// BOTH sides; a NULL on either side of either key must not match,
    /// and NULL = NULL must not match either.
    #[test]
    fn multi_key_hash_join_skips_null_keys_on_both_sides() {
        let mut db = Database::new("nulls");
        let mut l = RelationSchema::new("L");
        l.add_attr("A", AttrType::Text).add_attr("B", AttrType::Int).add_attr("X", AttrType::Text);
        db.add_relation(l).unwrap();
        let mut r = RelationSchema::new("R");
        r.add_attr("A", AttrType::Text).add_attr("B", AttrType::Int).add_attr("Y", AttrType::Text);
        db.add_relation(r).unwrap();
        for (a, b, x) in [
            (Value::str("k1"), Value::Int(1), "l1"),
            (Value::str("k1"), Value::Int(2), "l2"),
            (Value::Null, Value::Int(1), "l-null-a"),
            (Value::str("k2"), Value::Null, "l-null-b"),
            (Value::Null, Value::Null, "l-null-both"),
        ] {
            db.insert("L", vec![a, b, Value::str(x)]).unwrap();
        }
        for (a, b, y) in [
            (Value::str("k1"), Value::Int(1), "r1"),
            (Value::str("k1"), Value::Int(1), "r1bis"),
            (Value::Null, Value::Int(1), "r-null-a"),
            (Value::str("k2"), Value::Null, "r-null-b"),
            (Value::Null, Value::Null, "r-null-both"),
        ] {
            db.insert("R", vec![a, b, Value::str(y)]).unwrap();
        }
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("L", "X"), alias: None },
                SelectItem::Column { col: col("R", "Y"), alias: None },
            ],
            from: vec![
                TableExpr::Relation { name: "L".into(), alias: "L".into() },
                TableExpr::Relation { name: "R".into(), alias: "R".into() },
            ],
            predicates: vec![
                Predicate::JoinEq(col("L", "A"), col("R", "A")),
                Predicate::JoinEq(col("L", "B"), col("R", "B")),
            ],
            ..Default::default()
        };
        let (t, stats) = execute_with_stats(&stmt, &db).unwrap();
        // Only (k1, 1) matches, twice on the right.
        assert_eq!(t.len(), 2, "{t}");
        for row in &t.rows {
            assert_eq!(row[0], Value::str("l1"));
        }
        // Both join keys were consumed by one multi-key hash join.
        let p = plan(&stmt, &db).unwrap();
        let mut joins = 0;
        p.visit(&mut |n| {
            if let crate::plan::PlanOp::HashJoin { left_keys, .. } = &n.op {
                joins += 1;
                assert_eq!(left_keys.len(), 2);
            }
        });
        assert_eq!(joins, 1);
        assert!(stats.ops.iter().any(|m| m.note.is_some()), "join recorded build/probe note");
    }

    /// Metrics invariants: rows_in of every operator equals the sum of
    /// its children's rows_out, and the root's rows_out matches the
    /// result cardinality.
    #[test]
    fn stats_rows_are_consistent_across_the_tree() {
        let mut db = Database::new("t");
        let mut s = RelationSchema::new("T");
        s.add_attr("K", AttrType::Int).add_attr("V", AttrType::Int);
        db.add_relation(s).unwrap();
        for i in 0..2500i64 {
            db.insert("T", vec![Value::Int(i % 7), Value::Int(i)]).unwrap();
        }
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("T", "K"), alias: None },
                SelectItem::Aggregate {
                    func: crate::ast::AggFunc::Count,
                    arg: col("T", "V"),
                    distinct: false,
                    alias: "n".into(),
                },
            ],
            from: vec![TableExpr::Relation { name: "T".into(), alias: "T".into() }],
            group_by: vec![col("T", "K")],
            ..Default::default()
        };
        let p = plan(&stmt, &db).unwrap();
        let (t, stats) = run_plan(&p, &db).unwrap();
        assert_eq!(t.len(), 7);
        p.visit(&mut |n| {
            let expect: u64 = n.children.iter().map(|c| stats.ops[c.id].rows_out).sum();
            assert_eq!(stats.ops[n.id].rows_in, expect, "node {}", n.label());
        });
        assert_eq!(stats.ops[p.id].rows_out, 7);
        // 2500 rows cross the batch boundary: the scan emitted >1 batch.
        let scan = p.children[0].id;
        assert!(stats.ops[scan].batches >= 3, "batched scan: {}", stats.ops[scan].batches);
        assert_eq!(stats.ops[scan].rows_out, 2500);
        // A sequential run reports threads=1 on every operator.
        assert_eq!(stats.max_threads(), 1);
        assert_eq!(stats.parallel_ops(), 0);
    }

    /// LIMIT stops pulling batches from its input once satisfied.
    #[test]
    fn limit_short_circuits_the_scan() {
        let mut db = Database::new("t");
        let mut s = RelationSchema::new("T");
        s.add_attr("V", AttrType::Int);
        db.add_relation(s).unwrap();
        for i in 0..10_000i64 {
            db.insert("T", vec![Value::Int(i)]).unwrap();
        }
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: col("T", "V"), alias: None }],
            from: vec![TableExpr::Relation { name: "T".into(), alias: "T".into() }],
            limit: Some(5),
            ..Default::default()
        };
        let p = plan(&stmt, &db).unwrap();
        let (t, stats) = run_plan(&p, &db).unwrap();
        assert_eq!(t.len(), 5);
        let mut scan_out = 0;
        p.visit(&mut |n| {
            if matches!(n.op, crate::plan::PlanOp::Scan { .. }) {
                scan_out = stats.ops[n.id].rows_out;
            }
        });
        assert!(scan_out <= 1024, "scan stopped after one batch, saw {scan_out}");
    }

    /// Equal results and stable order from repeated runs (the
    /// no-ORDER-BY canonicalization).
    #[test]
    fn repeated_runs_are_identical() {
        let mut db = Database::new("t");
        let mut s = RelationSchema::new("T");
        s.add_attr("K", AttrType::Int).add_attr("V", AttrType::Text);
        db.add_relation(s).unwrap();
        for i in 0..50i64 {
            db.insert("T", vec![Value::Int(i % 11), Value::str(format!("v{i}"))]).unwrap();
        }
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("T", "K"), alias: None },
                SelectItem::Column { col: col("T", "V"), alias: None },
            ],
            from: vec![TableExpr::Relation { name: "T".into(), alias: "T".into() }],
            ..Default::default()
        };
        let first = crate::exec::execute(&stmt, &db).unwrap();
        for _ in 0..5 {
            assert_eq!(crate::exec::execute(&stmt, &db).unwrap().rows, first.rows);
        }
        assert!(first.rows.windows(2).all(|w| w[0] <= w[1]));
    }
    /// Helper: a Student-Enrol join statement over a fresh database with
    /// `n` students and `2n` enrolments (Enrol is the larger side, so
    /// the planner builds the hash table from Student).
    fn join_fixture(n: i64) -> (Database, SelectStatement) {
        let mut db = Database::new("gov");
        let mut s = RelationSchema::new("Student");
        s.add_attr("Sid", AttrType::Int).add_attr("Sname", AttrType::Text);
        db.add_relation(s).unwrap();
        let mut e = RelationSchema::new("Enrol");
        e.add_attr("Sid", AttrType::Int).add_attr("Code", AttrType::Text);
        db.add_relation(e).unwrap();
        for i in 0..n {
            db.insert("Student", vec![Value::Int(i), Value::str(format!("s{i}"))]).unwrap();
            for j in 0..2 {
                db.insert("Enrol", vec![Value::Int(i), Value::str(format!("c{j}"))]).unwrap();
            }
        }
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("S", "Sname"), alias: None },
                SelectItem::Column { col: col("E", "Code"), alias: None },
            ],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
            ],
            predicates: vec![Predicate::JoinEq(col("S", "Sid"), col("E", "Sid"))],
            ..Default::default()
        };
        (db, stmt)
    }

    /// The parallel paths (morsel scan, partitioned join build,
    /// two-phase aggregate) produce byte-identical stabilized results
    /// at every thread count, and the stats record where parallelism
    /// applied.
    #[test]
    fn parallel_execution_matches_sequential() {
        let (db, stmt) = join_fixture(6000);
        let p = plan(&stmt, &db).unwrap();
        let (reference, _) = run_plan(&p, &db).unwrap();
        for threads in [2, 4, 8] {
            let (t, stats) =
                run_plan_opts(&p, &db, &SharedRows::new(), ExecOptions::with_threads(threads))
                    .unwrap();
            assert_eq!(t.rows, reference.rows, "threads={threads}");
            assert!(stats.max_threads() > 1, "parallel sections ran at threads={threads}");
            assert!(stats.parallel_ops() >= 1);
        }
    }

    /// The two-phase aggregate preserves group order, float summation
    /// order, DISTINCT handling and first-row group columns at every
    /// thread count.
    #[test]
    fn parallel_aggregate_matches_sequential() {
        let mut db = Database::new("t");
        let mut s = RelationSchema::new("T");
        s.add_attr("K", AttrType::Int).add_attr("F", AttrType::Float).add_attr("V", AttrType::Int);
        db.add_relation(s).unwrap();
        for i in 0..9000i64 {
            let f = if i % 13 == 0 { Value::Null } else { Value::Float((i as f64) * 0.37 - 950.0) };
            db.insert("T", vec![Value::Int(i % 97), f, Value::Int(i % 5)]).unwrap();
        }
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("T", "K"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Sum,
                    arg: col("T", "F"),
                    distinct: false,
                    alias: "s".into(),
                },
                SelectItem::Aggregate {
                    func: AggFunc::Avg,
                    arg: col("T", "F"),
                    distinct: false,
                    alias: "a".into(),
                },
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: col("T", "V"),
                    distinct: true,
                    alias: "d".into(),
                },
                SelectItem::Aggregate {
                    func: AggFunc::Min,
                    arg: col("T", "F"),
                    distinct: false,
                    alias: "lo".into(),
                },
                SelectItem::Aggregate {
                    func: AggFunc::Max,
                    arg: col("T", "F"),
                    distinct: false,
                    alias: "hi".into(),
                },
            ],
            from: vec![TableExpr::Relation { name: "T".into(), alias: "T".into() }],
            group_by: vec![col("T", "K")],
            ..Default::default()
        };
        let p = plan(&stmt, &db).unwrap();
        let (reference, _) = run_plan(&p, &db).unwrap();
        for threads in [2, 3, 4, 8] {
            let (t, _) =
                run_plan_opts(&p, &db, &SharedRows::new(), ExecOptions::with_threads(threads))
                    .unwrap();
            assert_eq!(t.rows, reference.rows, "threads={threads}");
        }
    }

    /// Row cap sized to survive the build-side scan but not the hash
    /// table it feeds: the trip names `ops.HashJoin.build`, the
    /// materialization site, not the streaming scan.
    #[test]
    fn row_cap_trips_inside_hash_join_build() {
        let (db, stmt) = join_fixture(50);
        let gov = aqks_guard::Governor::new(&aqks_guard::Budget::unlimited().with_max_rows(60));
        let _g = aqks_guard::install(&gov);
        let err = execute(&stmt, &db).unwrap_err();
        match err {
            ExecError::Budget(t) => {
                assert_eq!(t.kind, aqks_guard::BudgetKind::Rows);
                assert_eq!(t.site, "ops.HashJoin.build");
            }
            other => panic!("expected budget trip, got {other:?}"),
        }
        assert_eq!(gov.trip().map(|t| t.site), Some("ops.HashJoin.build"));
    }

    /// Row charging happens on the plan's thread at the same sites
    /// regardless of thread count, so the cap trips identically under a
    /// parallel run.
    #[test]
    fn row_cap_trips_identically_when_parallel() {
        let (db, stmt) = join_fixture(50);
        let p = plan(&stmt, &db).unwrap();
        let gov = aqks_guard::Governor::new(&aqks_guard::Budget::unlimited().with_max_rows(60));
        let _g = aqks_guard::install(&gov);
        let err =
            run_plan_opts(&p, &db, &SharedRows::new(), ExecOptions::with_threads(4)).unwrap_err();
        match err {
            ExecError::Budget(t) => {
                assert_eq!(t.kind, aqks_guard::BudgetKind::Rows);
                assert_eq!(t.site, "ops.HashJoin.build");
            }
            other => panic!("expected budget trip, got {other:?}"),
        }
    }

    /// An expired deadline cancels the plan at the next per-batch
    /// checkpoint instead of running to completion.
    #[test]
    fn expired_deadline_cancels_next_batch() {
        let (db, stmt) = join_fixture(50);
        let gov = aqks_guard::Governor::new(
            &aqks_guard::Budget::unlimited().with_timeout(Duration::ZERO),
        );
        let _g = aqks_guard::install(&gov);
        let err = execute(&stmt, &db).unwrap_err();
        match err {
            ExecError::Budget(t) => {
                assert_eq!(t.kind, aqks_guard::BudgetKind::Deadline);
                assert!(t.site.starts_with("ops."), "deadline caught in an operator: {}", t.site);
            }
            other => panic!("expected deadline trip, got {other:?}"),
        }
    }

    /// Workers poll the captured governor mid-morsel: an expired
    /// deadline cancels a parallel run with a structured budget trip —
    /// no panic, and the scoped pool joins all workers before returning.
    #[test]
    fn expired_deadline_cancels_parallel_workers() {
        let (db, stmt) = join_fixture(6000);
        let p = plan(&stmt, &db).unwrap();
        let gov = aqks_guard::Governor::new(
            &aqks_guard::Budget::unlimited().with_timeout(Duration::ZERO),
        );
        let _g = aqks_guard::install(&gov);
        let err =
            run_plan_opts(&p, &db, &SharedRows::new(), ExecOptions::with_threads(4)).unwrap_err();
        match err {
            ExecError::Budget(t) => {
                assert_eq!(t.kind, aqks_guard::BudgetKind::Deadline);
                assert!(t.site.starts_with("ops."), "deadline site: {}", t.site);
            }
            other => panic!("expected deadline trip, got {other:?}"),
        }
    }

    /// Without an installed governor the same query runs to completion —
    /// the Guarded shim is not even constructed.
    #[test]
    fn ungoverned_plans_are_unaffected() {
        let (db, stmt) = join_fixture(50);
        let t = execute(&stmt, &db).unwrap();
        assert_eq!(t.len(), 100);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn join_build_failpoint_surfaces_typed_error() {
        let (db, stmt) = join_fixture(5);
        aqks_guard::failpoint::enable("join.build");
        let err = execute(&stmt, &db).unwrap_err();
        assert_eq!(err, ExecError::Fault("join.build"));
        aqks_guard::failpoint::disable("join.build");
        assert_eq!(execute(&stmt, &db).unwrap().len(), 10);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn agg_finalize_failpoint_surfaces_typed_error() {
        let mut db = Database::new("t");
        let mut s = RelationSchema::new("T");
        s.add_attr("K", AttrType::Int);
        db.add_relation(s).unwrap();
        db.insert("T", vec![Value::Int(1)]).unwrap();
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: col("T", "K"),
                distinct: false,
                alias: "n".into(),
            }],
            from: vec![TableExpr::Relation { name: "T".into(), alias: "T".into() }],
            ..Default::default()
        };
        aqks_guard::failpoint::enable("agg.finalize");
        let err = execute(&stmt, &db).unwrap_err();
        assert_eq!(err, ExecError::Fault("agg.finalize"));
        aqks_guard::failpoint::clear();
        assert_eq!(execute(&stmt, &db).unwrap().scalar(), Some(&Value::Int(1)));
    }
}
