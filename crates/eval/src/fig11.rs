//! Figure 11: time to *generate* SQL statements (not execute them), per
//! query, ours vs SQAK.
//!
//! The paper reports milliseconds on a 3.4 GHz JVM; absolute numbers
//! differ here, but the shape — both engines within the same order of
//! magnitude, the semantic engine consistently a bit slower because it
//! enumerates interpretations, disambiguates, and detects duplicates —
//! is the claim under test. Criterion benches in `aqks-bench` measure the
//! same work with full statistical rigour; this module produces the
//! quick paper-style series for EXPERIMENTS.md.

use std::time::Instant;

use aqks_core::Engine;
use aqks_relational::Database;
use aqks_sqak::Sqak;

use crate::workload::{acmdl_queries, tpch_queries, EvalQuery, Scale};

/// One timing row of Figure 11.
#[derive(Debug, Clone)]
pub struct TimingRow {
    /// Query id.
    pub id: &'static str,
    /// Median SQL-generation time of the semantic engine, microseconds.
    pub ours_us: f64,
    /// Median SQL-generation time of SQAK, microseconds.
    pub sqak_us: f64,
}

fn median_us<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn time_queries(db: Database, queries: Vec<EvalQuery>, reps: usize) -> Vec<TimingRow> {
    let engine = Engine::new(db.clone()).expect("engine builds");
    let sqak = Sqak::new(db);
    queries
        .into_iter()
        .map(|q| {
            // Warm up once (index/builds are in the constructors; this
            // warms caches and the allocator).
            let _ = engine.generate(q.text, 1);
            let _ = sqak.generate(q.text);
            let ours_us = median_us(
                || {
                    let _ = std::hint::black_box(engine.generate(q.text, 1));
                },
                reps,
            );
            let sqak_us = median_us(
                || {
                    let _ = std::hint::black_box(sqak.generate(q.text));
                },
                reps,
            );
            TimingRow { id: q.id, ours_us, sqak_us }
        })
        .collect()
}

/// Runs both Figure 11 series: (a) TPCH T1–T8, (b) ACMDL A1–A8.
pub fn run_fig11(scale: Scale, reps: usize) -> (Vec<TimingRow>, Vec<TimingRow>) {
    let tpch = time_queries(crate::workload::tpch_database(scale), tpch_queries(), reps);
    let acmdl = time_queries(crate::workload::acmdl_database(scale), acmdl_queries(), reps);
    (tpch, acmdl)
}

/// Renders one series as markdown.
pub fn render_markdown(title: &str, rows: &[TimingRow]) -> String {
    let mut s = format!("## {title}\n\n");
    s.push_str("| # | Proposed Approach (µs) | SQAK (µs) | ratio |\n");
    s.push_str("|---|------------------------|-----------|-------|\n");
    for r in rows {
        let ratio = if r.sqak_us > 0.0 { r.ours_us / r.sqak_us } else { f64::NAN };
        s.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:.2}x |\n",
            r.id, r.ours_us, r.sqak_us, ratio
        ));
    }
    s
}
