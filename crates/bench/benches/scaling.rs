//! Scaling behaviour beyond the paper: how engine construction (index +
//! ORM graph) and SQL generation grow with database size. Generation
//! should stay near-constant — it touches the index and the schema graph,
//! not the data — while construction is linear in stored tuples.

use aqks_core::Engine;
use aqks_datasets::{generate_tpch, TpchConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn config(scale: usize) -> TpchConfig {
    TpchConfig {
        seed: 42,
        parts: 120 * scale,
        suppliers: 40 * scale,
        customers: 60 * scale,
        orders: 400 * scale,
        parts_per_supplier: 12,
        max_orders_per_pair: 3,
    }
}

fn scaling(c: &mut Criterion) {
    let mut build = c.benchmark_group("scaling_engine_build");
    build.sample_size(10);
    for scale in [1usize, 2, 4, 8] {
        let db = generate_tpch(&config(scale));
        build.bench_with_input(BenchmarkId::from_parameter(scale), &db, |b, db| {
            b.iter(|| black_box(Engine::new(db.clone()).unwrap()))
        });
    }
    build.finish();

    let mut generate = c.benchmark_group("scaling_sql_generation");
    for scale in [1usize, 2, 4, 8] {
        let db = generate_tpch(&config(scale));
        let engine = Engine::new(db).unwrap();
        generate.bench_with_input(BenchmarkId::from_parameter(scale), &engine, |b, engine| {
            b.iter(|| black_box(engine.generate(r#"COUNT order "royal olive""#, 1)))
        });
    }
    generate.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
