//! Figure 11(a): SQL-generation time on TPC-H, queries T1–T8, the
//! semantic engine vs SQAK. The paper's claim: both are fast (the SQL
//! *execution* dominates end-to-end time) and the semantic engine pays a
//! modest premium for interpreting the query, disambiguating objects, and
//! detecting relationship duplicates.

use aqks_bench::tpch_engines;
use aqks_eval::tpch_queries;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn fig11_tpch(c: &mut Criterion) {
    let (engine, sqak, _db) = tpch_engines();
    let mut group = c.benchmark_group("fig11_tpch");
    for q in tpch_queries() {
        group.bench_with_input(BenchmarkId::new("ours", q.id), &q, |b, q| {
            b.iter(|| black_box(engine.generate(q.text, 1)))
        });
        group.bench_with_input(BenchmarkId::new("sqak", q.id), &q, |b, q| {
            b.iter(|| black_box(sqak.generate(q.text)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig11_tpch);
criterion_main!(benches);
