//! Structural assertions for the paper's illustrative figures: the ORM
//! schema graphs (Figures 3 and 9) and the query patterns (Figures 4-7
//! and 10), exercised through the public crates.

use aqks::core::{Engine, NodeAnnotation};
use aqks::datasets::university;
use aqks::orm::{NodeKind, OrmGraph};
use aqks::relational::NormalizedView;

/// Figure 3: the university ORM schema graph.
#[test]
fn figure3_orm_graph() {
    let db = university::normalized();
    let g = OrmGraph::build(&db.schema()).unwrap();
    let kind = |r: &str| g.node(g.node_of_relation(r).unwrap()).kind;

    assert_eq!(g.nodes().len(), 8);
    for obj in ["Student", "Course", "Textbook", "Faculty"] {
        assert_eq!(kind(obj), NodeKind::Object, "{obj}");
    }
    for rel in ["Enrol", "Teach"] {
        assert_eq!(kind(rel), NodeKind::Relationship, "{rel}");
    }
    for mixed in ["Lecturer", "Department"] {
        assert_eq!(kind(mixed), NodeKind::Mixed, "{mixed}");
    }
    // Edges as drawn: Textbook-Teach, Teach-Course, Teach-Lecturer,
    // Course-Enrol, Enrol-Student, Lecturer-Department, Department-Faculty.
    assert_eq!(g.edges().len(), 7);
}

/// Figure 9: the ORM graph of Figure 8's normalized view — Student' and
/// Course' objects joined by the Enrol' relationship.
#[test]
fn figure9_orm_graph_of_view() {
    let db = university::enrolment_fig8();
    let view = NormalizedView::build(&db.schema());
    let g = OrmGraph::build(&view.schema()).unwrap();
    assert_eq!(g.nodes().len(), 3);
    let kind = |r: &str| g.node(g.node_of_relation(r).unwrap()).kind;
    assert_eq!(kind("Student"), NodeKind::Object);
    assert_eq!(kind("Course"), NodeKind::Object);
    assert_eq!(kind("Enrol"), NodeKind::Relationship);
    assert_eq!(g.edges().len(), 2);
}

/// Figures 4-6: pattern structures for {Green George [COUNT] Code},
/// already covered in unit tests — here we assert them through the
/// engine-ranked output: the merged (P1) and per-Green (P3) variants
/// both appear, per-Green first.
#[test]
fn figures_4_5_6_pattern_variants() {
    let engine = Engine::new(university::normalized()).unwrap();
    let generated = engine.generate("Green George COUNT Code", 10).unwrap();
    let per_green: Vec<usize> = generated
        .iter()
        .enumerate()
        .filter(|(_, g)| {
            g.pattern.nodes.iter().any(|n| {
                n.annotations.iter().any(|a| matches!(a, NodeAnnotation::Distinguish { .. }))
            })
        })
        .map(|(i, _)| i)
        .collect();
    let merged: Vec<usize> = generated
        .iter()
        .enumerate()
        .filter(|(_, g)| {
            g.pattern.nodes.iter().all(|n| {
                !n.annotations.iter().any(|a| matches!(a, NodeAnnotation::Distinguish { .. }))
            })
        })
        .map(|(i, _)| i)
        .collect();
    assert!(!per_green.is_empty() && !merged.is_empty());
    assert!(
        per_green[0] < merged[0],
        "per-object variant ranks first: {per_green:?} vs {merged:?}"
    );
}

/// Figure 7: the nested-aggregate pattern — AVG applied over the
/// COUNT(Lid) / GROUPBY(Code) core.
#[test]
fn figure7_nested_pattern() {
    let engine = Engine::new(university::normalized()).unwrap();
    let generated = engine.generate("AVG COUNT Lecturer GROUPBY Course", 1).unwrap();
    let p = &generated[0].pattern;
    assert_eq!(p.nested, vec![aqks::sqlgen::AggFunc::Avg]);
    assert_eq!(p.nodes.len(), 3);
    let desc = p.describe();
    assert!(desc.contains("COUNT(Lid)") && desc.contains("GROUPBY(Code)"), "{desc}");
}

/// Figure 10: the unnormalized pattern for {Green George COUNT Code} is
/// built over the view's relations (Student', Enrol', Course').
#[test]
fn figure10_unnormalized_pattern() {
    let engine = Engine::new(university::enrolment_fig8()).unwrap();
    let generated = engine.generate("Green George COUNT Code", 1).unwrap();
    let p = &generated[0].pattern;
    assert_eq!(p.nodes.iter().filter(|n| n.relation == "Student").count(), 2);
    assert_eq!(p.nodes.iter().filter(|n| n.relation == "Enrol").count(), 2);
    assert_eq!(p.nodes.iter().filter(|n| n.relation == "Course").count(), 1);
    // The Green node carries the disambiguating GROUPBY(Sid).
    let green =
        p.nodes.iter().find(|n| n.condition.as_ref().is_some_and(|c| c.term == "Green")).unwrap();
    assert!(green.annotations.iter().any(|a| matches!(a, NodeAnnotation::Distinguish { .. })));
}
