//! Ablation benches for the design choices called out in DESIGN.md §4:
//!
//! * `dedup_on/off` — the relationship FK-projection DISTINCT (Example
//!   4/6). Off reproduces SQAK's over-counting; the bench shows what the
//!   extra DISTINCT projection costs at execution time.
//! * `groupby_id_on/off` — grounding disambiguation GROUPBYs on object
//!   ids vs matched attribute values (Example 5).
//! * `rewrite_on/off` — the Section 4.1 rules on the unnormalized TPCH'.
//!   Off executes the raw many-subquery translation (Example 9); on
//!   executes the collapsed form (Example 10). The speedup is the rules'
//!   entire reason to exist.

use aqks_core::{Engine, EngineOptions, RewriteOptions, TranslateOptions};
use aqks_eval::{workload, Scale};
use aqks_sqlgen::execute;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn engine_with(
    db: aqks_relational::Database,
    translate: TranslateOptions,
    rewrite: RewriteOptions,
    skip_rewrites: bool,
) -> Engine {
    Engine::with_options(db, EngineOptions { translate, rewrite, skip_rewrites, discover_fds: false })
        .unwrap()
}

fn ablation_dedup(c: &mut Criterion) {
    let db = workload::tpch_database(Scale::Small);
    let on = engine_with(db.clone(), TranslateOptions::default(), RewriteOptions::default(), false);
    let off = engine_with(
        db.clone(),
        TranslateOptions { dedup_relationships: false, group_by_object_id: true },
        RewriteOptions::default(),
        false,
    );
    let q = r#"COUNT supplier "Indian black chocolate""#; // T5
    let mut group = c.benchmark_group("ablation_dedup");
    group.bench_function("on", |b| {
        b.iter(|| {
            let g = on.generate(q, 1).unwrap();
            black_box(execute(&g[0].sql, &db).unwrap())
        })
    });
    group.bench_function("off", |b| {
        b.iter(|| {
            let g = off.generate(q, 1).unwrap();
            black_box(execute(&g[0].sql, &db).unwrap())
        })
    });
    group.finish();
}

fn ablation_groupby_id(c: &mut Criterion) {
    let db = workload::tpch_database(Scale::Small);
    let on = engine_with(db.clone(), TranslateOptions::default(), RewriteOptions::default(), false);
    let off = engine_with(
        db.clone(),
        TranslateOptions { dedup_relationships: true, group_by_object_id: false },
        RewriteOptions::default(),
        false,
    );
    let q = r#"COUNT order "royal olive""#; // T3
    let mut group = c.benchmark_group("ablation_groupby_id");
    group.bench_function("on", |b| {
        b.iter(|| {
            let g = on.generate(q, 1).unwrap();
            black_box(execute(&g[0].sql, &db).unwrap())
        })
    });
    group.bench_function("off", |b| {
        b.iter(|| {
            let g = off.generate(q, 1).unwrap();
            black_box(execute(&g[0].sql, &db).unwrap())
        })
    });
    group.finish();
}

fn ablation_rewrite(c: &mut Criterion) {
    let db = workload::tpch_prime_database(Scale::Small);
    let on = engine_with(db.clone(), TranslateOptions::default(), RewriteOptions::default(), false);
    let off =
        engine_with(db.clone(), TranslateOptions::default(), RewriteOptions::default(), true);
    // Rule-by-rule variants.
    let rule12 = engine_with(
        db.clone(),
        TranslateOptions::default(),
        RewriteOptions { prune_projections: true, push_selections: true, collapse_joins: false },
        false,
    );
    let q = r#"COUNT order "royal olive""#; // T3 on TPCH'
    let mut group = c.benchmark_group("ablation_rewrite");
    group.sample_size(20);
    for (name, engine) in [("all_rules", &on), ("no_rules", &off), ("rules_1_2_only", &rule12)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let g = engine.generate(q, 1).unwrap();
                black_box(execute(&g[0].sql, &db).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_dedup, ablation_groupby_id, ablation_rewrite);
criterion_main!(benches);
