//! Every worked example in the paper's Sections 1–4, asserted end to end
//! through the public facade: the three intro queries (Q1, Q2, Q3), the
//! Section-2 constraint example, Q4/Q5 with Examples 1–6, the nested
//! aggregate of Example 7, and the unnormalized Examples 8–10.

use aqks::core::{Engine, EngineOptions, RewriteOptions, TranslateOptions};
use aqks::datasets::university;
use aqks::relational::Value;
use aqks::sqak::Sqak;

fn engine() -> Engine {
    Engine::new(university::normalized()).unwrap()
}

/// Q1 = {Green SUM Credit}: s2 earned 5 credits, s3 earned 8. SQAK's
/// listing in Section 1 merges them into 13.
#[test]
fn q1_semantic_vs_sqak() {
    let answers = engine().answer("Green SUM Credit", 1).unwrap();
    let r = &answers[0].result;
    assert_eq!(r.len(), 2);
    assert_eq!(r.rows[0], vec![Value::str("s2"), Value::Float(5.0)]);
    assert_eq!(r.rows[1], vec![Value::str("s3"), Value::Float(8.0)]);

    let sqak = Sqak::new(university::normalized());
    let r = sqak.answer("Green SUM Credit").unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.rows[0].last().unwrap(), &Value::Float(13.0));
    // And the paper's exact listing shape.
    let sql = sqak.generate("Green SUM Credit").unwrap().sql_text;
    assert!(sql.contains("SELECT S.Sname, SUM(C.Credit)"), "{sql}");
    assert!(sql.contains("GROUP BY S.Sname"), "{sql}");
}

/// Q2 = {Java SUM Price}: 2 textbooks (b1, b2) are used for Java; their
/// total price is 25. SQAK counts b1 twice (35).
#[test]
fn q2_semantic_vs_sqak() {
    let answers = engine().answer("Java SUM Price", 3).unwrap();
    let ours = answers
        .iter()
        .find(|a| a.result.column_index("sumPrice").is_some())
        .expect("textbook interpretation");
    assert_eq!(ours.result.rows[0].last().unwrap(), &Value::Int(25));
    assert!(ours.sql_text.contains("SELECT DISTINCT"), "{}", ours.sql_text);

    let sqak = Sqak::new(university::normalized());
    let r = sqak.answer("Java SUM Price").unwrap();
    assert_eq!(r.rows[0].last().unwrap(), &Value::Int(35));
}

/// Q3 = {Engineering COUNT Department} on Figure 2: exactly one
/// department belongs to the Engineering faculty. SQAK says 2.
#[test]
fn q3_unnormalized_vs_sqak() {
    let engine = Engine::new(university::unnormalized_fig2()).unwrap();
    assert!(engine.is_unnormalized());
    let r = &engine.answer("Engineering COUNT Department", 1).unwrap()[0].result;
    assert_eq!(r.rows[0].last().unwrap(), &Value::Int(1));

    let sqak = Sqak::new(university::unnormalized_fig2());
    let r = sqak.answer("Engineering COUNT Department").unwrap();
    assert_eq!(r.rows[0].last().unwrap(), &Value::Int(2));
}

/// Section 2's constraint example: {COUNT Student GROUPBY Course} — the
/// number of students in each course (3, 1, 2).
#[test]
fn count_student_groupby_course() {
    let answers = engine().answer("COUNT Student GROUPBY Course", 1).unwrap();
    let r = &answers[0].result;
    assert_eq!(r.len(), 3);
    let counts: Vec<&Value> = r.column("numSid").unwrap();
    assert_eq!(counts, vec![&Value::Int(3), &Value::Int(1), &Value::Int(2)]);
}

/// Q4 = {Green George COUNT Code}, Examples 1/3/5: the per-Green
/// interpretation (P3) counts shared courses per student id.
#[test]
fn q4_example5() {
    let answers = engine().answer("Green George COUNT Code", 5).unwrap();
    let p3 = answers
        .iter()
        .find(|a| a.sql.group_by.iter().any(|c| c.column.eq_ignore_ascii_case("Sid")))
        .expect("per-Green pattern");
    assert!(p3.sql_text.contains("contains 'Green'") && p3.sql_text.contains("contains 'George'"));
    let r = &p3.result;
    assert_eq!(r.len(), 2, "{r}");
    // s2 shares {c1} with George; s3 shares {c1, c3}.
    assert_eq!(r.rows[0], vec![Value::str("s2"), Value::Int(1)]);
    assert_eq!(r.rows[1], vec![Value::str("s3"), Value::Int(2)]);
}

/// Q5 = {COUNT Lecturer GROUPBY Course}, Examples 2/4/6: the Teach
/// relation is projected DISTINCT on (Lid, Code) so Java counts 2
/// lecturers, not 2-per-textbook.
#[test]
fn q5_example6() {
    let answers = engine().answer("COUNT Lecturer GROUPBY Course", 1).unwrap();
    let a = &answers[0];
    assert!(a.sql_text.contains("SELECT DISTINCT"), "{}", a.sql_text);
    let counts: Vec<&Value> = a.result.column("numLid").unwrap();
    assert_eq!(counts, vec![&Value::Int(2), &Value::Int(1), &Value::Int(1)]);
}

/// Example 7: {AVG COUNT Lecturer GROUPBY Course} = (2+1+1)/3.
#[test]
fn example7_nested_aggregate() {
    let answers = engine().answer("AVG COUNT Lecturer GROUPBY Course", 1).unwrap();
    let a = &answers[0];
    assert!(a.sql_text.contains("AVG(R.numLid)"), "{}", a.sql_text);
    assert_eq!(a.result.scalar(), Some(&Value::Float(4.0 / 3.0)));
}

/// Examples 8/9/10: the Figure-8 Enrolment database — normalized view,
/// subquery translation, and the rewrite down to two Enrolment scans,
/// all returning the same two answers.
#[test]
fn examples_8_9_10() {
    let db = university::enrolment_fig8();

    // Raw (Example 9): five derived tables over Enrolment.
    let raw = Engine::with_options(
        db.clone(),
        EngineOptions {
            translate: TranslateOptions::default(),
            rewrite: RewriteOptions::default(),
            skip_rewrites: true,
            discover_fds: false,
        },
    )
    .unwrap();
    let a9 = &raw.answer("Green George COUNT Code", 1).unwrap()[0];
    assert_eq!(a9.sql.from.len(), 5, "{}", a9.sql_text);
    assert_eq!(a9.result.len(), 2);

    // Rewritten (Example 10): two Enrolment instances, same answers.
    let rewritten = Engine::new(db).unwrap();
    let a10 = &rewritten.answer("Green George COUNT Code", 1).unwrap()[0];
    assert_eq!(a10.sql.from.len(), 2, "{}", a10.sql_text);
    assert_eq!(a10.sql_text.matches("Enrolment").count(), 2, "{}", a10.sql_text);
    assert_eq!(a9.result.rows, a10.result.rows);
}

/// The unnormalized engine answers every normalized-university query
/// with the same rows the normalized engine produces.
#[test]
fn fig8_agrees_with_normalized_database() {
    let norm = engine();
    let unnorm = Engine::new(university::enrolment_fig8()).unwrap();
    for q in ["Green SUM Credit", "COUNT Student GROUPBY Course", "Green George COUNT Code"] {
        let a = &norm.answer(q, 1).unwrap()[0];
        let b = &unnorm.answer(q, 1).unwrap()[0];
        assert_eq!(a.result.rows, b.result.rows, "query {q}:\n{}\nvs\n{}", a.sql_text, b.sql_text);
    }
}
