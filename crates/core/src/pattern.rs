//! Query-pattern generation (Section 3.1.1).
//!
//! For each combination of term interpretations, the generator creates a
//! pattern node per referenced object/relationship (duplicating nodes
//! when two terms refer to two *different* objects of the same class, as
//! in Figure 4), connects the nodes into a minimal connected graph over
//! the ORM schema graph — instantiating fresh relationship nodes along
//! connecting paths — and annotates the nodes with the query's operators
//! (Algorithm 3's first phase, including nested aggregates).
//!
//! Two merging rules shape the node set, following \[15\]:
//!
//! * *metadata merging* — all relation-name/attribute-name matches on the
//!   same ORM node collapse into one pattern node (`{proceeding AVG
//!   pages}` yields a single Proceeding node);
//! * *context merging* — a value match merges into the node of an
//!   immediately preceding metadata term on the same ORM node
//!   (`{Lecturer George}` yields one Lecturer node with the condition
//!   `Lname = George`), which is how metadata keywords disambiguate the
//!   keywords that follow them.

use aqks_orm::{NodeId, NodeKind, OrmGraph};
use aqks_relational::DatabaseSchema;
use aqks_sqlgen::AggFunc;

use crate::error::CoreError;
use crate::matching::TermMatch;
use crate::query::{KeywordQuery, Operator, Term};

/// A value condition `attribute = term` on a pattern node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    /// Relation holding the attribute (the node's primary relation or one
    /// of its components).
    pub relation: String,
    /// Conditioned attribute.
    pub attribute: String,
    /// The matched term text.
    pub term: String,
    /// Distinct objects satisfying the condition (from matching).
    pub tuple_count: usize,
}

/// An operator annotation attached to a pattern node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeAnnotation {
    /// `func(relation.attribute)` in the SELECT clause.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Relation holding the aggregated attribute.
        relation: String,
        /// Aggregated attribute.
        attribute: String,
    },
    /// Explicit `GROUPBY` from the query.
    GroupBy {
        /// Relation holding the grouping attributes.
        relation: String,
        /// Grouping attributes (a full object identifier may be compound).
        attributes: Vec<String>,
    },
    /// `GROUPBY(id)` added by pattern disambiguation (Section 3.1.2) to
    /// separate objects sharing an attribute value.
    Distinguish {
        /// The node's primary relation.
        relation: String,
        /// The object identifier attributes.
        attributes: Vec<String>,
    },
}

/// One node of a query pattern: an *instance* of an ORM schema-graph node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternNode {
    /// Node id within the pattern.
    pub id: usize,
    /// The ORM schema-graph node this instantiates.
    pub orm: NodeId,
    /// Kind of the ORM node.
    pub kind: NodeKind,
    /// Primary relation of the ORM node (pattern namespace).
    pub relation: String,
    /// True if the node was created for a query term (vs. a connector).
    pub terminal: bool,
    /// Value condition, if a term matched tuple values of this node.
    pub condition: Option<Condition>,
    /// Operator annotations.
    pub annotations: Vec<NodeAnnotation>,
}

/// One edge of a query pattern; `a` instantiates the FK-owning side of
/// the underlying ORM edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternEdge {
    /// Pattern node instantiating `orm_edge.a` (the FK owner).
    pub a: usize,
    /// Pattern node instantiating `orm_edge.b` (the referenced side).
    pub b: usize,
    /// Index of the ORM edge this instantiates.
    pub orm_edge: usize,
}

/// A query pattern: one interpretation of the keyword query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPattern {
    /// Nodes, indexed by `PatternNode::id`.
    pub nodes: Vec<PatternNode>,
    /// Edges.
    pub edges: Vec<PatternEdge>,
    /// Nested aggregate chain (Section 3.2): aggregates whose operand is
    /// another aggregate, in query order (outermost first).
    pub nested: Vec<AggFunc>,
    /// Pattern node of each query term (None for operators).
    pub term_nodes: Vec<Option<usize>>,
}

impl QueryPattern {
    /// Number of object/mixed nodes (the primary ranking key).
    pub fn object_mixed_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n.kind, NodeKind::Object | NodeKind::Mixed)).count()
    }

    /// Neighbours of node `id` in the pattern graph.
    pub fn neighbors(&self, id: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|e| {
                if e.a == id {
                    Some(e.b)
                } else if e.b == id {
                    Some(e.a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// BFS distance in the pattern graph.
    pub fn distance(&self, from: usize, to: usize) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.nodes.len()];
        dist[from] = 0;
        let mut q = std::collections::VecDeque::from([from]);
        while let Some(n) = q.pop_front() {
            for m in self.neighbors(n) {
                if dist[m] == usize::MAX {
                    dist[m] = dist[n] + 1;
                    if m == to {
                        return Some(dist[m]);
                    }
                    q.push_back(m);
                }
            }
        }
        None
    }

    /// A canonical serialization used for de-duplication and
    /// deterministic tie-breaking.
    pub fn fingerprint(&self) -> String {
        let mut parts: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                format!(
                    "{}:{}:{:?}:{:?}",
                    n.relation,
                    n.terminal,
                    n.condition
                        .as_ref()
                        .map(|c| format!("{}.{}={}", c.relation, c.attribute, c.term)),
                    n.annotations,
                )
            })
            .collect();
        parts.sort();
        let mut edges: Vec<String> = self
            .edges
            .iter()
            .map(|e| {
                let mut pair = [
                    format!(
                        "{}|{:?}",
                        self.nodes[e.a].relation,
                        self.nodes[e.a].condition.as_ref().map(|c| &c.term)
                    ),
                    format!(
                        "{}|{:?}",
                        self.nodes[e.b].relation,
                        self.nodes[e.b].condition.as_ref().map(|c| &c.term)
                    ),
                ];
                pair.sort();
                pair.join("--")
            })
            .collect();
        edges.sort();
        format!("N[{}]E[{}]X{:?}", parts.join(";"), edges.join(";"), self.nested)
    }

    /// Graphviz (DOT) rendering of the pattern, mirroring the paper's
    /// figures: conditions and annotations appear inside node labels,
    /// nested aggregates as a floating note.
    pub fn to_dot(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = String::from("graph pattern {\n  node [fontname=\"Helvetica\"];\n");
        for n in &self.nodes {
            let mut label = n.relation.clone();
            if let Some(c) = &n.condition {
                label.push_str(&format!("\\n{}={}", c.attribute, c.term));
            }
            for a in &n.annotations {
                match a {
                    NodeAnnotation::Agg { func, attribute, .. } => {
                        label.push_str(&format!("\\n{}({})", func.keyword(), attribute))
                    }
                    NodeAnnotation::GroupBy { attributes, .. } => {
                        label.push_str(&format!("\\nGROUPBY({})", attributes.join(",")))
                    }
                    NodeAnnotation::Distinguish { attributes, .. } => {
                        label.push_str(&format!("\\nGROUPBY({})*", attributes.join(",")))
                    }
                }
            }
            let shape = match n.kind {
                NodeKind::Relationship => "diamond",
                NodeKind::Mixed => "doublecircle",
                NodeKind::Object => "ellipse",
            };
            out.push_str(&format!("  p{} [label=\"{}\", shape={shape}];\n", n.id, esc(&label)));
        }
        for e in &self.edges {
            out.push_str(&format!("  p{} -- p{};\n", e.a, e.b));
        }
        for (i, f) in self.nested.iter().enumerate() {
            out.push_str(&format!("  nested{i} [label=\"{}(…)\", shape=note];\n", f.keyword()));
        }
        out.push_str("}\n");
        out
    }

    /// Human-readable description for the evaluation harness.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        for n in &self.nodes {
            s.push_str(&format!("({}", n.relation));
            if let Some(c) = &n.condition {
                s.push_str(&format!(" {}={}", c.attribute, c.term));
            }
            for a in &n.annotations {
                match a {
                    NodeAnnotation::Agg { func, attribute, .. } => {
                        s.push_str(&format!(" {}({attribute})", func.keyword()))
                    }
                    NodeAnnotation::GroupBy { attributes, .. } => {
                        s.push_str(&format!(" GROUPBY({})", attributes.join(",")))
                    }
                    NodeAnnotation::Distinguish { attributes, .. } => {
                        s.push_str(&format!(" GROUPBY*({})", attributes.join(",")))
                    }
                }
            }
            s.push_str(") ");
        }
        for f in &self.nested {
            s.push_str(&format!("nested:{} ", f.keyword()));
        }
        s.trim_end().to_string()
    }
}

/// Bounds for pattern enumeration.
const MAX_COMBOS: usize = 64;
const MAX_PATTERN_NODES: usize = 16;

/// Generates the annotated query patterns for a query.
///
/// `matches[i]` holds term `i`'s interpretations (empty for operators).
/// `namespace` is the pattern-namespace schema (for identifier lookup).
pub fn generate_patterns(
    query: &KeywordQuery,
    matches: &[Vec<TermMatch>],
    graph: &OrmGraph,
    namespace: &DatabaseSchema,
) -> Result<Vec<QueryPattern>, CoreError> {
    let basic: Vec<usize> =
        query.terms.iter().enumerate().filter_map(|(i, t)| t.as_basic().map(|_| i)).collect();
    for &i in &basic {
        if matches[i].is_empty() {
            let text = query.terms[i].as_basic().unwrap_or_default();
            if query.is_operand(i) {
                return Err(CoreError::BadOperand(format!(
                    "`{text}` does not match the metadata an operator operand requires"
                )));
            }
            return Err(CoreError::NoMatch(text.to_string()));
        }
    }

    let mut patterns = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let candidates = combos(&basic, matches, MAX_COMBOS);
    aqks_obs::counter("patterns.enumerated", candidates.len() as u64);
    let mut pruned = 0u64;
    let mut tripped = false;
    for combo in candidates {
        // Cooperative cancellation: each enumerated interpretation is
        // charged against the ambient pattern budget (and the deadline);
        // on a trip the patterns built so far are kept as partials.
        if aqks_guard::charge_patterns("pattern.enumerate", 1).is_err()
            || aqks_guard::checkpoint("pattern.enumerate").is_err()
        {
            tripped = true;
            break;
        }
        if let Some(p) = build_pattern(query, &basic, &combo, graph, namespace) {
            if seen.insert(p.fingerprint()) {
                patterns.push(p);
            } else {
                pruned += 1;
            }
        } else {
            pruned += 1;
        }
    }
    aqks_obs::counter("patterns.pruned", pruned);
    if patterns.is_empty() && !tripped {
        return Err(CoreError::NoPattern);
    }
    Ok(patterns)
}

/// Cartesian product of per-term matches, capped.
fn combos<'m>(
    basic: &[usize],
    matches: &'m [Vec<TermMatch>],
    cap: usize,
) -> Vec<Vec<&'m TermMatch>> {
    let mut out: Vec<Vec<&TermMatch>> = vec![Vec::new()];
    for &i in basic {
        let mut next = Vec::new();
        for prefix in &out {
            for m in &matches[i] {
                if next.len() >= cap {
                    break;
                }
                let mut row = prefix.clone();
                row.push(m);
                next.push(row);
            }
        }
        out = next;
        if out.len() >= cap {
            out.truncate(cap);
        }
    }
    out
}

/// Builds one pattern for one interpretation combo; None if the
/// interpretation cannot be connected.
fn build_pattern(
    query: &KeywordQuery,
    basic: &[usize],
    combo: &[&TermMatch],
    graph: &OrmGraph,
    namespace: &DatabaseSchema,
) -> Option<QueryPattern> {
    let mut nodes: Vec<PatternNode> = Vec::new();
    let mut edges: Vec<PatternEdge> = Vec::new();
    let mut term_nodes: Vec<Option<usize>> = vec![None; query.terms.len()];

    // --- Create terminal nodes with the two merging rules -----------------
    // Metadata terms first: one node per ORM node.
    for (bi, &ti) in basic.iter().enumerate() {
        let m = combo[bi];
        if !m.is_metadata() {
            continue;
        }
        let orm = graph.node_of_relation(m.relation())?;
        let existing = nodes.iter().position(|n| n.orm == orm && n.terminal);
        let id = match existing {
            Some(id) => id,
            None => {
                let id = nodes.len();
                let n = graph.node(orm);
                nodes.push(PatternNode {
                    id,
                    orm,
                    kind: n.kind,
                    relation: n.relation.clone(),
                    terminal: true,
                    condition: None,
                    annotations: Vec::new(),
                });
                id
            }
        };
        term_nodes[ti] = Some(id);
    }
    // Value terms: context-merge or create.
    for (bi, &ti) in basic.iter().enumerate() {
        let m = combo[bi];
        let TermMatch::Value { relation, attribute, tuple_count } = m else { continue };
        let orm = graph.node_of_relation(relation)?;
        let condition = Condition {
            relation: relation.clone(),
            attribute: attribute.clone(),
            term: query.terms[ti].as_basic()?.to_string(),
            tuple_count: *tuple_count,
        };
        // Context merge: the immediately preceding term is a metadata term
        // on the same ORM node (and same attribute, if it named one) whose
        // node has no condition yet.
        let mut merged = None;
        if ti > 0 && !query.is_operand(ti) {
            if let Some(prev_bi) = basic.iter().position(|&x| x == ti - 1) {
                let prev = combo[prev_bi];
                let compatible = match prev {
                    TermMatch::RelationName { .. } => true,
                    TermMatch::AttributeName { attribute: a, .. } => {
                        a.eq_ignore_ascii_case(attribute)
                    }
                    TermMatch::Value { .. } => false,
                };
                if compatible {
                    if let Some(prev_node) = term_nodes[ti - 1] {
                        if nodes[prev_node].orm == orm && nodes[prev_node].condition.is_none() {
                            merged = Some(prev_node);
                        }
                    }
                }
            }
        }
        let id = match merged {
            Some(id) => {
                nodes[id].condition = Some(condition);
                id
            }
            None => {
                let id = nodes.len();
                let n = graph.node(orm);
                nodes.push(PatternNode {
                    id,
                    orm,
                    kind: n.kind,
                    relation: n.relation.clone(),
                    terminal: true,
                    condition: Some(condition),
                    annotations: Vec::new(),
                });
                id
            }
        };
        term_nodes[ti] = Some(id);
    }

    // --- Connect -----------------------------------------------------------
    let terminals: Vec<usize> = (0..nodes.len()).collect();
    let mut connected: Vec<usize> = Vec::new();
    for &t in &terminals {
        if connected.is_empty() {
            connected.push(t);
            continue;
        }
        if nodes.len() > MAX_PATTERN_NODES {
            return None;
        }
        attach(t, &mut connected, &mut nodes, &mut edges, graph)?;
    }

    // --- Operator annotation (Algorithm 3, lines 3-12) ---------------------
    let mut nested: Vec<AggFunc> = Vec::new();
    for (i, term) in query.terms.iter().enumerate() {
        let Term::Op(op) = term else { continue };
        match &query.terms[i + 1] {
            Term::Op(_) => {
                // Nested aggregate: this operator applies to the result of
                // the next one (GROUPBY-before-operator is rejected at
                // parse time, so `op` is an aggregate here).
                if let Operator::Agg(f) = op {
                    nested.push(*f);
                }
            }
            Term::Basic(_) => {
                let bi = basic.iter().position(|&x| x == i + 1)?;
                let node = term_nodes[i + 1]?;
                let (relation, attributes) = match combo[bi] {
                    TermMatch::RelationName { relation } => {
                        let rel = namespace.relation(relation)?;
                        (relation.clone(), rel.primary_key.clone())
                    }
                    TermMatch::AttributeName { relation, attribute } => {
                        (relation.clone(), vec![attribute.clone()])
                    }
                    TermMatch::Value { .. } => return None, // excluded by roles
                };
                if attributes.is_empty() {
                    return None;
                }
                let ann = match op {
                    Operator::Agg(f) => {
                        NodeAnnotation::Agg { func: *f, relation, attribute: attributes[0].clone() }
                    }
                    Operator::GroupBy => NodeAnnotation::GroupBy { relation, attributes },
                };
                nodes[node].annotations.push(ann);
            }
        }
    }

    Some(QueryPattern { nodes, edges, nested, term_nodes })
}

/// Attaches terminal `t` to the connected component, instantiating fresh
/// intermediate nodes along the shortest admissible ORM path. Returns
/// None when no connection exists.
fn attach(
    t: usize,
    connected: &mut Vec<usize>,
    nodes: &mut Vec<PatternNode>,
    edges: &mut Vec<PatternEdge>,
    graph: &OrmGraph,
) -> Option<()> {
    // Admissible attach points: terminals, or object/mixed connectors —
    // never a relationship instance created for another connection (its
    // foreign keys are already "spoken for"), and never a node of the
    // same ORM class (two instances of one class denote two different
    // objects; joining them directly would force them equal). A
    // relationship *terminal* may accept the connection only through a
    // participant slot (ORM edge) it has not used yet: Enrol links one
    // student — a second student must come in through a fresh path.
    let best = connected
        .iter()
        .copied()
        .filter(|&u| {
            nodes[u].orm != nodes[t].orm
                && (nodes[u].terminal
                    || matches!(nodes[u].kind, NodeKind::Object | NodeKind::Mixed))
        })
        .filter_map(|u| {
            let path = graph.shortest_path_edges(nodes[u].orm, nodes[t].orm)?;
            if matches!(nodes[u].kind, NodeKind::Relationship) {
                let first = *path.first()?;
                let slot_taken =
                    edges.iter().any(|pe| (pe.a == u || pe.b == u) && pe.orm_edge == first);
                if slot_taken {
                    return None;
                }
            }
            Some((path.len(), u))
        })
        .min();

    match best {
        Some((_, u)) => {
            instantiate_path(u, t, nodes, edges, graph)?;
            connected.push(t);
            Some(())
        }
        None => {
            // Hub fallback (two instances of the same class, e.g.
            // {Green George}): route both through the nearest other
            // object/mixed class.
            let hub_orm = nearest_other_object(nodes[t].orm, graph)?;
            let hub_id = nodes.len();
            let hn = graph.node(hub_orm);
            nodes.push(PatternNode {
                id: hub_id,
                orm: hub_orm,
                kind: hn.kind,
                relation: hn.relation.clone(),
                terminal: false,
                condition: None,
                annotations: Vec::new(),
            });
            instantiate_path(hub_id, t, nodes, edges, graph)?;
            attach(hub_id, connected, nodes, edges, graph)?;
            connected.push(t);
            Some(())
        }
    }
}

/// The nearest object/mixed ORM node other than `from`.
fn nearest_other_object(from: NodeId, graph: &OrmGraph) -> Option<NodeId> {
    graph
        .nodes()
        .iter()
        .filter(|n| n.id != from && matches!(n.kind, NodeKind::Object | NodeKind::Mixed))
        .filter_map(|n| graph.distance(from, n.id).map(|d| (d, n.id)))
        .min()
        .map(|(_, id)| id)
}

/// Instantiates the shortest ORM path between existing pattern nodes `u`
/// and `t` with fresh intermediate nodes.
fn instantiate_path(
    u: usize,
    t: usize,
    nodes: &mut Vec<PatternNode>,
    edges: &mut Vec<PatternEdge>,
    graph: &OrmGraph,
) -> Option<()> {
    let path = graph.shortest_path_edges(nodes[u].orm, nodes[t].orm)?;
    let mut cur_orm = nodes[u].orm;
    let mut cur_node = u;
    for (step, &ei) in path.iter().enumerate() {
        let edge = graph.edge(ei);
        let next_orm = edge.other(cur_orm);
        let next_node = if step + 1 == path.len() {
            t
        } else {
            let id = nodes.len();
            let n = graph.node(next_orm);
            nodes.push(PatternNode {
                id,
                orm: next_orm,
                kind: n.kind,
                relation: n.relation.clone(),
                terminal: false,
                condition: None,
                annotations: Vec::new(),
            });
            id
        };
        let (a, b) = if edge.a == cur_orm { (cur_node, next_node) } else { (next_node, cur_node) };
        edges.push(PatternEdge { a, b, orm_edge: ei });
        cur_orm = next_orm;
        cur_node = next_node;
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{Matcher, TermRole};
    use aqks_datasets::university;
    use aqks_orm::OrmGraph;

    fn setup() -> (aqks_relational::Database, OrmGraph, Matcher) {
        let db = university::normalized();
        let graph = OrmGraph::build(&db.schema()).unwrap();
        let matcher = Matcher::normalized(&db);
        (db, graph, matcher)
    }

    fn patterns_for(q: &str) -> Vec<QueryPattern> {
        let (db, graph, matcher) = setup();
        let query = KeywordQuery::parse(q).unwrap();
        let matches: Vec<Vec<TermMatch>> = query
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                Term::Basic(text) => {
                    let role = if query.is_operand(i) {
                        match query.terms[i - 1] {
                            Term::Op(Operator::Agg(AggFunc::Count))
                            | Term::Op(Operator::GroupBy) => TermRole::CountGroupByOperand,
                            _ => TermRole::AggOperand,
                        }
                    } else {
                        TermRole::Free
                    };
                    matcher.matches(&db, text, role).unwrap()
                }
                Term::Op(_) => Vec::new(),
            })
            .collect();
        generate_patterns(&query, &matches, &graph, &db.schema()).unwrap()
    }

    /// Figure 4: {Green George Code} connects two Student instances to one
    /// Course through two Enrol instances.
    #[test]
    fn figure4_pattern_shape() {
        let ps = patterns_for("Green George Code");
        // The top interpretation (both names as students) must exist.
        let fig4 = ps
            .iter()
            .find(|p| {
                p.nodes.iter().filter(|n| n.relation == "Student").count() == 2
                    && p.nodes.iter().filter(|n| n.relation == "Enrol").count() == 2
                    && p.nodes.iter().filter(|n| n.relation == "Course").count() == 1
            })
            .expect("figure-4 pattern generated");
        assert_eq!(fig4.nodes.len(), 5);
        assert_eq!(fig4.edges.len(), 4);
        // George also matches a lecturer: an alternative pattern exists.
        assert!(ps.iter().any(|p| p.nodes.iter().any(|n| n.relation == "Lecturer")));
    }

    /// Figure 5(a): {Green George COUNT Code} annotates the Course node.
    #[test]
    fn figure5a_annotation() {
        let ps = patterns_for("Green George COUNT Code");
        let p = ps
            .iter()
            .find(|p| p.nodes.iter().filter(|n| n.relation == "Student").count() == 2)
            .unwrap();
        let course = p.nodes.iter().find(|n| n.relation == "Course").unwrap();
        assert_eq!(
            course.annotations,
            vec![NodeAnnotation::Agg {
                func: AggFunc::Count,
                relation: "Course".into(),
                attribute: "Code".into(),
            }]
        );
    }

    /// Figure 5(b): {COUNT Lecturer GROUPBY Course} -> Lecturer
    /// COUNT(Lid), Course GROUPBY(Code), connected via Teach.
    #[test]
    fn figure5b_pattern() {
        let ps = patterns_for("COUNT Lecturer GROUPBY Course");
        let p = &ps[0];
        assert_eq!(p.nodes.len(), 3, "{}", p.describe());
        let lect = p.nodes.iter().find(|n| n.relation == "Lecturer").unwrap();
        assert_eq!(
            lect.annotations,
            vec![NodeAnnotation::Agg {
                func: AggFunc::Count,
                relation: "Lecturer".into(),
                attribute: "Lid".into(),
            }]
        );
        let course = p.nodes.iter().find(|n| n.relation == "Course").unwrap();
        assert_eq!(
            course.annotations,
            vec![NodeAnnotation::GroupBy {
                relation: "Course".into(),
                attributes: vec!["Code".into()],
            }]
        );
        assert!(p.nodes.iter().any(|n| n.relation == "Teach"));
    }

    /// Figure 7: {AVG COUNT Lecturer GROUPBY Course} nests AVG over COUNT.
    #[test]
    fn figure7_nested() {
        let ps = patterns_for("AVG COUNT Lecturer GROUPBY Course");
        let p = &ps[0];
        assert_eq!(p.nested, vec![AggFunc::Avg]);
        let lect = p.nodes.iter().find(|n| n.relation == "Lecturer").unwrap();
        assert!(matches!(lect.annotations[0], NodeAnnotation::Agg { func: AggFunc::Count, .. }));
    }

    /// Context merging: {Lecturer George} puts the condition on the
    /// Lecturer node in the top pattern.
    #[test]
    fn context_merging() {
        let ps = patterns_for("Lecturer George");
        let merged = ps
            .iter()
            .find(|p| p.nodes.len() == 1 && p.nodes[0].relation == "Lecturer")
            .expect("merged single-node pattern");
        let c = merged.nodes[0].condition.as_ref().unwrap();
        assert_eq!(c.attribute, "Lname");
        assert_eq!(c.term, "George");
        // The student interpretation still exists as a 2-object pattern.
        assert!(ps.iter().any(|p| p.nodes.iter().any(|n| n.relation == "Student")));
    }

    /// {Green SUM Credit}: Student condition node + Course SUM node via Enrol.
    #[test]
    fn q1_pattern() {
        let ps = patterns_for("Green SUM Credit");
        let p = &ps[0];
        assert_eq!(p.nodes.len(), 3, "{}", p.describe());
        let student = p.nodes.iter().find(|n| n.relation == "Student").unwrap();
        assert_eq!(student.condition.as_ref().unwrap().tuple_count, 2);
        let course = p.nodes.iter().find(|n| n.relation == "Course").unwrap();
        assert!(matches!(course.annotations[0], NodeAnnotation::Agg { func: AggFunc::Sum, .. }));
    }

    /// Operand constraint: SUM over a value term fails.
    #[test]
    fn sum_over_value_is_rejected() {
        let (db, graph, matcher) = setup();
        let query = KeywordQuery::parse("SUM Green").unwrap();
        let matches =
            vec![Vec::new(), matcher.matches(&db, "Green", TermRole::AggOperand).unwrap()];
        let err = generate_patterns(&query, &matches, &graph, &db.schema()).unwrap_err();
        assert!(matches!(err, CoreError::BadOperand(_)));
    }

    #[test]
    fn dot_export_shows_annotations() {
        let ps = patterns_for("COUNT Lecturer GROUPBY Course");
        let dot = ps[0].to_dot();
        assert!(dot.contains("COUNT(Lid)"), "{dot}");
        assert!(dot.contains("GROUPBY(Code)"), "{dot}");
        assert!(dot.contains("shape=diamond"), "Teach renders as a diamond: {dot}");
        assert_eq!(dot.matches(" -- ").count(), 2, "{dot}");
    }

    /// Terminals on ORM nodes with no connecting path fail cleanly.
    #[test]
    fn disconnected_schema_yields_no_pattern() {
        use aqks_relational::{AttrType, Database, RelationSchema};
        let mut db = Database::new("2islands");
        let mut a = RelationSchema::new("Apple");
        a.add_attr("aid", AttrType::Int).add_attr("aname", AttrType::Text);
        a.set_primary_key(["aid"]);
        db.add_relation(a).unwrap();
        let mut b = RelationSchema::new("Banana");
        b.add_attr("bid", AttrType::Int).add_attr("bname", AttrType::Text);
        b.set_primary_key(["bid"]);
        db.add_relation(b).unwrap();
        db.insert(
            "Apple",
            vec![aqks_relational::Value::Int(1), aqks_relational::Value::str("fuji")],
        )
        .unwrap();
        db.insert(
            "Banana",
            vec![aqks_relational::Value::Int(1), aqks_relational::Value::str("cavendish")],
        )
        .unwrap();

        let graph = OrmGraph::build(&db.schema()).unwrap();
        let matcher = Matcher::normalized(&db);
        let query = KeywordQuery::parse("fuji COUNT Banana").unwrap();
        let matches: Vec<_> = query
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                Term::Basic(text) => {
                    let role = if query.is_operand(i) {
                        TermRole::CountGroupByOperand
                    } else {
                        TermRole::Free
                    };
                    matcher.matches(&db, text, role).unwrap()
                }
                Term::Op(_) => Vec::new(),
            })
            .collect();
        let err = generate_patterns(&query, &matches, &graph, &db.schema()).unwrap_err();
        assert!(matches!(err, CoreError::NoPattern), "{err:?}");
    }

    /// The combination cap bounds pattern enumeration without panicking
    /// on highly ambiguous queries.
    #[test]
    fn ambiguous_query_is_bounded() {
        // "George" matches Student and Lecturer values; repeating it four
        // times multiplies interpretations — generation must stay bounded
        // and deterministic.
        let ps = patterns_for("George George George COUNT Code");
        assert!(!ps.is_empty());
        assert!(ps.len() <= 64, "{}", ps.len());
        for p in &ps {
            assert!(p.nodes.len() <= 16);
        }
    }

    /// Pattern distance and fingerprint determinism.
    #[test]
    fn pattern_utilities() {
        let ps = patterns_for("Green George Code");
        let p = ps
            .iter()
            .find(|p| p.nodes.iter().filter(|n| n.relation == "Student").count() == 2)
            .unwrap();
        let students: Vec<usize> =
            p.nodes.iter().filter(|n| n.relation == "Student").map(|n| n.id).collect();
        assert_eq!(p.distance(students[0], students[1]), Some(4));
        assert_eq!(p.fingerprint(), p.clone().fingerprint());
    }
}
