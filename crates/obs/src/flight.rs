//! Query flight recorder: a bounded ring buffer of the most recent
//! [`PipelineTrace`]s, plus two *exemplars* that survive ring eviction
//! — the slowest query seen and the most recent budget-tripped query.
//!
//! The span recorder answers "trace this one call"; the flight
//! recorder answers "what did that slow query half an hour ago do"
//! without anyone having asked for a trace in advance. The engine
//! feeds it from `Engine::answer*` whenever the metrics registry is
//! enabled; readers snapshot entries (cheap `Arc` clones) without
//! stopping recording.
//!
//! Memory is bounded by construction: at most `capacity` ring entries
//! plus the two exemplar `Arc`s are retained, however many queries
//! pass through.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};

use crate::trace::PipelineTrace;

/// One recorded flight: a finished query with its full span trace.
#[derive(Debug)]
pub struct FlightEntry {
    /// Monotonic sequence number (1-based, global per recorder).
    pub seq: u64,
    /// The keyword query text.
    pub query: String,
    /// End-to-end wall time in nanoseconds.
    pub total_ns: u64,
    /// Budget-exhaustion description when the query tripped a guard.
    pub tripped: Option<String>,
    /// The full span trace of the run.
    pub trace: PipelineTrace,
}

#[derive(Debug, Default)]
struct Inner {
    seq: u64,
    ring: VecDeque<Arc<FlightEntry>>,
    slowest: Option<Arc<FlightEntry>>,
    last_tripped: Option<Arc<FlightEntry>>,
}

/// A bounded ring of recent flights plus the slowest / last-tripped
/// exemplars. One short mutex section per record or read; entries are
/// shared out as `Arc`s so snapshots never copy traces.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Inner>,
}

/// Ring capacity of the global recorder.
pub const DEFAULT_CAPACITY: usize = 32;

fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl FlightRecorder {
    /// Builds a recorder retaining at most `capacity` recent flights
    /// (plus the two exemplars).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder { capacity: capacity.max(1), inner: Mutex::new(Inner::default()) }
    }

    /// Records one finished query. Updates the slowest exemplar when
    /// `total_ns` sets a new record and the tripped exemplar when
    /// `tripped` is set; evicts the oldest ring entry beyond capacity.
    pub fn record(
        &self,
        query: &str,
        total_ns: u64,
        tripped: Option<String>,
        trace: PipelineTrace,
    ) {
        let mut inner = relock(&self.inner);
        inner.seq += 1;
        let entry = Arc::new(FlightEntry {
            seq: inner.seq,
            query: query.to_string(),
            total_ns,
            tripped,
            trace,
        });
        if inner.slowest.as_ref().is_none_or(|s| entry.total_ns > s.total_ns) {
            inner.slowest = Some(Arc::clone(&entry));
        }
        if entry.tripped.is_some() {
            inner.last_tripped = Some(Arc::clone(&entry));
        }
        inner.ring.push_back(entry);
        while inner.ring.len() > self.capacity {
            inner.ring.pop_front();
        }
    }

    /// The most recent flights, oldest first (at most `capacity`).
    pub fn recent(&self) -> Vec<Arc<FlightEntry>> {
        relock(&self.inner).ring.iter().cloned().collect()
    }

    /// The slowest query ever recorded, even if long since evicted
    /// from the ring.
    pub fn slowest(&self) -> Option<Arc<FlightEntry>> {
        relock(&self.inner).slowest.clone()
    }

    /// The most recent budget-tripped query, even if evicted.
    pub fn last_tripped(&self) -> Option<Arc<FlightEntry>> {
        relock(&self.inner).last_tripped.clone()
    }

    /// Number of flights currently in the ring.
    pub fn len(&self) -> usize {
        relock(&self.inner).ring.len()
    }

    /// Whether no flight was ever recorded.
    pub fn is_empty(&self) -> bool {
        let inner = relock(&self.inner);
        inner.ring.is_empty() && inner.slowest.is_none() && inner.last_tripped.is_none()
    }

    /// Total flights recorded over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        relock(&self.inner).seq
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distinct entries currently retained (ring plus
    /// exemplars not also in the ring) — the memory-ceiling figure.
    pub fn retained(&self) -> usize {
        let inner = relock(&self.inner);
        let mut n = inner.ring.len();
        for e in [&inner.slowest, &inner.last_tripped].into_iter().flatten() {
            if !inner.ring.iter().any(|r| Arc::ptr_eq(r, e)) {
                n += 1;
            }
        }
        n
    }

    /// Drops every retained flight and resets the sequence counter.
    pub fn clear(&self) {
        *relock(&self.inner) = Inner::default();
    }
}

static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-wide flight recorder the engine records into.
pub fn global() -> &'static FlightRecorder {
    GLOBAL.get_or_init(|| FlightRecorder::new(DEFAULT_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with_spans(n: usize) -> PipelineTrace {
        let rec = crate::Recorder::enabled();
        for i in 0..n {
            let _s = rec.span(if i % 2 == 0 { "exec" } else { "plan" });
        }
        rec.take()
    }

    #[test]
    fn exemplars_survive_1000_query_mixed_workload_under_bounded_memory() {
        let fr = FlightRecorder::new(16);
        // 1000 mixed queries: latencies cycle, the global maximum is
        // planted early (so its ring entry is long evicted), and every
        // 97th query trips a budget guard.
        let mut expected_slowest = 0u64;
        let mut expected_last_tripped = 0u64;
        for i in 1..=1000u64 {
            let total_ns = if i == 137 { 9_999_999_999 } else { 1_000 + (i * 7919) % 500_000 };
            if total_ns > expected_slowest {
                expected_slowest = total_ns;
            }
            let tripped = (i % 97 == 0).then(|| format!("rows budget at ops.Scan (query {i})"));
            if tripped.is_some() {
                expected_last_tripped = i;
            }
            fr.record(&format!("query {i}"), total_ns, tripped, trace_with_spans(3));
            // Bounded memory ceiling: never more than capacity + 2
            // entries retained, at any point in the stream.
            assert!(fr.retained() <= fr.capacity() + 2, "retained {} at i={i}", fr.retained());
        }
        assert_eq!(fr.recorded(), 1000);
        assert_eq!(fr.len(), 16);
        let slowest = fr.slowest().expect("slowest exemplar");
        assert_eq!(slowest.seq, 137, "slowest exemplar evicted from ring must survive");
        assert_eq!(slowest.total_ns, expected_slowest);
        assert!(!slowest.trace.is_empty());
        let tripped = fr.last_tripped().expect("tripped exemplar");
        assert_eq!(tripped.seq, expected_last_tripped);
        assert!(tripped.tripped.as_deref().unwrap_or("").contains("ops.Scan"));
        // The ring holds exactly the most recent 16, oldest first.
        let seqs: Vec<u64> = fr.recent().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (985..=1000).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_recorder_has_no_exemplars() {
        let fr = FlightRecorder::new(4);
        assert!(fr.is_empty());
        assert_eq!(fr.len(), 0);
        assert!(fr.slowest().is_none());
        assert!(fr.last_tripped().is_none());
        assert_eq!(fr.retained(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let fr = FlightRecorder::new(4);
        fr.record("q", 10, Some("tripped".into()), trace_with_spans(1));
        assert!(!fr.is_empty());
        fr.clear();
        assert!(fr.is_empty());
        assert_eq!(fr.recorded(), 0);
    }

    #[test]
    fn slowest_tie_keeps_the_first() {
        let fr = FlightRecorder::new(4);
        fr.record("first", 100, None, trace_with_spans(1));
        fr.record("second", 100, None, trace_with_spans(1));
        assert_eq!(fr.slowest().expect("slowest").seq, 1);
    }
}
