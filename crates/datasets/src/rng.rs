//! A small deterministic pseudo-random number generator.
//!
//! The dataset generators only need reproducible streams of integers in
//! half-open or inclusive ranges; this module supplies them without an
//! external dependency (the environments this crate builds in cannot
//! reach a crates-io mirror). The API deliberately mirrors the subset of
//! `rand` the generators used to consume: `StdRng::seed_from_u64` and
//! `gen_range(lo..hi)` / `gen_range(lo..=hi)`.
//!
//! The core is SplitMix64 (Steele, Lea & Flood, "Fast splittable
//! pseudorandom number generators", OOPSLA 2014): a 64-bit state advanced
//! by a Weyl constant and finalized with a murmur-style mixer. It is not
//! cryptographic, but it passes BigCrush and is more than adequate for
//! synthetic test data.

/// A deterministic 64-bit PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics if the range is empty. The modulo bias is below 2^-32 for
    /// every span the generators use.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Integer ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y: usize = rng.gen_range(0..3usize);
            assert!(y < 3);
            let z: i32 = rng.gen_range(10..=12);
            assert!((10..=12).contains(&z));
        }
        // An inclusive range of one value is valid.
        assert_eq!(rng.gen_range(9i64..=9), 9);
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }
}
