//! Pattern disambiguation (Section 3.1.2, Algorithm 3 lines 13-23).
//!
//! A condition `a = t` on an object/mixed node may be satisfied by more
//! than one object (two students named Green). The aggregate then has two
//! readings: over *all* matching objects together, or *per distinct
//! object*. Disambiguation forks each pattern over the powerset of its
//! ambiguous nodes, annotating the per-object copies with `GROUPBY(id)`
//! — the step SQAK lacks and the reason it merges the two Greens.

use aqks_orm::NodeKind;
use aqks_relational::DatabaseSchema;

use crate::pattern::{NodeAnnotation, QueryPattern};

/// Maximum ambiguous nodes to fork over (the powerset is exponential;
/// queries in practice have one or two ambiguous terms).
const MAX_FORK_NODES: usize = 4;

/// Expands `patterns` with the per-object (`GROUPBY(id)`) variants.
///
/// For every pattern, each object/mixed node whose condition matches more
/// than one object doubles the pattern set: one copy aggregates over all
/// matching objects, the other distinguishes them. The returned list
/// contains the originals and all forks.
pub fn disambiguate(patterns: Vec<QueryPattern>, namespace: &DatabaseSchema) -> Vec<QueryPattern> {
    let mut out = Vec::new();
    for pattern in patterns {
        let ambiguous: Vec<usize> = pattern
            .nodes
            .iter()
            .filter(|n| {
                matches!(n.kind, NodeKind::Object | NodeKind::Mixed)
                    && n.condition.as_ref().is_some_and(|c| c.tuple_count > 1)
            })
            .map(|n| n.id)
            .take(MAX_FORK_NODES)
            .collect();

        let mut s = vec![pattern];
        for node in ambiguous {
            let mut forks = Vec::with_capacity(s.len());
            for p in &s {
                let mut fork = p.clone();
                let rel = fork.nodes[node].relation.clone();
                let key =
                    namespace.relation(&rel).map(|r| r.primary_key.clone()).unwrap_or_default();
                if key.is_empty() {
                    continue;
                }
                fork.nodes[node]
                    .annotations
                    .push(NodeAnnotation::Distinguish { relation: rel, attributes: key });
                forks.push(fork);
            }
            s.extend(forks);
        }
        out.extend(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{Matcher, TermRole};
    use crate::pattern::generate_patterns;
    use crate::query::{KeywordQuery, Operator, Term};
    use aqks_datasets::university;
    use aqks_orm::OrmGraph;
    use aqks_sqlgen::AggFunc;

    fn annotated(q: &str) -> Vec<QueryPattern> {
        let db = university::normalized();
        let graph = OrmGraph::build(&db.schema()).unwrap();
        let matcher = Matcher::normalized(&db);
        let query = KeywordQuery::parse(q).unwrap();
        let matches: Vec<_> = query
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                Term::Basic(text) => {
                    let role = if query.is_operand(i) {
                        match query.terms[i - 1] {
                            Term::Op(Operator::Agg(AggFunc::Count))
                            | Term::Op(Operator::GroupBy) => TermRole::CountGroupByOperand,
                            _ => TermRole::AggOperand,
                        }
                    } else {
                        TermRole::Free
                    };
                    matcher.matches(&db, text, role).unwrap()
                }
                Term::Op(_) => Vec::new(),
            })
            .collect();
        let ps = generate_patterns(&query, &matches, &graph, &db.schema()).unwrap();
        disambiguate(ps, &db.schema())
    }

    /// Example 3: {Green George COUNT Code} forks on the Green node (two
    /// students) but not on George (one student) — yielding P1 and P3.
    #[test]
    fn example3_forks_only_green() {
        let ps = annotated("Green George COUNT Code");
        let two_students: Vec<&QueryPattern> = ps
            .iter()
            .filter(|p| p.nodes.iter().filter(|n| n.relation == "Student").count() == 2)
            .collect();
        assert_eq!(two_students.len(), 2, "P1 (merged) and P3 (per-object)");

        let forked = two_students
            .iter()
            .find(|p| {
                p.nodes.iter().any(|n| {
                    n.annotations.iter().any(|a| matches!(a, NodeAnnotation::Distinguish { .. }))
                })
            })
            .expect("per-object fork exists");
        let dist_node = forked
            .nodes
            .iter()
            .find(|n| n.annotations.iter().any(|a| matches!(a, NodeAnnotation::Distinguish { .. })))
            .unwrap();
        assert_eq!(dist_node.condition.as_ref().unwrap().term, "Green");
        assert_eq!(
            dist_node.annotations,
            vec![NodeAnnotation::Distinguish {
                relation: "Student".into(),
                attributes: vec!["Sid".into()],
            }]
        );
    }

    /// A condition matching a single object does not fork.
    #[test]
    fn unambiguous_condition_does_not_fork() {
        let ps = annotated("Java SUM Price");
        // Java names one course; textbook/price interpretation unique.
        let course_patterns: Vec<_> = ps
            .iter()
            .filter(|p| p.nodes.iter().any(|n| n.relation == "Course" && n.condition.is_some()))
            .collect();
        assert!(!course_patterns.is_empty());
        for p in course_patterns {
            assert!(
                !p.nodes.iter().any(|n| n
                    .annotations
                    .iter()
                    .any(|a| matches!(a, NodeAnnotation::Distinguish { .. }))),
                "{}",
                p.describe()
            );
        }
    }

    /// Two ambiguous nodes fork into the full powerset (4 variants).
    #[test]
    fn two_ambiguous_nodes_make_four_variants() {
        // Both Greens *and* both... Green matches two students; George
        // matches one student and one lecturer: choose Green twice.
        let ps = annotated("Green Green COUNT Code");
        let ambiguous_pair: Vec<_> = ps
            .iter()
            .filter(|p| p.nodes.iter().filter(|n| n.relation == "Student").count() == 2)
            .collect();
        assert_eq!(ambiguous_pair.len(), 4, "powerset over two Green nodes");
    }
}
