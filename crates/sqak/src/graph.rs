//! SQAK's schema graph: relations as nodes, foreign keys as edges —
//! deliberately ignorant of object/relationship/component semantics.

use std::collections::VecDeque;

use aqks_relational::DatabaseSchema;

/// One foreign-key edge of the schema graph.
#[derive(Debug, Clone)]
pub struct FkEdge {
    /// Referencing relation index.
    pub from: usize,
    /// Referenced relation index.
    pub to: usize,
    /// Referencing attributes.
    pub from_attrs: Vec<String>,
    /// Referenced attributes.
    pub to_attrs: Vec<String>,
}

/// The relation-level schema graph.
#[derive(Debug, Clone)]
pub struct SchemaGraph {
    /// Relation names, indexed by node id (schema order).
    pub relations: Vec<String>,
    /// FK edges.
    pub edges: Vec<FkEdge>,
    adjacency: Vec<Vec<usize>>,
}

impl SchemaGraph {
    /// Builds the graph from a database schema.
    pub fn build(schema: &DatabaseSchema) -> SchemaGraph {
        let relations: Vec<String> = schema.relations.iter().map(|r| r.name.clone()).collect();
        let mut edges = Vec::new();
        for (fi, rel) in schema.relations.iter().enumerate() {
            for fk in &rel.foreign_keys {
                if let Some(ti) = schema.relation_index(&fk.ref_relation) {
                    if ti != fi {
                        edges.push(FkEdge {
                            from: fi,
                            to: ti,
                            from_attrs: fk.attrs.clone(),
                            to_attrs: fk.ref_attrs.clone(),
                        });
                    }
                }
            }
        }
        // Name-based join edges for relations the FK graph leaves
        // isolated (denormalized schemas like ACMDL' declare no FK from
        // PaperAuthor): two relations sharing an `…id`/`…key` attribute
        // are joined on it. This is the classic keyword-system heuristic
        // that lets SQAK produce Table 9's (wrong) A2 answers instead of
        // refusing the query.
        let mut connected = vec![false; relations.len()];
        for e in &edges {
            connected[e.from] = true;
            connected[e.to] = true;
        }
        for (fi, rel) in schema.relations.iter().enumerate() {
            if connected[fi] {
                continue;
            }
            for (ti, other) in schema.relations.iter().enumerate() {
                if ti == fi {
                    continue;
                }
                for attr in rel.attr_names() {
                    let lower = attr.to_lowercase();
                    if !(lower.ends_with("id") || lower.ends_with("key")) {
                        continue;
                    }
                    if other.attr_index(attr).is_some() {
                        edges.push(FkEdge {
                            from: fi,
                            to: ti,
                            from_attrs: vec![attr.to_string()],
                            to_attrs: vec![attr.to_string()],
                        });
                        break;
                    }
                }
            }
        }

        let mut adjacency = vec![Vec::new(); relations.len()];
        for (ei, e) in edges.iter().enumerate() {
            adjacency[e.from].push(ei);
            adjacency[e.to].push(ei);
        }
        SchemaGraph { relations, edges, adjacency }
    }

    /// Relation index by case-insensitive *containment* (SQAK's matching:
    /// `order` matches `Ordering`). Exact matches win over containment.
    pub fn relation_by_name(&self, term: &str) -> Option<usize> {
        let lower = term.to_lowercase();
        if let Some(i) = self.relations.iter().position(|r| r.to_lowercase() == lower) {
            return Some(i);
        }
        self.relations.iter().position(|r| r.to_lowercase().contains(&lower))
    }

    /// Shortest path between relations as edge indices (BFS; ties broken
    /// by edge order). `Some(vec![])` when `from == to`.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; self.relations.len()];
        let mut visited = vec![false; self.relations.len()];
        visited[from] = true;
        let mut q = VecDeque::from([from]);
        while let Some(n) = q.pop_front() {
            for &ei in &self.adjacency[n] {
                let e = &self.edges[ei];
                let m = if e.from == n { e.to } else { e.from };
                if visited[m] {
                    continue;
                }
                visited[m] = true;
                prev[m] = Some((n, ei));
                if m == to {
                    let mut path = Vec::new();
                    let mut cur = to;
                    while let Some((p, e)) = prev[cur] {
                        path.push(e);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                q.push_back(m);
            }
        }
        None
    }

    /// Grows a minimal connected subgraph (a *simple query network*)
    /// containing all `required` relations: each relation attaches along
    /// the shortest path to the already-included set. Returns the set of
    /// relation indices and the FK edges used. Unlike the semantic
    /// engine's patterns, each relation appears **once** — SQAK cannot
    /// express self joins.
    pub fn simple_query_network(&self, required: &[usize]) -> Option<(Vec<usize>, Vec<usize>)> {
        let mut rels: Vec<usize> = Vec::new();
        let mut used_edges: Vec<usize> = Vec::new();
        for &r in required {
            if rels.is_empty() {
                rels.push(r);
                continue;
            }
            if rels.contains(&r) {
                continue;
            }
            // Pick the best (source, path) pair together so the edge walk
            // below starts at the path's actual source — selecting them
            // independently desynchronizes on ties (min_by_key keeps the
            // *last* minimum, find the *first*).
            let (mut cur, path) = rels
                .iter()
                .filter_map(|&s| self.shortest_path(s, r).map(|p| (s, p)))
                .min_by_key(|(s, p)| (p.len(), *s))?;
            for &ei in &path {
                let e = &self.edges[ei];
                let next = if e.from == cur { e.to } else { e.from };
                if !rels.contains(&next) {
                    rels.push(next);
                }
                if !used_edges.contains(&ei) {
                    used_edges.push(ei);
                }
                cur = next;
            }
        }
        Some((rels, used_edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqks_datasets::university;

    #[test]
    fn university_schema_graph() {
        let g = SchemaGraph::build(&university::normalized().schema());
        assert_eq!(g.relations.len(), 8);
        // Enrol->Student, Enrol->Course, Lecturer->Department,
        // Teach->{Course,Lecturer,Textbook}, Department->Faculty.
        assert_eq!(g.edges.len(), 7);
    }

    #[test]
    fn containment_matching() {
        let g = SchemaGraph::build(&university::normalized().schema());
        assert_eq!(g.relation_by_name("student"), Some(g.relation_by_name("Student").unwrap()));
        assert!(g.relation_by_name("zebra").is_none());
        // Containment: "each" is inside "Teach".
        assert!(g.relation_by_name("each").is_some());
    }

    #[test]
    fn sqn_connects_student_and_course_via_enrol() {
        let db = university::normalized();
        let schema = db.schema();
        let g = SchemaGraph::build(&schema);
        let s = schema.relation_index("Student").unwrap();
        let c = schema.relation_index("Course").unwrap();
        let (rels, edges) = g.simple_query_network(&[s, c]).unwrap();
        assert_eq!(rels.len(), 3);
        assert_eq!(edges.len(), 2);
        let e = schema.relation_index("Enrol").unwrap();
        assert!(rels.contains(&e));
    }

    /// Regression: when the next required relation is equidistant from
    /// two already-included relations, the chosen path and the walk's
    /// start must agree (they used to be selected independently).
    #[test]
    fn sqn_tie_between_sources_is_consistent() {
        use aqks_relational::{AttrType, DatabaseSchema, RelationSchema};
        // Star: Hub references A and B; C references Hub. A and B are
        // both distance 2 from C.
        let mut rels = Vec::new();
        for name in ["A", "B"] {
            let mut r = RelationSchema::new(name);
            r.add_attr("id", AttrType::Int);
            r.set_primary_key(["id"]);
            rels.push(r);
        }
        let mut hub = RelationSchema::new("Hub");
        hub.add_attr("aid", AttrType::Int).add_attr("bid", AttrType::Int);
        hub.set_primary_key(["aid", "bid"]);
        hub.add_foreign_key(["aid"], "A", ["id"]);
        hub.add_foreign_key(["bid"], "B", ["id"]);
        rels.push(hub);
        let mut c = RelationSchema::new("C");
        c.add_attr("cid", AttrType::Int)
            .add_attr("aid", AttrType::Int)
            .add_attr("bid", AttrType::Int);
        c.set_primary_key(["cid"]);
        c.add_foreign_key(["aid", "bid"], "Hub", ["aid", "bid"]);
        rels.push(c);
        let schema = DatabaseSchema { relations: rels };
        let g = SchemaGraph::build(&schema);

        let (a, b, cc) = (0usize, 1usize, 3usize);
        let (sqn_rels, edges) = g.simple_query_network(&[a, b, cc]).unwrap();
        // All required relations present, and every used edge's endpoints
        // are in the SQN (a corrupt walk breaks this).
        for r in [a, b, cc] {
            assert!(sqn_rels.contains(&r), "{sqn_rels:?}");
        }
        for &ei in &edges {
            let e = &g.edges[ei];
            assert!(
                sqn_rels.contains(&e.from) && sqn_rels.contains(&e.to),
                "{sqn_rels:?} {edges:?}"
            );
        }
    }

    #[test]
    fn sqn_with_single_relation() {
        let db = university::normalized();
        let g = SchemaGraph::build(&db.schema());
        let (rels, edges) = g.simple_query_network(&[0]).unwrap();
        assert_eq!((rels.len(), edges.len()), (1, 0));
    }
}
