//! Randomized tests on the substrates' invariants: FD theory (closures,
//! candidate keys, 3NF synthesis), the value type's total order, executor
//! correctness against a naive reference evaluator, and engine
//! determinism. A fixed-seed SplitMix64 generator drives the case
//! generation, so every run exercises the same (large) set of cases.

use std::collections::BTreeSet;

use aqks::relational::{AttrType, Database, Date, Fd, FdSet, RelationSchema, Value};
use aqks::sqlgen::{
    execute, AggFunc, ColumnRef, Predicate, SelectItem, SelectStatement, TableExpr,
};

/// SplitMix64: deterministic across platforms, good enough distribution
/// for test-case generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` (n > 0).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------
// FD theory
// ---------------------------------------------------------------------

const UNIVERSE: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

fn arb_attrs(rng: &mut Rng) -> BTreeSet<String> {
    let n = 1 + rng.below(3);
    (0..n).map(|_| UNIVERSE[rng.below(UNIVERSE.len())].to_string()).collect()
}

fn arb_fdset(rng: &mut Rng) -> FdSet {
    let mut f = FdSet::new(UNIVERSE.iter().map(|s| s.to_string()));
    for _ in 0..rng.below(6) {
        let lhs = arb_attrs(rng);
        let rhs = arb_attrs(rng);
        f.add(Fd::new(lhs, rhs));
    }
    f
}

/// X ⊆ X+ and closure is idempotent and monotone.
#[test]
fn closure_laws() {
    let mut rng = Rng(11);
    for _ in 0..300 {
        let f = arb_fdset(&mut rng);
        let x = arb_attrs(&mut rng);
        let cx = f.closure(x.clone());
        assert!(x.is_subset(&cx));
        assert_eq!(f.closure(cx.clone()), cx);
        let mut bigger = x.clone();
        bigger.extend(arb_attrs(&mut rng));
        assert!(cx.is_subset(&f.closure(bigger)));
    }
}

/// Candidate keys are superkeys, and no key contains another.
#[test]
fn candidate_keys_are_minimal_superkeys() {
    let mut rng = Rng(12);
    for _ in 0..300 {
        let f = arb_fdset(&mut rng);
        let keys = f.candidate_keys();
        assert!(!keys.is_empty());
        for k in &keys {
            assert!(f.is_superkey(k), "{k:?}");
        }
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subset(b), "{a:?} ⊆ {b:?}");
                }
            }
        }
    }
}

/// The minimal cover implies exactly the same dependencies (checked on
/// the declared FDs in both directions).
#[test]
fn minimal_cover_is_equivalent() {
    let mut rng = Rng(13);
    for _ in 0..300 {
        let f = arb_fdset(&mut rng);
        let mut g = FdSet::new(UNIVERSE.iter().map(|s| s.to_string()));
        g.fds = f.minimal_cover();
        for fd in &f.fds {
            assert!(g.implies(&fd.lhs, &fd.rhs), "cover lost {fd}");
        }
        for fd in &g.fds {
            assert!(f.implies(&fd.lhs, &fd.rhs), "cover invented {fd}");
        }
    }
}

/// 3NF synthesis covers every attribute, keys its relations correctly,
/// and produces only relations whose keys determine their headings.
#[test]
fn synthesis_is_sound() {
    let mut rng = Rng(14);
    for _ in 0..300 {
        let f = arb_fdset(&mut rng);
        let rels = f.synthesize_3nf();
        let covered: BTreeSet<String> = rels.iter().flat_map(|(h, _)| h.clone()).collect();
        assert_eq!(covered, f.attrs);
        // Some relation contains a candidate key of the original.
        let keys = f.candidate_keys();
        assert!(rels.iter().any(|(h, _)| keys.iter().any(|k| k.is_subset(h))));
        for (heading, key) in &rels {
            assert!(key.is_subset(heading));
            let closure = f.closure(key.clone());
            assert!(heading.is_subset(&closure), "{key:?} -> {heading:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Value ordering
// ---------------------------------------------------------------------

fn arb_value(rng: &mut Rng) -> Value {
    match rng.below(5) {
        0 => Value::Null,
        1 => Value::Int(rng.below(2001) as i64 - 1000),
        2 => {
            let n = rng.below(2000) as f64 - 1000.0;
            let d = 1 + rng.below(99);
            Value::Float(n / d as f64)
        }
        3 => {
            let len = rng.below(7);
            Value::str((0..len).map(|_| (b'a' + rng.below(26) as u8) as char).collect::<String>())
        }
        _ => Value::Date(Date::new(
            1990 + rng.below(40) as i32,
            1 + rng.below(12) as u8,
            1 + rng.below(28) as u8,
        )),
    }
}

/// The order is total and consistent: antisymmetric and transitive, and
/// equality implies equal hashes.
#[test]
fn value_order_is_total() {
    use std::cmp::Ordering;
    let mut rng = Rng(15);
    for _ in 0..1000 {
        let (a, b, c) = (arb_value(&mut rng), arb_value(&mut rng), arb_value(&mut rng));
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        if a == b {
            use std::hash::{Hash, Hasher};
            let h = |v: &Value| {
                let mut s = std::collections::hash_map::DefaultHasher::new();
                v.hash(&mut s);
                s.finish()
            };
            assert_eq!(h(&a), h(&b));
        }
    }
}

// ---------------------------------------------------------------------
// Executor vs naive reference
// ---------------------------------------------------------------------

/// Random two-table instances with small key domains so joins, filters,
/// and groupings all hit interesting cases (dangling keys, duplicates,
/// NULLs).
fn arb_join_db(rng: &mut Rng) -> Database {
    let mut db = Database::new("prop");
    let mut r = RelationSchema::new("R");
    r.add_attr("k", AttrType::Int).add_attr("v", AttrType::Int);
    db.add_relation(r).unwrap();
    let mut s = RelationSchema::new("S");
    s.add_attr("k", AttrType::Int).add_attr("w", AttrType::Int);
    db.add_relation(s).unwrap();
    for _ in 0..rng.below(24) {
        let k = Value::Int(rng.below(6) as i64);
        let v = if rng.below(5) == 0 { Value::Null } else { Value::Int(rng.below(5) as i64) };
        db.insert("R", vec![k, v]).unwrap();
    }
    for _ in 0..rng.below(24) {
        let k = Value::Int(rng.below(6) as i64);
        db.insert("S", vec![k, Value::Int(rng.below(9) as i64)]).unwrap();
    }
    db
}

/// Naive reference: nested-loop join, then grouped aggregation.
fn reference_join_count(db: &Database) -> Vec<(Value, i64, Option<i64>)> {
    let r = db.table("R").unwrap();
    let s = db.table("S").unwrap();
    let mut groups: std::collections::BTreeMap<Value, (i64, Option<i64>)> = Default::default();
    for rr in r.rows() {
        for sr in s.rows() {
            if rr[0].is_null() || rr[0] != sr[0] {
                continue;
            }
            let e = groups.entry(rr[0].clone()).or_insert((0, None));
            e.0 += 1;
            if let Value::Int(v) = rr[1] {
                e.1 = Some(e.1.unwrap_or(0) + v);
            }
        }
    }
    groups.into_iter().map(|(k, (c, sum))| (k, c, sum)).collect()
}

/// Hash-join + grouped COUNT/SUM equals the nested-loop reference.
#[test]
fn executor_matches_reference() {
    let mut rng = Rng(16);
    for _ in 0..150 {
        let db = arb_join_db(&mut rng);
        let stmt = SelectStatement {
            distinct: false,
            items: vec![
                SelectItem::Column { col: ColumnRef::new("R", "k"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: ColumnRef::new("S", "w"),
                    distinct: false,
                    alias: "n".into(),
                },
                SelectItem::Aggregate {
                    func: AggFunc::Sum,
                    arg: ColumnRef::new("R", "v"),
                    distinct: false,
                    alias: "s".into(),
                },
            ],
            from: vec![
                TableExpr::Relation { name: "R".into(), alias: "R".into() },
                TableExpr::Relation { name: "S".into(), alias: "S".into() },
            ],
            predicates: vec![Predicate::JoinEq(ColumnRef::new("R", "k"), ColumnRef::new("S", "k"))],
            group_by: vec![ColumnRef::new("R", "k")],
            ..Default::default()
        };
        let got = execute(&stmt, &db).unwrap().sorted();
        let expected = reference_join_count(&db);
        assert_eq!(got.len(), expected.len());
        for (row, (k, c, sum)) in got.rows.iter().zip(&expected) {
            assert_eq!(&row[0], k);
            assert_eq!(row[1], Value::Int(*c));
            match sum {
                Some(s) => assert_eq!(row[2], Value::Int(*s)),
                None => assert_eq!(row[2], Value::Null),
            }
        }
    }
}

/// SELECT DISTINCT is idempotent and never larger than the input.
#[test]
fn distinct_is_idempotent() {
    let mut rng = Rng(17);
    for _ in 0..150 {
        let db = arb_join_db(&mut rng);
        let proj = |distinct| SelectStatement {
            distinct,
            items: vec![SelectItem::Column { col: ColumnRef::new("R", "k"), alias: None }],
            from: vec![TableExpr::Relation { name: "R".into(), alias: "R".into() }],
            predicates: vec![],
            group_by: vec![],
            ..Default::default()
        };
        let all = execute(&proj(false), &db).unwrap();
        let distinct = execute(&proj(true), &db).unwrap();
        assert!(distinct.len() <= all.len());
        let mut set: Vec<_> = all.rows.clone();
        set.sort();
        set.dedup();
        assert_eq!(distinct.sorted().rows, set);
    }
}

// ---------------------------------------------------------------------
// Engine determinism
// ---------------------------------------------------------------------

/// The engine is deterministic: identical queries yield identical SQL and
/// answers across engine instances.
#[test]
fn engine_is_deterministic() {
    for q in [
        "Green SUM Credit",
        "COUNT Lecturer GROUPBY Course",
        "Green George COUNT Code",
        "Java SUM Price",
    ] {
        let db = aqks::datasets::university::normalized();
        let e1 = aqks::core::Engine::new(db.clone()).unwrap();
        let e2 = aqks::core::Engine::new(db).unwrap();
        let a1 = e1.answer(q, 3).unwrap();
        let a2 = e2.answer(q, 3).unwrap();
        assert_eq!(a1.len(), a2.len());
        for (x, y) in a1.iter().zip(&a2) {
            assert_eq!(x.sql_text, y.sql_text);
            assert_eq!(x.result.rows, y.result.rows);
        }
    }
}

// ---------------------------------------------------------------------
// Whole-pipeline fuzz
// ---------------------------------------------------------------------

/// Tokens assembled into random keyword queries: operators, metadata,
/// values, and junk.
const FUZZ_TOKENS: &[&str] = &[
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
    "GROUPBY",
    "Student",
    "Course",
    "Enrol",
    "Teach",
    "Lecturer",
    "Textbook",
    "Department",
    "Faculty",
    "Sname",
    "Credit",
    "Price",
    "Age",
    "Code",
    "Green",
    "George",
    "Java",
    "Database",
    "Engineering",
    "Steven",
    "zebra",
    "\"royal olive\"",
];

/// Any token soup either errors typed or yields interpretations whose SQL
/// executes; nothing panics.
#[test]
fn pipeline_never_panics() {
    let mut rng = Rng(18);
    let db = aqks::datasets::university::normalized();
    let engine = aqks::core::Engine::new(db.clone()).unwrap();
    let sqak = aqks::sqak::Sqak::new(db);
    for _ in 0..64 {
        let n = 1 + rng.below(5);
        let query: String =
            (0..n).map(|_| FUZZ_TOKENS[rng.below(FUZZ_TOKENS.len())]).collect::<Vec<_>>().join(" ");
        match engine.answer(&query, 3) {
            Ok(answers) => {
                for a in &answers {
                    assert!(!a.result.columns.is_empty(), "{query}: {}", a.sql_text);
                }
            }
            Err(_typed) => {}
        }
        // SQAK must be equally panic-free.
        let _ = sqak.answer(&query);
    }
}
