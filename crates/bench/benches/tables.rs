//! End-to-end pipeline benches for the four answer tables: generate the
//! top interpretation *and execute it*, per query workload. This is the
//! cost a user actually experiences, and it shows SQL execution dominating
//! the interpretation overhead measured in `fig11_*` — the paper's
//! "good tradeoff" argument (Section 6.2).

use aqks_bench::{acmdl_engines, acmdl_prime_engines, tpch_engines, tpch_prime_engines};
use aqks_core::Engine;
use aqks_eval::{acmdl_queries, tpch_queries, EvalQuery};
use aqks_sqak::Sqak;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn answer_all(engine: &Engine, sqak: &Sqak, queries: &[EvalQuery]) {
    for q in queries {
        let _ = black_box(engine.answer(q.text, 1));
        let _ = black_box(sqak.answer(q.text));
    }
}

fn tables(c: &mut Criterion) {
    let tpch_qs = tpch_queries();
    let acmdl_qs = acmdl_queries();

    let (engine, sqak, _db) = tpch_engines();
    c.bench_function("table5_pipeline", |b| b.iter(|| answer_all(&engine, &sqak, &tpch_qs)));

    let (engine, sqak, _db) = acmdl_engines();
    c.bench_function("table6_pipeline", |b| b.iter(|| answer_all(&engine, &sqak, &acmdl_qs)));

    let (engine, sqak, _db) = tpch_prime_engines();
    c.bench_function("table8_pipeline", |b| b.iter(|| answer_all(&engine, &sqak, &tpch_qs)));

    let (engine, sqak, _db) = acmdl_prime_engines();
    c.bench_function("table9_pipeline", |b| b.iter(|| answer_all(&engine, &sqak, &acmdl_qs)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = tables
}
criterion_main!(benches);
