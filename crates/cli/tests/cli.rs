//! End-to-end tests of the `aqks` binary: spawn the compiled executable
//! and assert on its stdout/stderr/exit codes, exactly as a user runs it.

use std::process::{Command, Stdio};

fn aqks() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aqks"))
}

#[test]
fn one_shot_query_prints_sql_and_answers() {
    let out =
        aqks().args(["--dataset", "university", "Green SUM Credit"]).output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("GROUP BY S.Sid"), "{stdout}");
    assert!(stdout.contains("| s2  | 5.0"), "{stdout}");
    assert!(stdout.contains("| s3  | 8.0"), "{stdout}");
}

#[test]
fn sqak_flag_adds_baseline_section() {
    let out =
        aqks().args(["--dataset", "university", "--sqak", "Green SUM Credit"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SQAK baseline"), "{stdout}");
    assert!(stdout.contains("13.0"), "SQAK's merged answer shown: {stdout}");
}

#[test]
fn unknown_dataset_exits_2() {
    let out = aqks().args(["--dataset", "mars", "x"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}

#[test]
fn repl_commands_work_over_stdin() {
    let mut child = aqks()
        .args(["--dataset", "university"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    use std::io::Write;
    child.stdin.as_mut().unwrap().write_all(b"\\schema\n\\graph\nLecturer George\n\\q\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Student(Sid, Sname, Age)"), "{stdout}");
    assert!(stdout.contains("[relationship] Teach"), "{stdout}");
    assert!(stdout.contains("Lname contains 'George'"), "{stdout}");
}

#[test]
fn export_then_import_roundtrip() {
    let dir = std::env::temp_dir().join(format!("aqks-cli-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = aqks()
        .args(["--dataset", "fig8", "--export", dir.to_str().unwrap(), "Green SUM Credit"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let first = String::from_utf8_lossy(&out.stdout).to_string();

    let out =
        aqks().args(["--dataset", dir.to_str().unwrap(), "Green SUM Credit"]).output().unwrap();
    assert!(out.status.success());
    let second = String::from_utf8_lossy(&out.stdout);
    // Same answer table either way (the SQL may name the directory-backed
    // relations identically since schema.txt round-trips names).
    for needle in ["| s2  | 5.0", "| s3  | 8.0"] {
        assert!(first.contains(needle), "{first}");
        assert!(second.contains(needle), "{second}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_prints_physical_plan() {
    let out = aqks()
        .args(["explain", "--dataset", "university", "COUNT Lecturer GROUPBY Course"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("HashAggregate"), "{stdout}");
    assert!(stdout.contains("Scan"), "{stdout}");
    assert!(stdout.contains("Project"), "{stdout}");
    // Plain explain shows estimates, not measurements.
    assert!(!stdout.contains("time="), "{stdout}");
}

#[test]
fn explain_analyze_adds_per_operator_metrics() {
    let out = aqks()
        .args(["explain", "--analyze", "--dataset", "tpch", "COUNT order \"royal olive\""])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Scan"), "{stdout}");
    assert!(stdout.contains("rows="), "{stdout}");
    assert!(stdout.contains("time="), "{stdout}");
    assert!(stdout.contains("mem="), "{stdout}");
    assert!(stdout.contains("total:"), "{stdout}");
}

#[test]
fn metrics_prints_prometheus_exposition() {
    let out =
        aqks().args(["metrics", "--dataset", "university", "Green SUM Credit"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# TYPE aqks_engine_queries_total counter"), "{stdout}");
    assert!(stdout.contains("aqks_engine_queries_total 1"), "{stdout}");
    assert!(stdout.contains("# TYPE aqks_engine_answer_seconds histogram"), "{stdout}");
    assert!(stdout.contains("aqks_engine_phase_seconds_bucket{phase=\"exec\""), "{stdout}");
    assert!(stdout.contains("aqks_ops_rows_total{op=\"Scan\"}"), "{stdout}");
    assert!(stdout.contains("aqks_ops_peak_bytes_bucket{op="), "{stdout}");
}

#[test]
fn metrics_json_is_a_snapshot_object() {
    let out = aqks()
        .args(["metrics", "--json", "--dataset", "university", "Green SUM Credit"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"aqks_engine_queries\""), "{stdout}");
    assert!(stdout.contains("\"p95\""), "{stdout}");
}

#[test]
fn trace_slow_prints_the_slowest_exemplar() {
    let out = aqks().args(["trace", "--slow", "--dataset", "university"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("── slowest query `"), "{stdout}");
    assert!(stdout.contains("answer  total="), "{stdout}");
    assert!(stdout.contains("op:"), "operator spans present: {stdout}");
}

#[test]
fn trace_prints_span_tree_with_phases() {
    let out =
        aqks().args(["trace", "--dataset", "university", "Green SUM Credit"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for phase in ["parse", "match", "pattern", "annotate", "rank", "translate", "analyze", "plan"] {
        assert!(stdout.contains(&format!("├─ {phase}")), "{phase} missing:\n{stdout}");
    }
    assert!(stdout.contains("└─ exec"), "{stdout}");
    assert!(stdout.contains("op:"), "operator spans grafted: {stdout}");
    assert!(stdout.contains("counters:"), "{stdout}");
}

#[test]
fn trace_chrome_writes_valid_trace_event_file() {
    let file = std::env::temp_dir().join(format!("aqks-trace-test-{}.json", std::process::id()));
    let out = aqks()
        .args([
            "trace",
            "--trace=chrome",
            "--trace-out",
            file.to_str().unwrap(),
            "--dataset",
            "university",
            "Green SUM Credit",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&file).expect("trace file written");
    aqks_obs::json::validate(&json).expect("chrome trace is well-formed JSON");
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "{json}");
    assert!(json.contains("\"name\":\"answer\""), "{json}");
    std::fs::remove_file(&file).ok();
}

/// Replaces every wall-time token (after `total=`, `self=`, or `wall `)
/// with `_`, leaving the structure, counters, and row counts — which are
/// deterministic on the generated datasets — intact.
fn normalize_times(s: &str) -> String {
    // Leading spaces keep counter names like `matches.total=2` intact.
    let markers = [" total=", " self=", "wall "];
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    loop {
        let mut best: Option<(usize, &str)> = None;
        for m in markers {
            if let Some(i) = rest.find(m) {
                if best.is_none_or(|(bi, _)| i < bi) {
                    best = Some((i, m));
                }
            }
        }
        let Some((i, m)) = best else {
            out.push_str(rest);
            return out;
        };
        out.push_str(&rest[..i + m.len()]);
        out.push('_');
        let after = &rest[i + m.len()..];
        let end = after.find([' ', ']', ')', '\n']).unwrap_or(after.len());
        rest = &after[end..];
    }
}

/// Golden-file test: the `aqks trace` text output on a fixed TPC-H′
/// query, with wall times normalized. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test -p aqks-cli trace_text_output`.
#[test]
fn trace_text_output_matches_golden() {
    let out = aqks()
        .args(["trace", "--dataset", "tpch-prime", "COUNT order \"royal olive\""])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let normalized = normalize_times(&String::from_utf8_lossy(&out.stdout));
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_tpch_prime.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &normalized).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect("golden file exists");
    assert_eq!(normalized, golden, "trace text drifted; UPDATE_GOLDEN=1 to regenerate");
}

#[test]
fn malformed_query_exits_nonzero_with_one_line_diagnostic() {
    let out = aqks().args(["--dataset", "university", "Green SUM"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let diag: Vec<&str> = stderr.lines().filter(|l| l.starts_with("error:")).collect();
    assert_eq!(diag.len(), 1, "exactly one diagnostic line:\n{stderr}");
    assert!(diag[0].contains("parse error"), "{stderr}");
}

#[test]
fn nonexistent_term_exits_nonzero() {
    let out = aqks().args(["--dataset", "university", "zebra COUNT Code"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("matches nothing"));
}

#[test]
fn bad_budget_flag_value_exits_2() {
    let out = aqks().args(["--dataset", "university", "--max-rows", "lots", "x"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--max-rows"), "usage diagnostic");
}

#[test]
fn zero_deadline_exits_3_with_exhaustion_report() {
    let out = aqks()
        .args(["--dataset", "university", "--timeout-ms", "0", "Green SUM Credit"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("budget exhausted: deadline budget exhausted at"), "{stderr}");
    assert!(stderr.contains("no results completed"), "{stderr}");
}

#[test]
fn interpretation_cap_prints_partials_and_exits_3() {
    // "Green George COUNT Code" has 4 interpretations; cap at 1.
    let out = aqks()
        .args([
            "--dataset",
            "university",
            "--k",
            "3",
            "--max-interpretations",
            "1",
            "Green George COUNT Code",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("interpretation #1"), "partial results shown: {stdout}");
    assert!(!stdout.contains("interpretation #2"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("interpretation budget exhausted at `engine.translate`"), "{stderr}");
    assert!(stderr.contains("partial results returned"), "{stderr}");
}

#[test]
fn check_subcommand_fails_on_malformed_query() {
    let out = aqks().args(["check", "--dataset", "university", "Green SUM"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("parse error"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("check failed"));
}

#[test]
fn explain_subcommand_fails_on_malformed_query() {
    let out = aqks().args(["explain", "--dataset", "university", "Green SUM"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("explain failed"));
}

#[test]
fn trace_subcommand_fails_on_malformed_query() {
    let out = aqks().args(["trace", "--dataset", "university", "Green SUM"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("trace failed"));
}

#[test]
fn generous_budget_answers_normally_with_exit_0() {
    let out = aqks()
        .args([
            "--dataset",
            "university",
            "--timeout-ms",
            "60000",
            "--max-rows",
            "1000000",
            "Green SUM Credit",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("| s2  | 5.0"), "{stdout}");
}
