#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! `aqks` — an interactive keyword-query shell over the bundled datasets.
//!
//! ```text
//! aqks --dataset tpch 'COUNT order "royal olive"'     # one-shot
//! aqks --dataset university                           # REPL
//! ```
//!
//! Options:
//!
//! * `--dataset NAME` — `university` (default), `fig2`, `fig8`, `tpch`,
//!   `acmdl`, `tpch-prime`, `acmdl-prime`
//! * `--paper-scale` — full-cardinality synthetic data
//! * `--k N` — show the top-N interpretations (default 1)
//! * `--sqak` — also run the SQAK baseline for contrast
//! * `--explain` — print the ORM schema graph and the query pattern
//! * `--threads N` — executor worker threads (default 1); results are
//!   identical at every thread count, only wall time changes
//! * `--timeout-ms N`, `--max-rows N`, `--max-patterns N`,
//!   `--max-interpretations N` — resource budget for the query; on
//!   exhaustion the completed interpretations are printed, a one-line
//!   `budget exhausted: …` diagnostic goes to stderr, and the process
//!   exits with code 3
//!
//! Subcommand `aqks check [--dataset NAME] [--sqak] [--plans] [QUERY]`
//! runs the static analyzer (`aqks-analyze`) over the SQL both engines
//! generate — for one query, or for the dataset's whole built-in
//! workload when no query is given — and exits non-zero on
//! error-severity findings. `--plans` additionally lowers every
//! interpretation to its physical plan and runs the plan verifier
//! (`aqks-plancheck`) on it, printing each plan's fingerprint. `--equiv`
//! partitions each query's interpretations into semantic equivalence
//! classes (`aqks-equiv`): plans with the same canonical fingerprint
//! are duplicate work even when their structural fingerprints differ.
//!
//! Subcommand `aqks explain [--analyze] [--shared] [--dataset NAME]
//! [QUERY]` prints the physical operator tree of each generated
//! statement with its statically inferred properties (keys, ordering,
//! row bounds) and its normalized fingerprint; `--analyze` additionally
//! executes the plan and annotates every operator with rows in/out and
//! wall time. `--shared` instead prints the deduplicated execution set:
//! one canonical plan per equivalence class, with subtrees common to
//! two or more plans elided to numbered shared-subplan references that
//! would be materialized once.
//!
//! Subcommand `aqks trace [--dataset NAME] [QUERY]` answers the query
//! with the `aqks-obs` recorder enabled and prints the pipeline span
//! tree (per-phase self/total wall times plus counters). The global
//! `--trace[=text|json|chrome]` flag does the same for ordinary one-shot
//! and REPL queries; `chrome` additionally writes a `trace_event` JSON
//! file (`--trace-out FILE`, default `aqks-trace.json`) loadable in
//! `chrome://tracing` or Perfetto. `trace --slow` instead answers the
//! queries through the ordinary (untraced) path — which files every
//! query with the always-on flight recorder — and prints the retained
//! slowest-query exemplar's span tree.
//!
//! Subcommand `aqks metrics [--prom|--json] [--dataset NAME] [QUERY]`
//! answers the query (or the dataset's built-in workload) and prints
//! the always-on metrics registry — engine phase/latency histograms,
//! per-operator rows and peak memory, guard trips — in Prometheus text
//! format v0.0.4 (the default) or as a JSON snapshot.
//!
//! Subcommand `aqks serve [--dataset NAME] [--addr HOST:PORT]
//! [--workers N] [--queue-depth N]` loads the dataset once and serves
//! it as a concurrent TCP query service (`aqks-server`): bounded
//! admission queue, per-request deadlines clamped by the budget flags,
//! typed wire errors, graceful drain on stdin EOF or `quit`.
//!
//! Subcommand `aqks client --addr HOST:PORT [--k N] [--timeout-ms N]
//! QUERY` sends one keyword query to a running server through the
//! retrying client (exponential backoff with jitter on retryable
//! errors) and prints the interpretations; a budget-degraded answer
//! exits with code 3 like a local exhausted query.
//!
//! REPL commands: `\schema` (relations), `\graph` (ORM graph), `\q`.

use std::io::{BufRead, Write};

use aqks_analyze::Analyzer;
use aqks_core::{Budget, Engine};
use aqks_datasets::{
    denormalize_acmdl, denormalize_tpch, generate_acmdl, generate_tpch, university, AcmdlConfig,
    TpchConfig,
};
use aqks_obs::PipelineTrace;
use aqks_relational::Database;
use aqks_sqak::Sqak;

/// Rendering of a collected [`PipelineTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
enum TraceFormat {
    /// Span tree as text (the default).
    Text,
    /// Structured JSON on stdout.
    Json,
    /// Text tree on stdout plus a Chrome `trace_event` file.
    Chrome,
}

impl TraceFormat {
    fn parse(v: &str) -> Result<TraceFormat, String> {
        match v {
            "text" => Ok(TraceFormat::Text),
            "json" => Ok(TraceFormat::Json),
            "chrome" => Ok(TraceFormat::Chrome),
            other => Err(format!("unknown trace format `{other}` (text|json|chrome)")),
        }
    }
}

struct Options {
    dataset: String,
    paper_scale: bool,
    k: usize,
    sqak: bool,
    explain: bool,
    check: bool,
    plans: bool,
    equiv: bool,
    shared: bool,
    explain_plan: bool,
    trace_cmd: bool,
    metrics_cmd: bool,
    serve_cmd: bool,
    client_cmd: bool,
    addr: String,
    workers: usize,
    queue_depth: usize,
    metrics_json: bool,
    slow: bool,
    analyze: bool,
    trace: Option<TraceFormat>,
    trace_out: String,
    export: Option<String>,
    timeout_ms: Option<u64>,
    max_rows: Option<u64>,
    max_patterns: Option<u64>,
    max_interpretations: Option<u64>,
    threads: usize,
    query: Option<String>,
}

impl Options {
    /// True once one of the `check`/`explain`/`trace`/`metrics`/
    /// `serve`/`client` subcommands is set.
    fn subcommand(&self) -> bool {
        self.check
            || self.explain_plan
            || self.trace_cmd
            || self.metrics_cmd
            || self.serve_cmd
            || self.client_cmd
    }

    /// The resource budget assembled from the `--timeout-ms`/`--max-*`
    /// flags; unlimited when none were given.
    fn budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(ms) = self.timeout_ms {
            b = b.with_timeout(std::time::Duration::from_millis(ms));
        }
        if let Some(n) = self.max_rows {
            b = b.with_max_rows(n);
        }
        if let Some(n) = self.max_patterns {
            b = b.with_max_patterns(n);
        }
        if let Some(n) = self.max_interpretations {
            b = b.with_max_interpretations(n);
        }
        b
    }
}

/// Exit code for a budget-exhausted query (distinct from usage errors
/// `2` and ordinary failures `1`).
const EXIT_EXHAUSTED: i32 = 3;

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        dataset: "university".into(),
        paper_scale: false,
        k: 1,
        sqak: false,
        explain: false,
        check: false,
        plans: false,
        equiv: false,
        shared: false,
        explain_plan: false,
        trace_cmd: false,
        metrics_cmd: false,
        serve_cmd: false,
        client_cmd: false,
        addr: "127.0.0.1:7878".into(),
        workers: 4,
        queue_depth: 64,
        metrics_json: false,
        slow: false,
        analyze: false,
        trace: None,
        trace_out: "aqks-trace.json".into(),
        export: None,
        timeout_ms: None,
        max_rows: None,
        max_patterns: None,
        max_interpretations: None,
        threads: 1,
        query: None,
    };
    fn num(args: &[String], i: usize, flag: &str) -> Result<u64, String> {
        args.get(i)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{flag} needs a non-negative number"))
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut positional: Vec<String> = Vec::new();
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" | "-d" => {
                i += 1;
                opts.dataset = args.get(i).ok_or("--dataset needs a value")?.to_lowercase();
            }
            "--paper-scale" => opts.paper_scale = true,
            "--sqak" => opts.sqak = true,
            "--explain" => opts.explain = true,
            "--analyze" => opts.analyze = true,
            "--plans" => opts.plans = true,
            "--equiv" => opts.equiv = true,
            "--shared" => opts.shared = true,
            "--json" => opts.metrics_json = true,
            "--prom" => opts.metrics_json = false,
            "--slow" => opts.slow = true,
            "--trace" => opts.trace = Some(TraceFormat::Text),
            flag if flag.starts_with("--trace=") => {
                opts.trace = Some(TraceFormat::parse(&flag["--trace=".len()..])?);
            }
            "--trace-out" => {
                i += 1;
                opts.trace_out = args.get(i).ok_or("--trace-out needs a file")?.to_string();
            }
            "--export" => {
                i += 1;
                opts.export = Some(args.get(i).ok_or("--export needs a directory")?.to_string());
            }
            "--k" => {
                i += 1;
                opts.k = args.get(i).and_then(|v| v.parse().ok()).ok_or("--k needs a number")?;
            }
            "--timeout-ms" => {
                i += 1;
                opts.timeout_ms = Some(num(&args, i, "--timeout-ms")?);
            }
            "--max-rows" => {
                i += 1;
                opts.max_rows = Some(num(&args, i, "--max-rows")?);
            }
            "--max-patterns" => {
                i += 1;
                opts.max_patterns = Some(num(&args, i, "--max-patterns")?);
            }
            "--max-interpretations" => {
                i += 1;
                opts.max_interpretations = Some(num(&args, i, "--max-interpretations")?);
            }
            "--threads" => {
                i += 1;
                opts.threads = (num(&args, i, "--threads")? as usize).max(1);
            }
            "--addr" => {
                i += 1;
                opts.addr = args.get(i).ok_or("--addr needs HOST:PORT")?.to_string();
            }
            "--workers" => {
                i += 1;
                opts.workers = (num(&args, i, "--workers")? as usize).max(1);
            }
            "--queue-depth" => {
                i += 1;
                opts.queue_depth = num(&args, i, "--queue-depth")? as usize;
            }
            "--help" | "-h" => {
                println!("usage: aqks [check|explain|trace|metrics|serve|client] [--dataset NAME|DIR] [--paper-scale] [--k N] [--sqak] [--explain] [--analyze] [--plans] [--equiv] [--shared] [--slow] [--prom|--json] [--trace[=text|json|chrome]] [--trace-out FILE] [--export DIR] [--timeout-ms N] [--max-rows N] [--max-patterns N] [--max-interpretations N] [--threads N] [--addr HOST:PORT] [--workers N] [--queue-depth N] [QUERY]");
                std::process::exit(0);
            }
            "check" if positional.is_empty() && !opts.subcommand() => opts.check = true,
            "explain" if positional.is_empty() && !opts.subcommand() => opts.explain_plan = true,
            "trace" if positional.is_empty() && !opts.subcommand() => opts.trace_cmd = true,
            "metrics" if positional.is_empty() && !opts.subcommand() => opts.metrics_cmd = true,
            "serve" if positional.is_empty() && !opts.subcommand() => opts.serve_cmd = true,
            "client" if positional.is_empty() && !opts.subcommand() => opts.client_cmd = true,
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    if !positional.is_empty() {
        opts.query = Some(positional.join(" "));
    }
    Ok(opts)
}

fn load_dataset(name: &str, paper_scale: bool) -> Result<Database, String> {
    let tpch_cfg = if paper_scale { TpchConfig::paper_scale() } else { TpchConfig::small() };
    let acmdl_cfg = if paper_scale { AcmdlConfig::paper_scale() } else { AcmdlConfig::small() };
    Ok(match name {
        "university" | "uni" => university::normalized(),
        "fig2" => university::unnormalized_fig2(),
        "fig8" | "enrolment" => university::enrolment_fig8(),
        "hobbies" => university::with_hobbies(),
        "tpch" => generate_tpch(&tpch_cfg),
        "acmdl" => generate_acmdl(&acmdl_cfg),
        "tpch-prime" | "tpch'" => denormalize_tpch(&generate_tpch(&tpch_cfg)),
        "acmdl-prime" | "acmdl'" => denormalize_acmdl(&generate_acmdl(&acmdl_cfg)),
        // Anything path-like imports a schema.txt + CSV directory.
        other if other.contains('/') || std::path::Path::new(other).is_dir() => {
            aqks_relational::import_dir(std::path::Path::new(other))
                .map_err(|e| format!("import `{other}`: {e}"))?
        }
        other => return Err(format!("unknown dataset `{other}`")),
    })
}

/// Prints a collected trace in the requested format; `Chrome` also
/// writes the `trace_event` file to `out`.
fn emit_trace(trace: &PipelineTrace, fmt: TraceFormat, out: &str) {
    match fmt {
        TraceFormat::Text => print!("{}", trace.render_text()),
        TraceFormat::Json => print!("{}", trace.to_json()),
        TraceFormat::Chrome => {
            print!("{}", trace.render_text());
            match std::fs::write(out, trace.to_chrome_json()) {
                Ok(()) => {
                    eprintln!("wrote Chrome trace to {out} (open in chrome://tracing or Perfetto)")
                }
                Err(e) => eprintln!("cannot write {out}: {e}"),
            }
        }
    }
}

/// Answers one query, printing interpretations (and optionally the
/// trace and the SQAK baseline). Returns the process exit code: `0` on
/// success, `1` on error, [`EXIT_EXHAUSTED`] when the budget tripped.
#[allow(clippy::too_many_arguments)]
fn run_query(
    engine: &Engine,
    sqak: Option<&Sqak>,
    query: &str,
    k: usize,
    explain: bool,
    trace: Option<TraceFormat>,
    trace_out: &str,
    budget: &Budget,
) -> i32 {
    if explain {
        match engine.explain(query) {
            Ok(ex) => {
                println!("── interpretation trace");
                for t in &ex.terms {
                    let kind = if t.is_operator { "operator" } else { "term" };
                    if t.matches.is_empty() {
                        println!("  {kind} {:<12}", t.term);
                    } else {
                        println!("  {kind} {:<12} -> {}", t.term, t.matches.join(" | "));
                    }
                }
                println!("  {} pattern(s) generated", ex.patterns.len());
            }
            Err(e) => println!("explain error: {e}"),
        }
    }
    let answered = match trace {
        Some(_) => engine.answer_traced_governed(query, k, budget).map(|(g, t)| (g, Some(t))),
        None => engine.answer_governed(query, k, budget).map(|g| (g, None)),
    };
    let mut code = 0;
    match answered {
        Ok((governed, collected)) => {
            for (rank, a) in governed.value.iter().enumerate() {
                println!("── interpretation #{}", rank + 1);
                if explain {
                    println!("pattern: {}", a.pattern_description);
                }
                println!("{}", a.sql_text);
                println!("{}", a.result);
                println!("({})", a.stats);
            }
            if let (Some(fmt), Some(t)) = (trace, collected) {
                println!("── pipeline trace");
                emit_trace(&t, fmt, trace_out);
            }
            if let Some(ex) = governed.exhaustion {
                eprintln!("budget exhausted: {ex}");
                code = EXIT_EXHAUSTED;
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            code = 1;
        }
    }
    if let Some(sqak) = sqak {
        println!("── SQAK baseline");
        match sqak.generate(query) {
            Ok(g) => {
                println!("{}", g.sql_text);
                match sqak.answer(query) {
                    Ok(r) => println!("{r}"),
                    Err(e) => println!("execution error: {e}"),
                }
            }
            Err(e) => println!("N.A.: {e}"),
        }
    }
    code
}

/// The built-in workload `aqks check` sweeps when no query is given.
fn check_workload(dataset: &str) -> Vec<String> {
    match dataset {
        "tpch" | "tpch-prime" | "tpch'" => {
            aqks_eval::tpch_queries().iter().map(|q| q.text.to_string()).collect()
        }
        "acmdl" | "acmdl-prime" | "acmdl'" => {
            aqks_eval::acmdl_queries().iter().map(|q| q.text.to_string()).collect()
        }
        "fig2" => vec!["Engineering COUNT Department".into()],
        "fig8" | "enrolment" => vec!["Green George COUNT Code".into()],
        _ => vec![
            "Green SUM Credit".into(),
            "Java SUM Price".into(),
            "COUNT Lecturer GROUPBY Course".into(),
        ],
    }
}

/// Prints the physical plan of every interpretation of `queries`; with
/// `analyze`, executes each plan and annotates operators with measured
/// row counts and wall time. Returns the number of failed queries.
fn run_explain(engine: &Engine, queries: &[String], k: usize, analyze: bool) -> usize {
    let opts = aqks_sqlgen::ExecOptions::with_threads(engine.threads());
    let db = engine.database();
    let mut failures = 0;
    for q in queries {
        println!("── explain `{q}`");
        let generated = match engine.generate(q, k) {
            Ok(g) => g,
            Err(e) => {
                println!("  error: {e}");
                failures += 1;
                continue;
            }
        };
        for (rank, g) in generated.iter().enumerate() {
            println!("interpretation #{}", rank + 1);
            println!("{}", g.sql_text);
            let plan = match aqks_sqlgen::plan(&g.sql, db) {
                Ok(p) => p,
                Err(e) => {
                    println!("  plan error: {e}");
                    failures += 1;
                    continue;
                }
            };
            // Verify first: explain output shows each operator's
            // statically inferred keys, ordering, and row bounds.
            let verified = match aqks_plancheck::verify(&plan, db, Some(&g.sql)) {
                Ok(v) => v,
                Err(e) => {
                    println!("  plan verification error: {e}");
                    failures += 1;
                    continue;
                }
            };
            println!("plan fingerprint: {}", aqks_plancheck::fingerprint_hex(&plan));
            let rendered = if analyze {
                match aqks_sqlgen::run_plan_opts(&plan, db, &aqks_sqlgen::SharedRows::new(), opts) {
                    Ok((_, stats)) => aqks_sqlgen::render_plan_with_stats(&plan, &stats),
                    Err(e) => {
                        println!("  execution error: {e}");
                        failures += 1;
                        continue;
                    }
                }
            } else {
                aqks_plancheck::render_verified(&plan, &verified)
            };
            println!("{rendered}");
        }
    }
    failures
}

/// Plans every interpretation of every query, partitions the plans into
/// semantic equivalence classes, and prints the deduplicated execution
/// set: each class representative's canonical tree, with subtrees
/// common to two or more representatives elided to numbered
/// shared-subplan references. Returns the number of failures.
fn run_explain_shared(engine: &Engine, queries: &[String], k: usize) -> usize {
    let db = engine.database();
    let mut failures = 0;
    let mut plans = Vec::new();
    for q in queries {
        println!("── explain --shared `{q}`");
        match engine.interpretation_plans(q, k) {
            Ok(pairs) => {
                for (rank, (g, p)) in pairs.into_iter().enumerate() {
                    println!(
                        "interpretation #{} (plan #{}): {}",
                        rank + 1,
                        plans.len(),
                        g.sql_text
                    );
                    plans.push(p);
                }
            }
            Err(e) => {
                println!("  error: {e}");
                failures += 1;
            }
        }
    }
    match aqks_equiv::analyze(&plans, db) {
        Ok(analysis) => {
            println!(
                "── shared execution set: {} plan(s) -> {} class(es), {} duplicate(s) elided",
                plans.len(),
                analysis.classes.len(),
                analysis.duplicates()
            );
            for (ci, class) in analysis.classes.iter().enumerate() {
                if class.members.len() > 1 {
                    let members: Vec<String> =
                        class.members.iter().map(|m| format!("#{m}")).collect();
                    println!(
                        "class {ci} [{:016x}]: plans {}",
                        class.fingerprint,
                        members.join(", ")
                    );
                }
            }
            print!("{}", aqks_equiv::render_shared(&aqks_equiv::shared_set(&analysis)));
        }
        Err(e) => {
            println!("  equivalence analysis error: {e}");
            failures += 1;
        }
    }
    failures
}

/// Answers each query with tracing enabled and prints the pipeline span
/// tree. Returns the number of failures (errors or empty span trees —
/// the latter would mean the pipeline silently lost its instrumentation,
/// which CI guards against).
fn run_trace(
    engine: &Engine,
    queries: &[String],
    k: usize,
    fmt: TraceFormat,
    trace_out: &str,
) -> usize {
    let mut failures = 0;
    for q in queries {
        println!("── trace `{q}`");
        match engine.answer_traced(q, k) {
            Ok((answers, trace)) => {
                if trace.is_empty() {
                    println!("  error: empty span tree");
                    failures += 1;
                    continue;
                }
                for (rank, a) in answers.iter().enumerate() {
                    println!("interpretation #{}: {}", rank + 1, a.sql_text);
                    println!("({})", a.stats);
                }
                emit_trace(&trace, fmt, trace_out);
            }
            Err(e) => {
                println!("  error: {e}");
                failures += 1;
            }
        }
    }
    failures
}

/// Answers each query through the ordinary (untraced) path — every call
/// is metered by the always-on registry and filed with the flight
/// recorder — then prints the retained slowest-query exemplar's span
/// tree. Returns the number of failures.
fn run_trace_slow(
    engine: &Engine,
    queries: &[String],
    k: usize,
    fmt: TraceFormat,
    trace_out: &str,
) -> usize {
    let mut failures = 0;
    for q in queries {
        if let Err(e) = engine.answer(q, k) {
            println!("── trace --slow `{q}`");
            println!("  error: {e}");
            failures += 1;
        }
    }
    match aqks_obs::flight::global().slowest() {
        Some(entry) => {
            println!(
                "── slowest query `{}` ({} µs total{})",
                entry.query,
                entry.total_ns / 1_000,
                if entry.tripped.is_some() { ", budget tripped" } else { "" }
            );
            if let Some(t) = &entry.tripped {
                println!("tripped: {t}");
            }
            emit_trace(&entry.trace, fmt, trace_out);
        }
        None => {
            println!("  error: flight recorder is empty (metrics disabled?)");
            failures += 1;
        }
    }
    failures
}

/// Answers each query (feeding the always-on registry), then prints the
/// registry exposition: Prometheus text format v0.0.4, or a JSON
/// snapshot with `--json`. Returns the number of failures.
fn run_metrics(engine: &Engine, queries: &[String], k: usize, json: bool) -> usize {
    let mut failures = 0;
    for q in queries {
        if let Err(e) = engine.answer(q, k) {
            eprintln!("error answering `{q}`: {e}");
            failures += 1;
        }
    }
    let snapshot = aqks_obs::metrics::global().snapshot();
    if json {
        print!("{}", aqks_obs::expo::render_json(&snapshot));
    } else {
        print!("{}", aqks_obs::expo::render_prometheus(&snapshot));
    }
    failures
}

/// Semantic-equivalence check for one query's interpretation set: each
/// interpretation is planned with and without predicate pushdown and
/// both variants are canonicalized (`aqks-equiv`) — a pair that fails
/// to converge to one equivalence class, or a planner plan the
/// canonicalizer cannot certify, is an error. Classes spanning several
/// interpretations are reported as duplicate execution work. Returns
/// the error count.
fn check_equiv(generated: &[aqks_core::GeneratedSql], db: &Database) -> usize {
    let mut errors = 0usize;
    let mut flat: Vec<aqks_sqlgen::PlanNode> = Vec::new();
    let mut owner: Vec<usize> = Vec::new(); // plan index -> interpretation rank
    for (rank, g) in generated.iter().enumerate() {
        let on = aqks_sqlgen::plan(&g.sql, db);
        let off = aqks_sqlgen::plan_with_options(
            &g.sql,
            db,
            &aqks_sqlgen::PlanOptions { pushdown: false },
        );
        match (on, off) {
            (Ok(a), Ok(b)) => {
                flat.push(a);
                owner.push(rank);
                flat.push(b);
                owner.push(rank);
            }
            (Err(e), _) | (_, Err(e)) => {
                errors += 1;
                println!("  equiv #{}: plan error: {e}", rank + 1);
            }
        }
    }
    let analysis = match aqks_equiv::analyze(&flat, db) {
        Ok(a) => a,
        Err(e) => {
            // A planner-produced plan the canonicalizer cannot certify
            // is a bug in one of the two.
            errors += 1;
            println!("  equiv: REJECTED {e}");
            return errors;
        }
    };
    let mut class_of = vec![0usize; flat.len()];
    for (ci, class) in analysis.classes.iter().enumerate() {
        for &m in &class.members {
            class_of[m] = ci;
        }
    }
    let mut diverged = 0usize;
    for i in (0..flat.len()).step_by(2) {
        if class_of[i] != class_of[i + 1] {
            errors += 1;
            diverged += 1;
            println!(
                "  equiv #{}: pushdown variants did not converge to one canonical form",
                owner[i] + 1
            );
        }
    }
    println!(
        "  equiv: {} interpretation(s) -> {} class(es){}",
        generated.len(),
        analysis.classes.len(),
        if diverged == 0 { "; pushdown variants converge" } else { "" }
    );
    for (ci, class) in analysis.classes.iter().enumerate() {
        let interps: std::collections::BTreeSet<usize> =
            class.members.iter().map(|&m| owner[m]).collect();
        if interps.len() > 1 {
            let names: Vec<String> = interps.iter().map(|r| format!("#{}", r + 1)).collect();
            println!(
                "    class {ci} [{:016x}]: interpretations {} are semantically identical",
                class.fingerprint,
                names.join(", ")
            );
        }
    }
    errors
}

/// Statically analyzes the SQL both engines generate for `queries`;
/// with `plans`, additionally lowers each interpretation to a physical
/// plan and runs the plan verifier on it. Returns the number of
/// error-severity findings.
fn run_check(
    engine: &Engine,
    sqak: Option<&Sqak>,
    queries: &[String],
    k: usize,
    plans: bool,
    equiv: bool,
) -> usize {
    let schema = engine.database().schema();
    let db = engine.database();
    let mut errors = 0;
    for q in queries {
        println!("── check `{q}`");
        match engine.generate(q, k) {
            Ok(generated) => {
                for (rank, g) in generated.iter().enumerate() {
                    let verdict = if g.diagnostics.is_clean() {
                        "clean".to_string()
                    } else {
                        g.diagnostics.summary()
                    };
                    println!("  engine #{}: {verdict}", rank + 1);
                    errors += g.diagnostics.error_count();
                    if !g.diagnostics.is_clean() {
                        for line in g.diagnostics.render(&g.sql).lines() {
                            println!("    {line}");
                        }
                    }
                    if plans {
                        match aqks_sqlgen::plan(&g.sql, db) {
                            Ok(p) => match aqks_plancheck::verify(&p, db, Some(&g.sql)) {
                                Ok(_) => println!(
                                    "  plan #{}: verified (fingerprint {})",
                                    rank + 1,
                                    aqks_plancheck::fingerprint_hex(&p)
                                ),
                                Err(e) => {
                                    errors += 1;
                                    println!("  plan #{}: REJECTED {e}", rank + 1);
                                }
                            },
                            Err(e) => {
                                errors += 1;
                                println!("  plan #{}: plan error: {e}", rank + 1);
                            }
                        }
                    }
                }
                // Semantic-equivalence check: each interpretation is
                // planned with and without predicate pushdown, and the
                // canonicalizer must prove the two variants are the same
                // plan (one class per interpretation). Interpretations
                // sharing a class are flagged — they are the same query
                // in different clothes, i.e. duplicate execution work.
                if equiv {
                    errors += check_equiv(&generated, db);
                }
            }
            // Debug builds reject error findings inside `generate`.
            Err(aqks_core::CoreError::Analysis(m)) => {
                errors += 1;
                println!("  engine: rejected\n    {}", m.replace('\n', "\n    "));
            }
            // A query the engine cannot interpret at all (parse error,
            // unmatched term) is a check failure, not a shrug — malformed
            // input must not exit 0.
            Err(e) => {
                errors += 1;
                println!("  engine: error ({e})");
            }
        }
        if let Some(sqak) = sqak {
            match sqak.generate(q) {
                Ok(g) => {
                    let report = Analyzer::new(&schema).analyze(&g.sql);
                    let verdict =
                        if report.is_clean() { "clean".to_string() } else { report.summary() };
                    println!("  sqak: {verdict}");
                    errors += report.error_count();
                    if !report.is_clean() {
                        for line in report.render(&g.sql).lines() {
                            println!("    {line}");
                        }
                    }
                }
                Err(e) => println!("  sqak: N.A. ({e})"),
            }
        }
    }
    errors
}

/// `aqks serve`: loads the dataset once and serves it over TCP until
/// stdin reaches EOF (or `quit` is typed), then drains cleanly. The
/// budget flags become server policy: `--timeout-ms` is the default
/// per-request deadline, `--max-rows`/`--max-patterns` are hard caps
/// client hints cannot exceed.
fn run_serve(engine: Engine, opts: &Options) -> i32 {
    let mut cfg = aqks_server::ServerConfig {
        addr: opts.addr.clone(),
        workers: opts.workers,
        queue_depth: opts.queue_depth,
        ..aqks_server::ServerConfig::default()
    };
    if let Some(ms) = opts.timeout_ms {
        cfg.default_deadline = std::time::Duration::from_millis(ms);
    }
    cfg.max_rows = opts.max_rows;
    cfg.max_patterns = opts.max_patterns;
    let server = match aqks_server::Server::start(std::sync::Arc::new(engine), cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind `{}`: {e}", opts.addr);
            return 1;
        }
    };
    eprintln!(
        "serving on {} ({} worker(s), queue depth {}); EOF or `quit` to drain",
        server.addr(),
        opts.workers,
        opts.queue_depth
    );
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let stats = server.stats();
    server.shutdown();
    eprintln!(
        "drained: {} accepted, {} ok ({} degraded), {} error(s), {} shed",
        stats.accepted,
        stats.ok,
        stats.degraded,
        stats.errors,
        stats.shed()
    );
    0
}

/// `aqks client`: sends one keyword query to a running `aqks serve`
/// with the shipped retrying client and prints the interpretations.
/// Exit codes: 0 ok, 1 typed server/transport error, 2 usage,
/// [`EXIT_EXHAUSTED`] when the answer degraded under its budget.
fn run_client(opts: &Options) -> i32 {
    use std::net::ToSocketAddrs;
    let Some(query) = &opts.query else {
        eprintln!(
            "error: `aqks client` needs a query, e.g. aqks client --addr {} 'Green SUM Credit'",
            opts.addr
        );
        return 2;
    };
    let addr = match opts.addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(a) => a,
        None => {
            eprintln!("error: cannot resolve `{}`", opts.addr);
            return 2;
        }
    };
    let mut client = aqks_server::Client::connect(addr, aqks_server::ClientConfig::default());
    let mut request = aqks_server::Request::new(query.clone());
    request.k = opts.k;
    request.timeout_ms = opts.timeout_ms;
    request.max_rows = opts.max_rows;
    request.max_patterns = opts.max_patterns;
    request.max_interps = opts.max_interpretations;
    match client.query(&request) {
        Ok(answer) => {
            for (rank, interp) in answer.interpretations.iter().enumerate() {
                println!("── interpretation #{}", rank + 1);
                println!("{}", interp.sql);
                println!("{}", interp.columns.join(" | "));
                for row in &interp.rows {
                    println!("{}", row.join(" | "));
                }
            }
            eprintln!("({} µs server time)", answer.server_us);
            client.quit();
            if let Some(d) = &answer.degraded {
                eprintln!("budget exhausted: {d} (partial={})", answer.partial);
                return EXIT_EXHAUSTED;
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            client.quit();
            1
        }
    }
}

fn main() {
    // One-line diagnostics instead of a backtrace dump if anything gets
    // past the engine's panic shield; the process still exits non-zero.
    std::panic::set_hook(Box::new(|info| {
        let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
            s
        } else if let Some(s) = info.payload().downcast_ref::<String>() {
            s.as_str()
        } else {
            "unknown panic"
        };
        eprintln!("error: internal panic: {msg}");
    }));
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    // `client` talks to a running server; it needs no local dataset.
    if opts.client_cmd {
        std::process::exit(run_client(&opts));
    }

    let db = match load_dataset(&opts.dataset, opts.paper_scale) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("dataset `{}`: {} tuples", opts.dataset, db.total_rows());
    if let Some(dir) = &opts.export {
        if let Err(e) = aqks_relational::export_dir(&db, std::path::Path::new(dir)) {
            eprintln!("export failed: {e}");
            std::process::exit(1);
        }
        eprintln!("exported schema.txt + CSVs to {dir}");
    }

    let sqak = opts.sqak.then(|| Sqak::new(db.clone()));
    let mut engine = match Engine::new(db) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    engine.set_threads(opts.threads);
    if engine.is_unnormalized() {
        eprintln!("(unnormalized database: querying through the normalized view)");
    }

    if opts.serve_cmd {
        std::process::exit(run_serve(engine, &opts));
    }

    if opts.explain_plan {
        let queries = opts
            .query
            .as_ref()
            .map(|q| vec![q.clone()])
            .unwrap_or_else(|| check_workload(&opts.dataset));
        let failures = if opts.shared {
            run_explain_shared(&engine, &queries, opts.k.max(3))
        } else {
            run_explain(&engine, &queries, opts.k, opts.analyze)
        };
        if failures > 0 {
            eprintln!("explain failed for {failures} quer(y/ies)");
            std::process::exit(1);
        }
        return;
    }

    if opts.trace_cmd {
        let queries = opts
            .query
            .as_ref()
            .map(|q| vec![q.clone()])
            .unwrap_or_else(|| check_workload(&opts.dataset));
        let fmt = opts.trace.unwrap_or(TraceFormat::Text);
        let failures = if opts.slow {
            run_trace_slow(&engine, &queries, opts.k, fmt, &opts.trace_out)
        } else {
            run_trace(&engine, &queries, opts.k, fmt, &opts.trace_out)
        };
        if failures > 0 {
            eprintln!("trace failed for {failures} quer(y/ies)");
            std::process::exit(1);
        }
        return;
    }

    if opts.metrics_cmd {
        let queries = opts
            .query
            .as_ref()
            .map(|q| vec![q.clone()])
            .unwrap_or_else(|| check_workload(&opts.dataset));
        let failures = run_metrics(&engine, &queries, opts.k, opts.metrics_json);
        if failures > 0 {
            eprintln!("metrics failed for {failures} quer(y/ies)");
            std::process::exit(1);
        }
        return;
    }

    if opts.check {
        let queries = opts
            .query
            .as_ref()
            .map(|q| vec![q.clone()])
            .unwrap_or_else(|| check_workload(&opts.dataset));
        let errors =
            run_check(&engine, sqak.as_ref(), &queries, opts.k.max(3), opts.plans, opts.equiv);
        if errors > 0 {
            eprintln!("check failed: {errors} error finding(s)");
            std::process::exit(1);
        }
        eprintln!("check passed: no error findings");
        return;
    }

    let budget = opts.budget();
    if let Some(q) = &opts.query {
        let code = run_query(
            &engine,
            sqak.as_ref(),
            q,
            opts.k,
            opts.explain,
            opts.trace,
            &opts.trace_out,
            &budget,
        );
        std::process::exit(code);
    }

    // REPL.
    eprintln!("enter keyword queries; \\schema, \\graph, \\q to quit");
    let stdin = std::io::stdin();
    loop {
        eprint!("aqks> ");
        std::io::stderr().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            "\\q" | "\\quit" | "exit" => break,
            "\\schema" => {
                for rel in &engine.database().schema().relations {
                    let attrs: Vec<&str> = rel.attr_names().collect();
                    println!("{}({})", rel.name, attrs.join(", "));
                }
            }
            "\\graph" => println!("{}", engine.orm_graph().describe()),
            q => {
                // The REPL reports errors/exhaustion inline and carries on.
                run_query(
                    &engine,
                    sqak.as_ref(),
                    q,
                    opts.k,
                    opts.explain,
                    opts.trace,
                    &opts.trace_out,
                    &budget,
                );
            }
        }
    }
}
