//! Fixed-seed property tests: over randomly generated schemas and
//! interpretations, plan → verify → execute never trips an invariant,
//! fingerprints are stable across two `plan()` calls, and every seeded
//! mutation moves the fingerprint and fails verification.

use aqks_plancheck::{fingerprint, mutate, verify};
use aqks_relational::{AttrType, Database, RelationSchema, Value};
use aqks_sqlgen::ast::{
    AggFunc, ColumnRef, OrderKey, Predicate, SelectItem, SelectStatement, TableExpr,
};
use aqks_sqlgen::{plan, render_plan, run_plan};

/// SplitMix64: deterministic, dependency-free PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

/// A random acyclic schema `R0..Rn`: each relation has an Int primary
/// key `Id`, a few typed payload attributes, and (past `R0`) a foreign
/// key into an earlier relation — plus a handful of FK-consistent rows.
fn random_database(rng: &mut Rng) -> Database {
    let payload_types = [AttrType::Int, AttrType::Float, AttrType::Text];
    let mut db = Database::new("prop");
    let n_rels = 2 + rng.below(3);
    let mut schemas: Vec<(Vec<AttrType>, Option<usize>)> = Vec::new();
    for i in 0..n_rels {
        let mut r = RelationSchema::new(format!("R{i}"));
        r.add_attr("Id", AttrType::Int);
        let mut tys = Vec::new();
        for j in 0..1 + rng.below(3) {
            let ty = payload_types[rng.below(payload_types.len())];
            r.add_attr(format!("P{j}"), ty);
            tys.push(ty);
        }
        r.set_primary_key(["Id"]);
        let parent = if i > 0 { Some(rng.below(i)) } else { None };
        if let Some(p) = parent {
            r.add_attr("Ref", AttrType::Int);
            r.add_foreign_key(["Ref"], format!("R{p}"), ["Id"]);
        }
        schemas.push((tys, parent));
        db.add_relation(r).unwrap();
    }
    let mut sizes: Vec<usize> = Vec::new();
    for (i, (tys, parent)) in schemas.iter().enumerate() {
        let rows = 2 + rng.below(6);
        for id in 0..rows {
            let mut row = vec![Value::Int(id as i64)];
            for ty in tys {
                row.push(match ty {
                    AttrType::Int => Value::Int(rng.below(50) as i64),
                    AttrType::Float => Value::Float(rng.below(50) as f64 / 2.0),
                    _ => Value::str(format!("t{}", rng.below(6))),
                });
            }
            if let Some(p) = parent {
                row.push(Value::Int(rng.below(sizes[*p]) as i64));
            }
            db.insert(&format!("R{i}"), row).unwrap();
        }
        sizes.push(rows);
    }
    db
}

/// A random interpretation over a FK chain of the schema: either a
/// plain (optionally DISTINCT/ordered/limited) projection or a
/// key-grouped aggregation — the statement shapes the keyword engine
/// produces.
fn random_statement(rng: &mut Rng, db: &Database) -> SelectStatement {
    let rels: Vec<&RelationSchema> = db.tables().iter().map(|t| &t.schema).collect();
    // Walk FKs upward from a random start to build a connected chain.
    let mut chain = vec![rng.below(rels.len())];
    loop {
        let rel = rels[*chain.last().unwrap()];
        let Some(fk) = rel.foreign_keys.first() else { break };
        let parent = rels.iter().position(|r| r.is_named(&fk.ref_relation)).expect("fk target");
        chain.push(parent);
        if rng.chance(40) {
            break;
        }
    }
    let alias = |i: usize| format!("t{i}");
    let mut stmt = SelectStatement::new();
    stmt.from = chain
        .iter()
        .enumerate()
        .map(|(i, &r)| TableExpr::Relation { name: rels[r].name.clone(), alias: alias(i) })
        .collect();
    stmt.predicates = (1..chain.len())
        .map(|i| {
            Predicate::JoinEq(ColumnRef::new(alias(i - 1), "Ref"), ColumnRef::new(alias(i), "Id"))
        })
        .collect();
    // Maybe pin a payload column to a type-correct literal.
    if rng.chance(50) {
        let i = rng.below(chain.len());
        let rel = rels[chain[i]];
        let a = &rel.attrs[1 + rng.below(rel.attrs.len() - 1)];
        let lit = match a.ty {
            AttrType::Int => Value::Int(rng.below(50) as i64),
            AttrType::Float => Value::Float(rng.below(50) as f64 / 2.0),
            _ => Value::str(format!("t{}", rng.below(6))),
        };
        stmt.predicates.push(Predicate::Eq(ColumnRef::new(alias(i), a.name.clone()), lit));
    }

    if rng.chance(50) {
        // Key-grouped aggregation over the chain's last relation.
        let g = ColumnRef::new(alias(0), "Id");
        let tail = rels[*chain.last().unwrap()];
        let func =
            [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max][rng.below(5)];
        // SUM/AVG need a numeric argument; Id always qualifies.
        let numeric: Vec<&str> = tail
            .attrs
            .iter()
            .filter(|a| matches!(a.ty, AttrType::Int | AttrType::Float))
            .map(|a| a.name.as_str())
            .collect();
        let arg = numeric[rng.below(numeric.len())];
        stmt.items = vec![
            SelectItem::Column { col: g.clone(), alias: None },
            SelectItem::Aggregate {
                func,
                arg: ColumnRef::new(alias(chain.len() - 1), arg),
                distinct: rng.chance(25),
                alias: "aggval".into(),
            },
        ];
        stmt.group_by = vec![g];
        if rng.chance(40) {
            stmt.order_by =
                vec![OrderKey { column: ColumnRef::new("", "aggval"), desc: rng.chance(50) }];
        }
    } else {
        let rel = rels[chain[0]];
        let n_items = 1 + rng.below(rel.attrs.len());
        stmt.items = (0..n_items)
            .map(|j| SelectItem::Column {
                col: ColumnRef::new(alias(0), rel.attrs[j].name.clone()),
                alias: None,
            })
            .collect();
        stmt.distinct = rng.chance(30);
        if rng.chance(40) {
            let j = rng.below(n_items);
            stmt.order_by = vec![OrderKey {
                column: ColumnRef::new(alias(0), rel.attrs[j].name.clone()),
                desc: rng.chance(50),
            }];
        }
    }
    if rng.chance(30) {
        stmt.limit = Some(1 + rng.below(10));
    }
    stmt
}

#[test]
fn random_interpretations_plan_verify_and_execute() {
    let mut rng = Rng(0x5eed_2026_0807);
    for round in 0..60 {
        let db = random_database(&mut rng);
        for case in 0..4 {
            let stmt = random_statement(&mut rng, &db);
            let p = plan(&stmt, &db)
                .unwrap_or_else(|e| panic!("round {round} case {case}: plan failed: {e}"));
            verify(&p, &db, Some(&stmt)).unwrap_or_else(|e| {
                panic!(
                    "round {round} case {case}: verifier tripped on a clean plan: {e}\n{}",
                    render_plan(&p)
                )
            });
            run_plan(&p, &db)
                .unwrap_or_else(|e| panic!("round {round} case {case}: execution failed: {e}"));

            let again = plan(&stmt, &db).expect("plans again");
            assert_eq!(
                fingerprint(&p),
                fingerprint(&again),
                "round {round} case {case}: fingerprint unstable"
            );
            for (m, bad) in mutate::all(&p) {
                assert_ne!(
                    fingerprint(&p),
                    fingerprint(&bad),
                    "round {round} case {case}: {m:?} kept the fingerprint"
                );
                assert!(
                    verify(&bad, &db, Some(&stmt)).is_err(),
                    "round {round} case {case}: {m:?} passed verification"
                );
            }
        }
    }
}

#[test]
fn fingerprints_are_collision_free_across_random_interpretations() {
    let mut rng = Rng(0x0dd_ba11);
    let mut seen: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
    for _ in 0..40 {
        let db = random_database(&mut rng);
        for _ in 0..4 {
            let stmt = random_statement(&mut rng, &db);
            let p = plan(&stmt, &db).expect("plans");
            // Structurally identical plans legitimately share a
            // fingerprint (estimates are excluded by design); plans
            // that differ beyond estimates must not.
            let text = strip_estimates(&render_plan(&p));
            if let Some(prev) = seen.insert(fingerprint(&p), text.clone()) {
                assert_eq!(
                    prev,
                    text,
                    "two structurally different plans share fingerprint {:016x}",
                    fingerprint(&p)
                );
            }
        }
    }
    assert!(seen.len() > 40, "generator produced too few distinct plans ({})", seen.len());
}

fn strip_estimates(rendered: &str) -> String {
    rendered.lines().map(|l| l.split(" (est=").next().unwrap_or(l)).collect::<Vec<_>>().join("\n")
}
