//! Term matching (Algorithm 2, `findMatch`).
//!
//! Each basic term is matched against relation names, attribute names,
//! and tuple values, yielding a set of [`TermMatch`] interpretations.
//! Names live in the *pattern namespace* — the database schema itself for
//! a normalized database, or the normalized view `D'` for an unnormalized
//! one (Section 4 maps matches on `D` into `D'` before pattern
//! generation; tuple values are always matched against the stored data).
//!
//! Operands are constrained (Section 2): the operand of `MIN`, `MAX`,
//! `AVG`, or `SUM` must match an attribute name; the operand of `COUNT`
//! or `GROUPBY` a relation or attribute name.

use std::collections::HashSet;

use aqks_relational::{Database, MatchIndex, NormalizedView};

/// How the term is used, which restricts the admissible match types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermRole {
    /// A free basic term.
    Free,
    /// Operand of `MIN`/`MAX`/`AVG`/`SUM`: attribute names only.
    AggOperand,
    /// Operand of `COUNT`/`GROUPBY`: relation or attribute names.
    CountGroupByOperand,
}

/// One interpretation of a basic term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermMatch {
    /// The term names a relation.
    RelationName {
        /// Relation (pattern-namespace canonical name).
        relation: String,
    },
    /// The term names an attribute.
    AttributeName {
        /// Owning relation.
        relation: String,
        /// Attribute.
        attribute: String,
    },
    /// The term occurs in stored values of one column.
    Value {
        /// Owning relation (pattern namespace).
        relation: String,
        /// Matched attribute.
        attribute: String,
        /// Number of distinct matched *objects* (distinct key values of
        /// the pattern-namespace relation) — drives disambiguation.
        tuple_count: usize,
    },
}

impl TermMatch {
    /// The pattern-namespace relation this match refers to.
    pub fn relation(&self) -> &str {
        match self {
            TermMatch::RelationName { relation }
            | TermMatch::AttributeName { relation, .. }
            | TermMatch::Value { relation, .. } => relation,
        }
    }

    /// True for relation-name / attribute-name matches.
    pub fn is_metadata(&self) -> bool {
        !matches!(self, TermMatch::Value { .. })
    }
}

/// Pre-built matcher over one database (normalized or not).
pub struct Matcher {
    index: MatchIndex,
    /// Pattern-namespace schema (db schema, or the normalized view's).
    namespace: aqks_relational::DatabaseSchema,
    /// For unnormalized databases: the view used to map value matches.
    view: Option<NormalizedView>,
}

impl Matcher {
    /// Matcher for a normalized database: the pattern namespace is the
    /// schema itself.
    pub fn normalized(db: &Database) -> Self {
        Matcher { index: MatchIndex::build(db), namespace: db.schema(), view: None }
    }

    /// Matcher for an unnormalized database: metadata matches against the
    /// normalized view `D'`; value matches against the stored data of `D`
    /// and mapped into `D'`.
    pub fn unnormalized(db: &Database, view: NormalizedView) -> Self {
        Matcher { index: MatchIndex::build(db), namespace: view.schema(), view: Some(view) }
    }

    /// All admissible matches of `term` under `role`, metadata first.
    ///
    /// Fallible because value matching probes the term index, which
    /// observes the ambient `aqks-guard` budget and the `index.lookup`
    /// failpoint.
    pub fn matches(
        &self,
        db: &Database,
        term: &str,
        role: TermRole,
    ) -> Result<Vec<TermMatch>, aqks_relational::Error> {
        let mut out = Vec::new();
        for m in self.metadata_matches(term) {
            match (&m, role) {
                (_, TermRole::Free) | (_, TermRole::CountGroupByOperand) => out.push(m),
                (TermMatch::AttributeName { .. }, TermRole::AggOperand) => out.push(m),
                _ => {}
            }
        }
        if role == TermRole::Free {
            out.extend(self.value_matches(db, term)?);
        }
        Ok(out)
    }

    fn metadata_matches(&self, term: &str) -> Vec<TermMatch> {
        let mut out = Vec::new();
        for rel in &self.namespace.relations {
            if rel.is_named(term) {
                out.push(TermMatch::RelationName { relation: rel.name.clone() });
            }
        }
        for rel in &self.namespace.relations {
            if let Some(attr) = rel.canonical_attr(term) {
                // A foreign-key attribute is a *reference* to another
                // object, not an attribute of this relation in the ORA
                // sense: `Enrol.Code` denotes the course, whose attribute
                // match is `Course.Code`. Skipping it avoids duplicate
                // (and mis-ranked) interpretations.
                if is_foreign_key_attr(rel, attr) {
                    continue;
                }
                out.push(TermMatch::AttributeName {
                    relation: rel.name.clone(),
                    attribute: attr.to_string(),
                });
            }
        }
        out
    }

    fn value_matches(
        &self,
        db: &Database,
        term: &str,
    ) -> Result<Vec<TermMatch>, aqks_relational::Error> {
        let hits = self.index.match_value_rows(db, term)?;
        let mut out = Vec::new();
        match &self.view {
            None => {
                for (relation, attribute, rows) in hits {
                    // Values of foreign-key columns denote the referenced
                    // object; the referenced relation's own key column
                    // already produces that interpretation.
                    if self
                        .namespace
                        .relation(&relation)
                        .is_some_and(|r| is_foreign_key_attr(r, &attribute))
                    {
                        continue;
                    }
                    out.push(TermMatch::Value { relation, attribute, tuple_count: rows.len() });
                }
            }
            Some(view) => {
                for (orig_rel, attribute, rows) in hits {
                    if db
                        .table(&orig_rel)
                        .is_some_and(|t| is_foreign_key_attr(&t.schema, &attribute))
                    {
                        continue;
                    }
                    let Some(derived) = pick_derived(view, &orig_rel, &attribute) else {
                        continue;
                    };
                    // Count distinct objects: project matching rows onto
                    // the derived relation's key.
                    let table = db.table(&orig_rel).expect("indexed relation exists");
                    let key_idx: Option<Vec<usize>> = derived
                        .schema
                        .primary_key
                        .iter()
                        .map(|k| table.schema.attr_index(k))
                        .collect();
                    let count = match key_idx {
                        Some(idx) if !idx.is_empty() => {
                            let mut seen = HashSet::new();
                            for &r in &rows {
                                let key: Vec<_> = idx
                                    .iter()
                                    .map(|&i| table.rows()[r as usize][i].clone())
                                    .collect();
                                seen.insert(key);
                            }
                            seen.len()
                        }
                        _ => rows.len(),
                    };
                    let attr = derived
                        .schema
                        .canonical_attr(&attribute)
                        .unwrap_or(attribute.as_str())
                        .to_string();
                    out.push(TermMatch::Value {
                        relation: derived.schema.name.clone(),
                        attribute: attr,
                        tuple_count: count,
                    });
                }
            }
        }
        Ok(out)
    }
}

/// True if `attr` participates in any foreign key of `rel`.
fn is_foreign_key_attr(rel: &aqks_relational::RelationSchema, attr: &str) -> bool {
    rel.foreign_keys.iter().any(|fk| fk.attrs.iter().any(|a| a.eq_ignore_ascii_case(attr)))
}

/// Chooses the derived relation a value/attribute match on
/// `original.attribute` belongs to: the relation where the attribute is a
/// non-key attribute if one exists (its FD group), otherwise the one with
/// the smallest key containing it (its object), deterministically.
pub fn pick_derived<'v>(
    view: &'v NormalizedView,
    original: &str,
    attribute: &str,
) -> Option<&'v aqks_relational::DerivedRelation> {
    let mut candidates: Vec<&aqks_relational::DerivedRelation> = view
        .derived_from(original)
        .into_iter()
        .filter(|d| d.schema.attr_index(attribute).is_some())
        .collect();
    candidates.sort_by_key(|d| {
        let in_key = d.schema.primary_key.iter().any(|k| k.eq_ignore_ascii_case(attribute));
        (in_key, d.schema.primary_key.len(), d.schema.name.clone())
    });
    candidates.into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqks_datasets::university;

    #[test]
    fn metadata_before_values() {
        let db = university::normalized();
        let m = Matcher::normalized(&db);
        // "Lecturer" names a relation; "George" is a value in two columns.
        let ms = m.matches(&db, "Lecturer", TermRole::Free).unwrap();
        assert!(matches!(ms[0], TermMatch::RelationName { .. }));
        let ms = m.matches(&db, "George", TermRole::Free).unwrap();
        assert_eq!(ms.len(), 2, "{ms:?}");
        assert!(ms.iter().all(|x| !x.is_metadata()));
    }

    #[test]
    fn roles_restrict_match_types() {
        let db = university::normalized();
        let m = Matcher::normalized(&db);
        // "Credit" as aggregate operand: attribute name only.
        let ms = m.matches(&db, "Credit", TermRole::AggOperand).unwrap();
        assert_eq!(ms.len(), 1);
        assert!(
            matches!(&ms[0], TermMatch::AttributeName { relation, .. } if relation == "Course")
        );
        // "Green" cannot be an aggregate operand.
        assert!(m.matches(&db, "Green", TermRole::AggOperand).unwrap().is_empty());
        // "Course" as COUNT operand: relation name.
        let ms = m.matches(&db, "Course", TermRole::CountGroupByOperand).unwrap();
        assert!(matches!(&ms[0], TermMatch::RelationName { relation } if relation == "Course"));
    }

    #[test]
    fn green_counts_two_students() {
        let db = university::normalized();
        let m = Matcher::normalized(&db);
        let ms = m.matches(&db, "Green", TermRole::Free).unwrap();
        let student = ms
            .iter()
            .find_map(|x| match x {
                TermMatch::Value { relation, tuple_count, .. } if relation == "Student" => {
                    Some(*tuple_count)
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(student, 2);
    }

    #[test]
    fn unnormalized_counts_objects_not_rows() {
        // Figure 8: "Green" occurs in 3 Enrolment rows but names only 2
        // distinct students; "George" occurs in 3 rows, 1 student.
        let db = university::enrolment_fig8();
        let view = NormalizedView::build(&db.schema());
        let m = Matcher::unnormalized(&db, view);
        let count_of = |term: &str| {
            m.matches(&db, term, TermRole::Free)
                .unwrap()
                .into_iter()
                .find_map(|x| match x {
                    TermMatch::Value { relation, tuple_count, .. } if relation == "Student" => {
                        Some(tuple_count)
                    }
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(count_of("Green"), 2);
        assert_eq!(count_of("George"), 1);
    }

    #[test]
    fn unnormalized_metadata_uses_view_names() {
        let db = university::enrolment_fig8();
        let view = NormalizedView::build(&db.schema());
        let m = Matcher::unnormalized(&db, view);
        let ms = m.matches(&db, "Student", TermRole::CountGroupByOperand).unwrap();
        assert!(
            matches!(&ms[0], TermMatch::RelationName { relation } if relation == "Student"),
            "{ms:?}"
        );
        // Attribute of the original maps to the derived relation.
        let ms = m.matches(&db, "Code", TermRole::AggOperand).unwrap();
        assert!(
            ms.iter().any(
                |x| matches!(x, TermMatch::AttributeName { relation, .. } if relation == "Course")
            ),
            "{ms:?}"
        );
    }

    #[test]
    fn unmatched_term_is_empty() {
        let db = university::normalized();
        let m = Matcher::normalized(&db);
        assert!(m.matches(&db, "zebra", TermRole::Free).unwrap().is_empty());
    }
}
