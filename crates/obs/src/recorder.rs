//! The thread-safe span/counter recorder.
//!
//! A [`Recorder`] is a cheap clone (one `Arc`). Spans are recorded into
//! a mutex-guarded buffer; the enabled flag is a separate relaxed atomic
//! so the disabled fast path never takes the lock. Span nesting is
//! tracked per thread on an ambient stack, so deeply-layered code (the
//! engine calling the executor calling nothing observability-aware) does
//! not need to pass recorder handles around.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::trace::PipelineTrace;

/// One recorded span, id-indexed in the recorder state.
#[derive(Debug, Clone)]
pub(crate) struct RawSpan {
    pub(crate) name: Cow<'static, str>,
    pub(crate) parent: Option<u32>,
    /// Start offset from the recorder epoch, nanoseconds.
    pub(crate) start_ns: u64,
    /// Inclusive duration, nanoseconds; `None` while the span is open.
    pub(crate) dur_ns: Option<u64>,
    pub(crate) counters: Vec<(Cow<'static, str>, u64)>,
}

#[derive(Default)]
struct State {
    spans: Vec<RawSpan>,
    counters: BTreeMap<String, u64>,
}

struct Inner {
    enabled: AtomicBool,
    epoch: Instant,
    state: Mutex<State>,
}

/// A thread-safe span/counter sink. Clones share the same buffer.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.is_enabled()).finish()
    }
}

thread_local! {
    /// Innermost-last stack of (recorder, span id) active on this thread.
    static AMBIENT: RefCell<Vec<(Recorder, u32)>> = const { RefCell::new(Vec::new()) };
}

impl Recorder {
    fn with_enabled(enabled: bool) -> Recorder {
        Recorder {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// A recorder with recording off — every span is an inert guard
    /// costing one atomic load. This is the default state instrumented
    /// components embed.
    pub fn disabled() -> Recorder {
        Recorder::with_enabled(false)
    }

    /// A recorder with recording on.
    pub fn enabled() -> Recorder {
        Recorder::with_enabled(true)
    }

    /// True when spans and counters are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off (already-open spans still complete).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// True when both handles point at the same underlying buffer.
    fn same(&self, other: &Recorder) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a span. When recording is on, the span is parented under
    /// the innermost span *of this recorder* active on the current
    /// thread (the ambient stack) and is pushed onto that stack until
    /// the guard drops. When recording is off this is one atomic load.
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> Span {
        if !self.is_enabled() {
            return Span { live: None };
        }
        let parent = AMBIENT
            .with(|s| s.borrow().iter().rev().find(|(r, _)| r.same(self)).map(|(_, id)| *id));
        self.start(name.into(), parent)
    }

    fn start(&self, name: Cow<'static, str>, parent: Option<u32>) -> Span {
        let start_ns = self.now_ns();
        let id = {
            let mut st = self.inner.state.lock().expect("recorder state poisoned");
            let id = st.spans.len() as u32;
            st.spans.push(RawSpan { name, parent, start_ns, dur_ns: None, counters: Vec::new() });
            id
        };
        AMBIENT.with(|s| s.borrow_mut().push((self.clone(), id)));
        Span { live: Some((self.clone(), id)) }
    }

    /// Adds `n` to a recorder-level counter (not tied to any span).
    pub fn add(&self, name: &str, n: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.inner.state.lock().expect("recorder state poisoned");
        *st.counters.entry(name.to_string()).or_default() += n;
    }

    fn add_to_span(&self, id: u32, name: Cow<'static, str>, n: u64) {
        let mut st = self.inner.state.lock().expect("recorder state poisoned");
        let Some(raw) = st.spans.get_mut(id as usize) else { return };
        match raw.counters.iter_mut().find(|(k, _)| *k == name) {
            Some(c) => c.1 += n,
            None => raw.counters.push((name, n)),
        }
    }

    /// Grafts an externally-timed, already-completed span into the tree:
    /// `start`/`dur` come from the caller's own measurement (e.g. the
    /// executor's accumulated per-operator wall time). With `parent:
    /// None` the span lands under the innermost ambient span of this
    /// recorder. Returns a handle usable as the parent of further
    /// completed spans.
    pub fn record_span(
        &self,
        parent: Option<&SpanHandle>,
        name: impl Into<Cow<'static, str>>,
        start: Instant,
        dur: Duration,
        counters: &[(&'static str, u64)],
    ) -> SpanHandle {
        if !self.is_enabled() {
            return SpanHandle { live: None };
        }
        let parent_id = match parent {
            Some(h) => h.live.as_ref().map(|(_, id)| *id),
            None => AMBIENT
                .with(|s| s.borrow().iter().rev().find(|(r, _)| r.same(self)).map(|(_, id)| *id)),
        };
        let start_ns =
            start.checked_duration_since(self.inner.epoch).unwrap_or_default().as_nanos() as u64;
        let mut st = self.inner.state.lock().expect("recorder state poisoned");
        let id = st.spans.len() as u32;
        st.spans.push(RawSpan {
            name: name.into(),
            parent: parent_id,
            start_ns,
            dur_ns: Some(dur.as_nanos() as u64),
            counters: counters.iter().map(|&(k, v)| (Cow::Borrowed(k), v)).collect(),
        });
        SpanHandle { live: Some((self.clone(), id)) }
    }

    /// Snapshots and clears everything recorded so far. Call after all
    /// spans have closed; a span still open at `take` time is reported
    /// with zero duration and its late close is ignored.
    pub fn take(&self) -> PipelineTrace {
        let (spans, counters) = {
            let mut st = self.inner.state.lock().expect("recorder state poisoned");
            (std::mem::take(&mut st.spans), std::mem::take(&mut st.counters))
        };
        PipelineTrace::build(spans, counters)
    }
}

/// RAII guard of an open span. Dropping it records the duration.
#[must_use = "a span measures until it is dropped"]
#[derive(Debug)]
pub struct Span {
    live: Option<(Recorder, u32)>,
}

impl Span {
    /// Adds `n` to a counter attached to this span.
    pub fn add(&self, name: impl Into<Cow<'static, str>>, n: u64) {
        if let Some((rec, id)) = &self.live {
            rec.add_to_span(*id, name.into(), n);
        }
    }

    /// A `Send` handle for parenting work on another thread.
    pub fn handle(&self) -> SpanHandle {
        SpanHandle { live: self.live.clone() }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((rec, id)) = self.live.take() else { return };
        let end_ns = rec.now_ns();
        // Remove this span from the ambient stack of the dropping
        // thread; after a cross-thread move it may not be there.
        AMBIENT.with(|s| {
            let mut st = s.borrow_mut();
            if let Some(pos) = st.iter().rposition(|(r, i)| r.same(&rec) && *i == id) {
                st.remove(pos);
            }
        });
        let mut st = rec.inner.state.lock().expect("recorder state poisoned");
        if let Some(raw) = st.spans.get_mut(id as usize) {
            if raw.dur_ns.is_none() {
                raw.dur_ns = Some(end_ns.saturating_sub(raw.start_ns));
            }
        }
    }
}

/// A `Send + Sync` reference to a recorded span, for cross-thread
/// handoff and for parenting externally-timed spans.
#[derive(Debug, Clone)]
pub struct SpanHandle {
    live: Option<(Recorder, u32)>,
}

impl SpanHandle {
    /// Opens a child span of the referenced span on the *current*
    /// thread (pushing it onto this thread's ambient stack) — the
    /// cross-thread handoff entry point.
    pub fn child(&self, name: impl Into<Cow<'static, str>>) -> Span {
        match &self.live {
            Some((rec, id)) if rec.is_enabled() => rec.start(name.into(), Some(*id)),
            _ => Span { live: None },
        }
    }
}

/// Adds `n` to a counter on the innermost ambient span of the current
/// thread, whatever recorder it belongs to. A no-op (one thread-local
/// read) when no span is active — instrumented leaf code calls this
/// unconditionally.
pub fn counter(name: impl Into<Cow<'static, str>>, n: u64) {
    let target = AMBIENT.with(|s| s.borrow().last().cloned());
    if let Some((rec, id)) = target {
        rec.add_to_span(id, name.into(), n);
    }
}

/// The recorder owning the innermost ambient span of this thread, if
/// any — how layers below the engine (the executor) find the active
/// recorder without a parameter.
pub fn current() -> Option<Recorder> {
    AMBIENT.with(|s| s.borrow().last().map(|(r, _)| r.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_form_a_tree() {
        let rec = Recorder::enabled();
        {
            let root = rec.span("root");
            root.add("hits", 2);
            {
                let _child = rec.span("child-a");
                counter("probes", 3);
            }
            let _b = rec.span("child-b");
        }
        let t = rec.take();
        assert_eq!(t.roots.len(), 1);
        let root = &t.roots[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "child-a");
        assert_eq!(root.children[1].name, "child-b");
        assert_eq!(root.counters, vec![("hits".to_string(), 2)]);
        assert_eq!(root.children[0].counters, vec![("probes".to_string(), 3)]);
        // Aggregated metrics snapshot sees both.
        assert_eq!(t.counters.get("hits"), Some(&2));
        assert_eq!(t.counters.get("probes"), Some(&3));
    }

    #[test]
    fn sibling_after_drop_is_not_nested() {
        let rec = Recorder::enabled();
        {
            let _a = rec.span("a");
        }
        {
            let _b = rec.span("b");
        }
        let t = rec.take();
        assert_eq!(t.roots.len(), 2, "{t:?}");
    }

    #[test]
    fn cross_thread_handoff_parents_correctly() {
        let rec = Recorder::enabled();
        {
            let root = rec.span("root");
            let h = root.handle();
            let worker = std::thread::spawn(move || {
                let child = h.child("worker");
                child.add("worked", 1);
                // Ambient nesting works on the worker thread too.
                let _inner = crate::current().unwrap().span("inner");
            });
            worker.join().unwrap();
        }
        let t = rec.take();
        let root = &t.roots[0];
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "worker");
        assert_eq!(root.children[0].children[0].name, "inner");
        assert_eq!(t.counters.get("worked"), Some(&1));
    }

    #[test]
    fn counters_merge_within_a_span() {
        let rec = Recorder::enabled();
        {
            let s = rec.span("s");
            s.add("n", 1);
            s.add("n", 4);
        }
        rec.add("global", 7);
        let t = rec.take();
        assert_eq!(t.roots[0].counters, vec![("n".to_string(), 5)]);
        assert_eq!(t.counters.get("global"), Some(&7));
        assert_eq!(t.counters.get("n"), Some(&5));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        {
            let s = rec.span("s");
            s.add("n", 1);
            counter("ambient", 1);
            rec.add("global", 1);
        }
        let t = rec.take();
        assert!(t.is_empty());
        assert!(t.counters.is_empty());
    }

    #[test]
    fn record_span_grafts_completed_work() {
        let rec = Recorder::enabled();
        let t0 = Instant::now();
        {
            let _exec = rec.span("exec");
            let parent = rec.record_span(
                None,
                "op:Project",
                t0,
                Duration::from_micros(50),
                &[("rows_out", 7)],
            );
            rec.record_span(
                Some(&parent),
                "op:Scan",
                t0,
                Duration::from_micros(40),
                &[("rows_out", 100)],
            );
        }
        let t = rec.take();
        let exec = &t.roots[0];
        assert_eq!(exec.children[0].name, "op:Project");
        assert_eq!(exec.children[0].children[0].name, "op:Scan");
        assert_eq!(exec.children[0].total_ns, 50_000);
        assert_eq!(exec.children[0].self_ns, 10_000);
        assert_eq!(t.counters.get("rows_out"), Some(&107));
    }

    #[test]
    fn take_resets_the_buffer() {
        let rec = Recorder::enabled();
        {
            let _s = rec.span("one");
        }
        assert_eq!(rec.take().roots.len(), 1);
        assert!(rec.take().is_empty());
    }
}
