//! The paper's evaluation tables, asserted as *shape invariants*: who
//! wins, how SQAK's errors manifest, where N.A. appears. Absolute values
//! come from our synthetic generators (the real ACMDL dump is
//! proprietary), but every qualitative claim of Tables 5/6/8/9 is
//! checked mechanically here at the small scale; `repro --paper-scale`
//! regenerates the full-cardinality versions.

use aqks_eval::{
    run_table5, run_table6, run_table8, run_table9, ComparisonRow, EngineOutcome, Scale,
};

fn row<'a>(rows: &'a [ComparisonRow], id: &str) -> &'a ComparisonRow {
    rows.iter().find(|r| r.id == id).unwrap_or_else(|| panic!("row {id}"))
}

fn nums(outcome: &EngineOutcome) -> Vec<f64> {
    outcome.values().iter().filter_map(|v| v.parse().ok()).collect()
}

#[test]
fn table5_shapes() {
    let rows = run_table5(Scale::Small);

    // T1/T2: both engines agree on the normalized database.
    for id in ["T1", "T2"] {
        let r = row(&rows, id);
        assert_eq!(r.ours.values(), r.sqak.values(), "{id}");
    }

    // T3: ours returns one count per "royal olive" part — the planted
    // [22,23,27,27,29,33,33,35] — while SQAK merges them into their sum.
    let t3 = row(&rows, "T3");
    assert_eq!(t3.ours.count(), Some(8));
    assert_eq!(t3.sqak.count(), Some(1));
    let sum: f64 = nums(&t3.ours).iter().sum();
    assert_eq!(nums(&t3.sqak)[0], sum, "SQAK's single answer is the merged sum (229)");
    assert_eq!(sum, 229.0);

    // T4: SQAK's single answer is the maximum of ours.
    let t4 = row(&rows, "T4");
    assert_eq!(t4.ours.count(), Some(13));
    assert_eq!(t4.sqak.count(), Some(1));
    let max = nums(&t4.ours).iter().cloned().fold(f64::MIN, f64::max);
    assert_eq!(nums(&t4.sqak)[0], max);
    assert_eq!(max, 9844.0);

    // T5: SQAK counts each supplier once per order.
    let t5 = row(&rows, "T5");
    assert_eq!(nums(&t5.ours), vec![4.0]);
    assert_eq!(nums(&t5.sqak), vec![22.0]);

    // T6: same number of groups, but SQAK's per-supplier counts are
    // inflated by repeated (part, supplier) pairs.
    let t6 = row(&rows, "T6");
    assert_eq!(t6.ours.count(), t6.sqak.count());
    let ours_total: f64 = nums(&t6.ours).iter().sum();
    let sqak_total: f64 = nums(&t6.sqak).iter().sum();
    assert!(sqak_total > ours_total, "SQAK inflated: {sqak_total} vs {ours_total}");

    // T7/T8: SQAK refuses; ours answers (T8 = three pairs, one shared
    // supplier each).
    for id in ["T7", "T8"] {
        let r = row(&rows, id);
        assert!(matches!(r.sqak, EngineOutcome::Unsupported(_)), "{id}: {:?}", r.sqak);
        assert!(r.ours.count().unwrap_or(0) > 0, "{id}");
    }
    assert_eq!(nums(&row(&rows, "T8").ours), vec![1.0, 1.0, 1.0]);
    assert_eq!(row(&rows, "T7").ours.count(), Some(5), "one answer per market segment");
}

#[test]
fn table6_shapes() {
    let rows = run_table6(Scale::Small);

    // A1/A2: both correct on the normalized database.
    for id in ["A1", "A2"] {
        let r = row(&rows, id);
        assert_eq!(r.ours.values(), r.sqak.values(), "{id}");
    }

    // A3: one answer per Smith (one of whom edits two proceedings);
    // SQAK returns the merged total.
    let a3 = row(&rows, "A3");
    assert_eq!(a3.ours.count(), Some(9));
    let sum: f64 = nums(&a3.ours).iter().sum();
    assert_eq!(nums(&a3.sqak), vec![sum], "merged total = smiths + 1");

    // A4: SQAK's single date is the max of ours, the planted 2011-06-13.
    let a4 = row(&rows, "A4");
    assert_eq!(a4.sqak.count(), Some(1));
    assert_eq!(a4.sqak.values()[0], "2011-06-13");
    assert_eq!(a4.ours.values().iter().max().unwrap(), "2011-06-13");
    assert_eq!(a4.ours.count(), Some(6), "one latest date per Gill");

    // A5: ours one count per paper [2,2,2,2,2,6]; SQAK merges papers
    // sharing a title into [2,4,4,6].
    let a5 = row(&rows, "A5");
    assert_eq!(nums(&a5.ours), vec![2.0, 2.0, 2.0, 2.0, 2.0, 6.0]);
    assert_eq!(nums(&a5.sqak), vec![2.0, 4.0, 4.0, 6.0]);

    // A6/A7/A8: SQAK refuses; ours answers.
    for id in ["A6", "A7", "A8"] {
        let r = row(&rows, id);
        assert!(matches!(r.sqak, EngineOutcome::Unsupported(_)), "{id}: {:?}", r.sqak);
        assert!(r.ours.count().unwrap_or(0) > 0, "{id}");
    }
    // A7: the planted co-paper counts include the [1, 32, 8] head.
    let a7 = nums(&row(&rows, "A7").ours);
    for planted in [1.0, 8.0, 32.0] {
        assert!(a7.contains(&planted), "{a7:?}");
    }
    // A8: two (SIGIR, CIKM) pairs, one shared editor each.
    assert_eq!(nums(&row(&rows, "A8").ours), vec![1.0, 1.0]);
}

/// Tables 8 and 9's central claim: the semantic engine's answers are
/// *unchanged* by denormalization, while SQAK additionally corrupts the
/// queries it used to get right (T1/T2 via duplicated order rows, A1/A2
/// via duplicated proceedings/papers).
#[test]
fn tables_8_and_9_shapes() {
    let t5 = run_table5(Scale::Small);
    let t8 = run_table8(Scale::Small);
    for id in ["T2", "T3", "T4", "T5", "T6", "T8"] {
        assert_eq!(
            row(&t5, id).ours.values(),
            row(&t8, id).ours.values(),
            "{id}: ours invariant under denormalization"
        );
    }
    // T1 is a float average; execution order differs, so compare loosely.
    let (a, b) = (nums(&row(&t5, "T1").ours)[0], nums(&row(&t8, "T1").ours)[0]);
    assert!((a - b).abs() / a < 1e-9, "{a} vs {b}");

    // SQAK's T1 average is corrupted by duplicated order rows, and its T2
    // max-count is inflated.
    let sqak_t1_norm = nums(&row(&t5, "T1").sqak)[0];
    let sqak_t1_denorm = nums(&row(&t8, "T1").sqak)[0];
    assert!((sqak_t1_norm - sqak_t1_denorm).abs() > 1.0, "duplicates shift the average");
    assert!(nums(&row(&t8, "T2").sqak)[0] > nums(&row(&t5, "T2").sqak)[0]);

    let t6 = run_table6(Scale::Small);
    let t9 = run_table9(Scale::Small);
    for id in ["A2", "A3", "A4", "A5", "A6", "A7", "A8"] {
        assert_eq!(
            row(&t6, id).ours.values(),
            row(&t9, id).ours.values(),
            "{id}: ours invariant under denormalization"
        );
    }
    // SQAK's A1 average and A2 counts are corrupted by duplication.
    assert!(
        (nums(&row(&t6, "A1").sqak)[0] - nums(&row(&t9, "A1").sqak)[0]).abs() > 1.0,
        "A1 corrupted"
    );
    let a2_norm: f64 = nums(&row(&t6, "A2").sqak).iter().sum();
    let a2_denorm: f64 = nums(&row(&t9, "A2").sqak).iter().sum();
    assert!(a2_denorm > a2_norm, "A2 inflated: {a2_denorm} vs {a2_norm}");
}
