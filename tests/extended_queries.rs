//! Queries beyond the paper's T/A workloads, exercising corners the
//! evaluation section never reaches: multiple GROUPBYs, double-nested
//! aggregates, metadata-only queries, MIN/MAX over attributes, quoted
//! operator words, and error paths.

use aqks::core::{CoreError, Engine};
use aqks::datasets::{generate_acmdl, generate_tpch, university, AcmdlConfig, TpchConfig};
use aqks::relational::Value;

fn tpch() -> Engine {
    Engine::new(generate_tpch(&TpchConfig::small())).unwrap()
}

fn acmdl() -> Engine {
    Engine::new(generate_acmdl(&AcmdlConfig::small())).unwrap()
}

/// Two GROUPBYs: lineitems per (part, supplier) pair — grouping
/// attributes from two different nodes.
#[test]
fn two_groupbys() {
    let answers = tpch().answer("COUNT Lineitem GROUPBY part GROUPBY supplier", 1).unwrap();
    let a = &answers[0];
    assert_eq!(a.sql.group_by.len(), 2, "{}", a.sql_text);
    assert!(a.result.len() > 10, "{}", a.result.len());
    // Every count is >= 1.
    for row in &a.result.rows {
        assert!(matches!(row.last().unwrap(), Value::Int(n) if *n >= 1));
    }
}

/// Double nesting: MAX of AVG of COUNT.
#[test]
fn double_nested_aggregate() {
    let answers = acmdl().answer("MAX AVG COUNT paper GROUPBY proceeding", 1).unwrap();
    let a = &answers[0];
    // MAX(AVG(COUNT(..))) — AVG over one series yields a scalar; MAX of a
    // scalar is the scalar. Verify the nesting structure itself.
    assert!(a.sql_text.contains("AVG(R.numpaperid)"), "{}", a.sql_text);
    assert!(a.sql_text.contains("MAX(R.avgnumpaperid)"), "{}", a.sql_text);
    assert_eq!(a.result.len(), 1);
}

/// MIN over an attribute reached through a merged metadata node.
#[test]
fn min_attribute() {
    let answers = tpch().answer("part MIN retailprice", 1).unwrap();
    let a = &answers[0];
    assert!(a.sql_text.contains("MIN(P.retailprice)"), "{}", a.sql_text);
    assert_eq!(a.result.len(), 1);
}

/// A value term that matches metadata of nothing and values of exactly
/// one column still aggregates correctly across a 2-hop join.
#[test]
fn aggregate_with_region_condition() {
    let answers = tpch().answer("ASIA COUNT nation", 1).unwrap();
    let a = &answers[0];
    assert_eq!(a.result.rows[0].last().unwrap(), &Value::Int(5), "{}", a.sql_text);
}

/// Quoting turns an operator word into a basic term: "count" as a value
/// keyword matches nothing in the university database.
#[test]
fn quoted_operator_is_searched_literally() {
    let err =
        Engine::new(university::normalized()).unwrap().answer(r#""count" Student"#, 1).unwrap_err();
    assert!(matches!(err, CoreError::NoMatch(_)));
}

/// GROUPBY without any aggregate still produces a grouped projection.
#[test]
fn groupby_without_aggregate() {
    let answers = tpch().answer("GROUPBY mktsegment customer", 2).unwrap();
    let a = &answers[0];
    assert_eq!(a.result.len(), 5, "five market segments: {}", a.sql_text);
}

/// Several error paths surface as typed errors, not panics.
#[test]
fn error_paths() {
    let engine = tpch();
    assert!(matches!(
        engine.answer("SUM zebra", 1),
        Err(CoreError::BadOperand(_) | CoreError::NoMatch(_))
    ));
    assert!(matches!(engine.answer("", 1), Err(CoreError::Parse(_))));
    assert!(matches!(engine.answer("COUNT", 1), Err(CoreError::Parse(_))));
    // SUM over a text attribute parses and translates; execution yields
    // NULL (no numeric values) rather than an error.
    let r = engine.answer("SUM priority order", 1);
    if let Ok(answers) = r {
        assert!(answers[0].result.rows[0].last().unwrap().is_null());
    }
}

/// Interpretations beyond the first are still valid SQL over the data.
#[test]
fn top_k_interpretations_all_execute() {
    let engine = acmdl();
    let answers = engine.answer("COUNT paper Smith", 5).unwrap();
    assert!(!answers.is_empty());
    for a in &answers {
        // Executed without error; shape sanity only.
        assert!(!a.result.columns.is_empty());
    }
}

/// MAX over dates through two mixed hops (paper -> proceeding ->
/// publisher path but grouped by acronym attribute).
#[test]
fn max_date_groupby_acronym() {
    let answers = acmdl().answer("paper MAX date GROUPBY acronym", 1).unwrap();
    let a = &answers[0];
    assert!(a.result.len() >= 4, "several acronyms: {}", a.result);
    let idx = a.result.column_index("maxdate").unwrap_or(a.result.columns.len() - 1);
    for row in &a.result.rows {
        assert!(matches!(row[idx], Value::Date(_)), "{row:?}");
    }
}

/// Multi-source reconstruction on the denormalized TPCH': the merged
/// Nation' relation has `nname` only in the identity `Nation` source and
/// `regionkey` only in the `Customer`/`Ordering` projections, so a query
/// needing both joins two sources on the derived key. We pick a nation
/// that actually has customers (denormalization is lossy: a nation's
/// region is only reconstructible from rows that record it).
#[test]
fn multi_source_subquery_join() {
    use aqks::datasets::{denormalize_tpch, generate_tpch, TpchConfig};
    let base = generate_tpch(&TpchConfig::small());
    let prime = denormalize_tpch(&base);

    // Find a nation name with at least one customer.
    let customers = prime.table("Customer").unwrap();
    let nations = prime.table("Nation").unwrap();
    let nk = customers.rows()[0][customers.schema.attr_index("nationkey").unwrap()].clone();
    let nname = nations.rows().iter().find(|r| r[0] == nk).map(|r| r[1].to_string()).unwrap();

    let engine = Engine::new(prime).unwrap();
    let q = format!("{nname} COUNT region");
    let answers = engine.answer(&q, 1).unwrap();
    let a = &answers[0];
    assert!(
        a.sql_text.matches("SELECT").count() >= 3,
        "multi-source subquery expected: {}",
        a.sql_text
    );
    assert_eq!(
        a.result.rows[0].last().unwrap(),
        &Value::Int(1),
        "{q}: every nation belongs to exactly one region\n{}",
        a.sql_text
    );
}
