//! SQAK's query pipeline: resolve terms to relations, grow the SQN,
//! translate naively.

use aqks_core::{KeywordQuery, Operator, Term};
use aqks_relational::{Database, DatabaseSchema, MatchIndex};
use aqks_sqlgen::{
    execute, AggFunc, ColumnRef, Predicate, ResultTable, SelectItem, SelectStatement, TableExpr,
};

use crate::graph::SchemaGraph;

/// SQAK failure modes. `Unsupported` covers the restrictions the paper
/// reports as "N.A." in Tables 5/6/8/9.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqakError {
    /// Query text failed to parse.
    Parse(String),
    /// A term matched nothing.
    NoMatch(String),
    /// Query needs a capability SQAK lacks (second aggregate, self join,
    /// aggregate over a tuple value, disconnected SQN).
    Unsupported(String),
}

impl std::fmt::Display for SqakError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqakError::Parse(m) => write!(f, "parse error: {m}"),
            SqakError::NoMatch(t) => write!(f, "term `{t}` matches nothing"),
            SqakError::Unsupported(m) => write!(f, "unsupported by SQAK: {m}"),
        }
    }
}

impl std::error::Error for SqakError {}

/// A generated SQAK statement.
#[derive(Debug, Clone)]
pub struct SqakSql {
    /// The statement.
    pub sql: SelectStatement,
    /// Rendered text.
    pub sql_text: String,
}

#[derive(Debug, Clone)]
enum Resolved {
    /// Term named the relation.
    Relation,
    /// Term named an attribute (canonical name).
    Attribute(String),
    /// Term occurred in tuple values of an attribute.
    Value(String),
}

/// The SQAK engine.
pub struct Sqak {
    db: Database,
    schema: DatabaseSchema,
    graph: SchemaGraph,
    index: MatchIndex,
}

impl Sqak {
    /// Builds the engine (schema graph + value index).
    pub fn new(db: Database) -> Sqak {
        let schema = db.schema();
        let graph = SchemaGraph::build(&schema);
        let index = MatchIndex::build(&db);
        Sqak { db, schema, graph, index }
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Generates SQAK's SQL for the query (what Figure 11 times).
    pub fn generate(&self, query: &str) -> Result<SqakSql, SqakError> {
        let query = KeywordQuery::parse(query).map_err(|e| SqakError::Parse(e.to_string()))?;

        // SQAK restriction: exactly one aggregate in the SELECT clause.
        // (An aggregate whose operand is another aggregate nests instead.)
        let node_aggs: Vec<usize> = query
            .terms
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                matches!(t, Term::Op(Operator::Agg(_)))
                    && matches!(query.terms.get(i + 1), Some(Term::Basic(_)))
            })
            .map(|(i, _)| i)
            .collect();
        if node_aggs.len() > 1 {
            return Err(SqakError::Unsupported(
                "more than one aggregate function in the SELECT clause".into(),
            ));
        }

        // Resolve basic terms to (relation, kind).
        let mut resolved: Vec<Option<(usize, Resolved)>> = vec![None; query.terms.len()];
        for (i, text) in query.basic_terms() {
            resolved[i] = Some(self.resolve(text)?);
        }

        // SQAK restriction: no self joins — two value conditions landing
        // in the same relation cannot be told apart.
        let value_rels: Vec<usize> = resolved
            .iter()
            .flatten()
            .filter(|(_, k)| matches!(k, Resolved::Value(_)))
            .map(|(r, _)| *r)
            .collect();
        for (i, &r) in value_rels.iter().enumerate() {
            if value_rels[..i].contains(&r) {
                return Err(SqakError::Unsupported(format!(
                    "two terms match tuples of relation `{}` (self join required)",
                    self.graph.relations[r]
                )));
            }
        }

        // Simple query network over all matched relations.
        let required: Vec<usize> = resolved.iter().flatten().map(|(r, _)| *r).collect();
        let (rels, used_edges) = self
            .graph
            .simple_query_network(&required)
            .ok_or_else(|| SqakError::Unsupported("matched relations are not connected".into()))?;

        // Aliases: first letter, numbered within collisions.
        let aliases = assign_aliases(&rels, &self.graph);
        let alias_of =
            |rel: usize| -> &str { &aliases[rels.iter().position(|&r| r == rel).expect("in SQN")] };

        let mut stmt = SelectStatement::new();
        for (k, &r) in rels.iter().enumerate() {
            stmt.from.push(TableExpr::Relation {
                name: self.graph.relations[r].clone(),
                alias: aliases[k].clone(),
            });
        }
        for &ei in &used_edges {
            let e = &self.graph.edges[ei];
            for (a, b) in e.from_attrs.iter().zip(&e.to_attrs) {
                stmt.predicates.push(Predicate::JoinEq(
                    ColumnRef::new(alias_of(e.from), a.clone()),
                    ColumnRef::new(alias_of(e.to), b.clone()),
                ));
            }
        }

        // Value conditions: WHERE + SELECT + GROUP BY on the matched
        // attribute — merging every object that shares the value.
        let mut group_cols: Vec<ColumnRef> = Vec::new();
        for (i, term) in query.terms.iter().enumerate() {
            let (Some((r, Resolved::Value(attr))), Some(text)) = (&resolved[i], term.as_basic())
            else {
                continue;
            };
            let c = ColumnRef::new(alias_of(*r), attr.clone());
            stmt.predicates.push(Predicate::Contains(c.clone(), text.to_string()));
            if !group_cols.contains(&c) {
                group_cols.push(c);
            }
        }

        // Explicit GROUPBY operands.
        for (i, term) in query.terms.iter().enumerate() {
            if !matches!(term, Term::Op(Operator::GroupBy)) {
                continue;
            }
            let Some((r, kind)) = &resolved[i + 1] else { continue };
            let operand_text = query.terms[i + 1].as_basic().unwrap_or_default();
            let attrs: Vec<String> = match kind {
                Resolved::Relation => self.relation_operand_attrs(*r, operand_text),
                Resolved::Attribute(a) => vec![a.clone()],
                Resolved::Value(_) => {
                    return Err(SqakError::Unsupported(
                        "GROUPBY operand matches tuple values".into(),
                    ))
                }
            };
            for a in attrs {
                let c = ColumnRef::new(alias_of(*r), a);
                if !group_cols.contains(&c) {
                    group_cols.push(c);
                }
            }
        }

        for c in &group_cols {
            stmt.items.push(SelectItem::Column { col: c.clone(), alias: None });
            stmt.group_by.push(c.clone());
        }

        // The single aggregate.
        let mut inner_agg_alias: Option<String> = None;
        if let Some(&op_i) = node_aggs.first() {
            let Term::Op(Operator::Agg(func)) = query.terms[op_i] else { unreachable!() };
            let Some((r, kind)) = &resolved[op_i + 1] else { unreachable!("validated") };
            let operand_text = query.terms[op_i + 1].as_basic().unwrap_or_default();
            let attr = match kind {
                Resolved::Attribute(a) => a.clone(),
                Resolved::Relation => {
                    self.relation_operand_attrs(*r, operand_text).first().cloned().ok_or_else(
                        || SqakError::Unsupported("aggregated relation has no key".into()),
                    )?
                }
                Resolved::Value(_) => {
                    return Err(SqakError::Unsupported(
                        "aggregate operand matches tuple values".into(),
                    ))
                }
            };
            let alias = format!("{}{}", func.alias_prefix(), attr);
            inner_agg_alias = Some(alias.clone());
            stmt.items.push(SelectItem::Aggregate {
                func,
                arg: ColumnRef::new(alias_of(*r), attr),
                distinct: false,
                alias,
            });
        }

        if stmt.items.is_empty() {
            return Err(SqakError::Unsupported("no aggregate and no conditions".into()));
        }

        // Nested aggregates (MAX COUNT ... — SQAK supports the chain).
        let nested: Vec<AggFunc> = query
            .terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t {
                Term::Op(Operator::Agg(f))
                    if matches!(query.terms.get(i + 1), Some(Term::Op(_))) =>
                {
                    Some(*f)
                }
                _ => None,
            })
            .collect();
        let mut out = stmt;
        for func in nested.iter().rev() {
            let inner_alias = inner_agg_alias.clone().ok_or_else(|| {
                SqakError::Unsupported("nested aggregate without inner aggregate".into())
            })?;
            let alias = format!("{}{}", func.alias_prefix(), inner_alias);
            out = SelectStatement {
                distinct: false,
                items: vec![SelectItem::Aggregate {
                    func: *func,
                    arg: ColumnRef::new("R", inner_alias.clone()),
                    distinct: false,
                    alias: alias.clone(),
                }],
                from: vec![TableExpr::Derived { query: Box::new(out), alias: "R".into() }],
                predicates: vec![],
                group_by: vec![],
                ..Default::default()
            };
            inner_agg_alias = Some(alias);
        }

        let sql_text = out.to_string();
        Ok(SqakSql { sql: out, sql_text })
    }

    /// Generates and executes.
    pub fn answer(&self, query: &str) -> Result<ResultTable, SqakError> {
        let g = self.generate(query)?;
        execute(&g.sql, &self.db)
            .map(ResultTable::sorted)
            .map_err(|e| SqakError::Unsupported(format!("execution failed: {e}")))
    }

    /// Resolves a term, in priority order: relation name (exact, then
    /// containment) > attribute name (exact, then containment) > tuple
    /// value, relations in schema order. A term matching the majority of
    /// a column's values (dbgen's `Supplier#000000001` names make
    /// "supplier" match *every* sname) degrades to a plain attribute
    /// match: the condition would be vacuous.
    fn resolve(&self, term: &str) -> Result<(usize, Resolved), SqakError> {
        if let Some(r) = self.graph.relation_by_name(term) {
            return Ok((r, Resolved::Relation));
        }
        for (ri, rel) in self.schema.relations.iter().enumerate() {
            if let Some(attr) = rel.canonical_attr(term) {
                return Ok((ri, Resolved::Attribute(attr.to_string())));
            }
        }
        let lower = term.to_lowercase();
        for (ri, rel) in self.schema.relations.iter().enumerate() {
            if let Some(attr) = rel.attr_names().find(|a| a.to_lowercase().contains(&lower)) {
                return Ok((ri, Resolved::Attribute(attr.to_string())));
            }
        }
        let hits = self
            .index
            .match_value_rows(&self.db, term)
            .map_err(|e| SqakError::Unsupported(format!("index probe failed: {e}")))?;
        let best = hits
            .into_iter()
            .filter_map(|(relation, attribute, rows)| {
                self.schema.relation_index(&relation).map(|ri| (ri, attribute, rows.len()))
            })
            .min_by_key(|(ri, attr, _)| (*ri, attr.clone()));
        match best {
            Some((ri, attr, matched)) => {
                let total = self.db.table(&self.graph.relations[ri]).map(|t| t.len()).unwrap_or(0);
                if total >= 10 && matched * 10 >= total * 9 {
                    Ok((ri, Resolved::Attribute(attr)))
                } else {
                    Ok((ri, Resolved::Value(attr)))
                }
            }
            None => Err(SqakError::NoMatch(term.to_string())),
        }
    }

    /// For an operand that matched a relation by containment, SQAK binds
    /// the operator to the primary-key attribute sharing the longest
    /// common prefix (≥ 4) with the term — "proceeding" binds to
    /// `procid` of EditorProceeding, not to the whole compound key.
    fn relation_operand_attrs(&self, rel_idx: usize, term: &str) -> Vec<String> {
        let Some(schema) = self.schema.relation(&self.graph.relations[rel_idx]) else {
            return Vec::new();
        };
        let lower = term.to_lowercase();
        let prefix_len = |a: &str| {
            a.to_lowercase().chars().zip(lower.chars()).take_while(|(x, y)| x == y).count()
        };
        if let Some(best) = schema
            .primary_key
            .iter()
            .map(|k| (prefix_len(k), k))
            .filter(|(l, _)| *l >= 4)
            .max_by_key(|(l, _)| *l)
            .map(|(_, k)| k.clone())
        {
            return vec![best];
        }
        schema.primary_key.clone()
    }
}

/// First-letter aliases, numbered within collisions.
fn assign_aliases(rels: &[usize], graph: &SchemaGraph) -> Vec<String> {
    let initial = |s: &str| -> char {
        s.chars().find(|c| c.is_ascii_alphabetic()).unwrap_or('X').to_ascii_uppercase()
    };
    let mut counts = std::collections::HashMap::new();
    for &r in rels {
        *counts.entry(initial(&graph.relations[r])).or_insert(0usize) += 1;
    }
    let mut seen = std::collections::HashMap::new();
    rels.iter()
        .map(|&r| {
            let c = initial(&graph.relations[r]);
            let k = seen.entry(c).or_insert(0usize);
            *k += 1;
            if counts[&c] == 1 {
                c.to_string()
            } else {
                format!("{c}{k}")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqks_datasets::university;
    use aqks_relational::Value;

    fn sqak() -> Sqak {
        Sqak::new(university::normalized())
    }

    /// Q1: SQAK merges the two Greens into one answer of 13 — the paper's
    /// opening example of an incorrect aggregate.
    #[test]
    fn q1_merges_greens() {
        let r = sqak().answer("Green SUM Credit").unwrap();
        assert_eq!(r.len(), 1, "{r}");
        assert_eq!(r.rows[0].last().unwrap(), &Value::Float(13.0));
    }

    /// Q2: SQAK counts textbook b1 twice for Java (no FK dedup): 35.
    #[test]
    fn q2_overcounts_textbooks() {
        let r = sqak().answer("Java SUM Price").unwrap();
        assert_eq!(r.rows[0].last().unwrap(), &Value::Int(35), "{r}");
    }

    /// Q3 on Figure 2: SQAK joins the duplicated Lecturer rows and counts
    /// the CS department twice.
    #[test]
    fn q3_counts_duplicated_departments() {
        let sqak = Sqak::new(university::unnormalized_fig2());
        let r = sqak.answer("Engineering COUNT Department").unwrap();
        assert_eq!(r.rows[0].last().unwrap(), &Value::Int(2), "{r}");
    }

    /// The paper's first SQL listing: Q1's statement shape.
    #[test]
    fn q1_sql_shape() {
        let g = sqak().generate("Green SUM Credit").unwrap();
        assert!(g.sql_text.contains("SUM(C.Credit)"), "{}", g.sql_text);
        assert!(g.sql_text.contains("GROUP BY S.Sname"), "{}", g.sql_text);
        assert!(!g.sql_text.contains("DISTINCT"), "{}", g.sql_text);
    }

    #[test]
    fn two_aggregates_unsupported() {
        let err = sqak().generate("COUNT Student SUM Credit").unwrap_err();
        assert!(matches!(err, SqakError::Unsupported(_)));
    }

    #[test]
    fn self_join_unsupported() {
        let err = sqak().generate("COUNT Course Green George").unwrap_err();
        assert!(matches!(&err, SqakError::Unsupported(m) if m.contains("self join")), "{err:?}");
    }

    #[test]
    fn nested_aggregate_supported() {
        let s = sqak();
        let r = s.answer("MAX COUNT Student GROUPBY Course").unwrap();
        // c1 has 3 students, the maximum.
        assert_eq!(r.scalar(), Some(&Value::Int(3)), "{r}");
    }

    #[test]
    fn no_match_is_reported() {
        assert!(matches!(sqak().generate("zebra COUNT Course"), Err(SqakError::NoMatch(_))));
    }

    /// A3's failure mode, mechanically: SQAK groups by the matched
    /// attribute (lname), merging every editor named Smith.
    #[test]
    fn a3_groups_by_lname() {
        let db = aqks_datasets::generate_acmdl(&aqks_datasets::AcmdlConfig::small());
        let s = Sqak::new(db);
        let g = s.generate("COUNT proceeding editor Smith").unwrap();
        assert!(g.sql_text.contains("GROUP BY E2.lname"), "{}", g.sql_text);
        let r = s.answer("COUNT proceeding editor Smith").unwrap();
        assert_eq!(r.len(), 1, "{r}");
        // 9 Smiths, one of whom edits two proceedings.
        assert_eq!(r.rows[0].last().unwrap(), &Value::Int(10));
    }

    /// A5's failure mode: grouping by ptitle merges papers sharing a
    /// title into [2, 4, 4, 6].
    #[test]
    fn a5_merges_same_titles() {
        let db = aqks_datasets::generate_acmdl(&aqks_datasets::AcmdlConfig::small());
        let s = Sqak::new(db);
        let r = s.answer(r#"COUNT author "database tuning""#).unwrap();
        let mut counts: Vec<i64> = r
            .rows
            .iter()
            .map(|row| match row.last().unwrap() {
                Value::Int(n) => *n,
                other => panic!("{other:?}"),
            })
            .collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![2, 4, 4, 6]);
    }

    /// Containment matching lets "order" reach "Ordering" — exercised for
    /// real in the unnormalized TPCH' experiments.
    #[test]
    fn relation_containment_resolution() {
        let db = aqks_datasets::denorm::denormalize_tpch(&aqks_datasets::generate_tpch(
            &aqks_datasets::TpchConfig::small(),
        ));
        let s = Sqak::new(db);
        let g = s.generate("order AVG amount").unwrap();
        assert!(g.sql_text.contains("Ordering"), "{}", g.sql_text);
    }
}
