//! A tour of the running example: the ORM schema graph of Figure 3, the
//! intro's three problem queries (Q1, Q2, Q3), explicit GROUPBY, and the
//! nested aggregate of Example 7 — all on the Figure 1 database.
//!
//! ```text
//! cargo run --example university_tour
//! ```

use aqks::core::Engine;
use aqks::datasets::university;
use aqks::orm::OrmGraph;

fn show(engine: &Engine, query: &str, note: &str) {
    println!("== {query}   ({note})");
    match engine.answer(query, 1) {
        Ok(answers) => {
            let a = &answers[0];
            println!("pattern: {}", a.pattern_description);
            println!("{}\n{}", a.sql_text, a.result);
        }
        Err(e) => println!("error: {e}\n"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = university::normalized();

    println!("### ORM schema graph (Figure 3)\n");
    let graph = OrmGraph::build(&db.schema())?;
    println!("{}", graph.describe());

    let engine = Engine::new(db)?;

    show(&engine, "Green SUM Credit", "Q1: one total per student named Green");
    show(&engine, "Java SUM Price", "Q2: textbooks deduplicated across lecturers -> 25");
    show(&engine, "COUNT Student GROUPBY Course", "Section 2's constraint example");
    show(&engine, "COUNT Lecturer GROUPBY Course", "Q5 / Example 6: DISTINCT Teach projection");
    show(&engine, "AVG COUNT Lecturer GROUPBY Course", "Example 7: nested aggregate");
    show(&engine, "Green George COUNT Code", "Q4 / Example 5: self-join of students");

    // Q3 runs on the *denormalized* Figure 2 database.
    println!("### Figure 2 (denormalized) ###\n");
    let engine2 = Engine::new(university::unnormalized_fig2())?;
    assert!(engine2.is_unnormalized());
    show(
        &engine2,
        "Engineering COUNT Department",
        "Q3: 1 department, despite duplicated Lecturer rows",
    );
    Ok(())
}
