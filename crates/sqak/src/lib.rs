#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]
//! # aqks-sqak
//!
//! A reimplementation of **SQAK** (Tata & Lohman, *"SQAK: doing more with
//! keywords"*, SIGMOD 2008) — the baseline the paper compares against.
//!
//! SQAK models the database as a *schema graph* whose nodes are relations
//! and whose edges are foreign-key references; it has no notion of
//! objects, relationships, or ORA semantics. A query's terms match
//! relations (by name, attribute name, or tuple value); a minimal
//! connected subgraph containing the matched relations — a *simple query
//! network* (SQN) — is translated into a single-aggregate SQL statement
//! that groups by the matched attribute values.
//!
//! The paper (Section 1, Section 6) identifies exactly the behaviours
//! this baseline must reproduce, and this crate reproduces them
//! mechanically rather than approximately:
//!
//! * objects sharing an attribute value are **merged** (grouping is by
//!   the matched attribute, never by object id) — Q1/T3/T4/A3/A4/A5;
//! * duplicate objects in n-ary relationships are **counted repeatedly**
//!   (no DISTINCT foreign-key projection) — Q2/T5/T6;
//! * unnormalized relations are taken at face value, so duplicated rows
//!   corrupt the aggregates — Q3 and Tables 8/9;
//! * at most **one aggregate** per statement (T7/A6 → unsupported) and
//!   **no self-joins** (T8/A7/A8 → unsupported).
//!
//! Relation-name matching is by containment (`order` matches `Ordering`),
//! which is how SQAK still answers T1-T6 on the denormalized TPCH′ schema.

pub mod engine;
pub mod graph;

pub use engine::{Sqak, SqakError, SqakSql};
pub use graph::SchemaGraph;
