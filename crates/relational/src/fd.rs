//! Functional-dependency theory.
//!
//! Section 4 of the paper decides whether a relation is in 3NF by
//! "examining the functional dependencies that hold on the relations", and
//! Algorithm 1 (NormalizeDB) decomposes non-3NF relations into 3NF. This
//! module supplies the classical machinery that requires: attribute
//! closures, candidate-key enumeration, prime attributes, 2NF/3NF tests,
//! minimal covers, and Bernstein-style 3NF synthesis.
//!
//! Attribute sets are `BTreeSet<String>` so all derived artifacts are
//! deterministic (important for reproducible SQL generation).

use std::collections::BTreeSet;

/// An attribute set.
pub type Attrs = BTreeSet<String>;

/// A functional dependency `lhs -> rhs`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fd {
    /// Determinant attributes.
    pub lhs: Attrs,
    /// Determined attributes.
    pub rhs: Attrs,
}

impl Fd {
    /// Creates an FD from any iterables of attribute names.
    pub fn new<I, J, S, T>(lhs: I, rhs: J) -> Self
    where
        I: IntoIterator<Item = S>,
        J: IntoIterator<Item = T>,
        S: Into<String>,
        T: Into<String>,
    {
        Fd {
            lhs: lhs.into_iter().map(Into::into).collect(),
            rhs: rhs.into_iter().map(Into::into).collect(),
        }
    }
}

impl std::fmt::Display for Fd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let l: Vec<&str> = self.lhs.iter().map(String::as_str).collect();
        let r: Vec<&str> = self.rhs.iter().map(String::as_str).collect();
        write!(f, "{} -> {}", l.join(","), r.join(","))
    }
}

/// A set of FDs over a fixed attribute universe.
#[derive(Debug, Clone, Default)]
pub struct FdSet {
    /// The attribute universe (all attributes of the relation).
    pub attrs: Attrs,
    /// The declared dependencies.
    pub fds: Vec<Fd>,
}

impl FdSet {
    /// Creates an FD set over the given attribute universe.
    pub fn new<I, S>(attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        FdSet { attrs: attrs.into_iter().map(Into::into).collect(), fds: Vec::new() }
    }

    /// Adds a dependency.
    pub fn add(&mut self, fd: Fd) {
        self.fds.push(fd);
    }

    /// Computes the attribute closure `X+` under this FD set.
    pub fn closure(&self, start: Attrs) -> Attrs {
        let mut closure = start;
        let mut changed = true;
        while changed {
            changed = false;
            for fd in &self.fds {
                if fd.lhs.is_subset(&closure) && !fd.rhs.is_subset(&closure) {
                    closure.extend(fd.rhs.iter().cloned());
                    changed = true;
                }
            }
        }
        closure
    }

    /// True if `lhs -> rhs` is implied by this FD set (Armstrong closure).
    pub fn implies(&self, lhs: &Attrs, rhs: &Attrs) -> bool {
        rhs.is_subset(&self.closure(lhs.clone()))
    }

    /// True if `key` determines every attribute (is a superkey).
    pub fn is_superkey(&self, key: &Attrs) -> bool {
        self.attrs.is_subset(&self.closure(key.clone()))
    }

    /// All candidate (minimal) keys, deterministically ordered.
    ///
    /// Uses the standard seed-and-extend search: attributes that appear on
    /// no RHS must be in every key; the search then grows the seed with
    /// subsets of the remaining "useful" attributes in increasing size,
    /// pruning supersets of found keys. Relations in this system have few
    /// attributes (TPC-H's widest has 16), so this is fast in practice.
    pub fn candidate_keys(&self) -> Vec<Attrs> {
        // Attributes never on any RHS must be part of every key.
        let in_rhs: Attrs = self.fds.iter().flat_map(|fd| fd.rhs.iter().cloned()).collect();
        let seed: Attrs = self.attrs.difference(&in_rhs).cloned().collect();

        if self.is_superkey(&seed) {
            return vec![seed];
        }

        // Candidates to add: attributes appearing on some LHS (adding a
        // RHS-only attribute never helps minimality).
        let in_lhs: Attrs = self.fds.iter().flat_map(|fd| fd.lhs.iter().cloned()).collect();
        let pool: Vec<String> = in_lhs.difference(&seed).cloned().collect();

        let mut keys: Vec<Attrs> = Vec::new();
        // Breadth-first by subset size guarantees minimality with the
        // superset-pruning check below.
        for size in 1..=pool.len() {
            for combo in combinations(&pool, size) {
                let mut cand = seed.clone();
                cand.extend(combo.iter().cloned());
                if keys.iter().any(|k| k.is_subset(&cand)) {
                    continue;
                }
                if self.is_superkey(&cand) {
                    keys.push(cand);
                }
            }
        }
        if keys.is_empty() {
            // No FDs constrain the relation: the whole heading is the key.
            keys.push(self.attrs.clone());
        }
        keys.sort();
        keys
    }

    /// Attributes that belong to at least one candidate key.
    pub fn prime_attributes(&self) -> Attrs {
        self.candidate_keys().into_iter().flatten().collect()
    }

    /// 2NF test: no non-prime attribute is partially dependent on a
    /// candidate key, i.e. no proper subset of a candidate key determines
    /// a non-prime attribute outside that subset.
    pub fn is_2nf(&self) -> bool {
        let keys = self.candidate_keys();
        let prime = self.prime_attributes();
        for key in &keys {
            if key.len() <= 1 {
                continue;
            }
            let key_vec: Vec<String> = key.iter().cloned().collect();
            for size in 1..key.len() {
                for part in combinations(&key_vec, size) {
                    let part: Attrs = part.into_iter().collect();
                    let closure = self.closure(part.clone());
                    let has_partial =
                        closure.iter().any(|a| !prime.contains(a) && !part.contains(a));
                    if has_partial {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// 3NF test: for every non-trivial FD `X -> a` implied by the set
    /// (checked over the declared FDs, which is sufficient for a violation
    /// witness), either `X` is a superkey or `a` is prime.
    pub fn is_3nf(&self) -> bool {
        let prime = self.prime_attributes();
        for fd in &self.fds {
            if self.is_superkey(&fd.lhs) {
                continue;
            }
            for a in fd.rhs.difference(&fd.lhs) {
                if !prime.contains(a) {
                    return false;
                }
            }
        }
        true
    }

    /// Computes a minimal (canonical) cover: singleton RHSs, no extraneous
    /// LHS attributes, no redundant FDs; then regroups by LHS.
    pub fn minimal_cover(&self) -> Vec<Fd> {
        // 1. Singleton right-hand sides, dropping trivial FDs.
        let mut fds: Vec<Fd> = Vec::new();
        for fd in &self.fds {
            for a in fd.rhs.difference(&fd.lhs) {
                fds.push(Fd::new(fd.lhs.iter().cloned(), [a.clone()]));
            }
        }
        fds.sort();
        fds.dedup();

        // 2. Remove extraneous LHS attributes.
        let implies = |fds: &[Fd], lhs: &Attrs, rhs: &Attrs| -> bool {
            let mut tmp = FdSet::new(self.attrs.iter().cloned());
            tmp.fds = fds.to_vec();
            tmp.implies(lhs, rhs)
        };
        for i in 0..fds.len() {
            loop {
                let mut reduced = None;
                for a in fds[i].lhs.iter() {
                    if fds[i].lhs.len() <= 1 {
                        break;
                    }
                    let mut smaller = fds[i].lhs.clone();
                    smaller.remove(a);
                    if implies(&fds, &smaller, &fds[i].rhs) {
                        reduced = Some(smaller);
                        break;
                    }
                }
                match reduced {
                    Some(smaller) => fds[i].lhs = smaller,
                    None => break,
                }
            }
        }
        fds.sort();
        fds.dedup();

        // 3. Remove redundant FDs.
        let mut i = 0;
        while i < fds.len() {
            let fd = fds[i].clone();
            let rest: Vec<Fd> =
                fds.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, f)| f.clone()).collect();
            if implies(&rest, &fd.lhs, &fd.rhs) {
                fds.remove(i);
            } else {
                i += 1;
            }
        }

        // 4. Regroup FDs sharing a LHS.
        let mut grouped: Vec<Fd> = Vec::new();
        for fd in fds {
            if let Some(g) = grouped.iter_mut().find(|g| g.lhs == fd.lhs) {
                g.rhs.extend(fd.rhs);
            } else {
                grouped.push(fd);
            }
        }
        grouped.sort();
        grouped
    }

    /// Bernstein 3NF synthesis: one relation per minimal-cover LHS group
    /// (heading = LHS ∪ RHS, key = LHS), plus a key relation if no synthesized
    /// relation contains a candidate key; subsumed relations are dropped.
    ///
    /// Returns `(heading, key)` pairs, deterministically ordered.
    pub fn synthesize_3nf(&self) -> Vec<(Attrs, Attrs)> {
        let cover = self.minimal_cover();
        let mut rels: Vec<(Attrs, Attrs)> = Vec::new();
        for fd in &cover {
            let mut heading = fd.lhs.clone();
            heading.extend(fd.rhs.iter().cloned());
            rels.push((heading, fd.lhs.clone()));
        }
        // Attributes in no FD still belong to the database: attach them to
        // a key relation below by forcing the key-relation step.
        let covered: Attrs = rels.iter().flat_map(|(h, _)| h.iter().cloned()).collect();
        let uncovered: Attrs = self.attrs.difference(&covered).cloned().collect();

        let keys = self.candidate_keys();
        let has_key_rel = rels.iter().any(|(h, _)| keys.iter().any(|k| k.is_subset(h)));
        if !has_key_rel || !uncovered.is_empty() {
            let mut heading = keys.first().cloned().unwrap_or_else(|| self.attrs.clone());
            heading.extend(uncovered.iter().cloned());
            let key = heading.clone();
            rels.push((heading, key));
        }

        // Drop relations whose heading is contained in another's.
        let mut kept: Vec<(Attrs, Attrs)> = Vec::new();
        rels.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.cmp(b)));
        for (h, k) in rels {
            if !kept.iter().any(|(kh, _)| h.is_subset(kh)) {
                kept.push((h, k));
            }
        }
        kept.sort();
        kept
    }
}

/// All `size`-element combinations of `pool`, in deterministic order.
fn combinations<T: Clone>(pool: &[T], size: usize) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..size).collect();
    if size == 0 || size > pool.len() {
        return out;
    }
    loop {
        out.push(idx.iter().map(|&i| pool[i].clone()).collect());
        // Advance the combination.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + pool.len() - size {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..size {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs<const N: usize>(names: [&str; N]) -> Attrs {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// The paper's Enrolment example (Figure 8):
    /// Sid -> Sname, Age; Code -> Title, Credit; Sid, Code -> Grade.
    fn enrolment_fds() -> FdSet {
        let mut f = FdSet::new(["Sid", "Code", "Sname", "Age", "Title", "Credit", "Grade"]);
        f.add(Fd::new(["Sid"], ["Sname", "Age"]));
        f.add(Fd::new(["Code"], ["Title", "Credit"]));
        f.add(Fd::new(["Sid", "Code"], ["Grade"]));
        f
    }

    #[test]
    fn closure_basic() {
        let f = enrolment_fds();
        let c = f.closure(attrs(["Sid"]));
        assert!(c.contains("Sname") && c.contains("Age"));
        assert!(!c.contains("Grade"));
        let c = f.closure(attrs(["Sid", "Code"]));
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn candidate_key_of_enrolment_is_sid_code() {
        let f = enrolment_fds();
        assert_eq!(f.candidate_keys(), vec![attrs(["Code", "Sid"])]);
    }

    #[test]
    fn enrolment_violates_2nf_and_3nf() {
        let f = enrolment_fds();
        assert!(!f.is_2nf());
        assert!(!f.is_3nf());
    }

    #[test]
    fn normalized_student_is_3nf() {
        let mut f = FdSet::new(["Sid", "Sname", "Age"]);
        f.add(Fd::new(["Sid"], ["Sname", "Age"]));
        assert!(f.is_2nf());
        assert!(f.is_3nf());
    }

    #[test]
    fn transitive_dependency_violates_3nf_but_not_2nf() {
        // Customer(custkey, cname, nationkey, regionkey) with
        // nationkey -> regionkey is in 2NF (key is a single attribute)
        // but not 3NF.
        let mut f = FdSet::new(["custkey", "cname", "nationkey", "regionkey"]);
        f.add(Fd::new(["custkey"], ["cname", "nationkey", "regionkey"]));
        f.add(Fd::new(["nationkey"], ["regionkey"]));
        assert!(f.is_2nf());
        assert!(!f.is_3nf());
    }

    #[test]
    fn synthesis_recovers_student_enrol_course() {
        let f = enrolment_fds();
        let rels = f.synthesize_3nf();
        let headings: Vec<Attrs> = rels.iter().map(|(h, _)| h.clone()).collect();
        assert!(headings.contains(&attrs(["Sid", "Sname", "Age"])));
        assert!(headings.contains(&attrs(["Code", "Title", "Credit"])));
        assert!(headings.contains(&attrs(["Sid", "Code", "Grade"])));
        assert_eq!(rels.len(), 3);
    }

    #[test]
    fn synthesis_adds_key_relation_when_missing() {
        // R(a, b, c): a -> b, b -> a. Candidate keys {a,c}, {b,c};
        // synthesized groups {a,b} twice; a key relation must be added.
        let mut f = FdSet::new(["a", "b", "c"]);
        f.add(Fd::new(["a"], ["b"]));
        f.add(Fd::new(["b"], ["a"]));
        let rels = f.synthesize_3nf();
        assert!(
            rels.iter().any(|(h, _)| f.candidate_keys().iter().any(|k| k.is_subset(h))),
            "one synthesized relation must contain a candidate key: {rels:?}"
        );
    }

    #[test]
    fn minimal_cover_removes_redundancy() {
        let mut f = FdSet::new(["a", "b", "c"]);
        f.add(Fd::new(["a"], ["b"]));
        f.add(Fd::new(["b"], ["c"]));
        f.add(Fd::new(["a"], ["c"])); // redundant (transitively implied)
        let cover = f.minimal_cover();
        assert_eq!(cover.len(), 2);
        assert!(cover.iter().all(|fd| !(fd.lhs == attrs(["a"]) && fd.rhs.contains("c"))));
    }

    #[test]
    fn minimal_cover_trims_extraneous_lhs() {
        let mut f = FdSet::new(["a", "b", "c"]);
        f.add(Fd::new(["a"], ["b"]));
        f.add(Fd::new(["a", "b"], ["c"])); // b extraneous
        let cover = f.minimal_cover();
        assert!(cover.iter().any(|fd| fd.lhs == attrs(["a"]) && fd.rhs.contains("c")));
    }

    #[test]
    fn no_fds_means_whole_heading_is_key() {
        let f = FdSet::new(["x", "y"]);
        assert_eq!(f.candidate_keys(), vec![attrs(["x", "y"])]);
        assert!(f.is_3nf());
    }

    #[test]
    fn combinations_enumerate_correctly() {
        let pool = vec![1, 2, 3, 4];
        assert_eq!(combinations(&pool, 2).len(), 6);
        assert_eq!(combinations(&pool, 4).len(), 1);
        assert_eq!(combinations(&pool, 5).len(), 0);
        assert_eq!(combinations::<i32>(&[], 1).len(), 0);
    }
}
