//! Pattern ranking (end of Section 3.1.2).
//!
//! Patterns are ranked by, in order:
//!
//! 1. fewer object/mixed nodes (simpler interpretations first — a
//!    lecturer named George beats a student-George-joined-to-Lecturer
//!    reading);
//! 2. smaller average distance between *target* nodes (aggregate
//!    annotations) and *condition* nodes (value conditions or GROUPBY);
//! 3. more `GROUPBY(id)` disambiguation annotations — the per-object
//!    reading the paper reports as the correct answers ranks above the
//!    merged one;
//! 4. a deterministic fingerprint tie-break, so runs are reproducible.

use std::cmp::Ordering;

use crate::pattern::{NodeAnnotation, QueryPattern};

/// The comparable rank of a pattern (smaller is better).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankKey {
    /// Number of object/mixed nodes.
    pub object_mixed: usize,
    /// Average target-condition distance, in thousandths of an edge.
    pub avg_distance_milli: u64,
    /// Conditions/annotations sitting on relationship nodes (objects are
    /// the primary semantic carriers; interpretations grounding terms on
    /// relationships rank after those grounding them on objects).
    pub relationship_load: usize,
    /// Negated count of `Distinguish` annotations (more forks rank first).
    pub merged_bias: usize,
    /// Deterministic tie-break.
    pub fingerprint: String,
}

impl PartialOrd for RankKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RankKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.object_mixed
            .cmp(&other.object_mixed)
            .then_with(|| self.avg_distance_milli.cmp(&other.avg_distance_milli))
            .then_with(|| self.relationship_load.cmp(&other.relationship_load))
            .then_with(|| self.merged_bias.cmp(&other.merged_bias))
            .then_with(|| self.fingerprint.cmp(&other.fingerprint))
    }
}

/// Computes a pattern's rank key.
pub fn rank_key(p: &QueryPattern) -> RankKey {
    let targets: Vec<usize> = p
        .nodes
        .iter()
        .filter(|n| n.annotations.iter().any(|a| matches!(a, NodeAnnotation::Agg { .. })))
        .map(|n| n.id)
        .collect();
    let conditions: Vec<usize> = p
        .nodes
        .iter()
        .filter(|n| {
            n.condition.is_some()
                || n.annotations.iter().any(|a| {
                    matches!(a, NodeAnnotation::GroupBy { .. } | NodeAnnotation::Distinguish { .. })
                })
        })
        .map(|n| n.id)
        .collect();

    let mut total = 0usize;
    let mut pairs = 0usize;
    for &t in &targets {
        for &c in &conditions {
            if t == c {
                continue;
            }
            if let Some(d) = p.distance(t, c) {
                total += d;
                pairs += 1;
            }
        }
    }
    let avg_distance_milli = (total * 1000).checked_div(pairs).unwrap_or(0) as u64;

    let distinguish = p
        .nodes
        .iter()
        .flat_map(|n| &n.annotations)
        .filter(|a| matches!(a, NodeAnnotation::Distinguish { .. }))
        .count();

    let relationship_load = p
        .nodes
        .iter()
        .filter(|n| matches!(n.kind, aqks_orm::NodeKind::Relationship))
        .map(|n| n.annotations.len() + usize::from(n.condition.is_some()))
        .sum();

    RankKey {
        object_mixed: p.object_mixed_count(),
        avg_distance_milli,
        relationship_load,
        merged_bias: usize::MAX - distinguish,
        fingerprint: p.fingerprint(),
    }
}

/// Sorts patterns best-first.
pub fn rank_patterns(mut patterns: Vec<QueryPattern>) -> Vec<QueryPattern> {
    patterns.sort_by_cached_key(rank_key);
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{PatternNode, QueryPattern};
    use aqks_orm::NodeKind;

    fn node(id: usize, relation: &str, kind: NodeKind) -> PatternNode {
        PatternNode {
            id,
            orm: 0,
            kind,
            relation: relation.into(),
            terminal: true,
            condition: None,
            annotations: Vec::new(),
        }
    }

    #[test]
    fn fewer_objects_rank_first() {
        let small = QueryPattern {
            nodes: vec![node(0, "Lecturer", NodeKind::Mixed)],
            edges: vec![],
            nested: vec![],
            term_nodes: vec![],
        };
        let mut big = small.clone();
        big.nodes.push(node(1, "Student", NodeKind::Object));
        let ranked = rank_patterns(vec![big.clone(), small.clone()]);
        assert_eq!(ranked[0], small);
    }

    #[test]
    fn distinguished_variant_ranks_above_merged() {
        use crate::pattern::{Condition, NodeAnnotation};
        let mut merged = QueryPattern {
            nodes: vec![node(0, "Student", NodeKind::Object)],
            edges: vec![],
            nested: vec![],
            term_nodes: vec![],
        };
        merged.nodes[0].condition = Some(Condition {
            relation: "Student".into(),
            attribute: "Sname".into(),
            term: "Green".into(),
            tuple_count: 2,
        });
        let mut forked = merged.clone();
        forked.nodes[0].annotations.push(NodeAnnotation::Distinguish {
            relation: "Student".into(),
            attributes: vec!["Sid".into()],
        });
        let ranked = rank_patterns(vec![merged.clone(), forked.clone()]);
        assert_eq!(ranked[0], forked);
    }

    #[test]
    fn rank_is_deterministic() {
        let a = QueryPattern {
            nodes: vec![node(0, "A", NodeKind::Object)],
            edges: vec![],
            nested: vec![],
            term_nodes: vec![],
        };
        let b = QueryPattern {
            nodes: vec![node(0, "B", NodeKind::Object)],
            edges: vec![],
            nested: vec![],
            term_nodes: vec![],
        };
        let r1 = rank_patterns(vec![a.clone(), b.clone()]);
        let r2 = rank_patterns(vec![b, a]);
        assert_eq!(r1, r2);
    }
}
