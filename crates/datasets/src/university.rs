//! The paper's running example databases.
//!
//! * [`normalized`] — Figure 1, tuple for tuple.
//! * [`unnormalized_fig2`] — Figure 2: `Lecturer` gains a redundant
//!   `Fid` foreign key (with the FD `Did -> Fid` declared), `Department`
//!   loses its `Fid`.
//! * [`enrolment_fig8`] — Figure 8: the single unnormalized `Enrolment`
//!   relation obtained by joining Student ⋈ Enrol ⋈ Course.

use aqks_relational::{AttrType, Database, RelationSchema, Value};

fn v(s: &str) -> Value {
    Value::str(s)
}

/// Figure 1: the normalized university database.
pub fn normalized() -> Database {
    let mut db = Database::new("university");

    let mut r = RelationSchema::new("Student");
    r.add_attr("Sid", AttrType::Text)
        .add_attr("Sname", AttrType::Text)
        .add_attr("Age", AttrType::Int);
    r.set_primary_key(["Sid"]);
    db.add_relation(r).expect("static dataset builder");

    let mut r = RelationSchema::new("Course");
    r.add_attr("Code", AttrType::Text)
        .add_attr("Title", AttrType::Text)
        .add_attr("Credit", AttrType::Float);
    r.set_primary_key(["Code"]);
    db.add_relation(r).expect("static dataset builder");

    let mut r = RelationSchema::new("Enrol");
    r.add_attr("Sid", AttrType::Text)
        .add_attr("Code", AttrType::Text)
        .add_attr("Grade", AttrType::Text);
    r.set_primary_key(["Sid", "Code"]);
    r.add_foreign_key(["Sid"], "Student", ["Sid"]);
    r.add_foreign_key(["Code"], "Course", ["Code"]);
    db.add_relation(r).expect("static dataset builder");

    let mut r = RelationSchema::new("Lecturer");
    r.add_attr("Lid", AttrType::Text)
        .add_attr("Lname", AttrType::Text)
        .add_attr("Did", AttrType::Text);
    r.set_primary_key(["Lid"]);
    r.add_foreign_key(["Did"], "Department", ["Did"]);
    db.add_relation(r).expect("static dataset builder");

    let mut r = RelationSchema::new("Teach");
    r.add_attr("Code", AttrType::Text)
        .add_attr("Lid", AttrType::Text)
        .add_attr("Bid", AttrType::Text);
    r.set_primary_key(["Code", "Lid", "Bid"]);
    r.add_foreign_key(["Code"], "Course", ["Code"]);
    r.add_foreign_key(["Lid"], "Lecturer", ["Lid"]);
    r.add_foreign_key(["Bid"], "Textbook", ["Bid"]);
    db.add_relation(r).expect("static dataset builder");

    let mut r = RelationSchema::new("Textbook");
    r.add_attr("Bid", AttrType::Text)
        .add_attr("Tname", AttrType::Text)
        .add_attr("Price", AttrType::Int);
    r.set_primary_key(["Bid"]);
    db.add_relation(r).expect("static dataset builder");

    let mut r = RelationSchema::new("Department");
    r.add_attr("Did", AttrType::Text)
        .add_attr("Dname", AttrType::Text)
        .add_attr("Fid", AttrType::Text);
    r.set_primary_key(["Did"]);
    r.add_foreign_key(["Fid"], "Faculty", ["Fid"]);
    db.add_relation(r).expect("static dataset builder");

    let mut r = RelationSchema::new("Faculty");
    r.add_attr("Fid", AttrType::Text).add_attr("Fname", AttrType::Text);
    r.set_primary_key(["Fid"]);
    db.add_relation(r).expect("static dataset builder");

    for (sid, name, age) in [("s1", "George", 22), ("s2", "Green", 24), ("s3", "Green", 21)] {
        db.insert("Student", vec![v(sid), v(name), Value::Int(age)])
            .expect("static dataset builder");
    }
    for (c, t, cr) in [("c1", "Java", 5.0), ("c2", "Database", 4.0), ("c3", "Multimedia", 3.0)] {
        db.insert("Course", vec![v(c), v(t), Value::Float(cr)]).expect("static dataset builder");
    }
    for (s, c, g) in [
        ("s1", "c1", "A"),
        ("s1", "c2", "B"),
        ("s1", "c3", "B"),
        ("s2", "c1", "A"),
        ("s3", "c1", "A"),
        ("s3", "c3", "B"),
    ] {
        db.insert("Enrol", vec![v(s), v(c), v(g)]).expect("static dataset builder");
    }
    for (l, n, d) in [("l1", "Steven", "d1"), ("l2", "George", "d1")] {
        db.insert("Lecturer", vec![v(l), v(n), v(d)]).expect("static dataset builder");
    }
    for (c, l, b) in [
        ("c1", "l1", "b1"),
        ("c1", "l1", "b2"),
        ("c1", "l2", "b1"),
        ("c2", "l1", "b2"),
        ("c2", "l1", "b3"),
        ("c3", "l2", "b4"),
    ] {
        db.insert("Teach", vec![v(c), v(l), v(b)]).expect("static dataset builder");
    }
    for (b, t, p) in [
        ("b1", "Programming Language", 10),
        ("b2", "Discrete Mathematics", 15),
        ("b3", "Database Management", 12),
        ("b4", "Multimedia Technologies", 20),
    ] {
        db.insert("Textbook", vec![v(b), v(t), Value::Int(p)]).expect("static dataset builder");
    }
    db.insert("Department", vec![v("d1"), v("CS"), v("f1")]).expect("static dataset builder");
    db.insert("Faculty", vec![v("f1"), v("Engineering")]).expect("static dataset builder");

    db.validate().expect("figure 1 database is consistent");
    db
}

/// Figure 1 extended with a *component relation*: `StudentHobby(Sid,
/// Hobby)` stores a multivalued attribute of `Student`. The ORM schema
/// graph folds it into the Student node (Section 2.1), and conditions on
/// `Hobby` join the component to its parent during translation.
pub fn with_hobbies() -> Database {
    let mut db = normalized();

    let mut r = RelationSchema::new("StudentHobby");
    r.add_attr("Sid", AttrType::Text).add_attr("Hobby", AttrType::Text);
    r.set_primary_key(["Sid", "Hobby"]);
    r.add_foreign_key(["Sid"], "Student", ["Sid"]);
    db.add_relation(r).expect("static dataset builder");

    for (sid, hobby) in [("s1", "chess"), ("s1", "tennis"), ("s2", "chess"), ("s3", "painting")] {
        db.insert("StudentHobby", vec![v(sid), v(hobby)]).expect("static dataset builder");
    }
    db.validate().expect("hobby extension is consistent");
    db
}

/// Figure 2: the denormalized university database. `Lecturer` carries a
/// redundant `Fid` (FD `Did -> Fid` declared, violating 3NF) and
/// `Department` drops its `Fid`.
pub fn unnormalized_fig2() -> Database {
    let mut db = Database::new("university-fig2");

    let mut r = RelationSchema::new("Lecturer");
    r.add_attr("Lid", AttrType::Text)
        .add_attr("Lname", AttrType::Text)
        .add_attr("Did", AttrType::Text)
        .add_attr("Fid", AttrType::Text);
    r.set_primary_key(["Lid"]);
    r.add_foreign_key(["Did"], "Department", ["Did"]);
    r.add_foreign_key(["Fid"], "Faculty", ["Fid"]);
    r.add_fd(["Did"], ["Fid"]);
    r.name_entity(["Lid"], "Lecturer");
    r.name_entity(["Did"], "Department");
    db.add_relation(r).expect("static dataset builder");

    let mut r = RelationSchema::new("Department");
    r.add_attr("Did", AttrType::Text).add_attr("Dname", AttrType::Text);
    r.set_primary_key(["Did"]);
    db.add_relation(r).expect("static dataset builder");

    let mut r = RelationSchema::new("Faculty");
    r.add_attr("Fid", AttrType::Text).add_attr("Fname", AttrType::Text);
    r.set_primary_key(["Fid"]);
    db.add_relation(r).expect("static dataset builder");

    for (l, n, d, f) in [("l1", "Steven", "d1", "f1"), ("l2", "George", "d1", "f1")] {
        db.insert("Lecturer", vec![v(l), v(n), v(d), v(f)]).expect("static dataset builder");
    }
    db.insert("Department", vec![v("d1"), v("CS")]).expect("static dataset builder");
    db.insert("Faculty", vec![v("f1"), v("Engineering")]).expect("static dataset builder");

    db.validate().expect("figure 2 database is consistent");
    db
}

/// Figure 8: the single unnormalized `Enrolment` relation
/// (Student ⋈ Enrol ⋈ Course), with its FDs declared.
pub fn enrolment_fig8() -> Database {
    let mut db = Database::new("university-fig8");

    let mut r = RelationSchema::new("Enrolment");
    r.add_attr("Sid", AttrType::Text)
        .add_attr("Sname", AttrType::Text)
        .add_attr("Age", AttrType::Int)
        .add_attr("Code", AttrType::Text)
        .add_attr("Title", AttrType::Text)
        .add_attr("Credit", AttrType::Float)
        .add_attr("Grade", AttrType::Text);
    r.set_primary_key(["Sid", "Code"]);
    r.add_fd(["Sid"], ["Sname", "Age"]);
    r.add_fd(["Code"], ["Title", "Credit"]);
    r.name_entity(["Sid"], "Student");
    r.name_entity(["Code"], "Course");
    r.name_entity(["Sid", "Code"], "Enrol");
    db.add_relation(r).expect("static dataset builder");

    for (sid, sname, age, code, title, credit, grade) in [
        ("s1", "George", 22, "c1", "Java", 5.0, "A"),
        ("s1", "George", 22, "c2", "Database", 4.0, "B"),
        ("s1", "George", 22, "c3", "Multimedia", 3.0, "B"),
        ("s2", "Green", 24, "c1", "Java", 5.0, "A"),
        ("s3", "Green", 21, "c1", "Java", 5.0, "A"),
        ("s3", "Green", 21, "c3", "Multimedia", 3.0, "B"),
    ] {
        db.insert(
            "Enrolment",
            vec![
                v(sid),
                v(sname),
                Value::Int(age),
                v(code),
                v(title),
                Value::Float(credit),
                v(grade),
            ],
        )
        .expect("static dataset builder");
    }

    db.validate().expect("figure 8 database is consistent");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_row_counts() {
        let db = normalized();
        assert_eq!(db.table("Student").unwrap().len(), 3);
        assert_eq!(db.table("Course").unwrap().len(), 3);
        assert_eq!(db.table("Enrol").unwrap().len(), 6);
        assert_eq!(db.table("Teach").unwrap().len(), 6);
        assert_eq!(db.table("Textbook").unwrap().len(), 4);
        assert_eq!(db.table("Lecturer").unwrap().len(), 2);
        assert_eq!(db.table("Department").unwrap().len(), 1);
        assert_eq!(db.table("Faculty").unwrap().len(), 1);
    }

    #[test]
    fn fig2_lecturer_declares_transitive_fd() {
        let db = unnormalized_fig2();
        let lect = db.table("Lecturer").unwrap();
        assert_eq!(lect.schema.extra_fds.len(), 1);
        assert!(!lect.schema.fd_set().is_3nf());
    }

    #[test]
    fn fig8_enrolment_matches_paper() {
        let db = enrolment_fig8();
        let e = db.table("Enrolment").unwrap();
        assert_eq!(e.len(), 6);
        assert!(!e.schema.fd_set().is_2nf());
    }
}
