//! Smoke tests for the harness itself (the substantive shape assertions
//! live in the workspace-level `tests/table_shapes.rs`).

use crate::analysis::{analyze_workload, PlanVerdict};
use crate::tables::{render_markdown, run_table5};
use crate::workload::{
    acmdl_database, acmdl_prime_database, acmdl_queries, tpch_database, tpch_prime_database,
    tpch_queries, Scale,
};
use crate::{fig11, run_fig11};

#[test]
fn table5_renders_all_rows() {
    let rows = run_table5(Scale::Small);
    assert_eq!(rows.len(), 8);
    let md = render_markdown("Table 5", &rows);
    for id in ["T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"] {
        assert!(md.contains(&format!("| {id} |")), "{md}");
    }
    assert!(md.contains("N.A."), "T7/T8 unsupported rows render: {md}");
}

#[test]
fn fig11_produces_positive_ordered_timings() {
    let (tpch, acmdl) = run_fig11(Scale::Small, 3);
    assert_eq!((tpch.len(), acmdl.len()), (8, 8));
    for r in tpch.iter().chain(&acmdl) {
        assert!(r.ours.median_us > 0.0, "{}", r.id);
        assert!(r.ours.min_us <= r.ours.median_us, "{}", r.id);
        assert!(r.ours.median_us <= r.ours.p95_us, "{}", r.id);
        assert!(r.sqak.median_us >= 0.0, "{}", r.id);
    }
    let md = fig11::render_markdown("Fig 11", &tpch);
    assert!(md.contains("| T1 |"), "{md}");
    assert!(md.contains("min/med/p95"), "{md}");
}

/// Satellite of the observability PR: every pipeline phase shows up
/// exactly once in the trace of each answerable workload query, across
/// all four evaluation databases (the Tables 5/6/8/9 sweep). Guards
/// against phases silently losing their spans as the pipeline evolves.
#[test]
fn every_answer_phase_traced_once_per_workload_query() {
    use aqks_core::Engine;
    let sweeps = [
        (tpch_database(Scale::Small), tpch_queries()),
        (acmdl_database(Scale::Small), acmdl_queries()),
        (tpch_prime_database(Scale::Small), tpch_queries()),
        (acmdl_prime_database(Scale::Small), acmdl_queries()),
    ];
    for (db, queries) in sweeps {
        let name = db.name.clone();
        let engine = Engine::new(db).expect("engine builds");
        let mut traced = 0;
        for q in queries {
            // T7/T8-style unsupported queries error out before tracing
            // matters; the sweep covers every query that answers.
            let Ok((answers, trace)) = engine.answer_traced(q.text, 1) else { continue };
            traced += 1;
            assert_eq!(trace.roots.len(), 1, "{name}/{}", q.id);
            assert_eq!(trace.roots[0].name, "answer", "{name}/{}", q.id);
            for phase in ["parse", "match", "pattern", "annotate", "rank", "translate", "analyze"] {
                assert_eq!(
                    trace.span_count(phase),
                    1,
                    "{name}/{}: phase `{phase}` not traced exactly once",
                    q.id
                );
            }
            // One plan and one exec span per executed interpretation.
            assert_eq!(trace.span_count("plan"), answers.len(), "{name}/{}", q.id);
            assert_eq!(trace.span_count("exec"), answers.len(), "{name}/{}", q.id);
        }
        assert!(traced >= 6, "{name}: only {traced} queries answered");
    }
}

/// The exec benchmark attributes wall time to every pipeline phase and
/// serializes the breakdown into `BENCH_exec.json`.
#[test]
fn exec_bench_reports_phase_breakdowns() {
    let rows = crate::execbench::run_exec_bench(Scale::Small, 2);
    assert_eq!(rows.len(), 16);
    let ok: Vec<_> = rows.iter().filter(|r| r.error.is_none()).collect();
    assert!(ok.len() >= 12, "{rows:?}");
    for r in &ok {
        assert!(r.wall.min_us <= r.wall.median_us && r.wall.median_us <= r.wall.p95_us);
        let names: Vec<&str> = r.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, crate::execbench::PHASES.to_vec(), "{}/{}", r.workload, r.id);
        let exec_us = r.phases.iter().find(|(n, _)| n == "exec").unwrap().1;
        assert!(exec_us > 0.0, "{}/{}", r.workload, r.id);
    }
    let json = crate::execbench::render_json(&rows, Scale::Small, 2, None);
    aqks_obs::json::validate(&json).expect("BENCH_exec.json is well-formed");
    assert!(json.contains("\"phases_us\""), "{json}");
    assert!(json.contains("\"wall_p95_us\""), "{json}");
    assert!(!json.contains("\"threads_sweep\""), "no sweep section without --threads: {json}");
}

/// The thread sweep serializes into a well-formed `threads_sweep`
/// section with per-thread-count wall times and the speedup summary.
#[test]
fn thread_sweep_json_is_well_formed() {
    use crate::execbench::{SweepPoint, ThreadSweep, ThreadSweepRow};
    use crate::timing::TimingSummary;
    assert_eq!(crate::execbench::thread_counts(1), vec![1]);
    assert_eq!(crate::execbench::thread_counts(4), vec![1, 2, 4]);
    assert_eq!(crate::execbench::thread_counts(6), vec![1, 2, 4, 6]);
    let sweep = ThreadSweep {
        threads: vec![1, 2],
        host_cpus: 1,
        rows: vec![
            ThreadSweepRow {
                id: "T1",
                sql: "SELECT 1".into(),
                result_rows: 3,
                points: vec![
                    SweepPoint { threads: 1, wall: TimingSummary::from_samples(&[10.0]) },
                    SweepPoint { threads: 2, wall: TimingSummary::from_samples(&[5.0]) },
                ],
                speedup: 2.0,
                error: None,
            },
            ThreadSweepRow {
                id: "T2",
                sql: String::new(),
                result_rows: 0,
                points: Vec::new(),
                speedup: 0.0,
                error: Some("result at threads=2 diverges from threads=1".into()),
            },
        ],
        median_speedup: 2.0,
    };
    let json = crate::execbench::render_json(&[], Scale::Small, 2, Some(&sweep));
    aqks_obs::json::validate(&json).expect("threads_sweep JSON is well-formed");
    for key in ["\"threads_sweep\"", "\"host_cpus\"", "\"median_speedup\"", "diverges"] {
        assert!(json.contains(key), "missing {key}: {json}");
    }
}

#[test]
fn outcome_cell_truncates_long_answer_lists() {
    use crate::tables::EngineOutcome;
    let o = EngineOutcome::Answers {
        count: 10,
        values: (0..10).map(|i| i.to_string()).collect(),
        sql: String::new(),
    };
    let cell = o.cell();
    assert!(cell.starts_with("10 answer(s):"), "{cell}");
    assert!(cell.ends_with(", ..."), "{cell}");
    let u = EngineOutcome::Unsupported("self join".into());
    assert_eq!(u.cell(), "N.A. (self join)");
}

/// The paper engine's statements carry zero error-severity findings on
/// every workload query, normalized and unnormalized alike.
#[test]
fn engine_plans_are_statically_clean() {
    let sweeps = [
        analyze_workload(&tpch_database(Scale::Small), &tpch_queries(), 3),
        analyze_workload(&acmdl_database(Scale::Small), &acmdl_queries(), 3),
        analyze_workload(&tpch_prime_database(Scale::Small), &tpch_queries(), 3),
        analyze_workload(&acmdl_prime_database(Scale::Small), &acmdl_queries(), 3),
    ];
    for rows in &sweeps {
        assert_eq!(rows.len(), 8);
        for row in rows {
            assert!(
                matches!(row.ours, PlanVerdict::Analyzed { .. }),
                "{}: engine produced nothing to analyze: {:?}",
                row.id,
                row.ours
            );
            assert_eq!(row.ours.errors(), 0, "{}: {:?}", row.id, row.ours);
        }
    }
}

/// Tentpole acceptance bar: 100% of the plans the planner produces for
/// the bundled workloads — university, TPC-H/ACMDL and their
/// unnormalized primes — pass the static plan verifier.
#[test]
fn every_planner_plan_verifies_clean_across_all_workloads() {
    let sweeps = crate::plans::run_plan_sweep(Scale::Small, 3);
    assert_eq!(sweeps.len(), 5);
    let mut total = 0;
    for sweep in &sweeps {
        assert!(
            sweep.rejections().is_empty(),
            "{}: plan verifier rejected planner output: {:?}",
            sweep.workload,
            sweep.rejections()
        );
        total += sweep.plans();
    }
    assert!(total >= 40, "only {total} plans swept");
    let md = crate::plans::render_markdown(&sweeps);
    for w in ["university", "tpch", "acmdl", "tpch-prime", "acmdl-prime"] {
        assert!(md.contains(&format!("| {w} |")), "{md}");
    }
}

/// Plan fingerprints are deterministic across re-planning (checked
/// inside the sweep) and collision-free across the TPC-H′ interpretation
/// sets: two interpretations that render differently must never share a
/// fingerprint.
#[test]
fn fingerprints_distinguish_tpch_prime_interpretations() {
    use std::collections::HashMap;
    let db = tpch_prime_database(Scale::Small);
    let engine = aqks_core::Engine::new(db.clone()).expect("engine builds");
    let mut by_fp: HashMap<u64, String> = HashMap::new();
    let mut plans = 0;
    for q in tpch_queries() {
        let Ok(generated) = engine.generate(q.text, 3) else { continue };
        for g in &generated {
            let plan = aqks_sqlgen::plan(&g.sql, &db).expect("plannable");
            plans += 1;
            let fp = aqks_plancheck::fingerprint(&plan);
            let rendered = aqks_sqlgen::render_plan(&plan);
            match by_fp.get(&fp) {
                Some(prev) => assert_eq!(
                    prev, &rendered,
                    "fingerprint {fp:#018x} collides across distinct plans"
                ),
                None => {
                    by_fp.insert(fp, rendered);
                }
            }
        }
    }
    assert!(plans >= 10, "only {plans} interpretations planned");
    assert!(by_fp.len() >= 8, "only {} distinct fingerprints", by_fp.len());
}

/// SQAK's statements over the unnormalized datasets trip the
/// duplicate-inflation pass — the static counterpart of the wrong
/// answers Tables 8 and 9 report.
#[test]
fn sqak_plans_trip_duplicate_inflation_on_unnormalized_data() {
    for (db, queries) in [
        (tpch_prime_database(Scale::Small), tpch_queries()),
        (acmdl_prime_database(Scale::Small), acmdl_queries()),
    ] {
        let rows = analyze_workload(&db, &queries, 3);
        let flagged = rows.iter().filter(|r| r.sqak.has_code("AQ-P5")).count();
        assert!(flagged >= 1, "no AQ-P5 on {}: {rows:?}", db.name);
        // And every flag is an error, not a warning.
        for r in rows.iter().filter(|r| r.sqak.has_code("AQ-P5")) {
            assert!(r.sqak.errors() >= 1, "{}: {:?}", r.id, r.sqak);
        }
    }
}
