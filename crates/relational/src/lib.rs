#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # aqks-relational
//!
//! The relational substrate for the `aqks` keyword-search system: an
//! in-memory relational database with typed values, declared primary and
//! foreign keys, declared functional dependencies, a term-match index, and
//! the normalization theory (attribute closures, candidate keys, 2NF/3NF
//! tests, Bernstein-style 3NF synthesis) needed to handle *unnormalized*
//! databases per Section 4 of the paper.
//!
//! The paper evaluates on a commercial RDBMS; this crate is the faithful
//! substitute: it stores relations, enforces keys, and exposes exactly the
//! metadata (schema graph inputs, FDs) the keyword engine consumes. SQL
//! execution over these tables lives in `aqks-sqlgen`.
//!
//! ## Quick tour
//!
//! ```
//! use aqks_relational::{Database, RelationSchema, AttrType, Value};
//!
//! let mut schema = RelationSchema::new("Student");
//! schema.add_attr("Sid", AttrType::Text);
//! schema.add_attr("Sname", AttrType::Text);
//! schema.add_attr("Age", AttrType::Int);
//! schema.set_primary_key(["Sid"]);
//!
//! let mut db = Database::new("uni");
//! db.add_relation(schema).unwrap();
//! db.insert("Student", vec![Value::str("s1"), Value::str("George"), Value::Int(22)]).unwrap();
//! assert_eq!(db.table("Student").unwrap().len(), 1);
//! ```

pub mod database;
pub mod discover;
pub mod error;
pub mod fd;
pub mod index;
pub mod io;
pub mod normalize;
pub mod schema;
pub mod table;
pub mod value;

pub use database::Database;
pub use discover::{discover_fds, DiscoveryOptions};
pub use error::{Error, Result};
pub use fd::{Fd, FdSet};
pub use index::{MatchIndex, MetaMatch, ValueMatch};
pub use io::{export_dir, import_dir, load_csv, schema_from_text, schema_to_text, table_to_csv};
pub use normalize::{DerivedRelation, NormalizedView};
pub use schema::{AttrType, Attribute, DatabaseSchema, ForeignKey, RelationSchema};
pub use table::{Row, Table};
pub use value::{Date, Value};
