//! Deterministic fault injection.
//!
//! A failpoint is a named site in library code where a fault can be
//! injected on demand:
//!
//! ```ignore
//! aqks_guard::failpoint!("index.lookup");
//! ```
//!
//! expands to a check that, when the site is armed, returns
//! `Err(FailpointError { site }.into())` from the enclosing function —
//! the fault travels the layer's *normal* typed error channel, which is
//! exactly what fault-injection sweeps want to prove out.
//!
//! Without the `failpoints` cargo feature, [`should_fire`] is a constant
//! `false` and the optimizer deletes the branch: zero cost in default
//! builds. With the feature, a site fires when either
//!
//! * it appears in the `AQKS_FAILPOINTS` environment variable (a
//!   comma/semicolon/space-separated site list, read once per process),
//! * it was armed on this thread via `enable` (thread-local, so
//!   parallel tests do not interfere; `disable` / `clear` disarm), or
//! * it was armed process-wide via `enable_global` — the arming channel
//!   for multi-threaded components like the query server, whose worker
//!   threads cannot see a test thread's local arming
//!   (`disable_global` / `clear_global` disarm).

use std::fmt;

/// Typed error produced by an armed failpoint site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailpointError {
    /// The site that fired.
    pub site: &'static str,
}

impl fmt::Display for FailpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at `{}`", self.site)
    }
}

impl std::error::Error for FailpointError {}

#[cfg(feature = "failpoints")]
mod registry {
    use std::cell::RefCell;
    use std::collections::HashSet;
    use std::sync::{OnceLock, RwLock};

    thread_local! {
        static ARMED: RefCell<HashSet<String>> = RefCell::new(HashSet::new());
    }

    /// Process-wide armed sites, visible from every thread — the arming
    /// channel for multi-threaded components (the query server's
    /// acceptor/worker threads). Guarded by a lock rather than a
    /// thread-local so a chaos driver can arm and disarm sites while
    /// other threads are mid-request.
    static GLOBAL: RwLock<Option<HashSet<String>>> = RwLock::new(None);

    static FROM_ENV: OnceLock<HashSet<String>> = OnceLock::new();

    fn env_sites() -> &'static HashSet<String> {
        FROM_ENV.get_or_init(|| {
            std::env::var("AQKS_FAILPOINTS")
                .map(|v| {
                    v.split([',', ';', ' '])
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default()
        })
    }

    /// Arm `site` on the current thread.
    pub fn enable(site: &str) {
        ARMED.with(|a| a.borrow_mut().insert(site.to_string()));
    }

    /// Disarm `site` on the current thread (env-armed sites stay armed).
    pub fn disable(site: &str) {
        ARMED.with(|a| a.borrow_mut().remove(site));
    }

    /// Disarm every thread-locally armed site.
    pub fn clear() {
        ARMED.with(|a| a.borrow_mut().clear());
    }

    fn relock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
        l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Arm `site` on every thread of the process.
    pub fn enable_global(site: &str) {
        relock(&GLOBAL).get_or_insert_with(HashSet::new).insert(site.to_string());
    }

    /// Disarm a globally armed `site`.
    pub fn disable_global(site: &str) {
        if let Some(set) = relock(&GLOBAL).as_mut() {
            set.remove(site);
        }
    }

    /// Disarm every globally armed site.
    pub fn clear_global() {
        *relock(&GLOBAL) = None;
    }

    fn global_contains(site: &str) -> bool {
        GLOBAL
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .is_some_and(|s| s.contains(site))
    }

    pub fn should_fire(site: &str) -> bool {
        ARMED.with(|a| a.borrow().contains(site))
            || global_contains(site)
            || env_sites().contains(site)
    }
}

#[cfg(feature = "failpoints")]
pub use registry::{clear, clear_global, disable, disable_global, enable, enable_global};

/// Is `site` armed? Constant `false` without the `failpoints` feature,
/// so `failpoint!` sites vanish from default builds.
#[inline]
pub fn should_fire(site: &str) -> bool {
    #[cfg(feature = "failpoints")]
    {
        registry::should_fire(site)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = site;
        false
    }
}

/// Declare a fault-injection site. When armed (see the module docs),
/// returns `Err(FailpointError { site }.into())` from the enclosing
/// function; otherwise compiles to nothing in default builds.
#[macro_export]
macro_rules! failpoint {
    ($site:literal) => {
        if $crate::failpoint::should_fire($site) {
            return Err($crate::failpoint::FailpointError { site: $site }.into());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_renders_site() {
        let e = FailpointError { site: "join.build" };
        assert_eq!(e.to_string(), "injected fault at `join.build`");
    }

    #[cfg(not(feature = "failpoints"))]
    #[test]
    fn compiled_out_by_default() {
        assert!(!should_fire("anything"));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn thread_local_arming_round_trips() {
        assert!(!should_fire("t.site"));
        enable("t.site");
        assert!(should_fire("t.site"));
        // Other threads are unaffected.
        let other = std::thread::spawn(|| should_fire("t.site")).join().unwrap();
        assert!(!other);
        disable("t.site");
        assert!(!should_fire("t.site"));
        enable("a");
        enable("b");
        clear();
        assert!(!should_fire("a") && !should_fire("b"));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn global_arming_crosses_threads() {
        assert!(!should_fire("g.site"));
        enable_global("g.site");
        // Unlike thread-local arming, every thread sees a global site.
        let other = std::thread::spawn(|| should_fire("g.site")).join().unwrap();
        assert!(other);
        assert!(should_fire("g.site"));
        disable_global("g.site");
        assert!(!should_fire("g.site"));
        enable_global("g.a");
        enable_global("g.b");
        clear_global();
        assert!(!should_fire("g.a") && !should_fire("g.b"));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn macro_returns_typed_error() {
        #[derive(Debug, PartialEq)]
        enum E {
            Fault(&'static str),
        }
        impl From<FailpointError> for E {
            fn from(f: FailpointError) -> Self {
                E::Fault(f.site)
            }
        }
        fn site() -> Result<u32, E> {
            crate::failpoint!("macro.site");
            Ok(7)
        }
        assert_eq!(site(), Ok(7));
        enable("macro.site");
        assert_eq!(site(), Err(E::Fault("macro.site")));
        disable("macro.site");
        assert_eq!(site(), Ok(7));
    }
}
