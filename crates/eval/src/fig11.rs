//! Figure 11: time to *generate* SQL statements (not execute them), per
//! query, ours vs SQAK.
//!
//! The paper reports milliseconds on a 3.4 GHz JVM; absolute numbers
//! differ here, but the shape — both engines within the same order of
//! magnitude, the semantic engine consistently a bit slower because it
//! enumerates interpretations, disambiguates, and detects duplicates —
//! is the claim under test. Criterion benches in `aqks-bench` measure the
//! same work with full statistical rigour; this module produces the
//! quick paper-style series for EXPERIMENTS.md.
//!
//! One engine (and one SQAK instance) is built per query set and warmed
//! on the *whole* set before any timing starts, so no rep pays
//! first-touch costs; each query then reports min/median/p95 over the
//! repetitions rather than a bare mean.

use aqks_core::Engine;
use aqks_relational::Database;
use aqks_sqak::Sqak;

use crate::timing::{measure, TimingSummary};
use crate::workload::{acmdl_queries, tpch_queries, EvalQuery, Scale};

/// One timing row of Figure 11.
#[derive(Debug, Clone)]
pub struct TimingRow {
    /// Query id.
    pub id: &'static str,
    /// SQL-generation time of the semantic engine.
    pub ours: TimingSummary,
    /// SQL-generation time of SQAK.
    pub sqak: TimingSummary,
}

fn time_queries(db: Database, queries: Vec<EvalQuery>, reps: usize) -> Vec<TimingRow> {
    let engine = Engine::new(db.clone()).expect("engine builds");
    let sqak = Sqak::new(db);
    // Warm both engines on the full query set up front (caches, the
    // allocator, branch predictors) so the first timed query of the set
    // is not penalized relative to the rest.
    for q in &queries {
        let _ = engine.generate(q.text, 1);
        let _ = sqak.generate(q.text);
    }
    queries
        .into_iter()
        .map(|q| {
            let ours = measure(
                || {
                    let _ = std::hint::black_box(engine.generate(q.text, 1));
                },
                reps,
            );
            let sqak_t = measure(
                || {
                    let _ = std::hint::black_box(sqak.generate(q.text));
                },
                reps,
            );
            TimingRow { id: q.id, ours, sqak: sqak_t }
        })
        .collect()
}

/// Runs both Figure 11 series: (a) TPCH T1–T8, (b) ACMDL A1–A8.
pub fn run_fig11(scale: Scale, reps: usize) -> (Vec<TimingRow>, Vec<TimingRow>) {
    let tpch = time_queries(crate::workload::tpch_database(scale), tpch_queries(), reps);
    let acmdl = time_queries(crate::workload::acmdl_database(scale), acmdl_queries(), reps);
    (tpch, acmdl)
}

/// Renders one series as markdown.
pub fn render_markdown(title: &str, rows: &[TimingRow]) -> String {
    let mut s = format!("## {title}\n\n");
    s.push_str("| # | Proposed min/med/p95 (µs) | SQAK min/med/p95 (µs) | median ratio |\n");
    s.push_str("|---|---------------------------|-----------------------|--------------|\n");
    for r in rows {
        let ratio =
            if r.sqak.median_us > 0.0 { r.ours.median_us / r.sqak.median_us } else { f64::NAN };
        s.push_str(&format!(
            "| {} | {:.1} / {:.1} / {:.1} | {:.1} / {:.1} / {:.1} | {:.2}x |\n",
            r.id,
            r.ours.min_us,
            r.ours.median_us,
            r.ours.p95_us,
            r.sqak.min_us,
            r.sqak.median_us,
            r.sqak.p95_us,
            ratio
        ));
    }
    s
}
