//! Common-subplan extraction and shared execution.
//!
//! Hash-conses canonical subtrees across one interpretation set: a
//! subtree whose canonical fingerprint occurs at two or more places
//! (across class representatives, or twice within one plan) becomes a
//! *share point*. The shared-subplan DAG executes each shared subtree
//! once; its materialized rows feed every consumer through the
//! executor's cached-rows operator, with guard checkpoints and
//! per-operator metering preserved.

use std::collections::HashMap;
use std::sync::Arc;

use aqks_plancheck::fingerprint;
use aqks_relational::Database;
use aqks_sqlgen::{
    materialize_batches, run_plan_opts, ColumnBatch, ExecError, ExecOptions, ExecStats, PlanNode,
    ResultTable, SharedRows,
};

use crate::classes::ClassAnalysis;

/// A shared subtree: executed once, consumed at every listed site.
#[derive(Debug, Clone)]
pub struct SharePoint {
    /// Canonical fingerprint of the shared subtree.
    pub fingerprint: u64,
    /// The subtree itself (fresh pre-order ids, rooted at 0).
    pub subtree: PlanNode,
    /// Consumer sites as `(plan index, node id)` into
    /// [`SharedSet::plans`].
    pub consumers: Vec<(usize, usize)>,
}

/// A deduplicated interpretation set with its share points: one
/// representative plan per equivalence class, plus the shared-subplan
/// DAG connecting them.
#[derive(Debug, Clone)]
pub struct SharedSet {
    /// One canonical representative per equivalence class, in class
    /// order.
    pub plans: Vec<PlanNode>,
    /// Maximal repeated subtrees, largest first.
    pub shares: Vec<SharePoint>,
}

/// The result of executing a [`SharedSet`].
#[derive(Debug)]
pub struct SharedRun {
    /// Result of each representative plan, in [`SharedSet::plans`]
    /// order (stabilized exactly as `run_plan` would).
    pub tables: Vec<ResultTable>,
    /// Executor stats of each representative plan run.
    pub plan_stats: Vec<ExecStats>,
    /// Executor stats of each shared-subtree materialization, in
    /// [`SharedSet::shares`] order.
    pub share_stats: Vec<ExecStats>,
}

/// Builds the shared-subplan DAG over the class representatives of
/// `analysis`. Share points are maximal: candidates are considered
/// largest-subtree first, and a candidate is dropped when any of its
/// occurrences overlaps an already-shared region. Bare scans (single
/// nodes) are never shared — replaying a materialized scan moves as
/// many rows as rescanning it. Emits the `equiv.shared_subtrees`
/// counter when an ambient span is active.
pub fn shared_set(analysis: &ClassAnalysis) -> SharedSet {
    let plans: Vec<PlanNode> =
        analysis.classes.iter().map(|c| analysis.canonical[c.members[0]].plan.clone()).collect();

    // Collect candidate subtrees by canonical fingerprint. Canonical
    // plans carry fresh pre-order ids, so a subtree rooted at id `x`
    // with `s` nodes occupies exactly the id interval [x, x+s).
    struct Cand {
        subtree: PlanNode,
        size: usize,
        occurrences: Vec<(usize, usize)>,
    }
    let mut by_fp: HashMap<u64, Cand> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for (pi, plan) in plans.iter().enumerate() {
        plan.visit(&mut |n| {
            let size = n.node_count();
            if size < 2 {
                return;
            }
            let fp = fingerprint(n);
            let cand = by_fp.entry(fp).or_insert_with(|| {
                order.push(fp);
                Cand { subtree: n.clone(), size, occurrences: Vec::new() }
            });
            cand.occurrences.push((pi, n.id));
        });
    }

    // Largest first; fingerprint ties broken by first appearance so
    // the result is deterministic.
    let mut cands: Vec<(u64, Cand)> = order
        .into_iter()
        .filter_map(|fp| {
            let c = by_fp.remove(&fp)?;
            (c.occurrences.len() >= 2).then_some((fp, c))
        })
        .collect();
    cands.sort_by_key(|c| std::cmp::Reverse(c.1.size));

    let mut covered: Vec<Vec<(usize, usize)>> = vec![Vec::new(); plans.len()];
    let overlaps = |covered: &[Vec<(usize, usize)>], pi: usize, lo: usize, hi: usize| {
        covered[pi].iter().any(|&(a, b)| lo < b && a < hi)
    };
    let mut shares: Vec<SharePoint> = Vec::new();
    for (fp, cand) in cands {
        let clear =
            cand.occurrences.iter().all(|&(pi, id)| !overlaps(&covered, pi, id, id + cand.size));
        if !clear {
            continue;
        }
        for &(pi, id) in &cand.occurrences {
            covered[pi].push((id, id + cand.size));
        }
        let mut subtree = cand.subtree;
        reassign_ids(&mut subtree, &mut 0);
        shares.push(SharePoint { fingerprint: fp, subtree, consumers: cand.occurrences });
    }

    aqks_obs::counter("equiv.shared_subtrees", shares.len() as u64);
    if aqks_obs::metrics::enabled() {
        SHARED_SUBTREES.add(shares.len() as u64);
    }
    SharedSet { plans, shares }
}

/// Shared subtrees elected across all [`shared_set`] calls.
static SHARED_SUBTREES: aqks_obs::metrics::Counter =
    aqks_obs::metrics::Counter::new("aqks_equiv_shared_subtrees");

/// Consumer-site replays of a materialized shared subtree — each one
/// replaced a full re-execution of that subtree.
static SHARE_REPLAYS: aqks_obs::metrics::Counter =
    aqks_obs::metrics::Counter::new("aqks_equiv_share_replays");

/// Executes a shared set: each shared subtree is materialized once,
/// then every representative plan runs with the materialized batches
/// substituted at its consumer sites.
pub fn run_shared(set: &SharedSet, db: &Database) -> Result<SharedRun, ExecError> {
    run_shared_opts(set, db, ExecOptions::default())
}

/// [`run_shared`] with execution options: both the shared-subtree
/// materializations and the consumer plans run with `opts` (worker
/// thread count). The materialized batches are `Arc`-shared, so feeding
/// them to N consumers costs N reference-count bumps, not N deep
/// copies.
pub fn run_shared_opts(
    set: &SharedSet,
    db: &Database,
    opts: ExecOptions,
) -> Result<SharedRun, ExecError> {
    let mut share_batches: Vec<Arc<Vec<ColumnBatch>>> = Vec::with_capacity(set.shares.len());
    let mut share_stats = Vec::with_capacity(set.shares.len());
    for sp in &set.shares {
        let (batches, stats) = materialize_batches(&sp.subtree, db, opts)?;
        share_batches.push(Arc::new(batches));
        share_stats.push(stats);
    }
    let mut tables = Vec::with_capacity(set.plans.len());
    let mut plan_stats = Vec::with_capacity(set.plans.len());
    for (pi, plan) in set.plans.iter().enumerate() {
        let mut cached = SharedRows::new();
        let mut replays = 0u64;
        for (k, sp) in set.shares.iter().enumerate() {
            for &(p, id) in &sp.consumers {
                if p == pi {
                    cached.insert(id, Arc::clone(&share_batches[k]));
                    replays += 1;
                }
            }
        }
        if replays > 0 && aqks_obs::metrics::enabled() {
            SHARE_REPLAYS.add(replays);
        }
        let (table, stats) = run_plan_opts(plan, db, &cached, opts)?;
        tables.push(table);
        plan_stats.push(stats);
    }
    Ok(SharedRun { tables, plan_stats, share_stats })
}

/// Pretty-prints the shared-subplan DAG: every share point's subtree
/// once, then each representative plan with `⇒ shared #k` markers at
/// its consumer sites (subtrees below a marker are elided — they run
/// as cached-row replays).
pub fn render_shared(set: &SharedSet) -> String {
    let mut out = String::new();
    for (k, sp) in set.shares.iter().enumerate() {
        out.push_str(&format!(
            "shared subplan #{k} [{:016x}] used {} times:\n",
            sp.fingerprint,
            sp.consumers.len()
        ));
        render_tree(&sp.subtree, "", true, true, &HashMap::new(), &mut out);
    }
    if set.shares.is_empty() {
        out.push_str("no shared subplans\n");
    }
    for (pi, plan) in set.plans.iter().enumerate() {
        let mut marks: HashMap<usize, usize> = HashMap::new();
        for (k, sp) in set.shares.iter().enumerate() {
            for &(p, id) in &sp.consumers {
                if p == pi {
                    marks.insert(id, k);
                }
            }
        }
        out.push_str(&format!("plan #{pi}:\n"));
        render_tree(plan, "", true, true, &marks, &mut out);
    }
    out
}

fn render_tree(
    node: &PlanNode,
    prefix: &str,
    last: bool,
    root: bool,
    marks: &HashMap<usize, usize>,
    out: &mut String,
) {
    let (branch, child_prefix) = if root {
        (String::new(), String::new())
    } else if last {
        (format!("{prefix}└─ "), format!("{prefix}   "))
    } else {
        (format!("{prefix}├─ "), format!("{prefix}│  "))
    };
    out.push_str(&branch);
    if let Some(&k) = marks.get(&node.id) {
        out.push_str(&format!("⇒ shared #{k}: {} (est={})\n", node.label(), node.est_rows));
        return;
    }
    out.push_str(&format!("{} (est={})\n", node.label(), node.est_rows));
    let n = node.children.len();
    for (i, c) in node.children.iter().enumerate() {
        render_tree(c, &child_prefix, i + 1 == n, false, marks, out);
    }
}

fn reassign_ids(node: &mut PlanNode, next: &mut usize) {
    node.id = *next;
    *next += 1;
    for c in &mut node.children {
        reassign_ids(c, next);
    }
}
