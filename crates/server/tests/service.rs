//! End-to-end service tests: a real listener, real sockets, and the
//! shipped client against the university dataset.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use aqks_core::Engine;
use aqks_datasets::university;
use aqks_server::{Client, ClientConfig, ClientError, ErrorCode, Request, Server, ServerConfig};

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(university::normalized()).expect("university dataset builds"))
}

fn start(cfg: ServerConfig) -> Server {
    Server::start(engine(), cfg).expect("server binds")
}

fn client(server: &Server) -> Client {
    Client::connect(server.addr(), ClientConfig::default())
}

#[test]
fn answers_queries_end_to_end() {
    let server = start(ServerConfig::default());
    let mut c = client(&server);
    c.ping().expect("ping round-trips");

    let answer = c.query(&Request::new("Green SUM Credit")).expect("query succeeds");
    assert_eq!(answer.interpretations.len(), 1);
    let interp = &answer.interpretations[0];
    assert!(interp.sql.to_uppercase().contains("SUM"), "{}", interp.sql);
    assert!(!interp.columns.is_empty());
    assert!(!interp.rows.is_empty());
    assert!(answer.degraded.is_none());

    // Top-k returns multiple interpretations when they exist.
    let mut req = Request::new("Green George COUNT Code");
    req.k = 3;
    let multi = c.query(&req).expect("top-k query succeeds");
    assert!(multi.interpretations.len() > 1, "expected several interpretations");

    c.quit();
    let stats = server.stats();
    assert_eq!(stats.ok, 2);
    assert_eq!(stats.errors, 0);
    server.shutdown();
}

#[test]
fn semantic_errors_are_typed_and_final() {
    let server = start(ServerConfig::default());
    let mut c = client(&server);

    let err = c.query(&Request::new("zzzznotaword")).expect_err("no match");
    match err {
        ClientError::Server(w) => {
            assert_eq!(w.code, ErrorCode::NoMatch);
            assert!(!w.code.retryable());
        }
        other => panic!("expected typed server error, got {other}"),
    }
    // The connection survived the error: the next query still answers.
    let ok = c.query(&Request::new("Java SUM Price")).expect("connection still serves");
    assert!(!ok.interpretations.is_empty());
    server.shutdown();
}

#[test]
fn malformed_frames_recover_without_dropping_the_connection() {
    let cfg = ServerConfig { max_line_bytes: 128, ..ServerConfig::default() };
    let server = start(cfg);

    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let send = |line: &str| {
        let mut s = &stream;
        writeln!(s, "{line}").expect("write");
    };
    let mut recv = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    };

    // Unknown verb: typed protocol error, connection stays open.
    send("FROB nonsense");
    let reply = recv();
    assert!(reply.starts_with("ERR code=protocol retryable=false"), "{reply}");

    // Bad option on a query frame: same story.
    send("Q sideways=1 |Green");
    assert!(recv().starts_with("ERR code=protocol"), "malformed option");

    // A line over the cap: refused, stream re-synchronizes at newline.
    let huge = format!("Q |{}", "x".repeat(4096));
    send(&huge);
    let reply = recv();
    assert!(reply.starts_with("ERR code=protocol"), "{reply}");
    assert!(reply.contains("128"), "mentions the cap: {reply}");

    // After all that abuse the very same connection still answers.
    send("Q |Green SUM Credit");
    let reply = recv();
    assert!(reply.starts_with("OK n=1"), "{reply}");
    loop {
        if recv() == "." {
            break;
        }
    }
    send("QUIT");
    assert_eq!(recv(), "BYE");
    server.shutdown();
}

#[test]
fn starvation_deadline_degrades_to_partial_answer() {
    let server = start(ServerConfig::default());
    let mut c = client(&server);

    // A pattern budget of 1 trips mid-enumeration; the server must turn
    // that into an OK answer with the degraded flag, not an error.
    let mut req = Request::new("Green George COUNT Code");
    req.k = 3;
    req.max_patterns = Some(1);
    let answer = c.query(&req).expect("degraded answers are still OK frames");
    let degraded = answer.degraded.expect("degraded flag present");
    assert!(degraded.contains('@'), "kind@site form: {degraded}");
    assert!(degraded.starts_with("pattern"), "{degraded}");

    let stats = server.stats();
    assert_eq!(stats.ok, 1);
    assert_eq!(stats.degraded, 1);
    assert_eq!(stats.errors, 0);
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_typed_overload() {
    // Depth 0: every admission attempt finds a full queue.
    let cfg = ServerConfig { queue_depth: 0, ..ServerConfig::default() };
    let server = start(cfg);

    let mut c =
        Client::connect(server.addr(), ClientConfig { max_attempts: 1, ..ClientConfig::default() });
    let err = c.query(&Request::new("Green SUM Credit")).expect_err("must shed");
    match err {
        ClientError::Server(w) => {
            assert_eq!(w.code, ErrorCode::Overloaded);
            assert!(w.code.retryable());
            assert!(w.message.contains("queue full"), "{}", w.message);
        }
        other => panic!("expected overload, got {other}"),
    }
    let stats = server.stats();
    assert_eq!(stats.shed_depth, 1);
    assert_eq!(stats.ok, 0);
    server.shutdown();
}

#[test]
fn aged_requests_shed_at_dequeue() {
    // A zero wait bound: every dequeued job has aged out.
    let cfg = ServerConfig { max_queue_wait: Duration::ZERO, ..ServerConfig::default() };
    let server = start(cfg);

    let mut c =
        Client::connect(server.addr(), ClientConfig { max_attempts: 1, ..ClientConfig::default() });
    let err = c.query(&Request::new("Green SUM Credit")).expect_err("must shed");
    match err {
        ClientError::Server(w) => {
            assert_eq!(w.code, ErrorCode::Overloaded);
            assert!(w.message.contains("aged out"), "{}", w.message);
        }
        other => panic!("expected overload, got {other}"),
    }
    assert_eq!(server.stats().shed_age, 1);
    server.shutdown();
}

#[test]
fn retry_with_backoff_rides_out_transient_overload() {
    // Depth-0 queue server: always overloaded. The client's retry loop
    // must classify it retryable and spend its whole budget.
    let cfg = ServerConfig { queue_depth: 0, ..ServerConfig::default() };
    let server = start(cfg);
    let mut c = Client::connect(
        server.addr(),
        ClientConfig {
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(5),
            ..ClientConfig::default()
        },
    );
    let err = c.query(&Request::new("Green SUM Credit")).expect_err("always overloaded");
    assert!(err.retryable());
    // Three attempts were really made (each one shed).
    assert_eq!(server.stats().shed_depth, 3);
    server.shutdown();

    // Against a healthy server a parse error is NOT retried.
    let server = start(ServerConfig::default());
    let mut c = client(&server);
    let err = c.query(&Request::new("SUM SUM SUM")).expect_err("bad query");
    assert!(!err.retryable());
    assert_eq!(server.stats().errors, 1, "exactly one attempt for a final error");
    server.shutdown();
}

#[test]
fn shutdown_drains_cleanly() {
    let server = start(ServerConfig::default());
    let addr = server.addr();

    // An idle connection is open while the server drains.
    let mut c = client(&server);
    c.ping().expect("live before drain");
    let before = server.stats();
    server.shutdown();
    assert_eq!(before.accepted, 1);

    // The listener is gone: a fresh connect is refused (or an
    // accepted-then-reset socket fails on first use).
    match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(s) => {
            s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
            let mut line = String::new();
            let r = BufReader::new(s).read_line(&mut line);
            assert!(r.is_err() || line.is_empty(), "no one is serving: {line:?}");
        }
    }
}

#[test]
fn connection_limit_refuses_politely() {
    // Zero connection slots: every connection is one too many.
    let cfg = ServerConfig { max_connections: 0, ..ServerConfig::default() };
    let server = start(cfg);

    let stream = TcpStream::connect(server.addr()).expect("TCP connect still accepted");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("read refusal");
    assert!(line.starts_with("ERR code=overloaded retryable=true"), "{line}");
    assert_eq!(server.stats().refused, 1);
    server.shutdown();
}
