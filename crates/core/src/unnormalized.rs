//! Query rewriting for unnormalized databases (Section 4.1).
//!
//! The translation of Section 4 turns every pattern node into a
//! projection subquery over the original unnormalized relations; the
//! resulting statement joins many derived tables, which is slow and hard
//! to read. Three heuristic rules rewrite it:
//!
//! * **Rule 1** — drop projected attributes no outer clause uses (the
//!   derived relation's key attributes are protected: removing them from
//!   a `SELECT DISTINCT` projection would change its multiplicity);
//! * **Rule 2** — push `contains` selections into the subqueries that
//!   project the conditioned attribute, filtering before the join;
//! * **Rule 3** — replace a join of subqueries over the *same* original
//!   relation with the relation itself when their combined attributes
//!   cover a candidate key (then the join is exactly a superkey
//!   projection of the original — Example 10 collapses
//!   `C' ⋈ E1' ⋈ S1'` back to `Enrolment`).
//!
//! Each rule is individually switchable for the ablation benchmarks.

use std::collections::{BTreeSet, HashMap, HashSet};

use aqks_relational::DatabaseSchema;
use aqks_sqlgen::{ColumnRef, Predicate, SelectItem, SelectStatement, TableExpr};

/// Which rewrite rules to apply.
#[derive(Debug, Clone)]
pub struct RewriteOptions {
    /// Rule 1: prune unused projected attributes.
    pub prune_projections: bool,
    /// Rule 2: push selections into subqueries.
    pub push_selections: bool,
    /// Rule 3: collapse same-origin subquery joins to the original relation.
    pub collapse_joins: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions { prune_projections: true, push_selections: true, collapse_joins: true }
    }
}

/// Applies the enabled rewrite rules. `derived_keys` maps FROM aliases to
/// the derived relation's key attributes (from
/// [`crate::translate::Translation`]); `original` is the unnormalized
/// database schema `D`.
pub fn rewrite(
    stmt: &SelectStatement,
    derived_keys: &HashMap<String, Vec<String>>,
    original: &DatabaseSchema,
    opts: &RewriteOptions,
) -> SelectStatement {
    let mut out = stmt.clone();
    // A nested-aggregate wrapper rewrites its core statement.
    if out.from.len() == 1 && out.predicates.is_empty() {
        if let TableExpr::Derived { query, alias } = &out.from[0] {
            if alias == "R" && query.from.iter().any(|f| matches!(f, TableExpr::Derived { .. })) {
                let inner = rewrite(query, derived_keys, original, opts);
                out.from = vec![TableExpr::Derived { query: Box::new(inner), alias: "R".into() }];
                return out;
            }
        }
    }

    if opts.prune_projections {
        rule1_prune(&mut out, derived_keys);
    }
    if opts.collapse_joins {
        rule3_collapse(&mut out, original);
    }
    if opts.push_selections {
        rule2_push(&mut out);
    }
    out
}

/// A FROM item that is a plain projection of a single base relation.
fn simple_projection(item: &TableExpr) -> Option<(&SelectStatement, &str)> {
    let TableExpr::Derived { query, alias } = item else { return None };
    if query.group_by.is_empty()
        && !query.has_aggregate()
        && query.predicates.is_empty()
        && query.from.len() == 1
        && query.items.iter().all(|i| matches!(i, SelectItem::Column { .. }))
    {
        if let TableExpr::Relation { .. } = &query.from[0] {
            return Some((query, alias));
        }
    }
    None
}

fn origin_of(item: &TableExpr) -> Option<String> {
    let (q, _) = simple_projection(item)?;
    match &q.from[0] {
        TableExpr::Relation { name, .. } => Some(name.clone()),
        TableExpr::Derived { .. } => None,
    }
}

/// Columns of `alias` referenced anywhere in the outer statement.
fn used_columns(stmt: &SelectStatement, alias: &str) -> HashSet<String> {
    let mut used = HashSet::new();
    let mut note = |c: &ColumnRef| {
        if c.qualifier.eq_ignore_ascii_case(alias) {
            used.insert(c.column.to_lowercase());
        }
    };
    for item in &stmt.items {
        match item {
            SelectItem::Column { col, .. } => note(col),
            SelectItem::Aggregate { arg, .. } => note(arg),
        }
    }
    for p in &stmt.predicates {
        match p {
            Predicate::JoinEq(a, b) => {
                note(a);
                note(b);
            }
            Predicate::Contains(c, _) | Predicate::Eq(c, _) => note(c),
        }
    }
    for c in &stmt.group_by {
        note(c);
    }
    used
}

/// Rule 1: prune unused projected attributes (keys protected).
fn rule1_prune(stmt: &mut SelectStatement, derived_keys: &HashMap<String, Vec<String>>) {
    let aliases: Vec<String> = stmt.from.iter().map(|f| f.alias().to_string()).collect();
    for (fi, alias) in aliases.iter().enumerate() {
        if simple_projection(&stmt.from[fi]).is_none() {
            continue;
        }
        let mut keep: HashSet<String> = used_columns(stmt, alias);
        if let Some(keys) = derived_keys.get(alias) {
            keep.extend(keys.iter().map(|k| k.to_lowercase()));
        }
        if let TableExpr::Derived { query, .. } = &mut stmt.from[fi] {
            let retained: Vec<SelectItem> = query
                .items
                .iter()
                .filter(|i| keep.contains(&i.output_name().to_lowercase()))
                .cloned()
                .collect();
            if !retained.is_empty() {
                query.items = retained;
            }
        }
    }
}

/// Rule 2: push `contains` selections into projecting subqueries.
fn rule2_push(stmt: &mut SelectStatement) {
    let mut remaining: Vec<Predicate> = Vec::with_capacity(stmt.predicates.len());
    let preds = std::mem::take(&mut stmt.predicates);
    for p in preds {
        let Predicate::Contains(col, text) = &p else {
            remaining.push(p);
            continue;
        };
        let mut pushed = false;
        for item in &mut stmt.from {
            let alias_matches = item.alias().eq_ignore_ascii_case(&col.qualifier);
            if !alias_matches {
                continue;
            }
            if let TableExpr::Derived { query, .. } = item {
                let projects =
                    query.items.iter().any(|i| i.output_name().eq_ignore_ascii_case(&col.column));
                let inner_qualifier = match query.from.first() {
                    Some(TableExpr::Relation { alias, .. }) => Some(alias.clone()),
                    _ => None,
                };
                if projects && query.predicates.is_empty() && query.from.len() == 1 {
                    if let Some(q) = inner_qualifier {
                        query.predicates.push(Predicate::Contains(
                            ColumnRef::new(q, col.column.clone()),
                            text.clone(),
                        ));
                        pushed = true;
                    }
                }
            }
            break;
        }
        if !pushed {
            remaining.push(p);
        }
    }
    stmt.predicates = remaining;
}

/// Rule 3: collapse joined same-origin subqueries to the original
/// relation when their combined attributes contain a candidate key.
fn rule3_collapse(stmt: &mut SelectStatement, original: &DatabaseSchema) {
    loop {
        let Some((members, origin)) = find_collapsible_group(stmt, original) else { return };
        apply_collapse(stmt, &members, &origin);
    }
}

/// Finds one collapsible group: FROM indices of ≥2 simple projections of
/// the same original relation, directly join-connected, with pairwise
/// *distinct* projections (two copies of the same projection are a self
/// join — Example 10 keeps `E2' ⋈ S2'` separate from `C' ⋈ E1' ⋈ S1'`),
/// whose combined attributes contain a candidate key of that relation.
fn find_collapsible_group(
    stmt: &SelectStatement,
    original: &DatabaseSchema,
) -> Option<(Vec<usize>, String)> {
    // Candidate FROM indices grouped by origin relation.
    let mut by_origin: HashMap<String, Vec<usize>> = HashMap::new();
    for (fi, item) in stmt.from.iter().enumerate() {
        if let Some(origin) = origin_of(item) {
            by_origin.entry(origin.to_lowercase()).or_default().push(fi);
        }
    }
    let mut origins: Vec<(String, Vec<usize>)> = by_origin.into_iter().collect();
    origins.sort();

    for (origin, indices) in origins {
        if indices.len() < 2 {
            continue;
        }
        let rel = original.relation(&origin)?;
        let keys = rel.fd_set().candidate_keys();

        let alias_idx: HashMap<String, usize> =
            indices.iter().map(|&fi| (stmt.from[fi].alias().to_lowercase(), fi)).collect();
        // Direct same-attribute joins between candidate members.
        let mut linked: Vec<(usize, usize)> = Vec::new();
        for p in &stmt.predicates {
            if let Predicate::JoinEq(a, b) = p {
                if !a.column.eq_ignore_ascii_case(&b.column) {
                    continue;
                }
                if let (Some(&x), Some(&y)) = (
                    alias_idx.get(&a.qualifier.to_lowercase()),
                    alias_idx.get(&b.qualifier.to_lowercase()),
                ) {
                    linked.push((x, y));
                }
            }
        }
        let signature = |fi: usize| -> BTreeSet<String> {
            simple_projection(&stmt.from[fi])
                .map(|(q, _)| q.items.iter().map(|i| i.output_name().to_lowercase()).collect())
                .unwrap_or_default()
        };

        // Greedy group growth: seed each group in FROM order, then grow to
        // a fixpoint with members that are directly linked to the group
        // and whose projection is not yet represented in it (two copies of
        // one projection would be a self join).
        let is_linked = |g: &[usize], fi: usize| {
            g.iter().any(|&m| linked.contains(&(m, fi)) || linked.contains(&(fi, m)))
        };
        // Lossless-join growth condition: joining the member on its shared
        // attributes must not create spurious tuples, i.e. the shared
        // attributes determine one side (binary lossless-decomposition
        // test under the original relation's FDs, applied left-deep). Two
        // projections linked only through a common *dependent* attribute
        // (a -> c, b -> c joined on c) must NOT collapse to R.
        let fds = rel.fd_set();
        let lossless = |group_union: &BTreeSet<String>, fi: usize| -> bool {
            let member = signature(fi);
            let shared: BTreeSet<String> = group_union.intersection(&member).cloned().collect();
            if shared.is_empty() {
                return false;
            }
            // fd_set attrs use canonical casing; signatures are lowercase.
            let canon: BTreeSet<String> =
                shared.iter().filter_map(|a| rel.canonical_attr(a).map(str::to_string)).collect();
            let closure: BTreeSet<String> =
                fds.closure(canon).iter().map(|a| a.to_lowercase()).collect();
            member.is_subset(&closure) || group_union.is_subset(&closure)
        };
        let mut assigned = vec![false; stmt.from.len()];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for &seed in &indices {
            if assigned[seed] {
                continue;
            }
            assigned[seed] = true;
            let mut group = vec![seed];
            let mut group_union = signature(seed);
            loop {
                let next = indices.iter().copied().find(|&fi| {
                    !assigned[fi]
                        && is_linked(&group, fi)
                        && group.iter().all(|&m| signature(m) != signature(fi))
                        && lossless(&group_union, fi)
                });
                match next {
                    Some(fi) => {
                        assigned[fi] = true;
                        group_union.extend(signature(fi));
                        group.push(fi);
                    }
                    None => break,
                }
            }
            groups.push(group);
        }

        for members in groups {
            if members.len() < 2 {
                continue;
            }
            let mut union: BTreeSet<String> = BTreeSet::new();
            for &fi in &members {
                union.extend(signature(fi));
            }
            let covers_key =
                keys.iter().any(|k| k.iter().all(|a| union.contains(&a.to_lowercase())));
            if covers_key {
                return Some((members, rel.name.clone()));
            }
        }
    }
    None
}

/// Replaces `members` (FROM indices) with one instance of `origin`,
/// rewriting references and dropping now-trivial join predicates.
fn apply_collapse(stmt: &mut SelectStatement, members: &[usize], origin: &str) {
    let keep = members[0];
    let new_alias = stmt.from[keep].alias().to_string();
    let member_aliases: HashSet<String> =
        members.iter().map(|&fi| stmt.from[fi].alias().to_lowercase()).collect();

    stmt.from[keep] = TableExpr::Relation { name: origin.to_string(), alias: new_alias.clone() };
    let mut to_remove: Vec<usize> = members[1..].to_vec();
    to_remove.sort_unstable_by(|a, b| b.cmp(a));
    for fi in to_remove {
        stmt.from.remove(fi);
    }

    let fix = |c: &mut ColumnRef| {
        if member_aliases.contains(&c.qualifier.to_lowercase()) {
            c.qualifier = new_alias.clone();
        }
    };
    for item in &mut stmt.items {
        match item {
            SelectItem::Column { col, .. } => fix(col),
            SelectItem::Aggregate { arg, .. } => fix(arg),
        }
    }
    for c in &mut stmt.group_by {
        fix(c);
    }
    let mut new_preds = Vec::with_capacity(stmt.predicates.len());
    for mut p in std::mem::take(&mut stmt.predicates) {
        match &mut p {
            Predicate::JoinEq(a, b) => {
                fix(a);
                fix(b);
                let trivial = a.qualifier.eq_ignore_ascii_case(&b.qualifier)
                    && a.column.eq_ignore_ascii_case(&b.column);
                if !trivial {
                    new_preds.push(p);
                }
            }
            Predicate::Contains(c, _) | Predicate::Eq(c, _) => {
                fix(c);
                new_preds.push(p);
            }
        }
    }
    stmt.predicates = new_preds;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::disambiguate;
    use crate::matching::{Matcher, TermRole};
    use crate::pattern::generate_patterns;
    use crate::query::{KeywordQuery, Operator, Term};
    use crate::rank::rank_patterns;
    use crate::translate::{translate_ex, TranslateOptions, Translation};
    use aqks_datasets::university;
    use aqks_orm::OrmGraph;
    use aqks_relational::{NormalizedView, Value};
    use aqks_sqlgen::{execute, AggFunc};

    /// Full unnormalized pipeline on Figure 8's Enrolment database.
    fn fig8_translation(q: &str) -> (Translation, aqks_relational::Database, DatabaseSchema) {
        let db = university::enrolment_fig8();
        let view = NormalizedView::build(&db.schema());
        let namespace = view.schema();
        let graph = OrmGraph::build(&namespace).unwrap();
        let matcher = Matcher::unnormalized(&db, view.clone());
        let query = KeywordQuery::parse(q).unwrap();
        let matches: Vec<_> = query
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                Term::Basic(text) => {
                    let role = if query.is_operand(i) {
                        match query.terms[i - 1] {
                            Term::Op(Operator::Agg(AggFunc::Count))
                            | Term::Op(Operator::GroupBy) => TermRole::CountGroupByOperand,
                            _ => TermRole::AggOperand,
                        }
                    } else {
                        TermRole::Free
                    };
                    matcher.matches(&db, text, role).unwrap()
                }
                Term::Op(_) => Vec::new(),
            })
            .collect();
        let ps = generate_patterns(&query, &matches, &graph, &namespace).unwrap();
        let ps = rank_patterns(disambiguate(ps, &namespace));
        let t = translate_ex(&ps[0], &graph, &namespace, Some(&view), &TranslateOptions::default())
            .unwrap();
        let orig = db.schema();
        (t, db, orig)
    }

    /// Example 9: the unrewritten statement has 5 subqueries over
    /// Enrolment; it computes the correct per-Green counts.
    #[test]
    fn example9_translation() {
        let (t, db, _) = fig8_translation("Green George COUNT Code");
        let sub = t.stmt.from.iter().filter(|f| matches!(f, TableExpr::Derived { .. })).count();
        assert_eq!(sub, 5, "{}", t.stmt);
        let r = execute(&t.stmt, &db).unwrap().sorted();
        assert_eq!(r.len(), 2, "one row per Green\n{}\n{r}", t.stmt);
        assert_eq!(r.rows[0].last().unwrap(), &Value::Int(1));
        assert_eq!(r.rows[1].last().unwrap(), &Value::Int(2));
    }

    /// Example 10: rewriting collapses to two Enrolment instances and the
    /// answers are unchanged.
    #[test]
    fn example10_rewrite() {
        let (t, db, orig) = fig8_translation("Green George COUNT Code");
        let before = execute(&t.stmt, &db).unwrap().sorted();
        let rewritten = rewrite(&t.stmt, &t.derived_keys, &orig, &RewriteOptions::default());
        let after = execute(&rewritten, &db).unwrap().sorted();
        assert_eq!(before.rows, after.rows, "rewrite preserves answers\n{rewritten}");
        assert_eq!(rewritten.from.len(), 2, "collapsed to Enrolment R1, R2: {rewritten}");
        assert!(rewritten
            .from
            .iter()
            .all(|f| matches!(f, TableExpr::Relation { name, .. } if name == "Enrolment")));
    }

    /// Rules 1 and 2 alone: projections pruned, selections pushed.
    #[test]
    fn rules_1_and_2_independent() {
        let (t, db, orig) = fig8_translation("Green George COUNT Code");
        let opts = RewriteOptions {
            prune_projections: true,
            push_selections: true,
            collapse_joins: false,
        };
        let rewritten = rewrite(&t.stmt, &t.derived_keys, &orig, &opts);
        // Still 5 subqueries.
        assert_eq!(rewritten.from.len(), 5);
        // Conditions moved inside.
        assert!(
            rewritten.predicates.iter().all(|p| !matches!(p, Predicate::Contains(..))),
            "{rewritten}"
        );
        // Unused Age/Grade pruned from the student subqueries.
        let text = rewritten.to_string();
        assert!(!text.to_lowercase().contains("age"), "{text}");
        // Semantics preserved.
        let before = execute(&t.stmt, &db).unwrap().sorted();
        let after = execute(&rewritten, &db).unwrap().sorted();
        assert_eq!(before.rows, after.rows);
    }

    /// Rule 3 must not collapse a *lossy* join: two projections linked
    /// only through a common dependent attribute (x -> z, y -> z joined
    /// on z) are not a superkey projection of the original even though
    /// their attribute union covers its key.
    #[test]
    fn rule3_refuses_lossy_joins() {
        use aqks_relational::{AttrType, RelationSchema};
        use aqks_sqlgen::{AggFunc, ColumnRef, SelectItem, TableExpr};

        let mut r = RelationSchema::new("R");
        r.add_attr("x", AttrType::Int).add_attr("y", AttrType::Int).add_attr("z", AttrType::Int);
        r.set_primary_key(["x", "y"]);
        r.add_fd(["x"], ["z"]);
        r.add_fd(["y"], ["z"]);
        let original = aqks_relational::DatabaseSchema { relations: vec![r] };

        let proj = |attrs: &[&str]| SelectStatement {
            distinct: true,
            items: attrs
                .iter()
                .map(|a| SelectItem::Column {
                    col: ColumnRef::new("R", a.to_string()),
                    alias: None,
                })
                .collect(),
            from: vec![TableExpr::Relation { name: "R".into(), alias: "R".into() }],
            ..Default::default()
        };
        let stmt = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: ColumnRef::new("A", "x"),
                distinct: false,
                alias: "n".into(),
            }],
            from: vec![
                TableExpr::Derived { query: Box::new(proj(&["x", "z"])), alias: "A".into() },
                TableExpr::Derived { query: Box::new(proj(&["y", "z"])), alias: "B".into() },
            ],
            predicates: vec![Predicate::JoinEq(ColumnRef::new("A", "z"), ColumnRef::new("B", "z"))],
            ..Default::default()
        };
        let opts = RewriteOptions {
            prune_projections: false,
            push_selections: false,
            collapse_joins: true,
        };
        let rewritten = rewrite(&stmt, &HashMap::new(), &original, &opts);
        assert_eq!(rewritten.from.len(), 2, "lossy join must stay un-collapsed: {rewritten}");
        assert!(rewritten.from.iter().all(|f| matches!(f, TableExpr::Derived { .. })));
    }

    /// Rule 1 never prunes the derived key out of a DISTINCT projection.
    #[test]
    fn rule1_protects_keys() {
        let (t, _, orig) = fig8_translation("Green George COUNT Code");
        let opts = RewriteOptions {
            prune_projections: true,
            push_selections: false,
            collapse_joins: false,
        };
        let rewritten = rewrite(&t.stmt, &t.derived_keys, &orig, &opts);
        for f in &rewritten.from {
            if let TableExpr::Derived { query, alias } = f {
                if let Some(keys) = t.derived_keys.get(alias.as_str()) {
                    for k in keys {
                        assert!(
                            query.items.iter().any(|i| i.output_name().eq_ignore_ascii_case(k)),
                            "key {k} kept in {alias}: {query}"
                        );
                    }
                }
            }
        }
    }
}
