//! Bibliometric queries on the synthetic ACM Digital Library (Table 4's
//! A1–A8 plus a few extras), demonstrating ambiguity handling: editors
//! who share a surname, papers that share a title, publishers whose names
//! overlap.
//!
//! ```text
//! cargo run --example acmdl_bibliometrics
//! ```

use aqks::core::Engine;
use aqks::datasets::{generate_acmdl, AcmdlConfig};

const QUERIES: &[(&str, &str)] = &[
    ("A1", "proceeding AVG pages"),
    ("A2", "COUNT paper GROUPBY proceeding SIGMOD"),
    ("A3", "COUNT proceeding editor Smith"),
    ("A4", "paper MAX date Gill"),
    ("A5", r#"COUNT author "database tuning""#),
    ("A6", "COUNT paper MAX date IEEE"),
    ("A7", "COUNT paper author John Mary"),
    ("A8", "COUNT editor SIGIR CIKM"),
    // Beyond the paper's workload: nested aggregate over the library.
    ("X1", "AVG COUNT paper GROUPBY proceeding"),
    ("X2", "MAX COUNT paper GROUPBY author"),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = generate_acmdl(&AcmdlConfig::small());
    println!("synthetic ACMDL: {} tuples\n", db.total_rows());
    let engine = Engine::new(db)?;

    for (id, query) in QUERIES {
        println!("==== {id}: {query} ====");
        match engine.answer(query, 1) {
            Ok(answers) => {
                let a = &answers[0];
                println!("pattern: {}", a.pattern_description);
                println!("{}", a.sql_text);
                println!("-> {} answer(s)", a.result.len());
                for row in a.result.rows.iter().take(5) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("   {}", cells.join(" | "));
                }
            }
            Err(e) => println!("error: {e}"),
        }
        println!();
    }
    Ok(())
}
