//! Morsel-driven parallel task execution for the operator pipeline.
//!
//! [`run_tasks`] is the one concurrency primitive the executor uses: a
//! fixed task count is handed to a scoped worker pool that pulls task
//! indices from a shared atomic cursor (work-stealing over "morsels").
//! Results land in per-task slots so callers always see them in task
//! order, regardless of which worker ran what — the cornerstone of the
//! executor's determinism guarantee.
//!
//! Cooperative cancellation: the ambient [`aqks_guard`] governor is
//! captured on the calling thread (thread-local installs don't cross
//! into workers) and its deadline is re-checked before every task, so a
//! tripped budget stops all workers within one morsel. Row charging
//! stays on the calling thread at the pre-existing charge sites, which
//! keeps budget accounting byte-identical across thread counts.
//!
//! Observability: when a recorder is installed and the parallel path is
//! actually taken, a `par:<site>` span wraps the pool and each worker
//! records a `worker` child span with its completed-task count, using
//! the cross-thread `SpanHandle` API. Always-on metrics mirror the same
//! numbers into the global registry: each worker accumulates its task
//! count locally and merges it with a single atomic add at scope exit,
//! so totals are exact regardless of scheduling or thread count.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use aqks_obs::metrics::{Counter, LabeledCounter};

use crate::exec::ExecError;

/// Completed parallel tasks, labeled by call site. Each worker adds its
/// local tally exactly once when it exits, so the per-site total equals
/// the task count of every pool run at that site.
static PAR_TASKS: LabeledCounter = LabeledCounter::new("aqks_par_tasks", "site");

/// Worker-pool launches that actually took the parallel path.
static PAR_POOLS: Counter = Counter::new("aqks_par_pools");

/// Rows per parallel work unit handed to a worker at a time.
pub(crate) const MORSEL_SIZE: usize = 2048;

/// Inputs smaller than this stay on the sequential path even when more
/// threads are available — below it, pool overhead exceeds the win.
pub(crate) const PAR_THRESHOLD: usize = 4096;

/// Knobs controlling how a plan is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for parallel operator sections. `1` (the default)
    /// selects the exact sequential legacy code paths.
    pub threads: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { threads: 1 }
    }
}

impl ExecOptions {
    /// Options running `n` worker threads (clamped to at least 1).
    pub fn with_threads(n: usize) -> ExecOptions {
        ExecOptions { threads: n.max(1) }
    }
}

/// Recovers a poisoned mutex: a worker panicking mid-store cannot leave
/// the slot table unreadable (the panic still propagates via the scope).
pub(crate) fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `n` independent tasks on up to `threads` workers and returns
/// their results in task order. Errors are deterministic: the
/// lowest-index failing task wins, matching what a sequential run would
/// report first.
pub(crate) fn run_tasks<T, F>(
    threads: usize,
    n: usize,
    site: &'static str,
    task: F,
) -> Result<Vec<T>, ExecError>
where
    T: Send,
    F: Fn(usize) -> Result<T, ExecError> + Sync,
{
    let gov = aqks_guard::current();
    let workers = threads.min(n).max(1);
    if workers <= 1 {
        // Inline path: no pool, no spans — identical to pre-parallel code.
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if let Some(g) = &gov {
                g.check_deadline(site)?;
            }
            out.push(task(i)?);
        }
        return Ok(out);
    }

    let span = aqks_obs::current().map(|rec| rec.span(format!("par:{site}")));
    let handle = span.as_ref().map(|s| s.handle());
    if aqks_obs::metrics::enabled() {
        PAR_POOLS.add(1);
    }

    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<T, ExecError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let wspan = handle.as_ref().map(|h| h.child("worker"));
                let mut done = 0u64;
                loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let res = match &gov {
                        Some(g) => {
                            g.check_deadline(site).map_err(ExecError::from).and_then(|_| task(i))
                        }
                        None => task(i),
                    };
                    let is_err = res.is_err();
                    *relock(&slots[i]) = Some(res);
                    if is_err {
                        failed.store(true, Ordering::Relaxed);
                        break;
                    }
                    done += 1;
                }
                if let Some(s) = &wspan {
                    s.add("par.tasks", done);
                }
                // One merge per worker lifetime: the handoff to the
                // shared registry happens here, not per task, so the
                // hot loop stays free of shared-cacheline traffic.
                if done > 0 && aqks_obs::metrics::enabled() {
                    PAR_TASKS.add(site, done);
                }
            });
        }
    });

    if let Some(s) = &span {
        s.add("par.workers", workers as u64);
    }

    let results: Vec<Option<Result<T, ExecError>>> =
        slots.into_iter().map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner())).collect();
    // Deterministic error selection: scan in task order.
    for r in &results {
        if let Some(Err(e)) = r {
            return Err(e.clone());
        }
    }
    let mut out = Vec::with_capacity(n);
    for r in results {
        match r {
            Some(Ok(v)) => out.push(v),
            // Unreached in practice: slots stay empty only after another
            // task failed, and that error returned above.
            _ => return Err(ExecError::Unsupported("parallel task cancelled".into())),
        }
    }
    Ok(out)
}

const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<ExecOptions>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1, 2, 4, 8] {
            let out = run_tasks(threads, 100, "test.par", |i| Ok(i * 3)).unwrap();
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        // Whatever the scheduling, the reported failure is task 7's.
        let out: Result<Vec<usize>, _> = run_tasks(4, 64, "test.par", |i| {
            if i % 7 == 0 && i > 0 {
                Err(ExecError::Unsupported(format!("task {i}")))
            } else {
                Ok(i)
            }
        });
        assert_eq!(out, Err(ExecError::Unsupported("task 7".into())));
    }

    #[test]
    fn failure_stops_the_pool_early() {
        let started = AtomicU64::new(0);
        let _ = run_tasks::<(), _>(4, 10_000, "test.par", |i| {
            started.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                Err(ExecError::Unsupported("boom".into()))
            } else {
                Ok(())
            }
        });
        // Not all 10k tasks ran: the failed flag short-circuits workers.
        assert!(started.load(Ordering::Relaxed) < 10_000);
    }

    #[test]
    fn worker_task_counters_merge_exactly_across_threads() {
        // A unique site label partitions this test's registry deltas
        // from concurrent tests, so the comparison can be exact.
        aqks_obs::metrics::set_enabled(true);
        let delta = |snap: &aqks_obs::metrics::Snapshot| {
            snap.find("aqks_par_tasks", Some("test.par.merge"))
                .map(|m| match &m.value {
                    aqks_obs::metrics::MetricValue::Counter(v) => *v,
                    _ => panic!("aqks_par_tasks is a counter"),
                })
                .unwrap_or(0)
        };
        let before = delta(&aqks_obs::metrics::global().snapshot());
        for _ in 0..4 {
            run_tasks(8, 1_000, "test.par.merge", |i| {
                std::hint::black_box(i);
                Ok(())
            })
            .unwrap();
        }
        let after = delta(&aqks_obs::metrics::global().snapshot());
        // Every task is counted exactly once, no matter which worker
        // ran it or how the morsels interleaved.
        assert_eq!(after - before, 4_000);
    }

    #[test]
    fn tasks_actually_run_on_multiple_threads() {
        let ids = Mutex::new(HashSet::new());
        run_tasks(4, 256, "test.par", |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::yield_now();
            Ok(())
        })
        .unwrap();
        assert!(ids.into_inner().unwrap().len() > 1);
    }
}
