//! Plan-verification sweep over the evaluation workloads.
//!
//! Where [`crate::analysis`] checks the *SQL* both engines generate,
//! this sweep checks the *physical plans* the engine actually executes:
//! every interpretation of every workload query — across TPC-H, ACMDL,
//! their unnormalized primes, and the paper's university example — is
//! lowered to a `PlanNode` tree and run through `aqks-plancheck`. The
//! acceptance bar is 100%: a single rejection means the planner emitted
//! a plan whose execution could silently disagree with its statement.
//!
//! The sweep also exercises the fingerprint contract the plan-caching
//! roadmap item depends on: fingerprints must be identical across two
//! `plan()` calls for the same statement (determinism) and must not
//! collide across structurally different plans of a workload
//! (injectivity up to cardinality estimates).

use aqks_core::Engine;
use aqks_datasets::university;
use aqks_relational::Database;

use crate::workload::{
    acmdl_database, acmdl_prime_database, acmdl_queries, tpch_database, tpch_prime_database,
    tpch_queries, EvalQuery, Scale,
};

/// Outcome of verifying every interpretation of one workload query.
#[derive(Debug, Clone)]
pub struct PlanCheckRow {
    /// Workload query id (T1…T8, A1…A8, U1…).
    pub id: String,
    /// Interpretations planned and verified.
    pub plans: usize,
    /// Rendered verifier rejections (empty on a clean row).
    pub rejections: Vec<String>,
    /// Normalized fingerprint of each interpretation's plan.
    pub fingerprints: Vec<u64>,
}

impl PlanCheckRow {
    /// True when every plan of this query verified clean.
    pub fn is_clean(&self) -> bool {
        self.rejections.is_empty()
    }
}

/// Verifies every plan the engine produces for `queries` over `db`.
///
/// Each statement is planned twice to assert fingerprint determinism;
/// a nondeterministic fingerprint is reported as a rejection (it would
/// silently disable plan caching).
pub fn verify_workload_plans(db: &Database, queries: &[EvalQuery], k: usize) -> Vec<PlanCheckRow> {
    let engine = Engine::new(db.clone()).expect("engine construction");
    queries
        .iter()
        .map(|q| {
            let mut row = PlanCheckRow {
                id: q.id.to_string(),
                plans: 0,
                rejections: Vec::new(),
                fingerprints: Vec::new(),
            };
            let generated = match engine.generate(q.text, k) {
                Ok(g) => g,
                Err(e) => {
                    row.rejections.push(format!("{}: generate failed: {e}", q.id));
                    return row;
                }
            };
            for g in &generated {
                let plan = match aqks_sqlgen::plan(&g.sql, db) {
                    Ok(p) => p,
                    Err(e) => {
                        row.rejections.push(format!("{}: plan failed: {e}", q.id));
                        continue;
                    }
                };
                row.plans += 1;
                if let Err(e) = aqks_plancheck::verify(&plan, db, Some(&g.sql)) {
                    row.rejections.push(format!("{}: {e}", q.id));
                }
                let fp = aqks_plancheck::fingerprint(&plan);
                let replanned = aqks_sqlgen::plan(&g.sql, db).expect("replan succeeds");
                if aqks_plancheck::fingerprint(&replanned) != fp {
                    row.rejections.push(format!("{}: nondeterministic fingerprint", q.id));
                }
                row.fingerprints.push(fp);
            }
            row
        })
        .collect()
}

/// The university workload: the paper's running examples (Sections 1-3)
/// as keyword queries.
pub fn university_queries() -> Vec<EvalQuery> {
    vec![
        EvalQuery { id: "U1", text: "Green SUM Credit", description: "Example 1" },
        EvalQuery { id: "U2", text: "Green George COUNT Code", description: "Example 2" },
        EvalQuery { id: "U3", text: "Java SUM Price", description: "textbook price total" },
        EvalQuery { id: "U4", text: "Engineering COUNT Department", description: "faculty size" },
        EvalQuery {
            id: "U5",
            text: "AVG COUNT Lecturer GROUPBY Course",
            description: "nested aggregate",
        },
    ]
}

/// One workload's sweep results.
#[derive(Debug, Clone)]
pub struct PlanSweep {
    /// Workload name (`university`, `tpch`, `acmdl`, `tpch-prime`, …).
    pub workload: &'static str,
    /// Per-query outcomes.
    pub rows: Vec<PlanCheckRow>,
}

impl PlanSweep {
    /// Total plans verified in this workload.
    pub fn plans(&self) -> usize {
        self.rows.iter().map(|r| r.plans).sum()
    }

    /// All rejection messages in this workload.
    pub fn rejections(&self) -> Vec<&str> {
        self.rows.iter().flat_map(|r| r.rejections.iter().map(String::as_str)).collect()
    }
}

/// Runs the plan-verification sweep over all bundled workloads:
/// university plus TPC-H/ACMDL in their normalized and unnormalized
/// (prime) forms.
pub fn run_plan_sweep(scale: Scale, k: usize) -> Vec<PlanSweep> {
    vec![
        PlanSweep {
            workload: "university",
            rows: verify_workload_plans(&university::normalized(), &university_queries(), k),
        },
        PlanSweep {
            workload: "tpch",
            rows: verify_workload_plans(&tpch_database(scale), &tpch_queries(), k),
        },
        PlanSweep {
            workload: "acmdl",
            rows: verify_workload_plans(&acmdl_database(scale), &acmdl_queries(), k),
        },
        PlanSweep {
            workload: "tpch-prime",
            rows: verify_workload_plans(&tpch_prime_database(scale), &tpch_queries(), k),
        },
        PlanSweep {
            workload: "acmdl-prime",
            rows: verify_workload_plans(&acmdl_prime_database(scale), &acmdl_queries(), k),
        },
    ]
}

/// Renders the sweep as a markdown table.
pub fn render_markdown(sweeps: &[PlanSweep]) -> String {
    let mut out = String::from("## Plan verification sweep\n\n");
    out.push_str("| workload | queries | plans | rejected |\n");
    out.push_str("|---|---:|---:|---:|\n");
    for s in sweeps {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            s.workload,
            s.rows.len(),
            s.plans(),
            s.rejections().len()
        ));
    }
    out
}
