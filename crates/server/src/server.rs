//! The long-running concurrent query service.
//!
//! One [`Server`] owns a TCP listener, an acceptor thread, a bounded
//! admission queue, and a fixed pool of query workers sharing a single
//! immutable [`Engine`] via `Arc`. The robustness contract, in order of
//! importance:
//!
//! 1. **Typed rejection, never a dropped connection.** Every failure a
//!    client can observe mid-protocol is a one-line `ERR` frame with a
//!    closed taxonomy code and an explicit retry class — queue overflow
//!    and queue aging are `overloaded`, drain is `shutdown`, malformed
//!    frames are `protocol`, engine bugs and caught panics are
//!    `internal`. Connections are only closed by `QUIT`, idle reaping,
//!    or unrecoverable socket errors.
//! 2. **Graceful degradation.** Per-request deadlines (client hints
//!    clamped by server policy) become a guard [`Budget`]; exhaustion
//!    surfaces as an `OK … degraded=<kind>@<site>` answer carrying
//!    whatever completed before the trip — the request *succeeds* with
//!    less, it does not fail.
//! 3. **Bounded everything.** The admission queue has a depth cap
//!    (reject at enqueue) and an age cap (shed at dequeue); connections
//!    have a count cap, read/write timeouts, an idle reaper, and a
//!    maximum frame length with skip-to-newline recovery.
//! 4. **Clean drain.** Shutdown stops accepting, lets queued and
//!    in-flight requests finish, answers late arrivals with `shutdown`,
//!    and joins every pool thread.

use std::collections::VecDeque;
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aqks_core::{CoreError, Engine};
use aqks_guard::Budget;
use aqks_obs::metrics::{Counter, Gauge, Histogram, LabeledCounter, Unit};

use crate::protocol::{
    parse_frame, Answer, ClientFrame, ErrorCode, Request, Response, WireError, WireInterp,
};

/// Accepted connections.
static M_ACCEPTED: Counter = Counter::new("aqks_server_accepted");
/// Connections currently open.
static M_CONNS: Gauge = Gauge::new("aqks_server_connections");
/// Query frames admitted to the queue.
static M_REQUESTS: Counter = Counter::new("aqks_server_requests");
/// Requests shed by admission control, labeled by reason.
static M_SHED: LabeledCounter = LabeledCounter::new("aqks_server_shed", "reason");
/// Error frames sent, labeled by taxonomy code.
static M_ERRORS: LabeledCounter = LabeledCounter::new("aqks_server_errors", "code");
/// Answers that degraded under their budget.
static M_DEGRADED: Counter = Counter::new("aqks_server_degraded");
/// Admission-queue depth sampled at enqueue.
static M_QUEUE_DEPTH: Gauge = Gauge::new("aqks_server_queue_depth");
/// Time spent waiting in the admission queue.
static M_QUEUE_WAIT_NS: Histogram = Histogram::new("aqks_server_queue_wait_ns", Unit::Nanos);
/// Worker execution time per request.
static M_EXEC_NS: Histogram = Histogram::new("aqks_server_exec_ns", Unit::Nanos);

/// Server policy: listener address, pool sizing, admission control,
/// deadline clamps, and connection-lifecycle hardening knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Query worker threads sharing the engine.
    pub workers: usize,
    /// Admission queue depth; a query arriving at a full queue is
    /// rejected with `overloaded` without executing.
    pub queue_depth: usize,
    /// Maximum time a request may wait in the queue; older requests are
    /// shed with `overloaded` at dequeue (their client has likely given
    /// up — executing them wastes a worker on a dead request).
    pub max_queue_wait: Duration,
    /// Deadline applied when the client sends no `timeout_ms` hint.
    pub default_deadline: Duration,
    /// Hard ceiling on any per-request deadline; client hints are
    /// clamped here, so no request can hold a worker longer.
    pub max_deadline: Duration,
    /// Policy cap on intermediate rows per request (`None` = unlimited);
    /// client hints are clamped to at most this.
    pub max_rows: Option<u64>,
    /// Policy cap on enumerated patterns per request.
    pub max_patterns: Option<u64>,
    /// Ceiling on the `k` (top-k interpretations) a client may request.
    pub max_k: usize,
    /// Maximum concurrently open connections; excess connects receive
    /// one `overloaded` frame and are closed.
    pub max_connections: usize,
    /// Socket read poll granularity; also bounds how fast drain and
    /// idle reaping are noticed.
    pub read_timeout: Duration,
    /// Socket write timeout; a client that stops reading its responses
    /// is disconnected rather than blocking a connection thread forever.
    pub write_timeout: Duration,
    /// Connections idle longer than this are reaped.
    pub idle_timeout: Duration,
    /// Maximum request-line length in bytes; longer frames get a
    /// `protocol` error and the read recovers at the next newline.
    pub max_line_bytes: usize,
    /// How long [`Server::shutdown`] waits for connection threads to
    /// notice the drain and exit.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            max_queue_wait: Duration::from_secs(2),
            default_deadline: Duration::from_secs(2),
            max_deadline: Duration::from_secs(10),
            max_rows: None,
            max_patterns: None,
            max_k: 16,
            max_connections: 256,
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(300),
            max_line_bytes: 64 * 1024,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Cumulative serving statistics (authoritative, independent of the
/// metrics registry's enabled flag — the bench gates on these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused at the connection cap.
    pub refused: u64,
    /// Query frames admitted to the queue.
    pub admitted: u64,
    /// Queries rejected because the queue was full.
    pub shed_depth: u64,
    /// Queries shed because they aged out in the queue.
    pub shed_age: u64,
    /// Successful answers (including degraded ones).
    pub ok: u64,
    /// Answers that degraded under their budget.
    pub degraded: u64,
    /// `ERR` frames sent (all codes, including sheds).
    pub errors: u64,
}

impl ServerStats {
    /// Total shed requests (depth + age).
    pub fn shed(&self) -> u64 {
        self.shed_depth + self.shed_age
    }
}

#[derive(Default)]
struct StatsCells {
    accepted: AtomicU64,
    refused: AtomicU64,
    admitted: AtomicU64,
    shed_depth: AtomicU64,
    shed_age: AtomicU64,
    ok: AtomicU64,
    degraded: AtomicU64,
    errors: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed_depth: self.shed_depth.load(Ordering::Relaxed),
            shed_age: self.shed_age.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// One admitted query waiting for a worker.
struct Job {
    request: Request,
    enqueued: Instant,
    reply: mpsc::SyncSender<Response>,
}

struct Shared {
    engine: Arc<Engine>,
    cfg: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// Set once by [`Server::shutdown`]; acceptor, workers, and
    /// connection threads all poll it.
    draining: AtomicBool,
    /// Open connection threads (for the cap and the drain wait).
    conns: AtomicUsize,
    stats: StatsCells,
}

/// Compile-time proof that everything crossing the worker-pool boundary
/// is thread-safe (mirrors `sqlgen::par`): the shared state, the queued
/// jobs, and the reply payloads.
const fn assert_send_sync<T: Send + Sync>() {}
const fn assert_send<T: Send>() {}
const _: () = assert_send_sync::<Shared>();
const _: () = assert_send_sync::<Arc<Engine>>();
const _: () = assert_send_sync::<ServerConfig>();
const _: () = assert_send_sync::<Response>();
const _: () = assert_send_sync::<Budget>();
const _: () = assert_send::<Job>();

/// A running query service. Dropping the handle without calling
/// [`Server::shutdown`] aborts ungracefully (threads are detached);
/// call `shutdown` for a clean drain.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the acceptor and worker pool. The
    /// engine is shared immutably across every worker.
    pub fn start(engine: Arc<Engine>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        // The acceptor polls so it can notice drain without a wakeup
        // connection; granularity is the accept loop's sleep below.
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            engine,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            stats: StatsCells::default(),
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aqks-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("aqks-acceptor".to_string())
                .spawn(move || accept_loop(listener, &shared))
                .expect("spawn acceptor thread")
        };
        Ok(Server { shared, addr, acceptor: Some(acceptor), workers })
    }

    /// The bound listen address (resolves `:0` to the chosen port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the cumulative serving statistics.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot()
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.queue).len()
    }

    /// Drains and stops the service: stop accepting, finish queued and
    /// in-flight requests, answer late arrivals with `shutdown`, join
    /// the acceptor and every worker, and wait (up to the configured
    /// drain timeout) for connection threads to close.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let deadline = Instant::now() + self.shared.cfg.drain_timeout;
        while self.shared.conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                M_ACCEPTED.add(1);
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                if aqks_guard::failpoint::should_fire("server.accept") {
                    // Injected accept fault: the connection still gets a
                    // typed frame before the close, never a silent drop.
                    refuse(stream, ErrorCode::Fault, "injected fault at `server.accept`", shared);
                    continue;
                }
                let open = shared.conns.load(Ordering::SeqCst);
                if open >= shared.cfg.max_connections {
                    shared.stats.refused.fetch_add(1, Ordering::Relaxed);
                    refuse(
                        stream,
                        ErrorCode::Overloaded,
                        format!("connection limit reached ({open} open)"),
                        shared,
                    );
                    continue;
                }
                shared.conns.fetch_add(1, Ordering::SeqCst);
                M_CONNS.add(1);
                let conn_shared = Arc::clone(shared);
                let spawned =
                    std::thread::Builder::new().name("aqks-conn".to_string()).spawn(move || {
                        connection_loop(stream, &conn_shared);
                        conn_shared.conns.fetch_sub(1, Ordering::SeqCst);
                        M_CONNS.add(-1);
                    });
                if spawned.is_err() {
                    shared.conns.fetch_sub(1, Ordering::SeqCst);
                    M_CONNS.add(-1);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Sends one `ERR` frame and closes — the polite version of refusing a
/// connection the server cannot serve.
fn refuse(stream: TcpStream, code: ErrorCode, msg: impl Into<String>, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let mut w = BufWriter::new(stream);
    let _ = writeln!(w, "{}", WireError::new(code, msg).render());
    let _ = w.flush();
    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
    M_ERRORS.add(code.name(), 1);
}

/// Outcome of reading one frame line off the socket.
enum FrameRead {
    /// A complete line (without the trailing LF).
    Line(String),
    /// The poll tick elapsed with no data — check drain/idle and retry.
    Tick,
    /// The line exceeded the length cap; the reader skipped to the next
    /// newline so the stream is re-synchronized.
    TooLong,
    /// EOF or an unrecoverable socket error.
    Closed,
}

/// A bounded, timeout-aware line reader. `BufRead::read_line` would
/// buffer an attacker-length line; this reader refuses past the cap and
/// then discards until the next newline, so one bad frame never kills
/// the connection or the process.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
    max: usize,
    /// When set, the current line already overflowed and bytes are
    /// being discarded until the next newline.
    discarding: bool,
}

impl FrameReader {
    fn new(stream: TcpStream, max: usize) -> FrameReader {
        FrameReader { stream, buf: Vec::new(), max, discarding: false }
    }

    fn read(&mut self) -> FrameRead {
        let mut byte = [0u8; 1];
        loop {
            match self.stream.read(&mut byte) {
                Ok(0) => return FrameRead::Closed,
                Ok(_) => {
                    if byte[0] == b'\n' {
                        if self.discarding {
                            self.discarding = false;
                            self.buf.clear();
                            return FrameRead::TooLong;
                        }
                        let line = String::from_utf8_lossy(&self.buf).into_owned();
                        self.buf.clear();
                        return FrameRead::Line(line);
                    }
                    if self.discarding {
                        continue;
                    }
                    self.buf.push(byte[0]);
                    if self.buf.len() > self.max {
                        self.discarding = true;
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return FrameRead::Tick;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return FrameRead::Closed,
            }
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(write_half);
    let mut reader = FrameReader::new(stream, shared.cfg.max_line_bytes);
    let mut last_activity = Instant::now();

    loop {
        match reader.read() {
            FrameRead::Tick => {
                if shared.draining.load(Ordering::SeqCst) {
                    return; // drain: close idle connections promptly
                }
                if last_activity.elapsed() >= shared.cfg.idle_timeout {
                    return; // idle reaper
                }
            }
            FrameRead::Closed => return,
            FrameRead::TooLong => {
                last_activity = Instant::now();
                let err = WireError::new(
                    ErrorCode::Protocol,
                    format!("request line exceeds {} bytes", shared.cfg.max_line_bytes),
                );
                if send_error(&mut writer, shared, &err).is_err() {
                    return;
                }
            }
            FrameRead::Line(line) => {
                last_activity = Instant::now();
                if line.trim().is_empty() {
                    continue; // blank keep-alive lines are free
                }
                match parse_frame(&line) {
                    Ok(ClientFrame::Ping) => {
                        if write_line(&mut writer, "PONG").is_err() {
                            return;
                        }
                    }
                    Ok(ClientFrame::Quit) => {
                        let _ = write_line(&mut writer, "BYE");
                        return;
                    }
                    Ok(ClientFrame::Query(request)) => {
                        let response = admit_and_wait(request, shared);
                        let sent = match response {
                            Response::Ok(answer) => {
                                if aqks_guard::failpoint::should_fire("server.respond") {
                                    let err = WireError::new(
                                        ErrorCode::Fault,
                                        "injected fault at `server.respond`",
                                    );
                                    send_error(&mut writer, shared, &err)
                                } else {
                                    shared.stats.ok.fetch_add(1, Ordering::Relaxed);
                                    if answer.degraded.is_some() {
                                        shared.stats.degraded.fetch_add(1, Ordering::Relaxed);
                                        M_DEGRADED.add(1);
                                    }
                                    write_line(&mut writer, &answer.render())
                                }
                            }
                            Response::Err(err) => send_error(&mut writer, shared, &err),
                        };
                        if sent.is_err() {
                            return;
                        }
                    }
                    Err(reason) => {
                        let err = WireError::new(ErrorCode::Protocol, reason);
                        if send_error(&mut writer, shared, &err).is_err() {
                            return;
                        }
                    }
                }
            }
        }
    }
}

fn write_line(w: &mut BufWriter<TcpStream>, line: &str) -> std::io::Result<()> {
    writeln!(w, "{line}")?;
    w.flush()
}

fn send_error(
    w: &mut BufWriter<TcpStream>,
    shared: &Shared,
    err: &WireError,
) -> std::io::Result<()> {
    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
    M_ERRORS.add(err.code.name(), 1);
    write_line(w, &err.render())
}

/// Admission control: reject during drain, inject the enqueue fault,
/// enforce the depth cap, then enqueue and block (with a generous
/// upper bound) for the worker's reply.
fn admit_and_wait(request: Request, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::Err(WireError::new(ErrorCode::Shutdown, "server is draining"));
    }
    if aqks_guard::failpoint::should_fire("server.enqueue") {
        return Response::Err(WireError::new(
            ErrorCode::Fault,
            "injected fault at `server.enqueue`",
        ));
    }
    let (tx, rx) = mpsc::sync_channel(1);
    {
        let mut queue = lock(&shared.queue);
        if queue.len() >= shared.cfg.queue_depth {
            shared.stats.shed_depth.fetch_add(1, Ordering::Relaxed);
            M_SHED.add("depth", 1);
            return Response::Err(WireError::new(
                ErrorCode::Overloaded,
                format!("admission queue full (depth {})", shared.cfg.queue_depth),
            ));
        }
        queue.push_back(Job { request, enqueued: Instant::now(), reply: tx });
        M_QUEUE_DEPTH.set(queue.len() as i64);
        shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
        M_REQUESTS.add(1);
    }
    shared.queue_cv.notify_one();
    // Upper bound: worst-case queue wait + the clamped execution
    // deadline + slack. The budget's deadline fires long before this;
    // hitting it means a worker died mid-request.
    let bound = shared.cfg.max_queue_wait + shared.cfg.max_deadline + Duration::from_secs(5);
    match rx.recv_timeout(bound) {
        Ok(response) => response,
        Err(_) => Response::Err(WireError::new(
            ErrorCode::Internal,
            "worker did not produce a response (request lost)",
        )),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    M_QUEUE_DEPTH.set(queue.len() as i64);
                    break Some(job);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None; // queue drained and no more will arrive
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = q;
            }
        };
        let Some(job) = job else { return };
        let waited = job.enqueued.elapsed();
        M_QUEUE_WAIT_NS.observe(waited.as_nanos() as u64);
        let response = if waited > shared.cfg.max_queue_wait {
            shared.stats.shed_age.fetch_add(1, Ordering::Relaxed);
            M_SHED.add("age", 1);
            Response::Err(WireError::new(
                ErrorCode::Overloaded,
                format!("request aged out in queue ({} ms)", waited.as_millis()),
            ))
        } else {
            execute(&job.request, shared)
        };
        // The connection thread may have given up (bounded wait) or the
        // client disconnected; a failed send is not an error.
        let _ = job.reply.send(response);
    }
}

/// Builds the effective budget for one request: client hints clamped by
/// server policy. Deadlines are always set (the server never runs an
/// unbounded query); caps combine by minimum.
fn effective_budget(request: &Request, cfg: &ServerConfig) -> Budget {
    let deadline = request
        .timeout_ms
        .map(Duration::from_millis)
        .unwrap_or(cfg.default_deadline)
        .min(cfg.max_deadline);
    let mut budget = Budget::unlimited().with_timeout(deadline);
    if let Some(rows) = min_opt(request.max_rows, cfg.max_rows) {
        budget = budget.with_max_rows(rows);
    }
    if let Some(patterns) = min_opt(request.max_patterns, cfg.max_patterns) {
        budget = budget.with_max_patterns(patterns);
    }
    if let Some(interps) = request.max_interps {
        budget = budget.with_max_interpretations(interps);
    }
    budget
}

fn min_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (v, None) | (None, v) => v,
    }
}

/// Executes one admitted request on the shared engine. The whole body
/// runs behind `catch_unwind`: the engine shields its own pipeline, but
/// server-side code (and the injected worker panic used by the
/// regression test) must not poison the pool either — a panicking query
/// becomes a typed `internal` error and the worker keeps serving.
fn execute(request: &Request, shared: &Shared) -> Response {
    let t0 = Instant::now();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if aqks_guard::failpoint::should_fire("server.execute") {
            return Response::Err(WireError::new(
                ErrorCode::Fault,
                "injected fault at `server.execute`",
            ));
        }
        if aqks_guard::failpoint::should_fire("server.worker.panic") {
            panic!("injected panic at `server.worker.panic`");
        }
        let budget = effective_budget(request, &shared.cfg);
        let k = request.k.min(shared.cfg.max_k);
        match shared.engine.answer_governed(&request.text, k, &budget) {
            Ok(governed) => {
                let interpretations = governed
                    .value
                    .iter()
                    .map(|i| WireInterp {
                        sql: i.sql_text.clone(),
                        columns: i.result.columns.clone(),
                        rows: i
                            .result
                            .rows
                            .iter()
                            .map(|r| r.iter().map(|v| v.to_string()).collect())
                            .collect(),
                    })
                    .collect();
                let degraded = governed.exhaustion.map(|e| format!("{}@{}", e.kind, e.site));
                let partial = governed.exhaustion.is_some_and(|e| e.partial);
                Response::Ok(Answer { interpretations, degraded, partial, server_us: 0 })
            }
            Err(e) => Response::Err(map_core_error(&e)),
        }
    }));
    let elapsed = t0.elapsed();
    M_EXEC_NS.observe(elapsed.as_nanos() as u64);
    match result {
        Ok(Response::Ok(mut answer)) => {
            answer.server_us = elapsed.as_micros() as u64;
            Response::Ok(answer)
        }
        Ok(err) => err,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Response::Err(WireError::new(ErrorCode::Internal, format!("caught panic: {msg}")))
        }
    }
}

/// Maps engine errors onto the wire taxonomy. Budget trips do not reach
/// here in the normal path (`answer_governed` degrades them); a
/// `CoreError::Budget` leaking through is treated as degradation-shaped
/// but empty, i.e. an OK answer with a degraded flag and no rows.
fn map_core_error(e: &CoreError) -> WireError {
    match e {
        CoreError::Parse(m) => WireError::new(ErrorCode::Parse, m.clone()),
        CoreError::NoMatch(t) => {
            WireError::new(ErrorCode::NoMatch, format!("term `{t}` matches nothing"))
        }
        CoreError::BadOperand(m) => WireError::new(ErrorCode::Semantic, m.clone()),
        CoreError::NoPattern => {
            WireError::new(ErrorCode::Semantic, "no connected query pattern exists")
        }
        CoreError::Analysis(m) | CoreError::Exec(m) | CoreError::Schema(m) => {
            WireError::new(ErrorCode::Semantic, m.clone())
        }
        CoreError::Budget(t) => WireError::new(ErrorCode::Timeout, t.to_string()),
        CoreError::Fault(site) => {
            WireError::new(ErrorCode::Fault, format!("injected fault at `{site}`"))
        }
        CoreError::Internal(m) => WireError::new(ErrorCode::Internal, m.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_clamping_enforces_policy() {
        let cfg = ServerConfig {
            default_deadline: Duration::from_millis(500),
            max_deadline: Duration::from_secs(1),
            max_rows: Some(1000),
            ..ServerConfig::default()
        };
        // No hints: server defaults apply.
        let b = effective_budget(&Request::new("x"), &cfg);
        assert_eq!(b.timeout, Some(Duration::from_millis(500)));
        assert_eq!(b.max_rows, Some(1000));
        // Hints above policy are clamped down.
        let mut req = Request::new("x");
        req.timeout_ms = Some(60_000);
        req.max_rows = Some(1_000_000);
        let b = effective_budget(&req, &cfg);
        assert_eq!(b.timeout, Some(Duration::from_secs(1)));
        assert_eq!(b.max_rows, Some(1000));
        // Hints below policy are honored.
        req.timeout_ms = Some(10);
        req.max_rows = Some(5);
        req.max_patterns = Some(7);
        let b = effective_budget(&req, &cfg);
        assert_eq!(b.timeout, Some(Duration::from_millis(10)));
        assert_eq!(b.max_rows, Some(5));
        assert_eq!(b.max_patterns, Some(7));
    }

    #[test]
    fn core_errors_map_to_closed_taxonomy() {
        let cases = [
            (CoreError::Parse("p".into()), ErrorCode::Parse),
            (CoreError::NoMatch("zebra".into()), ErrorCode::NoMatch),
            (CoreError::BadOperand("b".into()), ErrorCode::Semantic),
            (CoreError::NoPattern, ErrorCode::Semantic),
            (CoreError::Analysis("a".into()), ErrorCode::Semantic),
            (CoreError::Internal("i".into()), ErrorCode::Internal),
            (CoreError::Fault("site"), ErrorCode::Fault),
        ];
        for (err, code) in cases {
            assert_eq!(map_core_error(&err).code, code, "{err:?}");
        }
    }
}
