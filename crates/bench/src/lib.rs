#![warn(missing_docs)]
//! # aqks-bench
//!
//! Shared setup for the Criterion benchmark suite. The benches (one
//! target per paper table/figure plus ablations and substrate
//! micro-benches) live in `benches/`:
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `fig11_tpch` | Figure 11(a): SQL-generation time, T1–T8, ours vs SQAK |
//! | `fig11_acmdl` | Figure 11(b): SQL-generation time, A1–A8, ours vs SQAK |
//! | `tables` | Tables 5/6/8/9: full generate+execute pipelines |
//! | `ablations` | the design-choice switches of DESIGN.md §4 (FK-projection dedup, object-id grouping, rewrite Rules 1–3) |
//! | `substrate` | index build, ORM graph build, 3NF synthesis, executor joins |
//! | `scaling` | engine construction vs. SQL generation across dataset sizes |

use aqks_core::Engine;
use aqks_eval::workload;
use aqks_eval::Scale;
use aqks_relational::Database;
use aqks_sqak::Sqak;

/// Both engines over the normalized TPC-H test database.
pub fn tpch_engines() -> (Engine, Sqak, Database) {
    let db = workload::tpch_database(Scale::Small);
    (Engine::new(db.clone()).unwrap(), Sqak::new(db.clone()), db)
}

/// Both engines over the normalized ACMDL test database.
pub fn acmdl_engines() -> (Engine, Sqak, Database) {
    let db = workload::acmdl_database(Scale::Small);
    (Engine::new(db.clone()).unwrap(), Sqak::new(db.clone()), db)
}

/// Both engines over the unnormalized TPCH' database.
pub fn tpch_prime_engines() -> (Engine, Sqak, Database) {
    let db = workload::tpch_prime_database(Scale::Small);
    (Engine::new(db.clone()).unwrap(), Sqak::new(db.clone()), db)
}

/// Both engines over the unnormalized ACMDL' database.
pub fn acmdl_prime_engines() -> (Engine, Sqak, Database) {
    let db = workload::acmdl_prime_database(Scale::Small);
    (Engine::new(db.clone()).unwrap(), Sqak::new(db.clone()), db)
}
