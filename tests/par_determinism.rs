//! Cross-thread-count determinism of the parallel executor.
//!
//! The columnar executor's contract is that the worker thread count is
//! invisible in every output: stabilized result tables, generated SQL,
//! and budget-exhaustion reports are byte-identical whether a plan runs
//! single-threaded or morsel-parallel. These tests pin that contract on
//! the bundled workloads, on randomized plans (fixed-seed, so every run
//! exercises the same cases), and on budget trips mid-parallel-work.

use std::time::Duration;

use aqks::core::{Budget, BudgetKind, Engine};
use aqks::datasets::{
    denormalize_acmdl, denormalize_tpch, generate_acmdl, generate_tpch, university, AcmdlConfig,
    TpchConfig,
};
use aqks::relational::{AttrType, Database, RelationSchema, Value};
use aqks::sqlgen::{
    execute, execute_with_opts, AggFunc, ColumnRef, ExecOptions, Predicate, SelectItem,
    SelectStatement, TableExpr,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Renders every answer of one engine run to a single comparable string:
/// SQL text, stabilized result table, and executor stats summary.
fn rendered_answers(engine: &Engine, query: &str, k: usize) -> String {
    let answers = engine.answer(query, k).unwrap_or_else(|e| panic!("`{query}`: {e}"));
    let mut out = String::new();
    for a in &answers {
        out.push_str(&a.sql_text);
        out.push('\n');
        out.push_str(&format!("{}\n", a.result));
    }
    out
}

fn assert_workload_deterministic(db: Database, queries: &[&str], label: &str) {
    let mut engine = Engine::new(db).expect("engine builds");
    let mut baseline: Vec<String> = Vec::new();
    for &t in &THREAD_COUNTS {
        engine.set_threads(t);
        assert_eq!(engine.threads(), t);
        for (i, q) in queries.iter().enumerate() {
            let got = rendered_answers(&engine, q, 2);
            if t == 1 {
                baseline.push(got);
            } else {
                assert_eq!(
                    baseline[i], got,
                    "{label} `{q}` diverges at {t} thread(s) from single-threaded run"
                );
            }
        }
    }
}

/// Every bundled workload answers byte-identically at 1/2/4/8 threads:
/// the normalized university dataset, the normalized TPC-H and ACMDL
/// instances, and their denormalized primed variants.
#[test]
fn bundled_workloads_answer_identically_at_every_thread_count() {
    assert_workload_deterministic(
        university::normalized(),
        &["Green SUM Credit", "COUNT Student GROUPBY Course", "Engineering COUNT Department"],
        "university",
    );
    let tpch_queries: Vec<&str> = aqks_eval::tpch_queries().iter().map(|q| q.text).collect();
    let tpch = generate_tpch(&TpchConfig::small());
    assert_workload_deterministic(tpch.clone(), &tpch_queries, "tpch");
    assert_workload_deterministic(denormalize_tpch(&tpch), &tpch_queries, "tpch-prime");
    let acmdl_queries: Vec<&str> = aqks_eval::acmdl_queries().iter().map(|q| q.text).collect();
    let acmdl = generate_acmdl(&AcmdlConfig::small());
    assert_workload_deterministic(acmdl.clone(), &acmdl_queries, "acmdl");
    assert_workload_deterministic(denormalize_acmdl(&acmdl), &acmdl_queries, "acmdl-prime");
}

/// SplitMix64 (same generator as `tests/properties.rs`): deterministic
/// across platforms, so the property test below replays the identical
/// case set on every run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A random two-table instance. Small rounds stress edge cases (empty
/// inputs, all-NULL columns); every 20th round is sized past the
/// executor's parallel threshold so the morsel-driven scan, partitioned
/// join build, and two-phase aggregate actually engage.
fn arb_db(rng: &mut Rng, big: bool) -> Database {
    let mut db = Database::new("prop");
    let mut r = RelationSchema::new("R");
    r.add_attr("k", AttrType::Int).add_attr("v", AttrType::Int).add_attr("s", AttrType::Text);
    db.add_relation(r).expect("schema");
    let mut s = RelationSchema::new("S");
    s.add_attr("k", AttrType::Int).add_attr("w", AttrType::Int);
    db.add_relation(s).expect("schema");
    let (r_rows, s_rows, keys) = if big {
        (5000 + rng.below(2000), 4000 + rng.below(1000), 1500)
    } else {
        (rng.below(30), rng.below(30), 6)
    };
    const WORDS: [&str; 5] = ["alpha", "Beta", "gamma", "DELTA", "alpha beta"];
    for _ in 0..r_rows {
        let k = Value::Int(rng.below(keys) as i64);
        let v = if rng.below(5) == 0 { Value::Null } else { Value::Int(rng.below(9) as i64) };
        let s =
            if rng.below(7) == 0 { Value::Null } else { Value::str(WORDS[rng.below(WORDS.len())]) };
        db.insert("R", vec![k, v, s]).expect("insert");
    }
    for _ in 0..s_rows {
        let k = Value::Int(rng.below(keys) as i64);
        db.insert("S", vec![k, Value::Int(rng.below(9) as i64)]).expect("insert");
    }
    db
}

fn arb_stmt(rng: &mut Rng) -> SelectStatement {
    let agg_funcs = [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max];
    let mut predicates =
        vec![Predicate::JoinEq(ColumnRef::new("R", "k"), ColumnRef::new("S", "k"))];
    match rng.below(4) {
        0 => predicates.push(Predicate::Contains(ColumnRef::new("R", "s"), "alpha".into())),
        1 => predicates.push(Predicate::Eq(ColumnRef::new("R", "v"), Value::Int(3))),
        _ => {}
    }
    if rng.below(3) == 0 {
        // Ungrouped projection, possibly DISTINCT.
        return SelectStatement {
            distinct: rng.below(2) == 0,
            items: vec![
                SelectItem::Column { col: ColumnRef::new("R", "k"), alias: None },
                SelectItem::Column { col: ColumnRef::new("S", "w"), alias: None },
            ],
            from: vec![
                TableExpr::Relation { name: "R".into(), alias: "R".into() },
                TableExpr::Relation { name: "S".into(), alias: "S".into() },
            ],
            predicates,
            group_by: vec![],
            ..Default::default()
        };
    }
    SelectStatement {
        distinct: false,
        items: vec![
            SelectItem::Column { col: ColumnRef::new("R", "k"), alias: None },
            SelectItem::Aggregate {
                func: agg_funcs[rng.below(agg_funcs.len())],
                arg: ColumnRef::new("S", "w"),
                distinct: rng.below(3) == 0,
                alias: "a".into(),
            },
            SelectItem::Aggregate {
                func: agg_funcs[rng.below(agg_funcs.len())],
                arg: ColumnRef::new("R", "v"),
                distinct: false,
                alias: "b".into(),
            },
        ],
        from: vec![
            TableExpr::Relation { name: "R".into(), alias: "R".into() },
            TableExpr::Relation { name: "S".into(), alias: "S".into() },
        ],
        predicates,
        group_by: vec![ColumnRef::new("R", "k")],
        ..Default::default()
    }
}

/// 200 fixed-seed rounds of random join/filter/aggregate statements:
/// the multi-threaded executor returns exactly the single-threaded
/// table, row for row and value for value.
#[test]
fn random_plans_execute_identically_sequential_and_parallel() {
    let mut rng = Rng(0xA96C_2026);
    for round in 0..200 {
        let big = round % 20 == 19;
        let db = arb_db(&mut rng, big);
        let stmt = arb_stmt(&mut rng);
        let sequential = execute(&stmt, &db).expect("sequential run");
        for threads in [2, 8] {
            let (parallel, stats) =
                execute_with_opts(&stmt, &db, ExecOptions::with_threads(threads))
                    .expect("parallel run");
            assert_eq!(
                sequential, parallel,
                "round {round} (big={big}) diverges at {threads} thread(s)"
            );
            if big {
                assert!(
                    stats.max_threads() > 1,
                    "round {round}: large input never took a parallel path"
                );
            }
        }
    }
}

/// A budget that trips while parallel workers are active degrades
/// exactly like the sequential engine: `answer_governed` returns a
/// structured exhaustion report (never a panic), scoped workers are
/// joined before the call returns, and the engine stays usable.
#[test]
fn parallel_budget_trip_returns_structured_exhaustion() {
    let db = denormalize_tpch(&generate_tpch(&TpchConfig::small()));
    let mut engine = Engine::new(db).expect("engine builds");
    engine.set_threads(4);

    // Pre-expired deadline: workers observe the shared governor at the
    // first checkpoint and cancel mid-morsel.
    let g = engine
        .answer_governed("order AVG amount", 1, &Budget::unlimited().with_timeout(Duration::ZERO))
        .expect("governed answer");
    let ex = g.exhaustion.expect("expired deadline trips");
    assert_eq!(ex.kind, BudgetKind::Deadline);

    // Row cap: charges happen on the plan's thread regardless of worker
    // count, so the trip site and kind match the sequential engine.
    let g = engine
        .answer_governed("order AVG amount", 1, &Budget::unlimited().with_max_rows(1))
        .expect("governed answer");
    let ex = g.exhaustion.expect("row cap trips");
    assert_eq!(ex.kind, BudgetKind::Rows);

    // The engine is not poisoned: the same query then answers in full.
    let answers = engine.answer("order AVG amount", 1).expect("ungoverned answer");
    assert!(!answers.is_empty());
}
