//! Component relations (multivalued attributes) end to end: the ORM
//! graph folds `StudentHobby` into the Student node, keyword matching
//! resolves hobby values to the Student object class, and translation
//! joins the component to its parent.

use aqks::core::Engine;
use aqks::datasets::university;
use aqks::orm::OrmGraph;
use aqks::relational::Value;

#[test]
fn component_folds_into_parent_node() {
    let db = university::with_hobbies();
    let g = OrmGraph::build(&db.schema()).unwrap();
    assert_eq!(g.nodes().len(), 8, "no extra node for the component");
    let student = g.node_of_relation("Student").unwrap();
    assert_eq!(g.node_of_relation("StudentHobby"), Some(student));
    assert_eq!(g.node(student).components, vec!["StudentHobby".to_string()]);
}

/// A condition on a component attribute: count the courses of each
/// student whose hobbies include chess (s1 -> 3 courses, s2 -> 1).
#[test]
fn condition_on_component_attribute() {
    let engine = Engine::new(university::with_hobbies()).unwrap();
    let answers = engine.answer("chess COUNT Code", 3).unwrap();
    let per_student = answers
        .iter()
        .find(|a| a.sql.group_by.iter().any(|c| c.column.eq_ignore_ascii_case("Sid")))
        .expect("per-student interpretation");
    assert!(
        per_student.sql_text.contains("StudentHobby"),
        "component joined: {}",
        per_student.sql_text
    );
    assert!(per_student.sql_text.contains("contains 'chess'"));
    let r = &per_student.result;
    assert_eq!(r.len(), 2, "{r}");
    assert_eq!(r.rows[0], vec![Value::str("s1"), Value::Int(3)]);
    assert_eq!(r.rows[1], vec![Value::str("s2"), Value::Int(1)]);
}

/// The merged interpretation (no GROUPBY(id)) sums over both chess
/// players: 4 enrolments.
#[test]
fn merged_component_condition() {
    let engine = Engine::new(university::with_hobbies()).unwrap();
    let answers = engine.answer("chess COUNT Code", 5).unwrap();
    let merged = answers.iter().find(|a| a.sql.group_by.is_empty()).expect("merged interpretation");
    assert_eq!(merged.result.scalar(), Some(&Value::Int(4)), "{}", merged.sql_text);
}

/// An aggregate over a component attribute: hobbies per student.
#[test]
fn count_component_attribute_groupby_parent() {
    let engine = Engine::new(university::with_hobbies()).unwrap();
    let answers = engine.answer("COUNT Hobby GROUPBY Student", 1).unwrap();
    let a = &answers[0];
    assert!(a.sql_text.contains("StudentHobby"), "{}", a.sql_text);
    let r = &a.result;
    // s1 has 2 hobbies, s2 and s3 one each (students without hobbies drop
    // out of the inner join, matching SQL semantics).
    let counts: Vec<&Value> = r.column("numHobby").unwrap();
    assert_eq!(counts, vec![&Value::Int(2), &Value::Int(1), &Value::Int(1)], "{r}");
}
