//! End-to-end resource-governance tests through the `aqks` facade: the
//! acceptance scenario of the guard layer. A TPC-H′ (denormalized)
//! workload under starvation budgets must come back as a *structured*
//! [`Exhaustion`] report — never a panic, never a stringly error — with
//! whatever interpretations completed before the trip.

use std::time::Duration;

use aqks::core::{Budget, BudgetKind, Engine};
use aqks::datasets::{denormalize_tpch, generate_tpch, university, TpchConfig};

fn tpch_prime() -> Engine {
    Engine::new(denormalize_tpch(&generate_tpch(&TpchConfig::small()))).expect("TPC-H' builds")
}

/// The paper's T1–T8 workload on TPC-H′ under a 1-row / 1-pattern / 1 ms
/// starvation budget: every query must return `Ok` with a structured
/// exhaustion report whose `partial` flag matches the returned value.
#[test]
fn tpch_prime_workload_survives_starvation_budget() {
    let engine = tpch_prime();
    let budget = Budget::unlimited()
        .with_timeout(Duration::from_millis(1))
        .with_max_rows(1)
        .with_max_patterns(1);
    let mut trips = 0;
    for q in aqks_eval::tpch_queries() {
        let governed = match engine.answer_governed(q.text, 3, &budget) {
            Ok(g) => g,
            // A term the small dataset cannot match is a legitimate typed
            // error; anything else (especially Internal) is a bug.
            Err(aqks::core::CoreError::NoMatch(_)) => continue,
            Err(e) => panic!("{}: unexpected error {e}", q.id),
        };
        if let Some(ex) = governed.exhaustion {
            trips += 1;
            assert!(
                matches!(ex.kind, BudgetKind::Deadline | BudgetKind::Rows | BudgetKind::Patterns),
                "{}: {ex:?}",
                q.id
            );
            assert!(!ex.site.is_empty(), "{}: trip site recorded", q.id);
            assert_eq!(ex.partial, !governed.value.is_empty(), "{}: {ex:?}", q.id);
        }
    }
    assert!(trips > 0, "the starvation budget tripped on at least one workload query");
}

/// A query worth answering under a merely *tight* (not starving) budget
/// returns its full answer and no exhaustion: budgets only bite when
/// exceeded.
#[test]
fn tpch_prime_generous_budget_is_invisible() {
    let engine = tpch_prime();
    let budget = Budget::unlimited()
        .with_timeout(Duration::from_secs(30))
        .with_max_rows(1_000_000)
        .with_max_patterns(10_000);
    let q = "COUNT order \"royal olive\"";
    let plain = engine.answer(q, 1).expect("query answers");
    let governed = engine.answer_governed(q, 1, &budget).expect("query answers");
    assert!(governed.exhaustion.is_none());
    assert_eq!(plain.len(), governed.value.len());
    assert_eq!(plain[0].result, governed.value[0].result);
}

/// The interpretation cap is a soft trip: on a multi-interpretation
/// query it returns exactly the top-k-capped prefix as partial results.
#[test]
fn interpretation_cap_yields_partial_results() {
    let engine = Engine::new(university::normalized()).unwrap();
    let budget = Budget::unlimited().with_max_interpretations(1);
    let governed = engine.answer_governed("Green George COUNT Code", 3, &budget).unwrap();
    assert_eq!(governed.value.len(), 1);
    let ex = governed.exhaustion.expect("cap trips");
    assert_eq!(ex.kind, BudgetKind::Interpretations);
    assert_eq!(ex.site, "engine.translate");
    assert!(ex.partial);
    // The report renders as the one-liner the CLI prints.
    assert!(ex.to_string().ends_with("(partial results returned)"), "{ex}");
}

/// Each budget dimension trips at its own pipeline layer: rows inside
/// the executor or index, patterns inside enumeration, the deadline at
/// whichever checkpoint runs first.
#[test]
fn trip_sites_name_their_layer() {
    let engine = Engine::new(university::normalized()).unwrap();

    let g = engine
        .answer_governed("Green SUM Credit", 1, &Budget::unlimited().with_max_rows(1))
        .unwrap();
    let ex = g.exhaustion.expect("row cap trips");
    assert_eq!(ex.kind, BudgetKind::Rows);
    assert!(ex.site.starts_with("ops.") || ex.site.starts_with("index."), "{}", ex.site);

    let g = engine
        .answer_governed("Green George COUNT Code", 3, &Budget::unlimited().with_max_patterns(1))
        .unwrap();
    let ex = g.exhaustion.expect("pattern cap trips");
    assert_eq!(ex.kind, BudgetKind::Patterns);
    assert_eq!(ex.site, "pattern.enumerate");

    let g = engine
        .answer_governed("Green SUM Credit", 1, &Budget::unlimited().with_timeout(Duration::ZERO))
        .unwrap();
    let ex = g.exhaustion.expect("deadline trips");
    assert_eq!(ex.kind, BudgetKind::Deadline);
    assert!(!ex.partial);
}

/// Governed calls do not disturb each other or later ungoverned calls:
/// the governor is installed per call, not per engine.
#[test]
fn governance_is_per_call() {
    let engine = Engine::new(university::normalized()).unwrap();
    let starved = Budget::unlimited().with_max_rows(1);
    assert!(engine.answer_governed("Green SUM Credit", 1, &starved).unwrap().exhaustion.is_some());
    // Ungoverned and unlimited-governed calls run to completion.
    assert_eq!(engine.answer("Green SUM Credit", 1).unwrap().len(), 1);
    let g = engine.answer_governed("Green SUM Credit", 1, &Budget::unlimited()).unwrap();
    assert!(g.exhaustion.is_none());
    assert_eq!(g.value.len(), 1);
}
