//! Pretty-printing of [`SelectStatement`] in the paper's listing style.
//!
//! The paper prints predicates such as `S.Sname contains 'Green'`; this is
//! rendered verbatim (its standard-SQL equivalent would be
//! `LOWER(S.Sname) LIKE '%green%'`). Derived tables are rendered inline:
//! `(SELECT DISTINCT Lid, Code FROM Teach) T`.

use std::fmt;

use crate::ast::{Predicate, SelectItem, SelectStatement, TableExpr};

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render(self))
    }
}

/// Renders a statement as multi-line SQL (top level) with nested derived
/// tables rendered inline.
pub fn render(stmt: &SelectStatement) -> String {
    let mut out = String::new();
    render_into(stmt, &mut out, true);
    out
}

fn render_into(stmt: &SelectStatement, out: &mut String, multiline: bool) {
    let sep = if multiline { "\n" } else { " " };

    out.push_str("SELECT ");
    if stmt.distinct {
        out.push_str("DISTINCT ");
    }
    let items: Vec<String> = stmt.items.iter().map(render_item).collect();
    out.push_str(&items.join(", "));

    out.push_str(sep);
    out.push_str("FROM ");
    let from: Vec<String> = stmt.from.iter().map(render_from).collect();
    out.push_str(&from.join(", "));

    if !stmt.predicates.is_empty() {
        out.push_str(sep);
        out.push_str("WHERE ");
        let preds: Vec<String> = stmt.predicates.iter().map(render_pred).collect();
        out.push_str(&preds.join(" AND "));
    }

    if !stmt.group_by.is_empty() {
        out.push_str(sep);
        out.push_str("GROUP BY ");
        let cols: Vec<String> = stmt.group_by.iter().map(|c| c.to_string()).collect();
        out.push_str(&cols.join(", "));
    }

    if !stmt.order_by.is_empty() {
        out.push_str(sep);
        out.push_str("ORDER BY ");
        let keys: Vec<String> = stmt
            .order_by
            .iter()
            .map(|k| {
                if k.desc {
                    format!("{} DESC", k.column)
                } else {
                    k.column.to_string()
                }
            })
            .collect();
        out.push_str(&keys.join(", "));
    }

    if let Some(limit) = stmt.limit {
        out.push_str(sep);
        out.push_str(&format!("LIMIT {limit}"));
    }
}

fn render_item(item: &SelectItem) -> String {
    match item {
        SelectItem::Column { col, alias: None } => col.to_string(),
        SelectItem::Column { col, alias: Some(a) } => format!("{col} AS {a}"),
        SelectItem::Aggregate { func, arg, distinct, alias } => {
            let inner = if *distinct { format!("DISTINCT {arg}") } else { arg.to_string() };
            format!("{}({inner}) AS {alias}", func.keyword())
        }
    }
}

fn render_from(item: &TableExpr) -> String {
    match item {
        TableExpr::Relation { name, alias } => {
            if name.eq_ignore_ascii_case(alias) {
                name.clone()
            } else {
                format!("{name} {alias}")
            }
        }
        TableExpr::Derived { query, alias } => {
            let mut inner = String::new();
            render_into(query, &mut inner, false);
            format!("({inner}) {alias}")
        }
    }
}

fn render_pred(p: &Predicate) -> String {
    match p {
        Predicate::JoinEq(a, b) => format!("{a}={b}"),
        Predicate::Contains(c, text) => format!("{c} contains '{text}'"),
        Predicate::Eq(c, v) => match v {
            aqks_relational::Value::Str(s) => format!("{c}='{s}'"),
            other => format!("{c}={other}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggFunc, ColumnRef};

    /// Builds the paper's Example 5 statement and checks the rendering
    /// matches the listing (modulo whitespace).
    #[test]
    fn example5_rendering() {
        let stmt = SelectStatement {
            distinct: false,
            items: vec![
                SelectItem::Column { col: ColumnRef::new("S1", "Sid"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Count,
                    arg: ColumnRef::new("C", "Code"),
                    distinct: false,
                    alias: "numCode".into(),
                },
            ],
            from: vec![
                TableExpr::Relation { name: "Course".into(), alias: "C".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E1".into() },
                TableExpr::Relation { name: "Student".into(), alias: "S1".into() },
            ],
            predicates: vec![
                Predicate::JoinEq(ColumnRef::new("C", "Code"), ColumnRef::new("E1", "Code")),
                Predicate::JoinEq(ColumnRef::new("S1", "Sid"), ColumnRef::new("E1", "Sid")),
                Predicate::Contains(ColumnRef::new("S1", "Sname"), "Green".into()),
            ],
            group_by: vec![ColumnRef::new("S1", "Sid")],
            ..Default::default()
        };
        let sql = render(&stmt);
        assert_eq!(
            sql,
            "SELECT S1.Sid, COUNT(C.Code) AS numCode\n\
             FROM Course C, Enrol E1, Student S1\n\
             WHERE C.Code=E1.Code AND S1.Sid=E1.Sid AND S1.Sname contains 'Green'\n\
             GROUP BY S1.Sid"
        );
    }

    /// Derived tables render inline like Example 6's Teach projection.
    #[test]
    fn derived_table_rendering() {
        let inner = SelectStatement {
            distinct: true,
            items: vec![
                SelectItem::Column { col: ColumnRef::new("Teach", "Lid"), alias: None },
                SelectItem::Column { col: ColumnRef::new("Teach", "Code"), alias: None },
            ],
            from: vec![TableExpr::Relation { name: "Teach".into(), alias: "Teach".into() }],
            predicates: vec![],
            group_by: vec![],
            ..Default::default()
        };
        let stmt = SelectStatement {
            distinct: false,
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: ColumnRef::new("L", "Lid"),
                distinct: false,
                alias: "numLid".into(),
            }],
            from: vec![
                TableExpr::Relation { name: "Lecturer".into(), alias: "L".into() },
                TableExpr::Derived { query: Box::new(inner), alias: "T".into() },
            ],
            predicates: vec![Predicate::JoinEq(
                ColumnRef::new("T", "Lid"),
                ColumnRef::new("L", "Lid"),
            )],
            group_by: vec![],
            ..Default::default()
        };
        let sql = render(&stmt);
        assert!(sql.contains("(SELECT DISTINCT Teach.Lid, Teach.Code FROM Teach) T"), "{sql}");
    }

    #[test]
    fn relation_alias_equal_to_name_is_not_repeated() {
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: ColumnRef::new("Teach", "Lid"), alias: None }],
            from: vec![TableExpr::Relation { name: "Teach".into(), alias: "Teach".into() }],
            ..Default::default()
        };
        assert_eq!(render(&stmt), "SELECT Teach.Lid\nFROM Teach");
    }
}
