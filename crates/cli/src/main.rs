//! `aqks` — an interactive keyword-query shell over the bundled datasets.
//!
//! ```text
//! aqks --dataset tpch 'COUNT order "royal olive"'     # one-shot
//! aqks --dataset university                           # REPL
//! ```
//!
//! Options:
//!
//! * `--dataset NAME` — `university` (default), `fig2`, `fig8`, `tpch`,
//!   `acmdl`, `tpch-prime`, `acmdl-prime`
//! * `--paper-scale` — full-cardinality synthetic data
//! * `--k N` — show the top-N interpretations (default 1)
//! * `--sqak` — also run the SQAK baseline for contrast
//! * `--explain` — print the ORM schema graph and the query pattern
//!
//! Subcommand `aqks check [--dataset NAME] [--sqak] [QUERY]` runs the
//! static analyzer (`aqks-analyze`) over the SQL both engines generate —
//! for one query, or for the dataset's whole built-in workload when no
//! query is given — and exits non-zero on error-severity findings.
//!
//! Subcommand `aqks explain [--analyze] [--dataset NAME] [QUERY]` prints
//! the physical operator tree of each generated statement; `--analyze`
//! additionally executes the plan and annotates every operator with rows
//! in/out and wall time.
//!
//! REPL commands: `\schema` (relations), `\graph` (ORM graph), `\q`.

use std::io::{BufRead, Write};

use aqks_analyze::Analyzer;
use aqks_core::Engine;
use aqks_datasets::{
    denormalize_acmdl, denormalize_tpch, generate_acmdl, generate_tpch, university, AcmdlConfig,
    TpchConfig,
};
use aqks_relational::Database;
use aqks_sqak::Sqak;

struct Options {
    dataset: String,
    paper_scale: bool,
    k: usize,
    sqak: bool,
    explain: bool,
    check: bool,
    explain_plan: bool,
    analyze: bool,
    export: Option<String>,
    query: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        dataset: "university".into(),
        paper_scale: false,
        k: 1,
        sqak: false,
        explain: false,
        check: false,
        explain_plan: false,
        analyze: false,
        export: None,
        query: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut positional: Vec<String> = Vec::new();
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" | "-d" => {
                i += 1;
                opts.dataset = args.get(i).ok_or("--dataset needs a value")?.to_lowercase();
            }
            "--paper-scale" => opts.paper_scale = true,
            "--sqak" => opts.sqak = true,
            "--explain" => opts.explain = true,
            "--analyze" => opts.analyze = true,
            "--export" => {
                i += 1;
                opts.export = Some(args.get(i).ok_or("--export needs a directory")?.to_string());
            }
            "--k" => {
                i += 1;
                opts.k = args.get(i).and_then(|v| v.parse().ok()).ok_or("--k needs a number")?;
            }
            "--help" | "-h" => {
                println!("usage: aqks [check|explain] [--dataset NAME|DIR] [--paper-scale] [--k N] [--sqak] [--explain] [--analyze] [--export DIR] [QUERY]");
                std::process::exit(0);
            }
            "check" if positional.is_empty() && !opts.check && !opts.explain_plan => {
                opts.check = true
            }
            "explain" if positional.is_empty() && !opts.check && !opts.explain_plan => {
                opts.explain_plan = true
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    if !positional.is_empty() {
        opts.query = Some(positional.join(" "));
    }
    Ok(opts)
}

fn load_dataset(name: &str, paper_scale: bool) -> Result<Database, String> {
    let tpch_cfg = if paper_scale { TpchConfig::paper_scale() } else { TpchConfig::small() };
    let acmdl_cfg = if paper_scale { AcmdlConfig::paper_scale() } else { AcmdlConfig::small() };
    Ok(match name {
        "university" | "uni" => university::normalized(),
        "fig2" => university::unnormalized_fig2(),
        "fig8" | "enrolment" => university::enrolment_fig8(),
        "hobbies" => university::with_hobbies(),
        "tpch" => generate_tpch(&tpch_cfg),
        "acmdl" => generate_acmdl(&acmdl_cfg),
        "tpch-prime" | "tpch'" => denormalize_tpch(&generate_tpch(&tpch_cfg)),
        "acmdl-prime" | "acmdl'" => denormalize_acmdl(&generate_acmdl(&acmdl_cfg)),
        // Anything path-like imports a schema.txt + CSV directory.
        other if other.contains('/') || std::path::Path::new(other).is_dir() => {
            aqks_relational::import_dir(std::path::Path::new(other))
                .map_err(|e| format!("import `{other}`: {e}"))?
        }
        other => return Err(format!("unknown dataset `{other}`")),
    })
}

fn run_query(engine: &Engine, sqak: Option<&Sqak>, query: &str, k: usize, explain: bool) {
    if explain {
        match engine.explain(query) {
            Ok(ex) => {
                println!("── interpretation trace");
                for t in &ex.terms {
                    let kind = if t.is_operator { "operator" } else { "term" };
                    if t.matches.is_empty() {
                        println!("  {kind} {:<12}", t.term);
                    } else {
                        println!("  {kind} {:<12} -> {}", t.term, t.matches.join(" | "));
                    }
                }
                println!("  {} pattern(s) generated", ex.patterns.len());
            }
            Err(e) => println!("explain error: {e}"),
        }
    }
    match engine.answer(query, k) {
        Ok(answers) => {
            for (rank, a) in answers.iter().enumerate() {
                println!("── interpretation #{}", rank + 1);
                if explain {
                    println!("pattern: {}", a.pattern_description);
                }
                println!("{}", a.sql_text);
                println!("{}", a.result);
            }
        }
        Err(e) => println!("error: {e}"),
    }
    if let Some(sqak) = sqak {
        println!("── SQAK baseline");
        match sqak.generate(query) {
            Ok(g) => {
                println!("{}", g.sql_text);
                match sqak.answer(query) {
                    Ok(r) => println!("{r}"),
                    Err(e) => println!("execution error: {e}"),
                }
            }
            Err(e) => println!("N.A.: {e}"),
        }
    }
}

/// The built-in workload `aqks check` sweeps when no query is given.
fn check_workload(dataset: &str) -> Vec<String> {
    match dataset {
        "tpch" | "tpch-prime" | "tpch'" => {
            aqks_eval::tpch_queries().iter().map(|q| q.text.to_string()).collect()
        }
        "acmdl" | "acmdl-prime" | "acmdl'" => {
            aqks_eval::acmdl_queries().iter().map(|q| q.text.to_string()).collect()
        }
        "fig2" => vec!["Engineering COUNT Department".into()],
        "fig8" | "enrolment" => vec!["Green George COUNT Code".into()],
        _ => vec![
            "Green SUM Credit".into(),
            "Java SUM Price".into(),
            "COUNT Lecturer GROUPBY Course".into(),
        ],
    }
}

/// Prints the physical plan of every interpretation of `queries`; with
/// `analyze`, executes each plan and annotates operators with measured
/// row counts and wall time. Returns the number of failed queries.
fn run_explain(engine: &Engine, queries: &[String], k: usize, analyze: bool) -> usize {
    let db = engine.database();
    let mut failures = 0;
    for q in queries {
        println!("── explain `{q}`");
        let generated = match engine.generate(q, k) {
            Ok(g) => g,
            Err(e) => {
                println!("  error: {e}");
                failures += 1;
                continue;
            }
        };
        for (rank, g) in generated.iter().enumerate() {
            println!("interpretation #{}", rank + 1);
            println!("{}", g.sql_text);
            let plan = match aqks_sqlgen::plan(&g.sql, db) {
                Ok(p) => p,
                Err(e) => {
                    println!("  plan error: {e}");
                    failures += 1;
                    continue;
                }
            };
            let rendered = if analyze {
                match aqks_sqlgen::run_plan(&plan, db) {
                    Ok((_, stats)) => aqks_sqlgen::render_plan_with_stats(&plan, &stats),
                    Err(e) => {
                        println!("  execution error: {e}");
                        failures += 1;
                        continue;
                    }
                }
            } else {
                aqks_sqlgen::render_plan(&plan)
            };
            println!("{rendered}");
        }
    }
    failures
}

/// Statically analyzes the SQL both engines generate for `queries`;
/// returns the number of error-severity findings.
fn run_check(engine: &Engine, sqak: Option<&Sqak>, queries: &[String], k: usize) -> usize {
    let schema = engine.database().schema();
    let mut errors = 0;
    for q in queries {
        println!("── check `{q}`");
        match engine.generate(q, k) {
            Ok(generated) => {
                for (rank, g) in generated.iter().enumerate() {
                    let verdict = if g.diagnostics.is_clean() {
                        "clean".to_string()
                    } else {
                        g.diagnostics.summary()
                    };
                    println!("  engine #{}: {verdict}", rank + 1);
                    errors += g.diagnostics.error_count();
                    if !g.diagnostics.is_clean() {
                        for line in g.diagnostics.render(&g.sql).lines() {
                            println!("    {line}");
                        }
                    }
                }
            }
            // Debug builds reject error findings inside `generate`.
            Err(aqks_core::CoreError::Analysis(m)) => {
                errors += 1;
                println!("  engine: rejected\n    {}", m.replace('\n', "\n    "));
            }
            Err(e) => println!("  engine: N.A. ({e})"),
        }
        if let Some(sqak) = sqak {
            match sqak.generate(q) {
                Ok(g) => {
                    let report = Analyzer::new(&schema).analyze(&g.sql);
                    let verdict =
                        if report.is_clean() { "clean".to_string() } else { report.summary() };
                    println!("  sqak: {verdict}");
                    errors += report.error_count();
                    if !report.is_clean() {
                        for line in report.render(&g.sql).lines() {
                            println!("    {line}");
                        }
                    }
                }
                Err(e) => println!("  sqak: N.A. ({e})"),
            }
        }
    }
    errors
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let db = match load_dataset(&opts.dataset, opts.paper_scale) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("dataset `{}`: {} tuples", opts.dataset, db.total_rows());
    if let Some(dir) = &opts.export {
        if let Err(e) = aqks_relational::export_dir(&db, std::path::Path::new(dir)) {
            eprintln!("export failed: {e}");
            std::process::exit(1);
        }
        eprintln!("exported schema.txt + CSVs to {dir}");
    }

    let sqak = opts.sqak.then(|| Sqak::new(db.clone()));
    let engine = match Engine::new(db) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if engine.is_unnormalized() {
        eprintln!("(unnormalized database: querying through the normalized view)");
    }

    if opts.explain_plan {
        let queries = opts
            .query
            .as_ref()
            .map(|q| vec![q.clone()])
            .unwrap_or_else(|| check_workload(&opts.dataset));
        let failures = run_explain(&engine, &queries, opts.k, opts.analyze);
        if failures > 0 {
            eprintln!("explain failed for {failures} quer(y/ies)");
            std::process::exit(1);
        }
        return;
    }

    if opts.check {
        let queries = opts
            .query
            .as_ref()
            .map(|q| vec![q.clone()])
            .unwrap_or_else(|| check_workload(&opts.dataset));
        let errors = run_check(&engine, sqak.as_ref(), &queries, opts.k.max(3));
        if errors > 0 {
            eprintln!("check failed: {errors} error finding(s)");
            std::process::exit(1);
        }
        eprintln!("check passed: no error findings");
        return;
    }

    if let Some(q) = &opts.query {
        run_query(&engine, sqak.as_ref(), q, opts.k, opts.explain);
        return;
    }

    // REPL.
    eprintln!("enter keyword queries; \\schema, \\graph, \\q to quit");
    let stdin = std::io::stdin();
    loop {
        eprint!("aqks> ");
        std::io::stderr().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            "\\q" | "\\quit" | "exit" => break,
            "\\schema" => {
                for rel in &engine.database().schema().relations {
                    let attrs: Vec<&str> = rel.attr_names().collect();
                    println!("{}({})", rel.name, attrs.join(", "));
                }
            }
            "\\graph" => println!("{}", engine.orm_graph().describe()),
            q => run_query(&engine, sqak.as_ref(), q, opts.k, opts.explain),
        }
    }
}
