#![warn(missing_docs)]
//! # aqks — Aggregate Keyword Search over Relational Databases
//!
//! A from-scratch Rust reproduction of *"Answering Keyword Queries
//! involving Aggregates and GROUPBY on Relational Databases"* (Zeng, Lee,
//! Ling — EDBT 2016).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`relational`] — in-memory relational engine, FD theory, 3NF synthesis
//! * [`sqlgen`] — SQL AST, renderer, executor
//! * [`orm`] — ORM schema graph (object/relationship/mixed/component)
//! * [`core`] — the paper's semantic keyword-search engine
//! * [`sqak`] — the SQAK baseline the paper compares against
//! * [`datasets`] — university / TPC-H / ACM-DL datasets and denormalizers
//! * [`analyze`] — static semantic analyzer for generated SQL plans
//!
//! ## Quickstart
//!
//! ```
//! use aqks::datasets::university;
//! use aqks::core::Engine;
//!
//! let db = university::normalized();
//! let engine = Engine::new(db).unwrap();
//! let answers = engine.answer("Green SUM Credit", 1).unwrap();
//! assert!(!answers.is_empty());
//! println!("{}", answers[0].sql_text);
//! ```

pub use aqks_analyze as analyze;
pub use aqks_core as core;
pub use aqks_datasets as datasets;
pub use aqks_orm as orm;
pub use aqks_relational as relational;
pub use aqks_sqak as sqak;
pub use aqks_sqlgen as sqlgen;
