//! A functional-dependency model of a whole statement.
//!
//! Pass P5 has to reason about which columns are *pinned* once the GROUP
//! BY keys and literal selections are fixed, across joins and through
//! derived tables. This module flattens one statement into a single
//! [`FdSet`] over path-qualified attribute names (`"s1.sid"`,
//! `"t.teach.lid"`, …, all lowercase):
//!
//! * a base-relation FROM item contributes its declared FDs
//!   (`PK -> all` plus `extra_fds`), attribute names prefixed with the
//!   item's alias path;
//! * an equi-join `a = b` contributes `a -> b` and `b -> a`;
//! * an equality with a literal contributes `{} -> column`;
//! * a derived table links each plainly-projected output to its inner
//!   column (both directions), and — when it aggregates — makes its
//!   GROUP BY keys determine every output (one row per key value; with no
//!   GROUP BY the whole table is a single row, `{} -> outputs`).
//!
//! `contains` predicates contribute nothing: a substring condition keeps
//! every object whose value matches, so it pins no column.
//!
//! On top of the closure, [`item_row_unique`] decides whether a FROM item
//! can contribute at most one row once the pinned columns are fixed —
//! base relations via their superkeys, derived tables via their
//! DISTINCT/GROUP BY structure, plain projections recursively.

use std::collections::BTreeSet;

use aqks_relational::{Fd, FdSet, RelationSchema};
use aqks_sqlgen::{Predicate, SelectItem, SelectStatement};

use crate::scope::{ItemScope, ItemSource, Scope};

/// A set of path-qualified lowercase attribute names.
pub type Pinned = BTreeSet<String>;

/// The flattened FD model of one statement.
#[derive(Debug)]
pub struct StmtFds {
    fds: FdSet,
}

/// A relation's FD set with every attribute name lowercased, so closures
/// compose with the lowercase names used throughout this module.
pub fn lower_fd_set(rel: &RelationSchema) -> FdSet {
    let lower = |s: &String| s.to_lowercase();
    let mut out = FdSet::new(rel.attr_names().map(str::to_lowercase));
    for fd in rel.fd_set().fds {
        out.add(Fd::new(fd.lhs.iter().map(lower), fd.rhs.iter().map(lower)));
    }
    out
}

impl StmtFds {
    /// Builds the model for `stmt` with `scope` already resolved.
    pub fn build(stmt: &SelectStatement, scope: &Scope<'_>) -> StmtFds {
        let mut universe: BTreeSet<String> = BTreeSet::new();
        let mut fds: Vec<Fd> = Vec::new();
        add_statement_body(&mut fds, &mut universe, "", stmt, scope);
        let mut set = FdSet::new(universe);
        for fd in fds {
            set.add(fd);
        }
        StmtFds { fds: set }
    }

    /// Closure of a set of path-qualified names.
    pub fn closure(&self, seeds: Pinned) -> Pinned {
        self.fds.closure(seeds)
    }
}

/// The pinned-column seeds of a statement: GROUP BY columns plus columns
/// equated with a literal. `contains` columns are deliberately absent.
pub fn seeds(stmt: &SelectStatement) -> Pinned {
    let mut out = Pinned::new();
    for c in &stmt.group_by {
        if !c.qualifier.is_empty() {
            out.insert(format!("{}.{}", c.qualifier.to_lowercase(), c.column.to_lowercase()));
        }
    }
    for p in &stmt.predicates {
        if let Predicate::Eq(c, _) = p {
            if !c.qualifier.is_empty() {
                out.insert(format!("{}.{}", c.qualifier.to_lowercase(), c.column.to_lowercase()));
            }
        }
    }
    out
}

/// The columns of `alias` (single segment, no nested path) contained in a
/// closure computed at the top level.
pub fn pinned_for(closure: &Pinned, alias: &str) -> BTreeSet<String> {
    let prefix = format!("{}.", alias.to_lowercase());
    closure
        .iter()
        .filter_map(|n| n.strip_prefix(&prefix))
        .filter(|rest| !rest.contains('.'))
        .map(str::to_string)
        .collect()
}

/// Adds the FD contributions of a statement's body (FROM items, join and
/// literal predicates) under `prefix` ("" for the analyzed statement,
/// `"t."` for a derived table aliased `T`, nested recursively).
fn add_statement_body(
    fds: &mut Vec<Fd>,
    universe: &mut BTreeSet<String>,
    prefix: &str,
    stmt: &SelectStatement,
    scope: &Scope<'_>,
) {
    for item in &scope.items {
        add_item(fds, universe, prefix, item);
    }
    let qual = |q: &str, c: &str| format!("{prefix}{}.{}", q.to_lowercase(), c.to_lowercase());
    for p in &stmt.predicates {
        match p {
            Predicate::JoinEq(a, b) => {
                if !a.qualifier.is_empty() && !b.qualifier.is_empty() {
                    let (na, nb) = (qual(&a.qualifier, &a.column), qual(&b.qualifier, &b.column));
                    fds.push(Fd::new([na.clone()], [nb.clone()]));
                    fds.push(Fd::new([nb], [na]));
                }
            }
            Predicate::Eq(c, _) => {
                if !c.qualifier.is_empty() {
                    fds.push(Fd::new(Vec::<String>::new(), [qual(&c.qualifier, &c.column)]));
                }
            }
            Predicate::Contains(..) => {}
        }
    }
}

/// Adds one FROM item's FDs under its parent statement's `prefix`.
fn add_item(
    fds: &mut Vec<Fd>,
    universe: &mut BTreeSet<String>,
    prefix: &str,
    item: &ItemScope<'_>,
) {
    let mine = format!("{prefix}{}.", item.alias.to_lowercase());
    for o in &item.outputs {
        universe.insert(format!("{mine}{}", o.name.to_lowercase()));
    }
    match &item.source {
        ItemSource::Unknown => {}
        ItemSource::Base(rel) => {
            for fd in &lower_fd_set(rel).fds {
                fds.push(Fd::new(
                    fd.lhs.iter().map(|a| format!("{mine}{a}")),
                    fd.rhs.iter().map(|a| format!("{mine}{a}")),
                ));
            }
        }
        ItemSource::Derived(sub, query) => {
            add_statement_body(fds, universe, &mine, query, sub);
            // Plainly-projected outputs mirror their inner column.
            for item in &query.items {
                if let SelectItem::Column { col, alias } = item {
                    if col.qualifier.is_empty() {
                        continue;
                    }
                    let inner = format!(
                        "{mine}{}.{}",
                        col.qualifier.to_lowercase(),
                        col.column.to_lowercase()
                    );
                    let outer =
                        format!("{mine}{}", alias.as_deref().unwrap_or(&col.column).to_lowercase());
                    fds.push(Fd::new([inner.clone()], [outer.clone()]));
                    fds.push(Fd::new([outer], [inner]));
                }
            }
            if query.has_aggregate() {
                let outputs: Vec<String> = item
                    .outputs
                    .iter()
                    .map(|o| format!("{mine}{}", o.name.to_lowercase()))
                    .collect();
                let keys: Vec<String> = query
                    .group_by
                    .iter()
                    .filter(|c| !c.qualifier.is_empty())
                    .map(|c| {
                        format!("{mine}{}.{}", c.qualifier.to_lowercase(), c.column.to_lowercase())
                    })
                    .collect();
                // One row per GROUP BY key value (a single row in total
                // when there is no GROUP BY).
                fds.push(Fd::new(keys, outputs));
            }
        }
    }
}

/// True when the FROM item can contribute at most one row once the
/// columns in `closure` are fixed. `prefix` is the item's parent path
/// ("" at the analyzed statement).
pub fn item_row_unique(item: &ItemScope<'_>, prefix: &str, closure: &Pinned) -> bool {
    let mine = format!("{prefix}{}.", item.alias.to_lowercase());
    match &item.source {
        // Unresolved relations produce P1 errors; suppress cascades here.
        ItemSource::Unknown => true,
        ItemSource::Base(rel) => {
            let pinned: BTreeSet<String> = closure
                .iter()
                .filter_map(|n| n.strip_prefix(&mine))
                .filter(|rest| !rest.contains('.'))
                .map(str::to_string)
                .collect();
            lower_fd_set(rel).is_superkey(&pinned)
        }
        ItemSource::Derived(sub, query) => {
            if query.has_aggregate() {
                if query.group_by.is_empty() {
                    return true;
                }
                return query.group_by.iter().all(|c| {
                    c.qualifier.is_empty()
                        || closure.contains(&format!(
                            "{mine}{}.{}",
                            c.qualifier.to_lowercase(),
                            c.column.to_lowercase()
                        ))
                });
            }
            if query.distinct {
                return item
                    .outputs
                    .iter()
                    .all(|o| closure.contains(&format!("{mine}{}", o.name.to_lowercase())));
            }
            // A plain projection repeats its source rows: it is unique
            // exactly when every inner FROM item is.
            sub.items.iter().all(|inner| item_row_unique(inner, &mine, closure))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::Scope;
    use aqks_relational::{AttrType, DatabaseSchema, RelationSchema};
    use aqks_sqlgen::{AggFunc, ColumnRef, TableExpr};

    /// Figure 8's Enrolment relation: PK (Sid, Code) with the partial
    /// dependencies Sid -> Sname and Code -> Title declared.
    fn enrolment_schema() -> DatabaseSchema {
        let mut r = RelationSchema::new("Enrolment");
        r.add_attr("Sid", AttrType::Text)
            .add_attr("Sname", AttrType::Text)
            .add_attr("Code", AttrType::Text)
            .add_attr("Title", AttrType::Text);
        r.set_primary_key(["Sid", "Code"]);
        r.add_fd(["Sid"], ["Sname"]);
        r.add_fd(["Code"], ["Title"]);
        DatabaseSchema { relations: vec![r] }
    }

    #[test]
    fn join_equalities_propagate_pins() {
        let schema = enrolment_schema();
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: ColumnRef::new("A", "Sid"), alias: None }],
            from: vec![
                TableExpr::Relation { name: "Enrolment".into(), alias: "A".into() },
                TableExpr::Relation { name: "Enrolment".into(), alias: "B".into() },
            ],
            predicates: vec![Predicate::JoinEq(
                ColumnRef::new("A", "Sid"),
                ColumnRef::new("B", "Sid"),
            )],
            group_by: vec![ColumnRef::new("A", "Sid")],
            ..Default::default()
        };
        let scope = Scope::build(&stmt, &schema);
        let fds = StmtFds::build(&stmt, &scope);
        let closure = fds.closure(seeds(&stmt));
        // A.Sid pins A.Sname (FD) and B.Sid (join), then B.Sname.
        for n in ["a.sid", "a.sname", "b.sid", "b.sname"] {
            assert!(closure.contains(n), "{n} in {closure:?}");
        }
        assert!(!closure.contains("a.code"));
        assert_eq!(pinned_for(&closure, "B"), ["sid", "sname"].map(String::from).into());
    }

    #[test]
    fn distinct_projection_uniqueness() {
        let schema = enrolment_schema();
        let proj = |attrs: &[&str], distinct: bool| SelectStatement {
            distinct,
            items: attrs
                .iter()
                .map(|a| SelectItem::Column {
                    col: ColumnRef::new("Enrolment", a.to_string()),
                    alias: None,
                })
                .collect(),
            from: vec![TableExpr::Relation { name: "Enrolment".into(), alias: "Enrolment".into() }],
            ..Default::default()
        };
        // SELECT COUNT(D.Sname) FROM (DISTINCT Sid, Sname) D GROUP BY D.Sid
        let stmt = |inner: SelectStatement| SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: ColumnRef::new("D", "Sname"),
                distinct: false,
                alias: "n".into(),
            }],
            from: vec![TableExpr::Derived { query: Box::new(inner), alias: "D".into() }],
            group_by: vec![ColumnRef::new("D", "Sid")],
            ..Default::default()
        };

        let dedup = stmt(proj(&["Sid", "Sname"], true));
        let scope = Scope::build(&dedup, &schema);
        let closure = StmtFds::build(&dedup, &scope).closure(seeds(&dedup));
        // D.Sid pins the inner Sid, its FD pins Sname, which mirrors out.
        assert!(item_row_unique(&scope.items[0], "", &closure), "{closure:?}");

        // Without DISTINCT the projection repeats Enrolment rows: Sid does
        // not key the base relation, so the item is not row-unique.
        let plain = stmt(proj(&["Sid", "Sname"], false));
        let scope = Scope::build(&plain, &schema);
        let closure = StmtFds::build(&plain, &scope).closure(seeds(&plain));
        assert!(!item_row_unique(&scope.items[0], "", &closure), "{closure:?}");
    }

    #[test]
    fn aggregate_subquery_is_single_row() {
        let schema = enrolment_schema();
        let inner = SelectStatement {
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: ColumnRef::new("E", "Sid"),
                distinct: false,
                alias: "n".into(),
            }],
            from: vec![TableExpr::Relation { name: "Enrolment".into(), alias: "E".into() }],
            ..Default::default()
        };
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: ColumnRef::new("R", "n"), alias: None }],
            from: vec![TableExpr::Derived { query: Box::new(inner), alias: "R".into() }],
            ..Default::default()
        };
        let scope = Scope::build(&stmt, &schema);
        let closure = StmtFds::build(&stmt, &scope).closure(seeds(&stmt));
        assert!(item_row_unique(&scope.items[0], "", &closure));
        // And its single output is pinned unconditionally.
        assert!(closure.contains("r.n"), "{closure:?}");
    }
}
