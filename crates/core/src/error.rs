//! Error type of the semantic engine.

use std::fmt;

/// Errors surfaced by query processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The query string violates Definition 1's constraints.
    Parse(String),
    /// A term matches nothing in the database.
    NoMatch(String),
    /// An operator operand's matches violate the match-level constraints
    /// (e.g. `SUM` followed by something that is not an attribute name).
    BadOperand(String),
    /// No connected query pattern exists for any interpretation.
    NoPattern,
    /// The static analyzer (`aqks-analyze`) found an error-severity
    /// defect in a generated statement — a translation bug.
    Analysis(String),
    /// SQL execution failed (executor bug or malformed translation).
    Exec(String),
    /// Schema-level problem (e.g. ORM graph construction failed).
    Schema(String),
    /// A resource budget tripped before any result completed (partial
    /// results are reported via `Governed::exhaustion` instead).
    Budget(aqks_guard::Tripped),
    /// A deterministic failpoint fired (fault-injection builds only).
    Fault(&'static str),
    /// A library panic was caught at the engine boundary — a bug, but one
    /// that no longer takes the process down.
    Internal(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(m) => write!(f, "query parse error: {m}"),
            CoreError::NoMatch(t) => write!(f, "term `{t}` matches nothing in the database"),
            CoreError::BadOperand(m) => write!(f, "invalid operator operand: {m}"),
            CoreError::NoPattern => write!(f, "no connected query pattern exists"),
            CoreError::Analysis(m) => write!(f, "static analysis rejected generated SQL: {m}"),
            CoreError::Exec(m) => write!(f, "execution error: {m}"),
            CoreError::Schema(m) => write!(f, "schema error: {m}"),
            CoreError::Budget(t) => write!(f, "{t}"),
            CoreError::Fault(site) => write!(f, "injected fault at `{site}`"),
            CoreError::Internal(m) => write!(f, "internal error (caught panic): {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<aqks_sqlgen::ExecError> for CoreError {
    fn from(e: aqks_sqlgen::ExecError) -> Self {
        match e {
            aqks_sqlgen::ExecError::Budget(t) => CoreError::Budget(t),
            aqks_sqlgen::ExecError::Fault(site) => CoreError::Fault(site),
            other => CoreError::Exec(other.to_string()),
        }
    }
}

impl From<aqks_relational::Error> for CoreError {
    fn from(e: aqks_relational::Error) -> Self {
        match e {
            aqks_relational::Error::Budget(t) => CoreError::Budget(t),
            aqks_relational::Error::Fault(site) => CoreError::Fault(site),
            other => CoreError::Schema(other.to_string()),
        }
    }
}

impl From<aqks_guard::Tripped> for CoreError {
    fn from(t: aqks_guard::Tripped) -> Self {
        CoreError::Budget(t)
    }
}

impl From<aqks_guard::FailpointError> for CoreError {
    fn from(f: aqks_guard::FailpointError) -> Self {
        CoreError::Fault(f.site)
    }
}
