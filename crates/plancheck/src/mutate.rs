//! Plan-corruption seeding for verifier tests.
//!
//! Each [`Mutation`] applies one realistic planner-bug shape to a copy
//! of a plan — the verifier must reject every applicable mutation with
//! the matching diagnostic kind. This module is a test harness, not an
//! execution feature; it lives in the library (rather than under
//! `#[cfg(test)]`) so downstream crates' property tests can seed the
//! same corruptions.

use aqks_sqlgen::{PlanNode, PlanOp};

/// A seedable plan corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Re-points one hash-join key at a neighboring column, so the join
    /// pairs columns the interpretation never related.
    SwapJoinKeys,
    /// Splices the first Distinct operator out of the tree.
    DropDistinct,
    /// Flips a hash join's build side against the estimates.
    FlipBuildSide,
    /// Replaces a projected column index with one past the input arity
    /// (a stale index surviving a layout change).
    StaleColumnIndex,
    /// Swaps a hash join's inputs *soundly*: keys, build side, output
    /// layout, and every ancestor's column references are remapped.
    /// Unlike the corruptions above, this mutation is semantics
    /// preserving — the verifier must accept it, the structural
    /// fingerprint moves, and `aqks-equiv` must place the mutant in the
    /// same equivalence class as the original (while [`SwapJoinKeys`],
    /// which swaps only the keys, must not).
    ///
    /// [`SwapJoinKeys`]: Mutation::SwapJoinKeys
    SwapJoinInputs,
}

impl Mutation {
    /// All *corrupting* mutation kinds, in a stable order. The verifier
    /// must reject every one of these.
    pub const ALL: [Mutation; 4] = [
        Mutation::SwapJoinKeys,
        Mutation::DropDistinct,
        Mutation::FlipBuildSide,
        Mutation::StaleColumnIndex,
    ];

    /// Semantics-preserving mutations: the verifier must accept them
    /// and equivalence analysis must identify them with the original.
    pub const BENIGN: [Mutation; 1] = [Mutation::SwapJoinInputs];
}

/// Applies `m` to a copy of `plan`. Returns `None` when the plan has no
/// applicable site (e.g. `DropDistinct` on a plan without Distinct).
pub fn apply(plan: &PlanNode, m: Mutation) -> Option<PlanNode> {
    let mut out = plan.clone();
    let hit = match m {
        Mutation::SwapJoinKeys => swap_join_keys(&mut out),
        Mutation::DropDistinct => drop_distinct(&mut out),
        Mutation::FlipBuildSide => flip_build_side(&mut out),
        Mutation::StaleColumnIndex => stale_column_index(&mut out),
        Mutation::SwapJoinInputs => swap_join_inputs(&mut out).is_some(),
    };
    hit.then_some(out)
}

/// Every applicable mutation of `plan`, paired with its kind.
pub fn all(plan: &PlanNode) -> Vec<(Mutation, PlanNode)> {
    Mutation::ALL.iter().filter_map(|&m| apply(plan, m).map(|p| (m, p))).collect()
}

fn swap_join_keys(node: &mut PlanNode) -> bool {
    if let PlanOp::HashJoin { left_keys, right_keys, .. } = &mut node.op {
        // Rotate one key within its side so the pair no longer lines up;
        // a single-column side falls back to an out-of-range index.
        let right_arity = node.children[1].cols.len();
        let left_arity = node.children[0].cols.len();
        if right_arity > 1 {
            right_keys[0] = (right_keys[0] + 1) % right_arity;
        } else if left_arity > 1 {
            left_keys[0] = (left_keys[0] + 1) % left_arity;
        } else {
            right_keys[0] = right_arity;
        }
        return true;
    }
    node.children.iter_mut().any(swap_join_keys)
}

fn drop_distinct(node: &mut PlanNode) -> bool {
    if matches!(node.op, PlanOp::Distinct) {
        let child = node.children.remove(0);
        *node = child;
        return true;
    }
    node.children.iter_mut().any(drop_distinct)
}

fn flip_build_side(node: &mut PlanNode) -> bool {
    if let PlanOp::HashJoin { build_left, .. } = &mut node.op {
        // Only a decisive flip contradicts the planner's policy: with
        // equal estimates either side verifies.
        if node.children[0].est_rows != node.children[1].est_rows {
            *build_left = !*build_left;
            return true;
        }
    }
    node.children.iter_mut().any(flip_build_side)
}

/// Soundly swaps the inputs of the first hash join found in pre-order.
/// Returns the output-column permutation of the rewritten subtree (old
/// column `i` is now column `perm[i]`); ancestors on the way back up
/// remap their own column references through it and rebuild their
/// layouts, so the whole plan stays consistent.
fn swap_join_inputs(node: &mut PlanNode) -> Option<Vec<usize>> {
    if matches!(node.op, PlanOp::HashJoin { .. }) {
        let nl = node.children[0].cols.len();
        let nr = node.children[1].cols.len();
        node.children.swap(0, 1);
        let (l_est, r_est) = (node.children[0].est_rows, node.children[1].est_rows);
        if let PlanOp::HashJoin { left_keys, right_keys, build_left } = &mut node.op {
            std::mem::swap(left_keys, right_keys);
            *build_left = l_est < r_est;
        }
        let mut cols = node.children[0].cols.clone();
        cols.extend(node.children[1].cols.iter().cloned());
        node.cols = cols;
        // Old left block lands after the (nr-wide) new left block.
        let perm: Vec<usize> = (0..nl).map(|i| nr + i).chain(0..nr).collect();
        return Some(perm);
    }
    for ci in 0..node.children.len() {
        if let Some(p) = swap_join_inputs(&mut node.children[ci]) {
            return Some(remap_through(node, ci, &p));
        }
    }
    None
}

/// Remaps `node`'s references into child `ci` through that child's
/// output permutation `p`, rebuilds `node.cols`, and returns `node`'s
/// own output permutation for its parent to apply in turn.
fn remap_through(node: &mut PlanNode, ci: usize, p: &[usize]) -> Vec<usize> {
    use aqks_sqlgen::PhysPred;
    let identity = |n: usize| (0..n).collect::<Vec<usize>>();
    match &mut node.op {
        PlanOp::Filter { preds } => {
            for pred in preds.iter_mut() {
                *pred = match pred {
                    PhysPred::EqCols(l, r) => PhysPred::EqCols(p[*l], p[*r]),
                    PhysPred::ContainsCi(i, s) => PhysPred::ContainsCi(p[*i], s.clone()),
                    PhysPred::EqLit(i, v) => PhysPred::EqLit(p[*i], v.clone()),
                };
            }
            node.cols = node.children[0].cols.clone();
            p.to_vec()
        }
        PlanOp::Project { cols, .. } => {
            for i in cols.iter_mut() {
                *i = p[*i];
            }
            identity(node.cols.len())
        }
        PlanOp::HashAggregate { group, items, .. } => {
            for g in group.iter_mut() {
                *g = p[*g];
            }
            for item in items.iter_mut() {
                match item {
                    aqks_sqlgen::PhysAggItem::Col(i) => *i = p[*i],
                    aqks_sqlgen::PhysAggItem::Agg { arg, .. } => *arg = p[*arg],
                }
            }
            identity(node.cols.len())
        }
        PlanOp::HashJoin { left_keys, right_keys, .. } => {
            let keys = if ci == 0 { left_keys } else { right_keys };
            for k in keys.iter_mut() {
                *k = p[*k];
            }
            let nl = node.children[0].cols.len();
            let nr = node.children[1].cols.len();
            let mut cols = node.children[0].cols.clone();
            cols.extend(node.children[1].cols.iter().cloned());
            node.cols = cols;
            if ci == 0 {
                p.iter().copied().chain(nl..nl + nr).collect()
            } else {
                (0..nl).chain(p.iter().map(|&j| nl + j)).collect()
            }
        }
        PlanOp::CrossJoin => {
            let nl = node.children[0].cols.len();
            let nr = node.children[1].cols.len();
            let mut cols = node.children[0].cols.clone();
            cols.extend(node.children[1].cols.iter().cloned());
            node.cols = cols;
            if ci == 0 {
                p.iter().copied().chain(nl..nl + nr).collect()
            } else {
                (0..nl).chain(p.iter().map(|&j| nl + j)).collect()
            }
        }
        PlanOp::DerivedTable { names, .. } => {
            let old_names = names.clone();
            let old_cols = node.cols.clone();
            for (i, &t) in p.iter().enumerate() {
                names[t] = old_names[i].clone();
                node.cols[t] = old_cols[i].clone();
            }
            p.to_vec()
        }
        PlanOp::Sort { keys } => {
            for (i, _) in keys.iter_mut() {
                *i = p[*i];
            }
            node.cols = node.children[0].cols.clone();
            p.to_vec()
        }
        PlanOp::Distinct | PlanOp::Limit { .. } => {
            node.cols = node.children[0].cols.clone();
            p.to_vec()
        }
        PlanOp::Scan { .. } => identity(node.cols.len()),
    }
}

fn stale_column_index(node: &mut PlanNode) -> bool {
    let arity = node.children.first().map_or(0, |c| c.cols.len());
    match &mut node.op {
        PlanOp::Project { cols, .. } if !cols.is_empty() => {
            cols[0] = arity;
            true
        }
        PlanOp::HashAggregate { group, items, .. } => {
            if let Some(g) = group.first_mut() {
                *g = arity;
            } else if let Some(item) = items.first_mut() {
                match item {
                    aqks_sqlgen::PhysAggItem::Col(i) => *i = arity,
                    aqks_sqlgen::PhysAggItem::Agg { arg, .. } => *arg = arity,
                }
            } else {
                return false;
            }
            true
        }
        _ => node.children.iter_mut().any(stale_column_index),
    }
}
