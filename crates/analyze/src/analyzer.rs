//! The analyzer driver: walks a statement tree and runs every pass.

use aqks_orm::OrmGraph;
use aqks_relational::DatabaseSchema;
use aqks_sqlgen::SelectStatement;

use crate::diagnostics::Report;
use crate::fdmodel::StmtFds;
use crate::passes::{default_passes, LintPass};
use crate::scope::Scope;

/// Tunables for an analysis run.
#[derive(Debug, Clone, Default)]
pub struct AnalyzerOptions {
    /// Extra join edges pass P3 accepts, as unordered case-insensitive
    /// pairs of `"Relation.attribute"` endpoints.
    pub allowed_joins: Vec<(String, String)>,
}

/// Everything a pass may look at while checking one statement.
pub struct StmtContext<'a> {
    /// The statement under scrutiny (root or a derived-table subquery).
    pub stmt: &'a SelectStatement,
    /// Derived-table chain from the root (matches
    /// [`SelectStatement::walk`] paths).
    pub path: &'a [usize],
    /// Resolved FROM items of this statement.
    pub scope: &'a Scope<'a>,
    /// The database schema the statement runs against.
    pub schema: &'a DatabaseSchema,
    /// ORM graph over the schema, when the caller has one.
    pub graph: Option<&'a OrmGraph>,
    /// Run options.
    pub options: &'a AnalyzerOptions,
    /// Flattened FD model of this statement.
    pub fds: &'a StmtFds,
}

/// Static semantic analyzer for generated `SELECT` statements.
pub struct Analyzer<'a> {
    schema: &'a DatabaseSchema,
    graph: Option<&'a OrmGraph>,
    options: AnalyzerOptions,
    passes: Vec<Box<dyn LintPass>>,
}

impl<'a> Analyzer<'a> {
    /// Creates an analyzer for `schema` with the default pass pipeline.
    pub fn new(schema: &'a DatabaseSchema) -> Analyzer<'a> {
        Analyzer {
            schema,
            graph: None,
            options: AnalyzerOptions::default(),
            passes: default_passes(),
        }
    }

    /// Additionally consults an ORM graph when validating joins (P3).
    pub fn with_graph(mut self, graph: &'a OrmGraph) -> Analyzer<'a> {
        self.graph = Some(graph);
        self
    }

    /// Replaces the run options.
    pub fn with_options(mut self, options: AnalyzerOptions) -> Analyzer<'a> {
        self.options = options;
        self
    }

    /// Analyzes `stmt` and every derived-table subquery; returns all
    /// findings, root statement first.
    pub fn analyze(&self, stmt: &SelectStatement) -> Report {
        let mut report = Report::default();
        stmt.walk(&mut |path, sub| {
            let scope = Scope::build(sub, self.schema);
            let fds = StmtFds::build(sub, &scope);
            let cx = StmtContext {
                stmt: sub,
                path,
                scope: &scope,
                schema: self.schema,
                graph: self.graph,
                options: &self.options,
                fds: &fds,
            };
            for pass in &self.passes {
                // Per-pass timing and finding counts, recorded only when
                // a trace span is ambient (the engine's `analyze` phase).
                let span = aqks_obs::current().map(|r| r.span(format!("pass:{}", pass.name())));
                let before = report.diagnostics.len();
                pass.check(&cx, &mut report.diagnostics);
                if let Some(span) = &span {
                    span.add("findings", (report.diagnostics.len() - before) as u64);
                }
            }
        });
        report
    }
}

/// Analyzes one statement against a schema with default options.
pub fn analyze(stmt: &SelectStatement, schema: &DatabaseSchema) -> Report {
    Analyzer::new(schema).analyze(stmt)
}
