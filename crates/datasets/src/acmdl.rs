//! Synthetic ACM Digital Library generator for the schema of Table 2.
//!
//! The paper's ACMDL dump is proprietary; the generator plants the
//! ambiguity structure its queries A1–A8 probe:
//!
//! * **61 editors named Smith**, sixty editing one proceeding and one
//!   editing two — so A3 yields 61 per-editor answers summing to 62,
//!   while SQAK merges them into the single answer 62 (Table 6);
//! * **36 authors named Gill** whose papers' global latest date is
//!   planted at **2011-06-13** (A4);
//! * **36 SIGMOD proceedings** (A2);
//! * six **"database tuning"** papers with author counts
//!   [2, 2, 2, 6, 2, 2] over four distinct titles, so SQAK's
//!   title-grouped answers are [2, 4, 6, 4] (A5);
//! * **4 IEEE publishers**, each with its own proceedings and papers (A6);
//! * **John/Mary co-author pairs** with planted co-paper counts starting
//!   [1, 32, 8, …] (A7);
//! * two editors each editing one SIGIR and one CIKM proceeding (A8).

use crate::rng::StdRng;
use std::collections::HashSet;

use aqks_relational::{AttrType, Database, Date, RelationSchema, Value};

use crate::words;

/// The planted latest date of any Gill-authored paper (A4).
pub const GILL_LATEST_DATE: Date = Date { year: 2011, month: 6, day: 13 };

/// Per-paper author counts of the planted "database tuning" papers (A5).
pub const TUNING_AUTHOR_COUNTS: [usize; 6] = [2, 2, 2, 6, 2, 2];

/// Titles of the planted "database tuning" papers — four distinct titles
/// over six papers, giving SQAK's merged [2, 4, 6, 4].
pub const TUNING_TITLES: [&str; 6] = [
    "database tuning",
    "advanced database tuning",
    "advanced database tuning",
    "database tuning principles",
    "practical database tuning",
    "practical database tuning",
];

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct AcmdlConfig {
    /// RNG seed.
    pub seed: u64,
    /// Editors named Smith (paper: 61).
    pub smith_editors: usize,
    /// Authors named Gill (paper: 36).
    pub gill_authors: usize,
    /// SIGMOD proceedings (paper: 36).
    pub sigmod_proceedings: usize,
    /// IEEE publishers (paper: 4); each gets two proceedings.
    pub ieee_publishers: usize,
    /// Authors with first name John.
    pub john_authors: usize,
    /// Authors with first name Mary.
    pub mary_authors: usize,
    /// Planted (John, Mary) co-author pairs (paper: 46).
    pub john_mary_pairs: usize,
    /// Mean papers per proceeding (paper: ~82).
    pub papers_per_proceeding: usize,
    /// Background proceedings beyond the planted ones.
    pub background_proceedings: usize,
    /// Background authors.
    pub background_authors: usize,
    /// Background editors.
    pub background_editors: usize,
}

impl AcmdlConfig {
    /// Small instance for tests.
    pub fn small() -> Self {
        AcmdlConfig {
            seed: 42,
            smith_editors: 9,
            gill_authors: 6,
            sigmod_proceedings: 6,
            ieee_publishers: 2,
            john_authors: 4,
            mary_authors: 3,
            john_mary_pairs: 6,
            papers_per_proceeding: 8,
            background_proceedings: 10,
            background_authors: 120,
            background_editors: 25,
        }
    }

    /// Paper-scale instance matching Table 6's cardinalities.
    pub fn paper_scale() -> Self {
        AcmdlConfig {
            seed: 42,
            smith_editors: 61,
            gill_authors: 36,
            sigmod_proceedings: 36,
            ieee_publishers: 4,
            john_authors: 10,
            mary_authors: 8,
            john_mary_pairs: 46,
            papers_per_proceeding: 82,
            background_proceedings: 40,
            background_authors: 3000,
            background_editors: 300,
        }
    }
}

impl Default for AcmdlConfig {
    fn default() -> Self {
        AcmdlConfig::small()
    }
}

/// Builds the empty ACMDL schema of Table 2.
pub fn acmdl_schema() -> Vec<RelationSchema> {
    let mut rels = Vec::new();

    let mut r = RelationSchema::new("Paper");
    r.add_attr("paperid", AttrType::Int)
        .add_attr("procid", AttrType::Int)
        .add_attr("date", AttrType::Date)
        .add_attr("ptitle", AttrType::Text);
    r.set_primary_key(["paperid"]);
    r.add_foreign_key(["procid"], "Proceeding", ["procid"]);
    rels.push(r);

    let mut r = RelationSchema::new("Author");
    r.add_attr("authorid", AttrType::Int)
        .add_attr("fname", AttrType::Text)
        .add_attr("lname", AttrType::Text);
    r.set_primary_key(["authorid"]);
    rels.push(r);

    let mut r = RelationSchema::new("Editor");
    r.add_attr("editorid", AttrType::Int)
        .add_attr("fname", AttrType::Text)
        .add_attr("lname", AttrType::Text);
    r.set_primary_key(["editorid"]);
    rels.push(r);

    let mut r = RelationSchema::new("Proceeding");
    r.add_attr("procid", AttrType::Int)
        .add_attr("acronym", AttrType::Text)
        .add_attr("title", AttrType::Text)
        .add_attr("date", AttrType::Date)
        .add_attr("pages", AttrType::Int)
        .add_attr("publisherid", AttrType::Int);
    r.set_primary_key(["procid"]);
    r.add_foreign_key(["publisherid"], "Publisher", ["publisherid"]);
    rels.push(r);

    let mut r = RelationSchema::new("Publisher");
    r.add_attr("publisherid", AttrType::Int)
        .add_attr("code", AttrType::Text)
        .add_attr("name", AttrType::Text);
    r.set_primary_key(["publisherid"]);
    rels.push(r);

    let mut r = RelationSchema::new("Write");
    r.add_attr("paperid", AttrType::Int).add_attr("authorid", AttrType::Int);
    r.set_primary_key(["paperid", "authorid"]);
    r.add_foreign_key(["paperid"], "Paper", ["paperid"]);
    r.add_foreign_key(["authorid"], "Author", ["authorid"]);
    rels.push(r);

    let mut r = RelationSchema::new("Edit");
    r.add_attr("editorid", AttrType::Int).add_attr("procid", AttrType::Int);
    r.set_primary_key(["editorid", "procid"]);
    r.add_foreign_key(["editorid"], "Editor", ["editorid"]);
    r.add_foreign_key(["procid"], "Proceeding", ["procid"]);
    rels.push(r);

    rels
}

/// Generates a database per the config.
pub fn generate_acmdl(cfg: &AcmdlConfig) -> Database {
    assert!(cfg.sigmod_proceedings >= 6, "tuning papers live in the first 6 SIGMOD proceedings");
    assert!(cfg.john_authors * cfg.mary_authors >= cfg.john_mary_pairs);
    assert!(cfg.background_authors >= 40, "tuning papers need background co-authors");

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new("acmdl");
    for rel in acmdl_schema() {
        db.add_relation(rel).expect("static dataset builder");
    }

    // --- Publisher ---------------------------------------------------------
    // ids: 1..=ieee are the IEEE group; the rest are background.
    let ieee_names = ["IEEE", "IEEE Computer Society", "IEEE Press", "IEEE Communications Society"];
    let mut publisherid = 0i64;
    for i in 0..cfg.ieee_publishers {
        publisherid += 1;
        let name = if i < ieee_names.len() {
            ieee_names[i].to_string()
        } else {
            format!("IEEE Division {i}")
        };
        db.insert(
            "Publisher",
            vec![Value::Int(publisherid), Value::str(format!("P{publisherid}")), Value::str(name)],
        )
        .expect("static dataset builder");
    }
    for name in words::PUBLISHERS {
        publisherid += 1;
        db.insert(
            "Publisher",
            vec![Value::Int(publisherid), Value::str(format!("P{publisherid}")), Value::str(*name)],
        )
        .expect("static dataset builder");
    }
    let acm_publisher = cfg.ieee_publishers as i64 + 1; // "ACM"
    let n_publishers = publisherid;

    // --- Proceeding ----------------------------------------------------------
    let mut procid = 0i64;
    let title = |rng: &mut StdRng, year: i32| {
        format!(
            "{} {} symposium {year}",
            words::TITLE_WORDS[rng.gen_range(0..words::TITLE_WORDS.len())],
            words::TITLE_WORDS[rng.gen_range(0..words::TITLE_WORDS.len())],
        )
    };
    let mut add_proc =
        |db: &mut Database, rng: &mut StdRng, acronym: &str, year: i32, publisher: i64| -> i64 {
            procid += 1;
            let t = title(rng, year);
            db.insert(
                "Proceeding",
                vec![
                    Value::Int(procid),
                    Value::str(acronym),
                    Value::str(t),
                    Value::Date(Date::new(
                        year,
                        rng.gen_range(1..=12) as u8,
                        rng.gen_range(1..=28) as u8,
                    )),
                    Value::Int(rng.gen_range(200..=900)),
                    Value::Int(publisher),
                ],
            )
            .expect("static dataset builder");
            procid
        };

    let mut sigmod_procs = Vec::new();
    for i in 0..cfg.sigmod_proceedings {
        sigmod_procs.push(add_proc(&mut db, &mut rng, "SIGMOD", 1975 + i as i32, acm_publisher));
    }
    let sigir_procs = [
        add_proc(&mut db, &mut rng, "SIGIR", 2005, acm_publisher),
        add_proc(&mut db, &mut rng, "SIGIR", 2006, acm_publisher),
    ];
    let cikm_procs = [
        add_proc(&mut db, &mut rng, "CIKM", 2011, acm_publisher),
        add_proc(&mut db, &mut rng, "CIKM", 2012, acm_publisher),
    ];
    let mut ieee_procs = Vec::new();
    for p in 1..=cfg.ieee_publishers as i64 {
        for k in 0..2 {
            let acr = words::ACRONYMS[(p as usize + k) % words::ACRONYMS.len()];
            ieee_procs.push(add_proc(&mut db, &mut rng, acr, 1998 + p as i32 + k as i32, p));
        }
    }
    for i in 0..cfg.background_proceedings {
        let acr = words::ACRONYMS[i % words::ACRONYMS.len()];
        let publisher = rng.gen_range(cfg.ieee_publishers as i64 + 1..=n_publishers);
        add_proc(&mut db, &mut rng, acr, 1990 + (i as i32 % 20), publisher);
    }
    let n_procs = procid;

    // --- Author ---------------------------------------------------------------
    let mut authorid = 0i64;
    let mut gills = Vec::new();
    for i in 0..cfg.gill_authors {
        authorid += 1;
        gills.push(authorid);
        db.insert(
            "Author",
            vec![
                Value::Int(authorid),
                Value::str(words::FIRST_NAMES[i % words::FIRST_NAMES.len()]),
                Value::str("Gill"),
            ],
        )
        .expect("static dataset builder");
    }
    let mut johns = Vec::new();
    for i in 0..cfg.john_authors {
        authorid += 1;
        johns.push(authorid);
        db.insert(
            "Author",
            vec![
                Value::Int(authorid),
                Value::str("John"),
                Value::str(words::LAST_NAMES[i % words::LAST_NAMES.len()]),
            ],
        )
        .expect("static dataset builder");
    }
    let mut marys = Vec::new();
    for i in 0..cfg.mary_authors {
        authorid += 1;
        marys.push(authorid);
        db.insert(
            "Author",
            vec![
                Value::Int(authorid),
                Value::str("Mary"),
                Value::str(words::LAST_NAMES[(i + 7) % words::LAST_NAMES.len()]),
            ],
        )
        .expect("static dataset builder");
    }
    let background_author_start = authorid + 1;
    for i in 0..cfg.background_authors {
        authorid += 1;
        db.insert(
            "Author",
            vec![
                Value::Int(authorid),
                Value::str(words::FIRST_NAMES[(i * 3 + 1) % words::FIRST_NAMES.len()]),
                Value::str(words::LAST_NAMES[(i * 5 + 2) % words::LAST_NAMES.len()]),
            ],
        )
        .expect("static dataset builder");
    }
    let n_authors = authorid;

    // --- Editor -----------------------------------------------------------------
    let mut editorid = 0i64;
    let mut smiths = Vec::new();
    for i in 0..cfg.smith_editors {
        editorid += 1;
        smiths.push(editorid);
        db.insert(
            "Editor",
            vec![
                Value::Int(editorid),
                Value::str(words::FIRST_NAMES[(i + 5) % words::FIRST_NAMES.len()]),
                Value::str("Smith"),
            ],
        )
        .expect("static dataset builder");
    }
    let background_editor_start = editorid + 1;
    for i in 0..cfg.background_editors {
        editorid += 1;
        db.insert(
            "Editor",
            vec![
                Value::Int(editorid),
                Value::str(words::FIRST_NAMES[(i * 7 + 2) % words::FIRST_NAMES.len()]),
                Value::str(words::LAST_NAMES[(i * 11 + 4) % words::LAST_NAMES.len()]),
            ],
        )
        .expect("static dataset builder");
    }

    // --- Paper + Write -------------------------------------------------------------
    let mut paperid = 0i64;
    let mut writes: HashSet<(i64, i64)> = HashSet::new();
    let proc_dates: Vec<Date> = db
        .table("Proceeding")
        .expect("static dataset builder")
        .rows()
        .iter()
        .map(|r| match &r[3] {
            Value::Date(d) => *d,
            _ => unreachable!(),
        })
        .collect();

    let mut add_paper = |db: &mut Database,
                         _rng: &mut StdRng,
                         proc_: i64,
                         ptitle: String,
                         date: Option<Date>|
     -> i64 {
        paperid += 1;
        let d = date.unwrap_or(proc_dates[(proc_ - 1) as usize]);
        db.insert(
            "Paper",
            vec![Value::Int(paperid), Value::Int(proc_), Value::Date(d), Value::str(ptitle)],
        )
        .expect("static dataset builder");
        paperid
    };
    let add_write = |db: &mut Database, writes: &mut HashSet<(i64, i64)>, p: i64, a: i64| {
        if writes.insert((p, a)) {
            db.insert("Write", vec![Value::Int(p), Value::Int(a)]).expect("static dataset builder");
        }
    };

    // Background papers per proceeding.
    for proc_ in 1..=n_procs {
        let n = cfg.papers_per_proceeding + rng.gen_range(0..=4usize);
        for _ in 0..n {
            let t = format!(
                "{} {} {}",
                words::TITLE_WORDS[rng.gen_range(0..words::TITLE_WORDS.len())],
                words::TITLE_WORDS[rng.gen_range(0..words::TITLE_WORDS.len())],
                words::TITLE_WORDS[rng.gen_range(0..words::TITLE_WORDS.len())],
            );
            let p = add_paper(&mut db, &mut rng, proc_, t, None);
            let n_auth = rng.gen_range(1..=4);
            for _ in 0..n_auth {
                let a = rng.gen_range(background_author_start..=n_authors);
                add_write(&mut db, &mut writes, p, a);
            }
        }
    }

    // Planted "database tuning" papers (A5) in the first six SIGMOD
    // proceedings, with disjoint background author sets.
    let mut tuning_author_cursor = background_author_start;
    for (i, (&count, title)) in TUNING_AUTHOR_COUNTS.iter().zip(TUNING_TITLES).enumerate() {
        let p = add_paper(&mut db, &mut rng, sigmod_procs[i], title.to_string(), None);
        for _ in 0..count {
            add_write(&mut db, &mut writes, p, tuning_author_cursor);
            tuning_author_cursor += 1;
        }
    }

    // Gill papers (A4): every Gill writes 1-3 papers in pre-2011
    // proceedings; Gill #1 additionally writes the planted 2011-06-13
    // paper (in the CIKM 2011 proceeding), the global Gill maximum.
    let pre2011: Vec<i64> =
        (1..=n_procs).filter(|&p| proc_dates[(p - 1) as usize].year < 2011).collect();
    for (i, &gill) in gills.iter().enumerate() {
        let n = 1 + (i % 3);
        for k in 0..n {
            let proc_ = pre2011[(i * 13 + k * 7) % pre2011.len()];
            let t = format!(
                "{} {} retrospectives",
                words::TITLE_WORDS[(i + k) % words::TITLE_WORDS.len()],
                words::TITLE_WORDS[(i * 3 + k) % words::TITLE_WORDS.len()],
            );
            let p = add_paper(&mut db, &mut rng, proc_, t, None);
            add_write(&mut db, &mut writes, p, gill);
        }
    }
    let special = add_paper(
        &mut db,
        &mut rng,
        cikm_procs[0],
        "landmark retrospectives".to_string(),
        Some(GILL_LATEST_DATE),
    );
    add_write(&mut db, &mut writes, special, gills[0]);

    // John/Mary co-papers (A7): pair k gets a planted number of shared
    // papers; the first three counts mirror Table 6's "1, 32, 8, …".
    let mut pair_idx = 0usize;
    'outer: for &j in &johns {
        for &m in &marys {
            if pair_idx >= cfg.john_mary_pairs {
                break 'outer;
            }
            let count = match pair_idx {
                0 => 1,
                1 => 32,
                2 => 8,
                _ => rng.gen_range(1..=6),
            };
            for _ in 0..count {
                let proc_ = rng.gen_range(1..=n_procs);
                let t = format!(
                    "joint {} {}",
                    words::TITLE_WORDS[rng.gen_range(0..words::TITLE_WORDS.len())],
                    words::TITLE_WORDS[rng.gen_range(0..words::TITLE_WORDS.len())],
                );
                let p = add_paper(&mut db, &mut rng, proc_, t, None);
                add_write(&mut db, &mut writes, p, j);
                add_write(&mut db, &mut writes, p, m);
            }
            pair_idx += 1;
        }
    }

    // --- Edit ------------------------------------------------------------------
    let mut edits: HashSet<(i64, i64)> = HashSet::new();
    let add_edit = |db: &mut Database, edits: &mut HashSet<(i64, i64)>, e: i64, p: i64| {
        if edits.insert((e, p)) {
            db.insert("Edit", vec![Value::Int(e), Value::Int(p)]).expect("static dataset builder");
        }
    };

    // Smiths (A3): Smith #1 edits two proceedings, the rest edit one —
    // per-editor counts [2, 1, 1, …] summing to smiths + 1.
    for (i, &smith) in smiths.iter().enumerate() {
        let p1 = ((i * 3) % n_procs as usize) as i64 + 1;
        add_edit(&mut db, &mut edits, smith, p1);
        if i == 0 {
            let p2 = if p1 == n_procs { 1 } else { p1 + 1 };
            add_edit(&mut db, &mut edits, smith, p2);
        }
    }

    // SIGIR/CIKM shared editors (A8): two background editors each edit
    // one SIGIR and one CIKM proceeding, on disjoint pairs.
    let e1 = background_editor_start;
    let e2 = background_editor_start + 1;
    add_edit(&mut db, &mut edits, e1, sigir_procs[0]);
    add_edit(&mut db, &mut edits, e1, cikm_procs[0]);
    add_edit(&mut db, &mut edits, e2, sigir_procs[1]);
    add_edit(&mut db, &mut edits, e2, cikm_procs[1]);

    // SIGIR/CIKM proceedings get one extra editor each from disjoint
    // pools, so no third editor accidentally edits both acronyms.
    add_edit(&mut db, &mut edits, background_editor_start + 2, sigir_procs[0]);
    add_edit(&mut db, &mut edits, background_editor_start + 3, sigir_procs[1]);
    add_edit(&mut db, &mut edits, background_editor_start + 4, cikm_procs[0]);
    add_edit(&mut db, &mut edits, background_editor_start + 5, cikm_procs[1]);

    // Background editorship: every other proceeding gets 1-2 further
    // editors, drawn strictly after the planted A8 pools.
    for p in 1..=n_procs {
        if sigir_procs.contains(&p) || cikm_procs.contains(&p) {
            continue;
        }
        let n = rng.gen_range(1..=2);
        for _ in 0..n {
            let e = rng.gen_range(background_editor_start + 6..=editorid);
            add_edit(&mut db, &mut edits, e, p);
        }
    }

    db.validate().expect("generated ACMDL database is consistent");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        generate_acmdl(&AcmdlConfig::small())
    }

    #[test]
    fn deterministic() {
        let a = generate_acmdl(&AcmdlConfig::small());
        let b = generate_acmdl(&AcmdlConfig::small());
        assert_eq!(a.table("Write").unwrap().rows(), b.table("Write").unwrap().rows());
    }

    #[test]
    fn planted_smith_structure() {
        let cfg = AcmdlConfig::small();
        let db = db();
        let editors = db.table("Editor").unwrap();
        let smith_ids: HashSet<i64> = editors
            .rows()
            .iter()
            .filter(|r| r[2] == Value::str("Smith"))
            .map(|r| match &r[0] {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(smith_ids.len(), cfg.smith_editors);
        let edits = db.table("Edit").unwrap();
        let smith_edits = edits
            .rows()
            .iter()
            .filter(|r| match &r[0] {
                Value::Int(i) => smith_ids.contains(i),
                _ => false,
            })
            .count();
        assert_eq!(smith_edits, cfg.smith_editors + 1, "one Smith edits two proceedings");
    }

    #[test]
    fn planted_gill_latest_date() {
        let db = db();
        let authors = db.table("Author").unwrap();
        let gill_ids: HashSet<i64> = authors
            .rows()
            .iter()
            .filter(|r| r[2] == Value::str("Gill"))
            .map(|r| match &r[0] {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        let writes = db.table("Write").unwrap();
        let papers = db.table("Paper").unwrap();
        let mut max_date: Option<Date> = None;
        for w in writes.rows() {
            let (p, a) = match (&w[0], &w[1]) {
                (Value::Int(p), Value::Int(a)) => (*p, *a),
                _ => unreachable!(),
            };
            if !gill_ids.contains(&a) {
                continue;
            }
            let d = match &papers.rows()[(p - 1) as usize][2] {
                Value::Date(d) => *d,
                _ => unreachable!(),
            };
            max_date = Some(max_date.map_or(d, |m| m.max(d)));
        }
        assert_eq!(max_date, Some(GILL_LATEST_DATE));
    }

    #[test]
    fn planted_tuning_papers() {
        let db = db();
        let papers = db.table("Paper").unwrap();
        let tuning: Vec<i64> = papers
            .rows()
            .iter()
            .filter(|r| r[3].contains_ci("database tuning"))
            .map(|r| match &r[0] {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tuning.len(), 6);
        let writes = db.table("Write").unwrap();
        let mut counts: Vec<usize> = tuning
            .iter()
            .map(|p| writes.rows().iter().filter(|w| w[0] == Value::Int(*p)).count())
            .collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![2, 2, 2, 2, 2, 6]);
    }

    #[test]
    fn planted_sigir_cikm_editors() {
        let db = db();
        let procs = db.table("Proceeding").unwrap();
        let by_acr = |acr: &str| -> HashSet<i64> {
            procs
                .rows()
                .iter()
                .filter(|r| r[1] == Value::str(acr))
                .map(|r| match &r[0] {
                    Value::Int(i) => *i,
                    _ => unreachable!(),
                })
                .collect()
        };
        let sigir = by_acr("SIGIR");
        let cikm = by_acr("CIKM");
        assert_eq!((sigir.len(), cikm.len()), (2, 2));

        let edits = db.table("Edit").unwrap();
        let editors_of = |p: &HashSet<i64>| -> HashSet<i64> {
            edits
                .rows()
                .iter()
                .filter(|r| match &r[1] {
                    Value::Int(i) => p.contains(i),
                    _ => false,
                })
                .map(|r| match &r[0] {
                    Value::Int(i) => *i,
                    _ => unreachable!(),
                })
                .collect()
        };
        let both: HashSet<i64> =
            editors_of(&sigir).intersection(&editors_of(&cikm)).copied().collect();
        assert_eq!(both.len(), 2, "exactly two editors edit both a SIGIR and a CIKM");
    }

    #[test]
    fn john_mary_pairs_have_planted_counts() {
        let db = db();
        // Count co-papers of the first (John, Mary) pair: planted 1; the
        // second pair: planted 32.
        let authors = db.table("Author").unwrap();
        let first_of = |fname: &str| -> Vec<i64> {
            authors
                .rows()
                .iter()
                .filter(|r| r[1] == Value::str(fname))
                .map(|r| match &r[0] {
                    Value::Int(i) => *i,
                    _ => unreachable!(),
                })
                .collect()
        };
        let johns = first_of("John");
        let marys = first_of("Mary");
        let writes = db.table("Write").unwrap();
        let papers_of = |a: i64| -> HashSet<i64> {
            writes
                .rows()
                .iter()
                .filter(|w| w[1] == Value::Int(a))
                .map(|w| match &w[0] {
                    Value::Int(i) => *i,
                    _ => unreachable!(),
                })
                .collect()
        };
        let co = |j: i64, m: i64| papers_of(j).intersection(&papers_of(m)).count();
        assert_eq!(co(johns[0], marys[0]), 1);
        assert_eq!(co(johns[0], marys[1]), 32);
        assert_eq!(co(johns[0], marys[2]), 8);
    }

    #[test]
    fn referential_integrity() {
        db().validate().unwrap();
    }
}
