//! Tuple storage for a single relation, with arity/type checks and
//! primary-key uniqueness enforcement.

use std::collections::HashSet;

use crate::error::{Error, Result};
use crate::schema::{AttrType, RelationSchema};
use crate::value::Value;

/// One tuple. Values are positionally aligned with the schema's attributes.
pub type Row = Vec<Value>;

/// A relation instance: schema plus tuples.
#[derive(Debug, Clone)]
pub struct Table {
    /// Schema of this relation.
    pub schema: RelationSchema,
    rows: Vec<Row>,
    /// Attribute positions of the primary key (cached).
    key_pos: Vec<usize>,
    key_index: HashSet<Vec<Value>>,
}

impl Table {
    /// Creates an empty table for the (already validated) schema.
    pub fn new(schema: RelationSchema) -> Self {
        let key_pos = schema.primary_key.iter().filter_map(|k| schema.attr_index(k)).collect();
        Table { schema, rows: Vec::new(), key_pos, key_index: HashSet::new() }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All tuples, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Inserts a tuple after checking arity, types, and key uniqueness.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.attrs.len() {
            return Err(Error::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.attrs.len(),
                got: row.len(),
            });
        }
        for (v, a) in row.iter().zip(&self.schema.attrs) {
            let ok = matches!(
                (v, a.ty),
                (Value::Null, _)
                    | (Value::Int(_), AttrType::Int)
                    | (Value::Float(_), AttrType::Float)
                    | (Value::Int(_), AttrType::Float)
                    | (Value::Str(_), AttrType::Text)
                    | (Value::Date(_), AttrType::Date)
            );
            if !ok {
                return Err(Error::TypeMismatch {
                    relation: self.schema.name.clone(),
                    attribute: a.name.clone(),
                    expected: a.ty.name().to_string(),
                    got: v.type_name().to_string(),
                });
            }
        }
        if !self.key_pos.is_empty() {
            let key: Vec<Value> = self.key_pos.iter().map(|&i| row[i].clone()).collect();
            if !self.key_index.insert(key.clone()) {
                return Err(Error::DuplicateKey {
                    relation: self.schema.name.clone(),
                    key: format!(
                        "({})",
                        key.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
                    ),
                });
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Value of `attr` (case-insensitive) in row `row_idx`.
    pub fn value(&self, row_idx: usize, attr: &str) -> Option<&Value> {
        let i = self.schema.attr_index(attr)?;
        self.rows.get(row_idx).map(|r| &r[i])
    }

    /// Projects the table onto the named attributes, optionally de-duplicating.
    /// This is the relational-algebra `Π` used by Table 1's mappings.
    pub fn project(&self, attrs: &[&str], distinct: bool) -> Result<Vec<Row>> {
        let idx: Result<Vec<usize>> = attrs
            .iter()
            .map(|a| {
                self.schema.attr_index(a).ok_or_else(|| Error::UnknownAttribute {
                    relation: self.schema.name.clone(),
                    attribute: (*a).to_string(),
                })
            })
            .collect();
        let idx = idx?;
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            let proj: Row = idx.iter().map(|&i| row[i].clone()).collect();
            if !distinct || seen.insert(proj.clone()) {
                out.push(proj);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn course_table() -> Table {
        let mut s = RelationSchema::new("Course");
        s.add_attr("Code", AttrType::Text)
            .add_attr("Title", AttrType::Text)
            .add_attr("Credit", AttrType::Float);
        s.set_primary_key(["Code"]);
        Table::new(s)
    }

    #[test]
    fn insert_and_read() {
        let mut t = course_table();
        t.insert(vec![Value::str("c1"), Value::str("Java"), Value::Float(5.0)]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.value(0, "title"), Some(&Value::str("Java")));
    }

    #[test]
    fn rejects_duplicate_key() {
        let mut t = course_table();
        t.insert(vec![Value::str("c1"), Value::str("Java"), Value::Float(5.0)]).unwrap();
        let err =
            t.insert(vec![Value::str("c1"), Value::str("DB"), Value::Float(4.0)]).unwrap_err();
        assert!(matches!(err, Error::DuplicateKey { .. }));
    }

    #[test]
    fn rejects_wrong_arity_and_type() {
        let mut t = course_table();
        assert!(matches!(t.insert(vec![Value::str("c1")]), Err(Error::ArityMismatch { .. })));
        assert!(matches!(
            t.insert(vec![Value::str("c1"), Value::Int(3), Value::Float(5.0)]),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn int_promotes_to_float_attribute() {
        let mut t = course_table();
        t.insert(vec![Value::str("c1"), Value::str("Java"), Value::Int(5)]).unwrap();
        assert_eq!(t.value(0, "Credit"), Some(&Value::Int(5)));
    }

    #[test]
    fn project_distinct_removes_duplicates() {
        let mut t = course_table();
        t.insert(vec![Value::str("c1"), Value::str("Java"), Value::Float(5.0)]).unwrap();
        t.insert(vec![Value::str("c2"), Value::str("Java"), Value::Float(4.0)]).unwrap();
        let rows = t.project(&["Title"], true).unwrap();
        assert_eq!(rows.len(), 1);
        let rows = t.project(&["Title"], false).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn null_allowed_in_any_column() {
        let mut t = course_table();
        t.insert(vec![Value::str("c1"), Value::Null, Value::Null]).unwrap();
        assert_eq!(t.value(0, "Title"), Some(&Value::Null));
    }
}
