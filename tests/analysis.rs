//! Workspace-level tests of the `aqks-analyze` static analyzer: one
//! positive and one negative case per pass on the university schema, and
//! the regression the analyzer exists for — SQAK's duplicate-inflated
//! aggregate on the Figure 2 database is flagged `AQ-P5` while the paper
//! engine's translation of the same query is clean.

use aqks::analyze::{analyze, Analyzer, AnalyzerOptions, Severity};
use aqks::datasets::university;
use aqks::relational::DatabaseSchema;
use aqks::sqlgen::{AggFunc, ColumnRef, Predicate, SelectItem, SelectStatement, TableExpr};

fn schema() -> DatabaseSchema {
    university::normalized().schema()
}

fn rel(name: &str, alias: &str) -> TableExpr {
    TableExpr::Relation { name: name.into(), alias: alias.into() }
}

fn col(q: &str, c: &str) -> SelectItem {
    SelectItem::Column { col: ColumnRef::new(q, c), alias: None }
}

fn agg(func: AggFunc, q: &str, c: &str, alias: &str) -> SelectItem {
    SelectItem::Aggregate { func, arg: ColumnRef::new(q, c), distinct: false, alias: alias.into() }
}

/// The paper's Example 5 shape: a correct grouped aggregate over
/// Student–Enrol–Course. Every pass comes back clean.
fn example5() -> SelectStatement {
    SelectStatement {
        items: vec![col("S", "Sid"), agg(AggFunc::Count, "C", "Code", "numCode")],
        from: vec![rel("Course", "C"), rel("Enrol", "E"), rel("Student", "S")],
        predicates: vec![
            Predicate::JoinEq(ColumnRef::new("C", "Code"), ColumnRef::new("E", "Code")),
            Predicate::JoinEq(ColumnRef::new("S", "Sid"), ColumnRef::new("E", "Sid")),
            Predicate::Contains(ColumnRef::new("S", "Sname"), "Green".into()),
        ],
        group_by: vec![ColumnRef::new("S", "Sid")],
        ..Default::default()
    }
}

#[test]
fn well_formed_statement_is_clean() {
    let report = analyze(&example5(), &schema());
    assert!(report.is_clean(), "{report:?}");
}

// ── AQ-P1: name resolution ───────────────────────────────────────────

#[test]
fn p1_flags_unknown_names() {
    let mut stmt = example5();
    stmt.items[0] = col("S", "Nickname"); // no such column
    stmt.predicates.push(Predicate::Contains(ColumnRef::new("Z", "Sname"), "x".into()));
    let report = analyze(&stmt, &schema());
    assert!(report.has_code("AQ-P1"), "{report:?}");
    assert!(report.has_errors());

    let mut stmt = example5();
    stmt.from.push(rel("Dormitory", "D")); // no such relation
    assert!(analyze(&stmt, &schema()).has_code("AQ-P1"));
}

#[test]
fn p1_accepts_output_names_in_order_by_only() {
    let mut stmt = example5();
    stmt.order_by =
        vec![aqks::sqlgen::ast::OrderKey { column: ColumnRef::new("", "numCode"), desc: true }];
    assert!(analyze(&stmt, &schema()).is_clean());

    // The same unqualified name in GROUP BY is an error.
    let mut stmt = example5();
    stmt.group_by.push(ColumnRef::new("", "numCode"));
    assert!(analyze(&stmt, &schema()).has_code("AQ-P1"));
}

// ── AQ-P2: type checking ─────────────────────────────────────────────

#[test]
fn p2_flags_numeric_aggregates_over_text() {
    let mut stmt = example5();
    stmt.items[1] = agg(AggFunc::Sum, "C", "Title", "sumTitle"); // text column
    let report = analyze(&stmt, &schema());
    assert!(report.has_code("AQ-P2"), "{report:?}");

    // MIN over text is fine (lexicographic), as is SUM over a numeric.
    let mut stmt = example5();
    stmt.items[1] = agg(AggFunc::Min, "C", "Title", "minTitle");
    assert!(analyze(&stmt, &schema()).is_clean());
    let mut stmt = example5();
    stmt.items[1] = agg(AggFunc::Sum, "C", "Credit", "sumCredit");
    assert!(analyze(&stmt, &schema()).is_clean());
}

#[test]
fn p2_flags_contains_on_numeric_columns() {
    let mut stmt = example5();
    stmt.predicates[2] = Predicate::Contains(ColumnRef::new("S", "Age"), "12".into());
    let report = analyze(&stmt, &schema());
    assert!(report.has_code("AQ-P2"), "{report:?}");
    assert!(report.has_errors());
}

// ── AQ-P3: join validity ─────────────────────────────────────────────

#[test]
fn p3_flags_joins_off_the_schema_structure() {
    let mut stmt = example5();
    // Student.Sname = Course.Title: same types, no FK, different names.
    stmt.predicates[0] =
        Predicate::JoinEq(ColumnRef::new("S", "Sname"), ColumnRef::new("C", "Title"));
    let report = analyze(&stmt, &schema());
    assert!(report.has_code("AQ-P3"), "{report:?}");

    // Whitelisting the pair silences it.
    let options =
        AnalyzerOptions { allowed_joins: vec![("Student.Sname".into(), "Course.Title".into())] };
    let schema = schema();
    let report = Analyzer::new(&schema).with_options(options).analyze(&stmt);
    assert!(!report.has_code("AQ-P3"), "{report:?}");
}

#[test]
fn p3_accepts_declared_foreign_keys_both_ways() {
    // example5 joins along Enrol->Course and Enrol->Student FKs, written
    // with the referenced side on the left.
    assert!(!analyze(&example5(), &schema()).has_code("AQ-P3"));
}

// ── AQ-P4: aggregate well-formedness ─────────────────────────────────

#[test]
fn p4_flags_ungrouped_select_columns() {
    let mut stmt = example5();
    stmt.items.insert(1, col("S", "Sname")); // selected, not grouped
    let report = analyze(&stmt, &schema());
    assert!(report.has_code("AQ-P4"), "{report:?}");

    // Adding it to GROUP BY fixes the statement.
    let mut stmt = example5();
    stmt.items.insert(1, col("S", "Sname"));
    stmt.group_by.push(ColumnRef::new("S", "Sname"));
    assert!(analyze(&stmt, &schema()).is_clean());
}

#[test]
fn p4_flags_distinct_with_aggregates() {
    let mut stmt = example5();
    stmt.distinct = true;
    assert!(analyze(&stmt, &schema()).has_code("AQ-P4"));
}

// ── AQ-P5: duplicate inflation ───────────────────────────────────────

/// SQAK's Q1 shape: grouping by the text-matched Sname merges the two
/// students named Green (Section 2's motivating wrong answer).
#[test]
fn p5_flags_grouping_by_matched_non_key() {
    let mut stmt = example5();
    stmt.items[0] = col("S", "Sname");
    stmt.group_by = vec![ColumnRef::new("S", "Sname")];
    let report = analyze(&stmt, &schema());
    assert!(report.has_code("AQ-P5"), "{report:?}");
    assert!(report.errors().all(|d| d.severity == Severity::Error));
}

/// Regression: on the Figure 2 unnormalized database, SQAK's translation
/// of "Engineering COUNT Department" joins duplicated Lecturer rows and
/// counts 2 departments where there is 1. The analyzer must flag the
/// SQAK statement `AQ-P5` and keep the paper engine's statement clean.
#[test]
fn p5_regression_fig2_sqak_vs_engine() {
    let db = university::unnormalized_fig2();
    let schema = db.schema();

    let sqak = aqks::sqak::Sqak::new(db.clone());
    let bad = sqak.generate("Engineering COUNT Department").unwrap();
    let report = analyze(&bad.sql, &schema);
    assert!(report.has_code("AQ-P5"), "{}\n{report:?}", bad.sql_text);
    assert!(report.has_errors());

    let engine = aqks::core::Engine::new(db).unwrap();
    let good = engine.generate("Engineering COUNT Department", 1).unwrap();
    assert!(!good.is_empty());
    for g in &good {
        assert_eq!(g.diagnostics.error_count(), 0, "{}\n{:?}", g.sql_text, g.diagnostics);
    }
}

/// The Figure 8 database end to end: the engine's rewritten statement
/// (raw Enrolment self-join after the Section 4.1 rules) stays clean even
/// though it scans an unnormalized relation.
#[test]
fn p5_accepts_lossless_rewrites_over_unnormalized_relations() {
    let db = university::enrolment_fig8();
    let engine = aqks::core::Engine::new(db).unwrap();
    let generated = engine.generate("Green George COUNT Code", 1).unwrap();
    assert!(generated[0].sql_text.contains("Enrolment"), "{}", generated[0].sql_text);
    assert!(generated[0].diagnostics.is_clean(), "{:?}", generated[0].diagnostics);
}
