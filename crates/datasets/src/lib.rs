#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]
//! # aqks-datasets
//!
//! Every database used by the paper, built or synthesized from scratch:
//!
//! * [`university`] — the running example: Figure 1's normalized
//!   university database, Figure 2's denormalized variant, and Figure 8's
//!   single-relation `Enrolment` database;
//! * [`tpch`] — a seeded synthetic generator for the simplified TPC-H
//!   schema of Table 2, planting the cardinality structure the paper's
//!   queries T1–T8 depend on (eight "royal olive" parts, thirteen "yellow
//!   tomato" parts, one "Indian black chocolate" part with four suppliers
//!   repeated across many orders, pink/white rose pairs sharing exactly
//!   one supplier, five market segments, 25 nations, 5 regions);
//! * [`acmdl`] — a seeded synthetic generator for the ACM Digital Library
//!   schema of Table 2 (the paper's real dump is proprietary), planting
//!   61 editors named Smith, 36 authors named Gill, 36 SIGMOD
//!   proceedings, the "database tuning" title structure behind A5,
//!   IEEE publisher rows, John/Mary co-author pairs, and editors of both
//!   SIGIR and CIKM;
//! * [`denorm`] — the denormalizers producing Table 7's unnormalized
//!   TPCH′ (`Ordering`) and ACMDL′ (`PaperAuthor`, `EditorProceeding`)
//!   schemas, with the functional dependencies that expose their
//!   redundancy declared on the relations.
//!
//! All generators are deterministic given their seed, so every
//! experiment in `aqks-eval` is reproducible bit-for-bit.

pub mod acmdl;
pub mod denorm;
mod rng;
pub mod tpch;
pub mod university;
mod words;

pub use acmdl::{generate_acmdl, AcmdlConfig};
pub use denorm::{denormalize_acmdl, denormalize_tpch};
pub use tpch::{generate_tpch, TpchConfig};
