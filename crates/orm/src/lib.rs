#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # aqks-orm
//!
//! The ORM (Object-Relationship-Mixed) schema graph of Section 2.1 —
//! the paper's central data structure for capturing ORA
//! (Object-Relationship-Attribute) semantics:
//!
//! * [`classify`] assigns every relation one of four kinds — *object*,
//!   *relationship*, *mixed*, or *component* — from its primary key and
//!   foreign keys alone (the rules of reference \[16\]);
//! * [`graph`] folds component relations into their parent node and links
//!   nodes along foreign-key references, yielding the undirected graph of
//!   Figure 3 (and, for normalized views, Figure 9).
//!
//! The keyword engine consults this graph to (a) connect query-pattern
//! nodes, (b) decide which objects participate in a relationship so that
//! duplicate participants can be projected away (Example 4/6), and (c)
//! locate the identifier attribute that aggregates and GROUPBY bind to.

pub mod classify;
pub mod dot;
pub mod graph;

pub use classify::{classify_relation, RelationKind};
pub use graph::{NodeId, NodeKind, OrmEdge, OrmGraph, OrmNode};
