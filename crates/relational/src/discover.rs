//! Functional-dependency discovery from data.
//!
//! Section 4 assumes the FDs of an unnormalized relation are known
//! ("This can be done by examining the functional dependencies that hold
//! on the relations"). A deployable system has to *find* them: this
//! module implements a TANE-style levelwise search with stripped
//! partitions — for every candidate determinant `X` (up to
//! [`DiscoveryOptions::max_lhs`] attributes) it checks `X -> a` by
//! comparing partition ranks, reports only *minimal* non-trivial
//! dependencies, and skips determinants that are already superkeys
//! (their FDs never violate 3NF and would flood the output).
//!
//! The engine uses this when asked to handle an unnormalized database
//! whose schema declares no FDs (see
//! `aqks_core::EngineOptions::discover_fds`).

use std::collections::HashMap;

use crate::fd::Fd;
use crate::table::Table;
use crate::value::Value;

/// Bounds for the levelwise search.
#[derive(Debug, Clone)]
pub struct DiscoveryOptions {
    /// Maximum determinant size (levels searched). 2 covers every schema
    /// in the paper; 3+ gets expensive on wide relations.
    pub max_lhs: usize,
}

impl Default for DiscoveryOptions {
    fn default() -> Self {
        DiscoveryOptions { max_lhs: 2 }
    }
}

/// Group-id labelling of rows under a projection: two rows share a label
/// iff they agree on the projected attributes. `groups` counts distinct
/// labels; `X -> a` holds iff refining by `a` adds no groups.
fn partition(table: &Table, attrs: &[usize]) -> (Vec<u32>, usize) {
    let mut labels = Vec::with_capacity(table.len());
    let mut ids: HashMap<Vec<&Value>, u32> = HashMap::new();
    for row in table.rows() {
        let key: Vec<&Value> = attrs.iter().map(|&i| &row[i]).collect();
        let next = ids.len() as u32;
        let id = *ids.entry(key).or_insert(next);
        labels.push(id);
    }
    let n = ids.len();
    (labels, n)
}

/// Does refining the `lhs` partition by attribute `a` keep group counts
/// equal (i.e. `lhs` determines `a`)?
fn holds(table: &Table, lhs_labels: &[u32], lhs_groups: usize, a: usize) -> bool {
    let mut ids: HashMap<(u32, &Value), u32> = HashMap::new();
    for (row, &l) in table.rows().iter().zip(lhs_labels) {
        let next = ids.len() as u32;
        ids.entry((l, &row[a])).or_insert(next);
        if ids.len() > lhs_groups {
            return false;
        }
    }
    ids.len() == lhs_groups
}

/// Discovers the minimal non-trivial FDs of a table whose determinants
/// are not superkeys, deterministically ordered.
pub fn discover_fds(table: &Table, opts: &DiscoveryOptions) -> Vec<Fd> {
    let n_attrs = table.schema.attrs.len();
    let n_rows = table.len();
    if n_rows == 0 || n_attrs < 2 {
        return Vec::new();
    }
    let name = |i: usize| table.schema.attrs[i].name.clone();

    // found[a] = list of minimal determinant index-sets for attribute a.
    let mut found: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n_attrs];
    let mut out: Vec<Fd> = Vec::new();

    let mut level: Vec<Vec<usize>> = (0..n_attrs).map(|i| vec![i]).collect();
    for _ in 0..opts.max_lhs {
        let mut next_level: Vec<Vec<usize>> = Vec::new();
        for lhs in &level {
            let (labels, groups) = partition(table, lhs);
            if groups == n_rows {
                // Superkey: every attribute trivially "determined" by row
                // identity — not a redundancy witness; do not extend.
                continue;
            }
            let mut determined_all = Vec::new();
            #[allow(clippy::needless_range_loop)]
            for a in 0..n_attrs {
                if lhs.contains(&a) {
                    continue;
                }
                // Minimality: a subset of lhs already determines a.
                let minimal = !found[a].iter().any(|prev| prev.iter().all(|x| lhs.contains(x)));
                if !minimal {
                    continue;
                }
                if holds(table, &labels, groups, a) {
                    found[a].push(lhs.clone());
                    determined_all.push(a);
                }
            }
            if !determined_all.is_empty() {
                out.push(Fd::new(
                    lhs.iter().map(|&i| name(i)),
                    determined_all.iter().map(|&a| name(a)),
                ));
            }
            // Extend the level (canonical ascending order).
            let last = *lhs.last().expect("non-empty");
            for nxt in last + 1..n_attrs {
                let mut bigger = lhs.clone();
                bigger.push(nxt);
                next_level.push(bigger);
            }
        }
        level = next_level;
        if level.is_empty() {
            break;
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, RelationSchema};

    /// The Figure 8 Enrolment data must yield exactly the paper's FDs.
    fn enrolment() -> Table {
        let mut s = RelationSchema::new("Enrolment");
        s.add_attr("Sid", AttrType::Text)
            .add_attr("Sname", AttrType::Text)
            .add_attr("Age", AttrType::Int)
            .add_attr("Code", AttrType::Text)
            .add_attr("Title", AttrType::Text)
            .add_attr("Credit", AttrType::Float)
            .add_attr("Grade", AttrType::Text);
        let mut t = Table::new(s);
        for (sid, sn, age, c, ti, cr, g) in [
            ("s1", "George", 22, "c1", "Java", 5.0, "A"),
            ("s1", "George", 22, "c2", "Database", 4.0, "B"),
            ("s1", "George", 22, "c3", "Multimedia", 3.0, "B"),
            ("s2", "Green", 24, "c1", "Java", 5.0, "A"),
            ("s3", "Green", 21, "c1", "Java", 5.0, "A"),
            ("s3", "Green", 21, "c3", "Multimedia", 3.0, "B"),
        ] {
            t.insert(vec![
                Value::str(sid),
                Value::str(sn),
                Value::Int(age),
                Value::str(c),
                Value::str(ti),
                Value::Float(cr),
                Value::str(g),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn discovers_enrolment_fds() {
        let fds = discover_fds(&enrolment(), &DiscoveryOptions::default());
        let has = |lhs: &[&str], rhs: &str| {
            fds.iter().any(|fd| {
                fd.lhs.len() == lhs.len()
                    && lhs.iter().all(|a| fd.lhs.contains(*a))
                    && fd.rhs.contains(rhs)
            })
        };
        assert!(has(&["Sid"], "Sname"), "{fds:?}");
        assert!(has(&["Sid"], "Age"), "{fds:?}");
        assert!(has(&["Code"], "Title"), "{fds:?}");
        assert!(has(&["Code"], "Credit"), "{fds:?}");
        // Instance-level accident: on Figure 8's six rows every student
        // of a course happens to share the grade, so Code -> Grade holds
        // and is (correctly) reported. Discovery is about the instance,
        // not the designer's intent.
        assert!(has(&["Code"], "Grade"), "{fds:?}");
    }

    #[test]
    fn minimality_no_superset_determinants() {
        let fds = discover_fds(&enrolment(), &DiscoveryOptions::default());
        // Sname is determined by {Sid}; {Sid, Code} -> Sname must not be
        // reported.
        assert!(!fds.iter().any(|fd| fd.lhs.len() > 1 && fd.rhs.contains("Sname")), "{fds:?}");
    }

    /// On this sample, (Title, Age) happens to determine Sid — data-level
    /// discovery reports dependencies the schema designer never intended.
    /// They are still *valid* on the instance; the consumer must treat
    /// them as candidates.
    #[test]
    fn spurious_dependencies_are_possible() {
        let fds = discover_fds(&enrolment(), &DiscoveryOptions::default());
        assert!(fds.len() >= 4, "{fds:?}");
    }

    #[test]
    fn empty_and_tiny_tables() {
        let mut s = RelationSchema::new("T");
        s.add_attr("a", AttrType::Int);
        let t = Table::new(s);
        assert!(discover_fds(&t, &DiscoveryOptions::default()).is_empty());
    }

    #[test]
    fn key_like_column_is_not_reported_as_determinant_of_everything() {
        // A two-column table where `a` is unique: a is a superkey, so no
        // FDs are reported at all.
        let mut s = RelationSchema::new("U");
        s.add_attr("a", AttrType::Int).add_attr("b", AttrType::Int);
        let mut t = Table::new(s);
        for i in 0..6 {
            t.insert(vec![Value::Int(i), Value::Int(i % 2)]).unwrap();
        }
        let fds = discover_fds(&t, &DiscoveryOptions::default());
        assert!(fds.iter().all(|fd| !fd.lhs.contains("a")), "{fds:?}");
    }

    #[test]
    fn level2_dependency_found() {
        // c = f(a, b) with neither a nor b alone determining c, and
        // duplicated (a, b) pairs so (a, b) is not a superkey.
        let mut s = RelationSchema::new("V");
        s.add_attr("a", AttrType::Int)
            .add_attr("b", AttrType::Int)
            .add_attr("c", AttrType::Int)
            .add_attr("d", AttrType::Int);
        let mut t = Table::new(s);
        let mut d = 0;
        for a in 0..3 {
            for b in 0..3 {
                for _ in 0..2 {
                    t.insert(vec![
                        Value::Int(a),
                        Value::Int(b),
                        Value::Int(a * 3 + b),
                        Value::Int({
                            d += 1;
                            d
                        }),
                    ])
                    .unwrap();
                }
            }
        }
        let fds = discover_fds(&t, &DiscoveryOptions::default());
        assert!(
            fds.iter()
                .any(|fd| fd.lhs.contains("a") && fd.lhs.contains("b") && fd.rhs.contains("c")),
            "{fds:?}"
        );
    }
}
