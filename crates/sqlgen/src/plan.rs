//! Physical planning: lowering a [`SelectStatement`] into an operator tree.
//!
//! The planner is the seam between SQL generation and execution. It
//! resolves every column reference once, pushes `contains`/literal
//! predicates down to the scans that own them, orders joins greedily
//! along the statement's equi-join predicates (cross products only as a
//! last resort, smallest source first), and picks each hash join's build
//! side from cardinality estimates. The resulting [`PlanNode`] tree is
//! what [`crate::ops::run_plan`] executes, what [`render_plan`] prints
//! for `aqks explain`, and what the bench harness instruments.
//!
//! Pushdown rules:
//!
//! * `contains` and literal-equality predicates referencing a single base
//!   relation are evaluated *during* the scan (no full materialize);
//! * the same predicates on a derived table become a [`PlanOp::Filter`]
//!   directly above the recursively planned subquery, below any join;
//! * equi-joins whose two sides live in the same source are pushed the
//!   same way; the rest drive join ordering, and any equi-join that never
//!   connects two sources is applied as a residual filter above the joins.

use aqks_relational::{Database, Value};

use crate::ast::{AggFunc, ColumnRef, Predicate, SelectItem, SelectStatement, TableExpr};
use crate::exec::ExecError;

/// Planner options (ablation/testing switches).
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Push single-source `contains`/equality predicates below the joins
    /// (into scans, or a filter directly above a derived table). When
    /// false they are applied as one residual filter after all joins —
    /// the pre-planner behaviour, kept for equivalence testing.
    pub pushdown: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { pushdown: true }
    }
}

/// A predicate resolved against a node's tuple layout.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysPred {
    /// `row[l] = row[r]`, NULL-rejecting (an equi-join both of whose
    /// sides live in the same input).
    EqCols(usize, usize),
    /// Case-insensitive substring match; the needle is pre-lowercased.
    ContainsCi(usize, String),
    /// Exact equality with a literal.
    EqLit(usize, Value),
}

impl PhysPred {
    /// Evaluates the predicate on one row.
    pub fn eval(&self, row: &[Value]) -> bool {
        match self {
            PhysPred::EqCols(l, r) => !row[*l].is_null() && row[*l] == row[*r],
            PhysPred::ContainsCi(i, needle) => row[*i].contains_ci(needle),
            PhysPred::EqLit(i, v) => row[*i] == *v,
        }
    }

    /// Renders the predicate against the input column layout.
    fn describe(&self, cols: &[(String, String)]) -> String {
        let name = |i: &usize| {
            let (a, c) = &cols[*i];
            if a.is_empty() {
                c.clone()
            } else {
                format!("{a}.{c}")
            }
        };
        match self {
            PhysPred::EqCols(l, r) => format!("{} = {}", name(l), name(r)),
            PhysPred::ContainsCi(i, s) => format!("{} contains '{s}'", name(i)),
            PhysPred::EqLit(i, v) => format!("{} = {v}", name(i)),
        }
    }
}

/// One output item of a [`PlanOp::HashAggregate`].
#[derive(Debug, Clone, PartialEq)]
pub enum PhysAggItem {
    /// A grouping (or group-constant) column: first row of the group.
    Col(usize),
    /// An aggregate over an input column.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Input column index of the argument.
        arg: usize,
        /// Duplicate elimination inside the aggregate.
        distinct: bool,
    },
}

/// The physical operator of a [`PlanNode`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Sequential scan of a base relation; pushed-down predicates are
    /// evaluated on each tuple during the scan.
    Scan {
        /// Relation name in the database.
        relation: String,
        /// FROM alias.
        alias: String,
        /// Predicates evaluated during the scan.
        pushed: Vec<PhysPred>,
    },
    /// A recursively planned derived table (child 0 is the subplan).
    DerivedTable {
        /// FROM alias of the subquery.
        alias: String,
        /// Output column names (original case), captured once from the
        /// subplan when the node is built. This is the single resolution
        /// point for the derived table's columns: the node's `cols`
        /// layout and [`PlanNode::output_names`] both derive from it, so
        /// the rendered plan and the name-based APIs cannot drift.
        names: Vec<String>,
    },
    /// Multi-key hash equi-join of child 0 (left) and child 1 (right).
    /// Output tuples are always left columns then right columns,
    /// regardless of which side builds the hash table.
    HashJoin {
        /// Key column indices into the left child's layout.
        left_keys: Vec<usize>,
        /// Key column indices into the right child's layout.
        right_keys: Vec<usize>,
        /// Build the hash table on the left (estimated-smaller) side.
        build_left: bool,
    },
    /// Cross product of child 0 and child 1 (no connecting equi-join).
    CrossJoin,
    /// Residual predicates above the join tree.
    Filter {
        /// Predicates, all of which must hold.
        preds: Vec<PhysPred>,
    },
    /// Grouped (or global) aggregation producing the SELECT items.
    HashAggregate {
        /// Group-key column indices into the input layout.
        group: Vec<usize>,
        /// Output items, in SELECT order.
        items: Vec<PhysAggItem>,
        /// Output column names, in SELECT order.
        names: Vec<String>,
    },
    /// Column projection producing the SELECT items (no aggregate).
    Project {
        /// Input column indices, in SELECT order.
        cols: Vec<usize>,
        /// Output column names, in SELECT order.
        names: Vec<String>,
    },
    /// Duplicate-row elimination (`SELECT DISTINCT`).
    Distinct,
    /// Sort by output columns (`ORDER BY`).
    Sort {
        /// (output column index, descending) keys.
        keys: Vec<(usize, bool)>,
    },
    /// Row-count cap (`LIMIT`).
    Limit {
        /// Maximum output rows.
        n: usize,
    },
}

/// One node of the physical plan tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Stable node id; also the node's index into
    /// [`crate::ops::ExecStats::ops`].
    pub id: usize,
    /// The operator.
    pub op: PlanOp,
    /// Input plans (0 for scans, 1 for unary operators, 2 for joins).
    pub children: Vec<PlanNode>,
    /// Output tuple layout: lowercased `(alias, column)` pairs.
    pub cols: Vec<(String, String)>,
    /// Planner cardinality estimate (rows out).
    pub est_rows: usize,
}

impl PlanNode {
    /// Largest node id in this subtree.
    pub fn max_id(&self) -> usize {
        self.children.iter().map(PlanNode::max_id).fold(self.id, usize::max)
    }

    /// Number of operators in this subtree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(PlanNode::node_count).sum::<usize>()
    }

    /// Pre-order visit of every node in the subtree.
    pub fn visit<'a, F: FnMut(&'a PlanNode)>(&'a self, f: &mut F) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }

    /// Output column names (original case), in SELECT order.
    ///
    /// Every operator resolves through its own layout: name-declaring
    /// operators (`Project`, `HashAggregate`, `DerivedTable`) return the
    /// names they carry, joins concatenate both children (matching their
    /// left-then-right tuple layout), scans expose their `cols`, and the
    /// remaining unary operators are pure passthroughs. The result is
    /// always parallel to [`PlanNode::cols`] — the historical fallback of
    /// recursing into `children.first()` returned only the left side's
    /// names for joins and skipped derived-table re-aliasing.
    pub fn output_names(&self) -> Vec<String> {
        match &self.op {
            PlanOp::Project { names, .. }
            | PlanOp::HashAggregate { names, .. }
            | PlanOp::DerivedTable { names, .. } => names.clone(),
            PlanOp::HashJoin { .. } | PlanOp::CrossJoin => {
                let mut out = self.children[0].output_names();
                out.extend(self.children[1].output_names());
                out
            }
            PlanOp::Scan { .. } => self.cols.iter().map(|(_, c)| c.clone()).collect(),
            PlanOp::Filter { .. }
            | PlanOp::Distinct
            | PlanOp::Sort { .. }
            | PlanOp::Limit { .. } => self.children[0].output_names(),
        }
    }

    /// True when the plan's output carries an ORDER BY (a [`PlanOp::Sort`]
    /// survives to the root through order-preserving operators).
    pub fn is_ordered(&self) -> bool {
        match self.op {
            PlanOp::Sort { .. } => true,
            PlanOp::Limit { .. } | PlanOp::Distinct => self.children[0].is_ordered(),
            _ => false,
        }
    }

    /// One-line description of this operator (the `aqks explain` label).
    pub fn label(&self) -> String {
        let input_cols = |k: usize| -> &[(String, String)] {
            // Joins concatenate children layouts; unary ops see child 0.
            match self.children.get(k) {
                Some(c) => &c.cols,
                None => &[],
            }
        };
        match &self.op {
            PlanOp::Scan { relation, alias, pushed } => {
                let mut s = format!("Scan {relation} AS {alias}");
                if !pushed.is_empty() {
                    let ps: Vec<String> = pushed.iter().map(|p| p.describe(&self.cols)).collect();
                    s.push_str(&format!(" [{}]", ps.join(" AND ")));
                }
                s
            }
            PlanOp::DerivedTable { alias, names } => {
                format!("DerivedTable AS {alias} [{}]", names.join(", "))
            }
            PlanOp::HashJoin { left_keys, right_keys, build_left } => {
                let (lc, rc) = (input_cols(0), input_cols(1));
                // Render key pairs in canonical (left-schema) order, not
                // the planner's accumulation order: the stored order
                // tracks build/probe bookkeeping and would leak the
                // build-side choice into EXPLAIN text for otherwise
                // identical plans.
                let mut pairs: Vec<(usize, usize)> =
                    left_keys.iter().copied().zip(right_keys.iter().copied()).collect();
                pairs.sort_unstable();
                let keys: Vec<String> = pairs
                    .into_iter()
                    .map(|(l, r)| format!("{}.{} = {}.{}", lc[l].0, lc[l].1, rc[r].0, rc[r].1))
                    .collect();
                format!(
                    "HashJoin on [{}] build={}",
                    keys.join(", "),
                    if *build_left { "left" } else { "right" }
                )
            }
            PlanOp::CrossJoin => "CrossJoin".into(),
            PlanOp::Filter { preds } => {
                let ps: Vec<String> = preds.iter().map(|p| p.describe(input_cols(0))).collect();
                format!("Filter [{}]", ps.join(" AND "))
            }
            PlanOp::HashAggregate { group, items, names } => {
                let ic = input_cols(0);
                let gs: Vec<String> =
                    group.iter().map(|&i| format!("{}.{}", ic[i].0, ic[i].1)).collect();
                let is: Vec<String> = items
                    .iter()
                    .zip(names)
                    .map(|(it, name)| match it {
                        PhysAggItem::Col(i) => format!("{}.{}", ic[*i].0, ic[*i].1),
                        PhysAggItem::Agg { func, arg, distinct } => format!(
                            "{}({}{}.{}) AS {name}",
                            func.keyword(),
                            if *distinct { "DISTINCT " } else { "" },
                            ic[*arg].0,
                            ic[*arg].1
                        ),
                    })
                    .collect();
                if gs.is_empty() {
                    format!("HashAggregate global [{}]", is.join(", "))
                } else {
                    format!("HashAggregate group=[{}] [{}]", gs.join(", "), is.join(", "))
                }
            }
            PlanOp::Project { cols, names } => {
                let ic = input_cols(0);
                let is: Vec<String> = cols
                    .iter()
                    .zip(names)
                    .map(|(&i, name)| {
                        if ic[i].1.eq_ignore_ascii_case(name) {
                            format!("{}.{}", ic[i].0, ic[i].1)
                        } else {
                            format!("{}.{} AS {name}", ic[i].0, ic[i].1)
                        }
                    })
                    .collect();
                format!("Project [{}]", is.join(", "))
            }
            PlanOp::Distinct => "Distinct".into(),
            PlanOp::Sort { keys } => {
                let names = self.children[0].output_names();
                let ks: Vec<String> = keys
                    .iter()
                    .map(|&(i, desc)| format!("{}{}", names[i], if desc { " DESC" } else { "" }))
                    .collect();
                format!("Sort by [{}]", ks.join(", "))
            }
            PlanOp::Limit { n } => format!("Limit {n}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

/// Column-layout resolution helper shared by the planning steps.
fn resolve_in(cols: &[(String, String)], c: &ColumnRef) -> Option<usize> {
    let q = c.qualifier.to_lowercase();
    let n = c.column.to_lowercase();
    cols.iter().position(|(a, col)| *a == q && *col == n)
}

/// Monotonic node-id allocator (ids index [`crate::ops::ExecStats::ops`]).
struct IdGen(usize);

impl IdGen {
    fn next(&mut self) -> usize {
        let id = self.0;
        self.0 += 1;
        id
    }
}

/// Cardinality estimate after `npreds` pushed predicates: a fixed 1/4
/// selectivity per predicate, floored at one row. Deliberately crude —
/// it only has to order cross products and pick hash-join build sides.
fn discount(rows: usize, npreds: usize) -> usize {
    if rows == 0 {
        return 0;
    }
    (rows >> (2 * npreds.min(8))).max(1)
}

/// Plans `stmt` against `db` with default options.
pub fn plan(stmt: &SelectStatement, db: &Database) -> Result<PlanNode, ExecError> {
    plan_with_options(stmt, db, &PlanOptions::default())
}

/// Plans `stmt` against `db`.
pub fn plan_with_options(
    stmt: &SelectStatement,
    db: &Database,
    opts: &PlanOptions,
) -> Result<PlanNode, ExecError> {
    let mut ids = IdGen(0);
    plan_stmt(stmt, db, opts, &mut ids)
}

fn plan_stmt(
    stmt: &SelectStatement,
    db: &Database,
    opts: &PlanOptions,
    ids: &mut IdGen,
) -> Result<PlanNode, ExecError> {
    if stmt.items.is_empty() {
        return Err(ExecError::Unsupported("empty SELECT list".into()));
    }
    if stmt.from.is_empty() {
        return Err(ExecError::Unsupported("empty FROM clause".into()));
    }

    // --- Per-source plans: scans and recursively planned derived tables.
    let mut sources: Vec<PlanNode> = Vec::with_capacity(stmt.from.len());
    {
        let mut seen_alias: Vec<String> = Vec::new();
        for item in &stmt.from {
            let alias = item.alias().to_lowercase();
            if seen_alias.contains(&alias) {
                return Err(ExecError::DuplicateAlias(item.alias().to_string()));
            }
            seen_alias.push(alias.clone());
            sources.push(plan_source(item, &alias, db, opts, ids)?);
        }
    }

    // --- Predicate placement --------------------------------------------
    // Single-source predicates are pushed below the joins (scan-time for
    // base relations, a filter above derived tables); everything else is
    // left for join ordering or the residual filter.
    let mut residual: Vec<&Predicate> = Vec::new();
    let mut join_preds: Vec<(&ColumnRef, &ColumnRef, bool)> = Vec::new(); // (a, b, consumed)
    for p in &stmt.predicates {
        match p {
            Predicate::JoinEq(a, b) => {
                // Both sides in one source: a pushable single-source
                // predicate, not a join.
                let same = sources.iter().position(|s| {
                    resolve_in(&s.cols, a).is_some() && resolve_in(&s.cols, b).is_some()
                });
                match same {
                    Some(si) if opts.pushdown => {
                        let l = resolve_in(&sources[si].cols, a).expect("checked");
                        let r = resolve_in(&sources[si].cols, b).expect("checked");
                        push_into(&mut sources[si], PhysPred::EqCols(l, r), ids);
                    }
                    Some(_) => residual.push(p),
                    None => join_preds.push((a, b, false)),
                }
            }
            Predicate::Contains(c, text) => {
                match sources.iter().position(|s| resolve_in(&s.cols, c).is_some()) {
                    Some(si) if opts.pushdown => {
                        let i = resolve_in(&sources[si].cols, c).expect("checked");
                        push_into(
                            &mut sources[si],
                            PhysPred::ContainsCi(i, text.to_lowercase()),
                            ids,
                        );
                    }
                    Some(_) => residual.push(p),
                    None => return Err(ExecError::UnknownColumn(c.to_string())),
                }
            }
            Predicate::Eq(c, v) => {
                match sources.iter().position(|s| resolve_in(&s.cols, c).is_some()) {
                    Some(si) if opts.pushdown => {
                        let i = resolve_in(&sources[si].cols, c).expect("checked");
                        push_into(&mut sources[si], PhysPred::EqLit(i, v.clone()), ids);
                    }
                    Some(_) => residual.push(p),
                    None => return Err(ExecError::UnknownColumn(c.to_string())),
                }
            }
        }
    }

    // --- Join ordering ---------------------------------------------------
    // Greedy: always join next a source that an unconsumed equi-join links
    // to the accumulated plan. When nothing connects, fall back to a cross
    // product with the smallest-cardinality remaining source (not
    // whichever happens to sit at index 0) so intermediate results stay
    // as small as possible.
    let mut acc = sources.remove(0);
    while !sources.is_empty() {
        let mut pick: Option<usize> = None;
        'scan: for (si, right) in sources.iter().enumerate() {
            for &(a, b, consumed) in join_preds.iter() {
                if consumed {
                    continue;
                }
                let connects = (resolve_in(&acc.cols, a).is_some()
                    && resolve_in(&right.cols, b).is_some())
                    || (resolve_in(&acc.cols, b).is_some() && resolve_in(&right.cols, a).is_some());
                if connects {
                    pick = Some(si);
                    break 'scan;
                }
            }
        }
        let cross = pick.is_none();
        let pick = pick.unwrap_or_else(|| {
            // Cross-product fallback: smallest estimated source first.
            sources
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.est_rows)
                .map(|(i, _)| i)
                .expect("sources is non-empty")
        });
        let right = sources.remove(pick);

        let mut left_keys: Vec<usize> = Vec::new();
        let mut right_keys: Vec<usize> = Vec::new();
        for (a, b, consumed) in join_preds.iter_mut() {
            if *consumed {
                continue;
            }
            let (l, r) = match (resolve_in(&acc.cols, a), resolve_in(&right.cols, b)) {
                (Some(l), Some(r)) => (l, r),
                _ => match (resolve_in(&acc.cols, b), resolve_in(&right.cols, a)) {
                    (Some(l), Some(r)) => (l, r),
                    _ => continue,
                },
            };
            left_keys.push(l);
            right_keys.push(r);
            *consumed = true;
        }

        let mut cols = acc.cols.clone();
        cols.extend(right.cols.iter().cloned());
        let (op, est) = if cross || left_keys.is_empty() {
            (PlanOp::CrossJoin, acc.est_rows.saturating_mul(right.est_rows))
        } else {
            (
                PlanOp::HashJoin {
                    left_keys,
                    right_keys,
                    build_left: acc.est_rows < right.est_rows,
                },
                acc.est_rows.max(right.est_rows),
            )
        };
        acc = PlanNode { id: ids.next(), op, children: vec![acc, right], cols, est_rows: est };
    }

    // --- Residual predicates (unconsumed equi-joins; all single-source
    // predicates too when pushdown is off).
    let mut residual_phys: Vec<PhysPred> = Vec::new();
    for (a, b, consumed) in &join_preds {
        if *consumed {
            continue;
        }
        let l = resolve_in(&acc.cols, a).ok_or_else(|| ExecError::UnknownColumn(a.to_string()))?;
        let r = resolve_in(&acc.cols, b).ok_or_else(|| ExecError::UnknownColumn(b.to_string()))?;
        residual_phys.push(PhysPred::EqCols(l, r));
    }
    for p in residual {
        residual_phys.push(match p {
            Predicate::JoinEq(a, b) => PhysPred::EqCols(
                resolve_in(&acc.cols, a).ok_or_else(|| ExecError::UnknownColumn(a.to_string()))?,
                resolve_in(&acc.cols, b).ok_or_else(|| ExecError::UnknownColumn(b.to_string()))?,
            ),
            Predicate::Contains(c, text) => PhysPred::ContainsCi(
                resolve_in(&acc.cols, c).ok_or_else(|| ExecError::UnknownColumn(c.to_string()))?,
                text.to_lowercase(),
            ),
            Predicate::Eq(c, v) => PhysPred::EqLit(
                resolve_in(&acc.cols, c).ok_or_else(|| ExecError::UnknownColumn(c.to_string()))?,
                v.clone(),
            ),
        });
    }
    if !residual_phys.is_empty() {
        let est = discount(acc.est_rows, residual_phys.len());
        let cols = acc.cols.clone();
        acc = PlanNode {
            id: ids.next(),
            op: PlanOp::Filter { preds: residual_phys },
            children: vec![acc],
            cols,
            est_rows: est,
        };
    }

    // --- Aggregation / projection ----------------------------------------
    let names: Vec<String> = stmt.items.iter().map(|i| i.output_name().to_string()).collect();
    let out_cols: Vec<(String, String)> =
        names.iter().map(|n| (String::new(), n.to_lowercase())).collect();
    if stmt.has_aggregate() || !stmt.group_by.is_empty() {
        let group: Vec<usize> = stmt
            .group_by
            .iter()
            .map(|c| {
                resolve_in(&acc.cols, c).ok_or_else(|| ExecError::UnknownColumn(c.to_string()))
            })
            .collect::<Result<_, _>>()?;
        let items: Vec<PhysAggItem> = stmt
            .items
            .iter()
            .map(|item| match item {
                SelectItem::Column { col, .. } => resolve_in(&acc.cols, col)
                    .map(PhysAggItem::Col)
                    .ok_or_else(|| ExecError::UnknownColumn(col.to_string())),
                SelectItem::Aggregate { func, arg, distinct, .. } => resolve_in(&acc.cols, arg)
                    .map(|i| PhysAggItem::Agg { func: *func, arg: i, distinct: *distinct })
                    .ok_or_else(|| ExecError::UnknownColumn(arg.to_string())),
            })
            .collect::<Result<_, _>>()?;
        let est = if group.is_empty() { 1 } else { acc.est_rows };
        acc = PlanNode {
            id: ids.next(),
            op: PlanOp::HashAggregate { group, items, names },
            children: vec![acc],
            cols: out_cols,
            est_rows: est,
        };
    } else {
        let cols: Vec<usize> = stmt
            .items
            .iter()
            .map(|item| match item {
                SelectItem::Column { col, .. } => resolve_in(&acc.cols, col)
                    .ok_or_else(|| ExecError::UnknownColumn(col.to_string())),
                SelectItem::Aggregate { .. } => unreachable!("guarded by has_aggregate"),
            })
            .collect::<Result<_, _>>()?;
        let est = acc.est_rows;
        acc = PlanNode {
            id: ids.next(),
            op: PlanOp::Project { cols, names },
            children: vec![acc],
            cols: out_cols,
            est_rows: est,
        };
    }

    if stmt.distinct {
        let cols = acc.cols.clone();
        let est = acc.est_rows;
        acc = PlanNode {
            id: ids.next(),
            op: PlanOp::Distinct,
            children: vec![acc],
            cols,
            est_rows: est,
        };
    }

    // --- ORDER BY / LIMIT --------------------------------------------------
    // Keys resolve against the output columns (SELECT aliases); a key that
    // was not projected is an error.
    if !stmt.order_by.is_empty() {
        let names = acc.output_names();
        let keys: Vec<(usize, bool)> = stmt
            .order_by
            .iter()
            .map(|k| {
                names
                    .iter()
                    .position(|n| n.eq_ignore_ascii_case(&k.column.column))
                    .map(|i| (i, k.desc))
                    .ok_or_else(|| ExecError::UnknownColumn(k.column.to_string()))
            })
            .collect::<Result<_, _>>()?;
        let cols = acc.cols.clone();
        let est = acc.est_rows;
        acc = PlanNode {
            id: ids.next(),
            op: PlanOp::Sort { keys },
            children: vec![acc],
            cols,
            est_rows: est,
        };
    }
    if let Some(limit) = stmt.limit {
        let cols = acc.cols.clone();
        let est = acc.est_rows.min(limit);
        acc = PlanNode {
            id: ids.next(),
            op: PlanOp::Limit { n: limit },
            children: vec![acc],
            cols,
            est_rows: est,
        };
    }
    Ok(acc)
}

/// Plans one FROM item.
fn plan_source(
    item: &TableExpr,
    alias_lower: &str,
    db: &Database,
    opts: &PlanOptions,
    ids: &mut IdGen,
) -> Result<PlanNode, ExecError> {
    match item {
        TableExpr::Relation { name, .. } => {
            let table = db.table(name).ok_or_else(|| ExecError::UnknownRelation(name.clone()))?;
            let cols: Vec<(String, String)> = table
                .schema
                .attr_names()
                .map(|a| (alias_lower.to_string(), a.to_lowercase()))
                .collect();
            Ok(PlanNode {
                id: ids.next(),
                op: PlanOp::Scan {
                    relation: name.clone(),
                    alias: alias_lower.to_string(),
                    pushed: Vec::new(),
                },
                children: Vec::new(),
                cols,
                est_rows: table.len(),
            })
        }
        TableExpr::Derived { query, .. } => {
            let sub = plan_stmt(query, db, opts, ids)?;
            // Capture the subplan's output names once; the node's layout
            // is derived from the same vector (see PlanOp::DerivedTable).
            let names = sub.output_names();
            let cols: Vec<(String, String)> =
                names.iter().map(|c| (alias_lower.to_string(), c.to_lowercase())).collect();
            let est = sub.est_rows;
            Ok(PlanNode {
                id: ids.next(),
                op: PlanOp::DerivedTable { alias: alias_lower.to_string(), names },
                children: vec![sub],
                cols,
                est_rows: est,
            })
        }
    }
}

/// Pushes a single-source predicate into a source plan: scan predicates
/// are evaluated during the scan; derived tables (or already-filtered
/// sources) get a [`PlanOp::Filter`] directly above.
fn push_into(source: &mut PlanNode, pred: PhysPred, ids: &mut IdGen) {
    match &mut source.op {
        PlanOp::Scan { pushed, .. } => {
            pushed.push(pred);
            source.est_rows = discount(source.est_rows, 1);
        }
        PlanOp::Filter { preds } => {
            preds.push(pred);
            source.est_rows = discount(source.est_rows, 1);
        }
        _ => {
            let inner = std::mem::replace(
                source,
                PlanNode {
                    id: 0,
                    op: PlanOp::Distinct, // placeholder, overwritten below
                    children: Vec::new(),
                    cols: Vec::new(),
                    est_rows: 0,
                },
            );
            *source = PlanNode {
                id: ids.next(),
                op: PlanOp::Filter { preds: vec![pred] },
                cols: inner.cols.clone(),
                est_rows: discount(inner.est_rows, 1),
                children: vec![inner],
            };
        }
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN rendering
// ---------------------------------------------------------------------------

/// Pretty-prints the plan tree (the `aqks explain` output).
pub fn render_plan(plan: &PlanNode) -> String {
    render(plan, None)
}

/// Pretty-prints the plan tree annotated with live per-operator metrics
/// (the `aqks explain --analyze` output).
pub fn render_plan_with_stats(plan: &PlanNode, stats: &crate::ops::ExecStats) -> String {
    render(plan, Some(stats))
}

fn render(plan: &PlanNode, stats: Option<&crate::ops::ExecStats>) -> String {
    let mut out = String::new();
    fn go(
        node: &PlanNode,
        prefix: &str,
        last: bool,
        root: bool,
        stats: Option<&crate::ops::ExecStats>,
        out: &mut String,
    ) {
        let (branch, child_prefix) = if root {
            (String::new(), String::new())
        } else if last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        out.push_str(&branch);
        out.push_str(&node.label());
        out.push_str(&format!(" (est={})", node.est_rows));
        if let Some(stats) = stats {
            if let Some(m) = stats.ops.get(node.id) {
                if !node.children.is_empty() {
                    out.push_str(&format!(" in={}", m.rows_in));
                }
                out.push_str(&format!(
                    " rows={} time={} mem={}",
                    m.rows_out,
                    fmt_dur(m.wall),
                    fmt_bytes(m.peak_bytes)
                ));
                if m.threads > 1 {
                    out.push_str(&format!(
                        " threads={} par={}%",
                        m.threads,
                        (m.parallel_fraction() * 100.0).round() as u64
                    ));
                }
                if let Some(note) = &m.note {
                    out.push_str(&format!(" [{note}]"));
                }
            }
        }
        out.push('\n');
        let n = node.children.len();
        for (i, c) in node.children.iter().enumerate() {
            go(c, &child_prefix, i + 1 == n, false, stats, out);
        }
    }
    go(plan, "", true, true, stats, &mut out);
    if let Some(stats) = stats {
        out.push_str(&format!("total: {}\n", fmt_dur(stats.wall)));
    }
    out
}

/// Human-friendly byte count: B below 1 KiB, then KiB/MiB.
pub(crate) fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    }
}

/// Human-friendly duration: µs below 1 ms, ms below 1 s.
pub(crate) fn fmt_dur(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.3}s", us / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{OrderKey, SelectItem};
    use crate::ops::run_plan;
    use aqks_relational::{AttrType, RelationSchema};

    /// Student(3) / Course(3) / Enrol(6), as in the exec tests.
    fn db() -> Database {
        let mut db = Database::new("uni");
        let mut s = RelationSchema::new("Student");
        s.add_attr("Sid", AttrType::Text)
            .add_attr("Sname", AttrType::Text)
            .add_attr("Age", AttrType::Int);
        s.set_primary_key(["Sid"]);
        db.add_relation(s).unwrap();
        let mut c = RelationSchema::new("Course");
        c.add_attr("Code", AttrType::Text).add_attr("Credit", AttrType::Float);
        c.set_primary_key(["Code"]);
        db.add_relation(c).unwrap();
        let mut e = RelationSchema::new("Enrol");
        e.add_attr("Sid", AttrType::Text).add_attr("Code", AttrType::Text);
        e.set_primary_key(["Sid", "Code"]);
        db.add_relation(e).unwrap();
        for (sid, name, age) in [("s1", "George", 22), ("s2", "Green", 24), ("s3", "Green", 21)] {
            db.insert("Student", vec![Value::str(sid), Value::str(name), Value::Int(age)]).unwrap();
        }
        for (code, credit) in [("c1", 5.0), ("c2", 4.0), ("c3", 3.0)] {
            db.insert("Course", vec![Value::str(code), Value::Float(credit)]).unwrap();
        }
        for (sid, code) in
            [("s1", "c1"), ("s1", "c2"), ("s1", "c3"), ("s2", "c1"), ("s3", "c1"), ("s3", "c3")]
        {
            db.insert("Enrol", vec![Value::str(sid), Value::str(code)]).unwrap();
        }
        db
    }

    fn col(q: &str, c: &str) -> ColumnRef {
        ColumnRef::new(q, c)
    }

    fn count_item(q: &str, c: &str) -> SelectItem {
        SelectItem::Aggregate {
            func: AggFunc::Count,
            arg: col(q, c),
            distinct: false,
            alias: "n".into(),
        }
    }

    fn find<'a>(node: &'a PlanNode, pred: &dyn Fn(&PlanNode) -> bool) -> Option<&'a PlanNode> {
        let mut found = None;
        node.visit(&mut |n| {
            if found.is_none() && pred(n) {
                found = Some(n);
            }
        });
        found
    }

    /// Regression for the cross-product fallback: with no equi-join
    /// anywhere, the planner must pair the accumulated side with the
    /// *smallest* remaining source, not whichever sits at index 0. Here
    /// FROM is [Student(3), Enrol(6), Course(3)]: the index-0 policy
    /// built Student x Enrol = 18 intermediate rows; smallest-first
    /// builds Student x Course = 9.
    #[test]
    fn cross_product_fallback_picks_smallest_source() {
        let stmt = SelectStatement {
            items: vec![count_item("S", "Sid")],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
                TableExpr::Relation { name: "Course".into(), alias: "C".into() },
            ],
            ..Default::default()
        };
        let db = db();
        let p = plan(&stmt, &db).unwrap();
        // The deepest cross join pairs the two 3-row relations.
        let first = find(&p, &|n| {
            matches!(n.op, PlanOp::CrossJoin)
                && n.children.iter().all(|c| matches!(c.op, PlanOp::Scan { .. }))
        })
        .expect("deepest cross join");
        assert_eq!(first.est_rows, 9, "3 x 3, not 3 x 6");
        let (table, stats) = run_plan(&p, &db).unwrap();
        assert_eq!(table.scalar(), Some(&Value::Int(54)), "full product unchanged");
        assert_eq!(stats.ops[first.id].rows_out, 9, "intermediate rows shrank from 18 to 9");
    }

    /// `contains`/literal predicates are evaluated during the scan; the
    /// pushed and post-filter plans return identical rows.
    #[test]
    fn pushdown_is_applied_and_equivalent() {
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("S", "Sid"), alias: None },
                SelectItem::Aggregate {
                    func: AggFunc::Sum,
                    arg: col("C", "Credit"),
                    distinct: false,
                    alias: "sumCredit".into(),
                },
            ],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
                TableExpr::Relation { name: "Course".into(), alias: "C".into() },
            ],
            predicates: vec![
                Predicate::JoinEq(col("E", "Sid"), col("S", "Sid")),
                Predicate::JoinEq(col("E", "Code"), col("C", "Code")),
                Predicate::Contains(col("S", "Sname"), "Green".into()),
            ],
            group_by: vec![col("S", "Sid")],
            ..Default::default()
        };
        let db = db();
        let pushed = plan(&stmt, &db).unwrap();
        let scan = find(&pushed, &|n| {
            matches!(&n.op, PlanOp::Scan { relation, pushed, .. }
                if relation == "Student" && !pushed.is_empty())
        });
        assert!(scan.is_some(), "contains pushed into the Student scan:\n{}", render_plan(&pushed));
        assert!(
            find(&pushed, &|n| matches!(n.op, PlanOp::Filter { .. })).is_none(),
            "no residual filter remains"
        );

        let unpushed = plan_with_options(&stmt, &db, &PlanOptions { pushdown: false }).unwrap();
        assert!(
            find(&unpushed, &|n| matches!(n.op, PlanOp::Filter { .. })).is_some(),
            "pushdown off keeps a post-join filter:\n{}",
            render_plan(&unpushed)
        );
        let (a, stats_a) = run_plan(&pushed, &db).unwrap();
        let (b, _) = run_plan(&unpushed, &db).unwrap();
        assert_eq!(a.rows, b.rows);
        // The pushed scan emits only the two Greens.
        assert_eq!(stats_a.ops[scan.unwrap().id].rows_out, 2);
    }

    /// A derived table inside a derived table plans recursively: two
    /// DerivedTable nodes, one aggregation per level, correct answer.
    #[test]
    fn derived_table_inside_derived_table() {
        let innermost = SelectStatement {
            distinct: true,
            items: vec![SelectItem::Column { col: col("E", "Sid"), alias: None }],
            from: vec![TableExpr::Relation { name: "Enrol".into(), alias: "E".into() }],
            ..Default::default()
        };
        let middle = SelectStatement {
            items: vec![SelectItem::Column { col: col("D2", "Sid"), alias: None }],
            from: vec![TableExpr::Derived { query: Box::new(innermost), alias: "D2".into() }],
            ..Default::default()
        };
        let outer = SelectStatement {
            items: vec![count_item("D1", "Sid")],
            from: vec![TableExpr::Derived { query: Box::new(middle), alias: "D1".into() }],
            ..Default::default()
        };
        let db = db();
        let p = plan(&outer, &db).unwrap();
        let mut derived = 0;
        p.visit(&mut |n| {
            if matches!(n.op, PlanOp::DerivedTable { .. }) {
                derived += 1;
            }
        });
        assert_eq!(derived, 2, "{}", render_plan(&p));
        let (table, _) = run_plan(&p, &db).unwrap();
        assert_eq!(table.scalar(), Some(&Value::Int(3)));
    }

    /// The hash join builds on the estimated-smaller side; output column
    /// order (left ++ right) is unaffected.
    #[test]
    fn hash_join_build_side_follows_cardinality() {
        let mk = |from: Vec<TableExpr>| SelectStatement {
            items: vec![count_item("E", "Code")],
            from,
            predicates: vec![Predicate::JoinEq(col("S", "Sid"), col("E", "Sid"))],
            ..Default::default()
        };
        let db = db();
        // Student (3 rows) first: left is smaller, build left.
        let p = plan(
            &mk(vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
            ]),
            &db,
        )
        .unwrap();
        let j = find(&p, &|n| matches!(n.op, PlanOp::HashJoin { .. })).unwrap();
        assert!(matches!(j.op, PlanOp::HashJoin { build_left: true, .. }), "{}", render_plan(&p));
        // Enrol (6 rows) first: right is smaller, build right.
        let p2 = plan(
            &mk(vec![
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
            ]),
            &db,
        )
        .unwrap();
        let j2 = find(&p2, &|n| matches!(n.op, PlanOp::HashJoin { .. })).unwrap();
        assert!(matches!(j2.op, PlanOp::HashJoin { build_left: false, .. }));
        let (a, stats) = run_plan(&p, &db).unwrap();
        let (b, _) = run_plan(&p2, &db).unwrap();
        assert_eq!(a.rows, b.rows, "build side never changes answers");
        let note = stats.ops[j.id].note.clone().unwrap_or_default();
        assert!(note.contains("build rows=3") && note.contains("probe rows=6"), "{note}");
    }

    /// ORDER BY yields a Sort node and `is_ordered`; without one the
    /// root is unordered and run_plan canonicalizes row order.
    #[test]
    fn sort_node_and_ordering_flag() {
        let mut stmt = SelectStatement {
            items: vec![SelectItem::Column { col: col("E", "Sid"), alias: None }],
            from: vec![TableExpr::Relation { name: "Enrol".into(), alias: "E".into() }],
            ..Default::default()
        };
        let db = db();
        let p = plan(&stmt, &db).unwrap();
        assert!(!p.is_ordered());
        let (t, _) = run_plan(&p, &db).unwrap();
        assert!(t.rows.windows(2).all(|w| w[0] <= w[1]), "stable value order: {t}");

        stmt.order_by = vec![OrderKey { column: col("", "Sid"), desc: true }];
        stmt.limit = Some(3);
        let p = plan(&stmt, &db).unwrap();
        assert!(p.is_ordered(), "{}", render_plan(&p));
        assert!(matches!(p.op, PlanOp::Limit { n: 3 }));
        let (t, _) = run_plan(&p, &db).unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.rows.windows(2).all(|w| w[0] >= w[1]), "descending preserved: {t}");
    }

    /// The EXPLAIN renderer draws every operator with estimates; the
    /// analyzed form adds live row counts and timings.
    #[test]
    fn render_plan_shows_tree_and_metrics() {
        let stmt = SelectStatement {
            items: vec![count_item("E", "Code")],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
            ],
            predicates: vec![
                Predicate::JoinEq(col("S", "Sid"), col("E", "Sid")),
                Predicate::Contains(col("S", "Sname"), "Green".into()),
            ],
            ..Default::default()
        };
        let db = db();
        let p = plan(&stmt, &db).unwrap();
        let text = render_plan(&p);
        assert!(text.contains("HashAggregate"), "{text}");
        assert!(text.contains("HashJoin on [s.sid = e.sid]"), "{text}");
        assert!(text.contains("Scan Student AS s [s.sname contains 'green']"), "{text}");
        assert!(text.contains("└─"), "{text}");
        let (_, stats) = run_plan(&p, &db).unwrap();
        let analyzed = render_plan_with_stats(&p, &stats);
        assert!(analyzed.contains("rows="), "{analyzed}");
        assert!(analyzed.contains("time="), "{analyzed}");
        assert!(analyzed.contains("total:"), "{analyzed}");
    }

    /// Regression: join-key pairs render in canonical (left-schema)
    /// order no matter how the planner's accumulation order stored
    /// them, so EXPLAIN text cannot leak the build/probe bookkeeping
    /// into otherwise identical plans.
    #[test]
    fn render_plan_sorts_join_keys_canonically() {
        let stmt = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("S", "Sid"), alias: None },
                SelectItem::Column { col: col("E", "Code"), alias: None },
            ],
            from: vec![
                TableExpr::Relation { name: "Student".into(), alias: "S".into() },
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
            ],
            predicates: vec![Predicate::JoinEq(col("S", "Sid"), col("E", "Sid"))],
            ..Default::default()
        };
        let db = db();
        let p = plan(&stmt, &db).unwrap();
        let mut join = find(&p, &|n| matches!(n.op, PlanOp::HashJoin { .. })).unwrap().clone();
        let canonical = join.label();
        // Storing the key pairs in reverse must not change the label.
        if let PlanOp::HashJoin { left_keys, right_keys, .. } = &mut join.op {
            left_keys.push(0);
            right_keys.push(1);
            left_keys.reverse();
            right_keys.reverse();
            let reversed_pairs = join.label();
            if let PlanOp::HashJoin { left_keys, right_keys, .. } = &mut join.op {
                left_keys.reverse();
                right_keys.reverse();
                assert_eq!(join.label(), reversed_pairs, "pair order leaked into the label");
            }
        }
        assert!(canonical.contains("s.sid = e.sid"), "{canonical}");
    }

    /// Regression: `output_names` must stay parallel to `cols` on every
    /// node of a nested derived plan. The historical implementation
    /// recursed into `children.first()` for all non-name-declaring
    /// operators, so a join inside a derived subplan reported only its
    /// left side's names, and a derived table leaked its inner statement's
    /// names instead of resolving through its own (re-aliased) layout —
    /// drift between [`render_plan`]'s labels and the name-based APIs.
    #[test]
    fn output_names_agree_with_layout_in_nested_derived_plans() {
        // Innermost: a join, so the derived subplan contains a binary
        // node whose output names must cover both sides.
        let innermost = SelectStatement {
            items: vec![
                SelectItem::Column { col: col("E", "Sid"), alias: None },
                SelectItem::Column { col: col("C", "Credit"), alias: Some("Cr".into()) },
            ],
            from: vec![
                TableExpr::Relation { name: "Enrol".into(), alias: "E".into() },
                TableExpr::Relation { name: "Course".into(), alias: "C".into() },
            ],
            predicates: vec![Predicate::JoinEq(col("E", "Code"), col("C", "Code"))],
            ..Default::default()
        };
        let middle = SelectStatement {
            distinct: true,
            items: vec![
                SelectItem::Column { col: col("D2", "Sid"), alias: None },
                SelectItem::Column { col: col("D2", "Cr"), alias: None },
            ],
            from: vec![TableExpr::Derived { query: Box::new(innermost), alias: "D2".into() }],
            ..Default::default()
        };
        let outer = SelectStatement {
            items: vec![count_item("D1", "Sid")],
            from: vec![TableExpr::Derived { query: Box::new(middle), alias: "D1".into() }],
            ..Default::default()
        };
        let db = db();
        let p = plan(&outer, &db).unwrap();
        p.visit(&mut |n| {
            let names = n.output_names();
            assert_eq!(
                names.len(),
                n.cols.len(),
                "node {} `{}`: names {names:?} vs layout {:?}\n{}",
                n.id,
                n.label(),
                n.cols,
                render_plan(&p)
            );
            for (name, (_, c)) in names.iter().zip(&n.cols) {
                assert!(
                    name.eq_ignore_ascii_case(c),
                    "node {} `{}`: name `{name}` vs layout column `{c}`",
                    n.id,
                    n.label()
                );
            }
        });
        // The derived tables resolve through their own captured names
        // (original case preserved), and the labels show them.
        let d2 =
            find(&p, &|n| matches!(&n.op, PlanOp::DerivedTable { alias, .. } if alias == "d2"))
                .expect("inner derived table");
        assert_eq!(d2.output_names(), vec!["Sid".to_string(), "Cr".to_string()]);
        assert!(d2.label().contains("[Sid, Cr]"), "{}", d2.label());
    }

    /// Planning errors mirror the executor's historical error variants.
    #[test]
    fn plan_errors_match_exec_errors() {
        let db = db();
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: col("X", "a"), alias: None }],
            from: vec![TableExpr::Relation { name: "Nope".into(), alias: "X".into() }],
            ..Default::default()
        };
        assert!(matches!(plan(&stmt, &db), Err(ExecError::UnknownRelation(_))));
        let stmt = SelectStatement {
            items: vec![SelectItem::Column { col: col("S", "Sid"), alias: None }],
            from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
            predicates: vec![Predicate::Contains(col("Z", "zap"), "x".into())],
            ..Default::default()
        };
        assert!(matches!(plan(&stmt, &db), Err(ExecError::UnknownColumn(_))));
    }
}
