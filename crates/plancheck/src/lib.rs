//! Static verification of physical plans.
//!
//! The planner in `aqks-sqlgen` lowers every generated SQL statement to
//! a [`PlanNode`](aqks_sqlgen::PlanNode) tree that the executor runs
//! directly — and that nothing checked until this crate. A planner bug
//! there reproduces exactly the silently-wrong-aggregate failure class
//! the SQL-level analyzer exists to prevent, one layer down.
//!
//! `aqks-plancheck` closes that gap with a bottom-up abstract
//! interpretation over the plan tree:
//!
//! - [`props`] infers, per operator, the output schema with column
//!   provenance and declared types, functional dependencies carried
//!   across joins, row-uniqueness and minimized keys, sortedness, and a
//!   monotone cardinality upper bound;
//! - [`mod@verify`] checks each operator against those properties, the
//!   catalog, and (optionally) the originating statement, failing with
//!   a typed [`PlanError`] on the first violated invariant;
//! - [`mod@fingerprint`] hashes a canonical, estimate-free encoding of the
//!   tree into the stable cache key the plan/result-caching roadmap
//!   item consumes;
//! - [`mutate`] seeds realistic plan corruptions for tests, which the
//!   verifier must reject with the matching diagnostic kind.
//!
//! Debug builds of the engine verify every plan before execution via
//! [`verify_in_debug`]; release builds skip in a branch (pinned at zero
//! allocations by a counting-allocator test).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod mutate;
pub mod props;
pub mod verify;

pub use fingerprint::{fingerprint, fingerprint_hex};
pub use props::{ColProp, NodeProps};
pub use verify::{render_verified, verify, verify_in_debug, PlanError, PlanErrorKind, Verified};
