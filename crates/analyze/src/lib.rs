#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # aqks-analyze
//!
//! A static semantic analyzer for the `SELECT` statements the keyword
//! engine and the SQAK baseline generate. It checks a
//! [`SelectStatement`](aqks_sqlgen::SelectStatement) against the
//! [`DatabaseSchema`](aqks_relational::DatabaseSchema), its declared
//! functional dependencies, and (optionally) the ORM graph — without
//! executing anything.
//!
//! Five lint passes with stable diagnostic codes:
//!
//! | code    | pass                  | what it proves                         |
//! |---------|-----------------------|----------------------------------------|
//! | `AQ-P1` | [`NameResolution`]    | every name resolves, no duplicates     |
//! | `AQ-P2` | [`TypeCheck`]         | joins/aggregates/`contains` type-check |
//! | `AQ-P3` | [`JoinValidity`]      | equi-joins follow schema structure     |
//! | `AQ-P4` | [`AggregateForm`]     | GROUP BY covers plain select items     |
//! | `AQ-P5` | [`DuplicateInflation`]| no duplicate-inflated aggregates       |
//!
//! `AQ-P5` is the static counterpart of the paper's Section 4 analysis:
//! it reproduces, at the plan level, the error class SQAK's translation
//! falls into on unnormalized schemas (merged groups when grouping by a
//! text-matched non-key, redundant rows inflating `COUNT`/`SUM`/`AVG`),
//! using attribute closures over the statement's flattened FD model.
//!
//! ```
//! use aqks_analyze::analyze;
//! use aqks_sqlgen::{ColumnRef, SelectItem, SelectStatement, TableExpr};
//! # use aqks_relational::{AttrType, DatabaseSchema, RelationSchema};
//! # let mut r = RelationSchema::new("Student");
//! # r.add_attr("Sid", AttrType::Text);
//! # r.set_primary_key(["Sid"]);
//! # let schema = DatabaseSchema { relations: vec![r] };
//! let stmt = SelectStatement {
//!     items: vec![SelectItem::Column { col: ColumnRef::new("S", "Sid"), alias: None }],
//!     from: vec![TableExpr::Relation { name: "Student".into(), alias: "S".into() }],
//!     ..Default::default()
//! };
//! assert!(analyze(&stmt, &schema).is_clean());
//! ```

pub mod analyzer;
pub mod diagnostics;
pub mod fdmodel;
pub mod passes;
pub mod scope;

pub use analyzer::{analyze, Analyzer, AnalyzerOptions, StmtContext};
pub use diagnostics::{Diagnostic, Report, Severity};
pub use passes::{
    default_passes, AggregateForm, DuplicateInflation, JoinValidity, LintPass, NameResolution,
    TypeCheck,
};
