//! End-to-end verifier tests: planner-produced plans verify clean (and
//! execute), seeded mutations are rejected with the right diagnostic
//! kind, and fingerprints behave like cache keys.

use aqks_core::Engine;
use aqks_datasets::university;
use aqks_plancheck::{fingerprint, mutate, render_verified, verify, PlanErrorKind};
use aqks_relational::{AttrType, Database, RelationSchema, Value};
use aqks_sqlgen::ast::{AggFunc, ColumnRef, Predicate, SelectItem, SelectStatement, TableExpr};
use aqks_sqlgen::{plan, render_plan, run_plan, PlanNode};

/// Plans every interpretation the engine generates for `queries`.
fn engine_plans(db: &Database, queries: &[&str]) -> Vec<(SelectStatement, PlanNode)> {
    let engine = Engine::new(db.clone()).expect("engine builds");
    let mut out = Vec::new();
    for q in queries {
        for g in engine.generate(q, 3).expect("interpretations generated") {
            let p = plan(&g.sql, db).expect("statement plans");
            out.push((g.sql, p));
        }
    }
    assert!(!out.is_empty(), "query set produced no plans");
    out
}

const UNIVERSITY_QUERIES: &[&str] = &[
    "Green SUM Credit",
    "Green George COUNT Code",
    "Java SUM Price",
    "Engineering COUNT Department",
    "AVG COUNT Lecturer GROUPBY Course",
    "Green Green COUNT Code",
];

#[test]
fn planner_produced_plans_verify_clean_and_execute() {
    let db = university::normalized();
    for (stmt, p) in engine_plans(&db, UNIVERSITY_QUERIES) {
        let verified = verify(&p, &db, Some(&stmt))
            .unwrap_or_else(|e| panic!("clean plan rejected: {e}\n{}", render_plan(&p)));
        run_plan(&p, &db).expect("verified plan executes");
        // The annotated rendering surfaces properties for every node.
        let text = render_verified(&p, &verified);
        assert!(text.contains("rows<="), "no row bounds in:\n{text}");
    }
}

#[test]
fn root_properties_reflect_the_statement() {
    let db = university::normalized();
    // Global aggregate: single row, trivially unique.
    let (_, p) = engine_plans(&db, &["Green SUM Credit"]).remove(0);
    let verified = verify(&p, &db, None).expect("verifies");
    let root = verified.root(&p);
    assert!(root.unique);
    assert!(root.max_rows >= 1);
    // A base scan keeps its primary key and full row bound.
    let scan = plan(
        &select(vec![col("S", "Sid"), col("S", "Sname")], vec![rel("Student", "S")], vec![]),
        &db,
    )
    .expect("plans");
    let v = verify(&scan, &db, None).expect("verifies");
    let leaf = v.props(find_scan_id(&scan)).expect("scan props");
    assert!(leaf.unique, "base relation with a PK is row-unique");
    assert_eq!(leaf.key(), Some(vec![0]), "Sid alone is the key");
    assert_eq!(leaf.max_rows, db.table("Student").unwrap().len());
}

fn find_scan_id(p: &PlanNode) -> usize {
    if p.children.is_empty() {
        p.id
    } else {
        find_scan_id(&p.children[0])
    }
}

#[test]
fn every_seeded_mutation_is_rejected_with_a_typed_diagnostic() {
    let db = university::normalized();
    let mut applied = 0usize;
    for (stmt, p) in engine_plans(&db, UNIVERSITY_QUERIES) {
        for (m, bad) in mutate::all(&p) {
            applied += 1;
            let Err(err) = verify(&bad, &db, Some(&stmt)) else {
                panic!("{m:?} accepted on:\n{}", render_plan(&p));
            };
            let allowed: &[PlanErrorKind] = match m {
                mutate::Mutation::SwapJoinKeys => &[
                    PlanErrorKind::JoinProvenance,
                    PlanErrorKind::JoinKeyType,
                    PlanErrorKind::UnresolvedColumn,
                ],
                mutate::Mutation::DropDistinct => &[PlanErrorKind::LostDistinct],
                mutate::Mutation::FlipBuildSide => &[PlanErrorKind::BuildSide],
                mutate::Mutation::StaleColumnIndex => &[PlanErrorKind::UnresolvedColumn],
                mutate::Mutation::SwapJoinInputs => {
                    panic!("benign mutation yielded by mutate::all()")
                }
            };
            assert!(
                allowed.contains(&err.kind),
                "{m:?} rejected as {:?} (wanted one of {allowed:?}): {err}",
                err.kind
            );
        }
    }
    assert!(applied >= 8, "mutation corpus too small ({applied} applications)");
}

#[test]
fn benign_input_swap_verifies_clean_but_moves_the_fingerprint() {
    let db = university::normalized();
    let mut swapped = 0usize;
    for (stmt, p) in engine_plans(&db, UNIVERSITY_QUERIES) {
        let Some(good) = mutate::apply(&p, mutate::Mutation::SwapJoinInputs) else {
            continue; // no hash join in this plan
        };
        swapped += 1;
        verify(&good, &db, Some(&stmt)).unwrap_or_else(|e| {
            panic!(
                "sound input swap rejected: {e}\noriginal:\n{}\nswapped:\n{}",
                render_plan(&p),
                render_plan(&good)
            )
        });
        // The swap is structural, so the *structural* fingerprint moves;
        // only the canonical fingerprint (aqks-equiv) identifies them.
        assert_ne!(fingerprint(&p), fingerprint(&good), "input swap left fingerprint unchanged");
        // Same rows out: the swap must not change results.
        let (a, _) = run_plan(&p, &db).expect("original executes");
        let (b, _) = run_plan(&good, &db).expect("mutant executes");
        assert_eq!(a.sorted().rows, b.sorted().rows, "rows changed by input swap");
    }
    assert!(swapped >= 3, "too few joins exercised ({swapped})");
}

#[test]
fn dropped_distinct_is_caught_against_the_statement() {
    let db = university::normalized();
    let mut stmt = select(vec![col("E", "Grade")], vec![rel("Enrol", "E")], vec![]);
    stmt.distinct = true;
    let p = plan(&stmt, &db).expect("plans");
    verify(&p, &db, Some(&stmt)).expect("distinct plan verifies");
    let (m, bad) = mutate::all(&p)
        .into_iter()
        .find(|(m, _)| *m == mutate::Mutation::DropDistinct)
        .expect("plan has a Distinct to drop");
    let err = verify(&bad, &db, Some(&stmt)).expect_err("dropped Distinct accepted");
    assert_eq!(err.kind, PlanErrorKind::LostDistinct, "{m:?}: {err}");
}

#[test]
fn duplicate_sensitive_aggregate_over_redundant_fd_is_rejected() {
    // R(a, b, c) with PK a and the declared (non-key) FD b -> c: rows
    // duplicated along b -> c inflate SUM(c) when grouped by b.
    let mut db = Database::new("redundant");
    let mut r = RelationSchema::new("R");
    r.add_attr("A", AttrType::Int).add_attr("B", AttrType::Text).add_attr("C", AttrType::Int);
    r.set_primary_key(["A"]);
    r.add_fd(["B"], ["C"]);
    db.add_relation(r).unwrap();
    for (a, b, c) in [(1, "x", 10), (2, "x", 10), (3, "y", 20)] {
        db.insert("R", vec![Value::Int(a), Value::str(b), Value::Int(c)]).unwrap();
    }
    let stmt = select(
        vec![
            col("R", "B"),
            SelectItem::Aggregate {
                func: AggFunc::Sum,
                arg: ColumnRef::new("R", "C"),
                distinct: false,
                alias: "sumc".into(),
            },
        ],
        vec![rel("R", "R")],
        vec![],
    );
    let mut stmt = stmt;
    stmt.group_by = vec![ColumnRef::new("R", "B")];
    let p = plan(&stmt, &db).expect("plans");
    let err = verify(&p, &db, Some(&stmt)).expect_err("redundant aggregate accepted");
    assert_eq!(err.kind, PlanErrorKind::DuplicateRisk, "{err}");
}

#[test]
fn contains_matched_group_key_that_merges_entities_is_rejected() {
    let db = university::normalized();
    // GROUP BY the contains-matched Sname: the two Greens merge.
    let mut stmt = select(
        vec![
            col("S", "Sname"),
            SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: ColumnRef::new("E", "Code"),
                distinct: false,
                alias: "numcode".into(),
            },
        ],
        vec![rel("Student", "S"), rel("Enrol", "E")],
        vec![
            Predicate::JoinEq(ColumnRef::new("S", "Sid"), ColumnRef::new("E", "Sid")),
            Predicate::Contains(ColumnRef::new("S", "Sname"), "green".into()),
        ],
    );
    stmt.group_by = vec![ColumnRef::new("S", "Sname")];
    let p = plan(&stmt, &db).expect("plans");
    let err = verify(&p, &db, Some(&stmt)).expect_err("merged groups accepted");
    assert_eq!(err.kind, PlanErrorKind::MergedGroups, "{err}");
    // Grouping by the key instead is clean.
    let mut keyed = select(
        vec![
            col("S", "Sid"),
            SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: ColumnRef::new("E", "Code"),
                distinct: false,
                alias: "numcode".into(),
            },
        ],
        vec![rel("Student", "S"), rel("Enrol", "E")],
        vec![
            Predicate::JoinEq(ColumnRef::new("S", "Sid"), ColumnRef::new("E", "Sid")),
            Predicate::Contains(ColumnRef::new("S", "Sname"), "green".into()),
        ],
    );
    keyed.group_by = vec![ColumnRef::new("S", "Sid")];
    let p = plan(&keyed, &db).expect("plans");
    verify(&p, &db, Some(&keyed)).expect("keyed grouping verifies");
}

#[test]
fn fingerprints_are_deterministic_and_mutation_sensitive() {
    let db = university::normalized();
    let mut roots = Vec::new();
    for (stmt, p) in engine_plans(&db, UNIVERSITY_QUERIES) {
        let again = plan(&stmt, &db).expect("plans again");
        assert_eq!(
            fingerprint(&p),
            fingerprint(&again),
            "fingerprint unstable across plan() calls for:\n{}",
            render_plan(&p)
        );
        for (m, bad) in mutate::all(&p) {
            assert_ne!(fingerprint(&p), fingerprint(&bad), "{m:?} left the fingerprint unchanged");
        }
        roots.push(fingerprint(&p));
    }
    // Distinct interpretations hash apart (collision check).
    let mut sorted = roots.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), roots.len(), "fingerprint collision across interpretations");
}

// ---------------------------------------------------------------------------
// Small AST builders
// ---------------------------------------------------------------------------

fn select(
    items: Vec<SelectItem>,
    from: Vec<TableExpr>,
    predicates: Vec<Predicate>,
) -> SelectStatement {
    SelectStatement { items, from, predicates, ..SelectStatement::new() }
}

fn col(q: &str, c: &str) -> SelectItem {
    SelectItem::Column { col: ColumnRef::new(q, c), alias: None }
}

fn rel(name: &str, alias: &str) -> TableExpr {
    TableExpr::Relation { name: name.into(), alias: alias.into() }
}
