//! A retrying line-protocol client.
//!
//! [`Client`] owns one connection and transparently reconnects. Its
//! retry loop is the client half of the server's robustness contract:
//! it retries only what the wire says is retryable (`overloaded`,
//! `shutdown`, `timeout`, and transport-level timeouts/resets), backs
//! off exponentially with deterministic jitter so a thundering herd of
//! clients de-synchronizes, and gives up immediately on semantic errors
//! that can never succeed (`parse`, `nomatch`, `semantic`, `protocol`).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{
    parse_err_line, parse_ok_header, unescape, Answer, ErrorCode, Request, WireError, WireInterp,
};

/// Why a request ultimately failed after the retry budget was spent.
#[derive(Debug)]
pub enum ClientError {
    /// The server answered with a typed error that is not retryable
    /// (or retries were exhausted on a retryable one).
    Server(WireError),
    /// Connecting, reading, or writing failed at the transport layer
    /// after all retries.
    Io(std::io::Error),
    /// The server sent a frame that violates the protocol grammar.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Server(e) => write!(f, "server error {e}"),
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// Whether the failure class would have been retryable (used by
    /// callers that manage their own retry budget).
    pub fn retryable(&self) -> bool {
        match self {
            ClientError::Server(e) => e.code.retryable(),
            ClientError::Io(_) => true,
            ClientError::Protocol(_) => false,
        }
    }
}

/// Retry and timeout policy for a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base * 2^(n-1)`, capped at `max`,
    /// then scaled by a jitter factor in `[0.5, 1.0]`.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_max: Duration,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout — also the client-side deadline for the
    /// server to produce a response.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Seed for the deterministic jitter sequence; give each client a
    /// distinct seed so their retry schedules diverge.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            max_attempts: 4,
            backoff_base: Duration::from_millis(25),
            backoff_max: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// xorshift64* — a tiny deterministic generator for backoff jitter.
/// Not for anything security-relevant; it only has to de-correlate
/// retry schedules across clients.
struct Jitter(u64);

impl Jitter {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A factor in `[0.5, 1.0]` applied to the exponential backoff.
    fn factor(&mut self) -> f64 {
        0.5 + (self.next() % 1000) as f64 / 2000.0
    }
}

/// A connection to an `aqks-server`, with reconnect-and-retry.
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    conn: Option<BufReader<TcpStream>>,
    jitter: Jitter,
}

impl Client {
    /// Creates a client for `addr`; no connection is made until the
    /// first request.
    pub fn connect(addr: SocketAddr, cfg: ClientConfig) -> Client {
        let seed = cfg.jitter_seed;
        Client { addr, cfg, conn: None, jitter: Jitter(seed) }
    }

    /// The backoff before retry attempt `attempt` (1-based).
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self.cfg.backoff_base.saturating_mul(1u32 << attempt.min(16).saturating_sub(1));
        let capped = exp.min(self.cfg.backoff_max);
        capped.mul_f64(self.jitter.factor())
    }

    fn ensure_conn(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)?;
            stream.set_read_timeout(Some(self.cfg.read_timeout))?;
            stream.set_write_timeout(Some(self.cfg.write_timeout))?;
            stream.set_nodelay(true)?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }

    /// Sends `request` with the configured retry policy and returns the
    /// parsed answer. Retryable failures (typed `overloaded`/`shutdown`/
    /// `timeout` frames, transport errors) are retried on a fresh
    /// connection after jittered exponential backoff; non-retryable
    /// errors return immediately.
    pub fn query(&mut self, request: &Request) -> Result<Answer, ClientError> {
        let mut last: Option<ClientError> = None;
        for attempt in 1..=self.cfg.max_attempts.max(1) {
            if attempt > 1 {
                let pause = self.backoff(attempt - 1);
                std::thread::sleep(pause);
            }
            match self.query_once(request) {
                Ok(answer) => return Ok(answer),
                Err(e) => {
                    if matches!(e, ClientError::Io(_)) {
                        self.conn = None; // transport state is suspect
                    }
                    if !e.retryable() {
                        return Err(e);
                    }
                    // Retryable server frames leave the connection in a
                    // clean frame boundary; reconnect anyway on shutdown
                    // (the server is about to close it).
                    if matches!(&e, ClientError::Server(w) if w.code == ErrorCode::Shutdown) {
                        self.conn = None;
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            ClientError::Protocol("retry loop finished without an attempt".to_string())
        }))
    }

    /// One attempt: write the frame, read one response.
    fn query_once(&mut self, request: &Request) -> Result<Answer, ClientError> {
        let line = request.render();
        let reader = self.ensure_conn().map_err(ClientError::Io)?;
        {
            let stream = reader.get_ref().try_clone().map_err(ClientError::Io)?;
            let mut w = BufWriter::new(stream);
            writeln!(w, "{line}").map_err(ClientError::Io)?;
            w.flush().map_err(ClientError::Io)?;
        }
        read_response(reader)
    }

    /// Round-trips a `PING`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let reader = self.ensure_conn().map_err(ClientError::Io)?;
        {
            let stream = reader.get_ref().try_clone().map_err(ClientError::Io)?;
            let mut w = BufWriter::new(stream);
            writeln!(w, "PING").map_err(ClientError::Io)?;
            w.flush().map_err(ClientError::Io)?;
        }
        let mut line = String::new();
        reader.read_line(&mut line).map_err(ClientError::Io)?;
        if line.trim_end() == "PONG" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!("expected PONG, got `{}`", line.trim_end())))
        }
    }

    /// Sends `QUIT` and drops the connection.
    pub fn quit(&mut self) {
        if let Some(reader) = self.conn.take() {
            if let Ok(stream) = reader.get_ref().try_clone() {
                let mut w = BufWriter::new(stream);
                let _ = writeln!(w, "QUIT");
                let _ = w.flush();
            }
        }
    }
}

/// Reads one complete response (an `ERR` line or an `OK` block through
/// its terminating `.`).
fn read_response(reader: &mut BufReader<TcpStream>) -> Result<Answer, ClientError> {
    let mut line = String::new();
    reader.read_line(&mut line).map_err(ClientError::Io)?;
    if line.is_empty() {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection mid-request",
        )));
    }
    let trimmed = line.trim_end();
    if let Some(rest) = trimmed.strip_prefix("ERR ") {
        let err = parse_err_line(rest).map_err(ClientError::Protocol)?;
        return Err(ClientError::Server(err));
    }
    let Some(rest) = trimmed.strip_prefix("OK").map(|r| r.trim_start()) else {
        return Err(ClientError::Protocol(format!("unexpected frame `{}`", truncate(trimmed, 64))));
    };
    let mut answer = parse_ok_header(rest).map_err(ClientError::Protocol)?;
    // Interpretation blocks until the `.` terminator.
    let mut current: Option<WireInterp> = None;
    loop {
        let mut body = String::new();
        reader.read_line(&mut body).map_err(ClientError::Io)?;
        if body.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-response",
            )));
        }
        let body = body.trim_end_matches(['\n', '\r']);
        if body == "." {
            if let Some(interp) = current.take() {
                answer.interpretations.push(interp);
            }
            return Ok(answer);
        }
        if let Some(sql) = body.strip_prefix("S ") {
            if let Some(done) = current.take() {
                answer.interpretations.push(done);
            }
            current =
                Some(WireInterp { sql: unescape(sql), columns: Vec::new(), rows: Vec::new() });
        } else if let Some(cols) = body.strip_prefix("C ") {
            let interp = current
                .as_mut()
                .ok_or_else(|| ClientError::Protocol("C line before S line".to_string()))?;
            interp.columns = cols.split('\t').map(unescape).collect();
        } else if let Some(vals) = body.strip_prefix("R ") {
            let interp = current
                .as_mut()
                .ok_or_else(|| ClientError::Protocol("R line before S line".to_string()))?;
            interp.rows.push(vals.split('\t').map(unescape).collect());
        } else {
            return Err(ClientError::Protocol(format!(
                "unexpected body line `{}`",
                truncate(body, 64)
            )));
        }
    }
}

fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut a = Jitter(7);
        let mut b = Jitter(7);
        for _ in 0..100 {
            let fa = a.factor();
            assert_eq!(fa, b.factor());
            assert!((0.5..=1.0).contains(&fa), "{fa}");
        }
        // Different seeds diverge.
        let mut c = Jitter(8);
        let diverges = (0..10).any(|_| Jitter(7).factor() != c.factor());
        assert!(diverges);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let cfg = ClientConfig {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(100),
            ..ClientConfig::default()
        };
        let mut client = Client::connect("127.0.0.1:1".parse().expect("literal addr parses"), cfg);
        let b1 = client.backoff(1);
        let b4 = client.backoff(4);
        // Jitter scales by [0.5, 1.0]; bounds hold regardless of draw.
        assert!(b1 >= Duration::from_millis(5) && b1 <= Duration::from_millis(10), "{b1:?}");
        assert!(b4 >= Duration::from_millis(40) && b4 <= Duration::from_millis(100), "{b4:?}");
        let b10 = client.backoff(10);
        assert!(b10 <= Duration::from_millis(100), "cap violated: {b10:?}");
    }
}
