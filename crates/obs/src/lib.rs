#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]
//! # aqks-obs
//!
//! A lightweight, zero-dependency observability layer for the
//! keyword-to-SQL pipeline: hierarchical wall-time **spans**, named
//! **counters**, and a thread-safe [`Recorder`] that snapshots both into
//! a [`PipelineTrace`] — a span tree with self/total times that renders
//! as text or exports as Chrome `trace_event` JSON (loadable in
//! `chrome://tracing` and Perfetto).
//!
//! Design constraints, in order:
//!
//! 1. **Disabled means free.** Every [`Recorder::span`] call first reads
//!    one relaxed atomic; when recording is off it returns an inert guard
//!    without allocating or touching any lock (verified by the
//!    `overhead` integration test with a counting allocator). The
//!    pipeline is therefore instrumented unconditionally and pays only
//!    when a trace was asked for.
//! 2. **No plumbing through layers.** A started span is pushed onto a
//!    thread-local *ambient stack*; nested [`Recorder::span`] calls and
//!    the free function [`counter`] attach to the innermost active span
//!    without the intermediate layers (matcher, executor, analyzer
//!    passes) ever seeing a recorder argument.
//! 3. **Cross-thread handoff.** [`Span::handle`] produces a `Send`
//!    [`SpanHandle`]; [`SpanHandle::child`] opens a child span on another
//!    thread, parented correctly in the final tree.
//! 4. **Externally-timed work joins the tree.** Measurements accumulated
//!    elsewhere (the Volcano executor's per-operator `ExecStats`) are
//!    grafted in as completed spans via [`Recorder::record_span`].
//!
//! Alongside the per-call recorder, three sibling modules provide
//! *cumulative* telemetry with the same cost discipline:
//!
//! * [`metrics`] — an always-on registry of counters, gauges, and
//!   log-linear histograms (lock-free recording, zero-alloc disabled
//!   path, allocation-free histogram merges);
//! * [`flight`] — a bounded ring-buffer flight recorder keeping the N
//!   most recent [`PipelineTrace`]s plus the slowest and last
//!   budget-tripped exemplars;
//! * [`expo`] — Prometheus text-format v0.0.4 and JSON exposition of a
//!   metrics snapshot.

pub mod expo;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use flight::{FlightEntry, FlightRecorder};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, LabeledCounter, LabeledHistogram, Registry,
    Snapshot, Unit,
};
pub use recorder::{counter, current, Recorder, Span, SpanHandle};
pub use trace::{PipelineTrace, SpanNode};
