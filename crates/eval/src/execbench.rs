//! Executor micro-benchmark: plans and runs the Tables 5/6 workloads
//! (T1–T8 on TPC-H, A1–A8 on ACMDL) through the physical-operator
//! pipeline and reports per-query median wall time plus per-operator
//! rows and timings, serialized as `BENCH_exec.json`.
//!
//! Unlike [`crate::fig11`], which times SQL *generation*, this measures
//! *execution* of the generated plans — the cost the Volcano operators
//! (`aqks_sqlgen::ops`) add or save. CI runs the `--smoke` variant (few
//! repetitions, small data) to catch regressions that break planning or
//! execution of any workload query.

use std::time::Instant;

use aqks_core::Engine;
use aqks_sqlgen::{plan, run_plan, ExecStats, PlanNode};

use crate::workload::{acmdl_queries, tpch_queries, EvalQuery, Scale};

/// Measured metrics of one operator in one benchmarked plan.
#[derive(Debug, Clone)]
pub struct OpBenchRow {
    /// Plan node id (stable across the run).
    pub id: usize,
    /// Operator label as rendered by EXPLAIN.
    pub label: String,
    /// Rows received from all inputs (median run).
    pub rows_in: u64,
    /// Rows emitted (median run).
    pub rows_out: u64,
    /// Inclusive wall time of the operator, microseconds (median run).
    pub wall_us: f64,
}

/// Execution benchmark of one workload query.
#[derive(Debug, Clone)]
pub struct QueryExecBench {
    /// Paper query id (T1…T8, A1…A8).
    pub id: &'static str,
    /// Workload name (`tpch` or `acmdl`).
    pub workload: &'static str,
    /// The generated SQL text that was executed.
    pub sql: String,
    /// Result cardinality.
    pub result_rows: usize,
    /// Median end-to-end plan execution time, microseconds.
    pub wall_us: f64,
    /// Per-operator metrics from the median-time run.
    pub ops: Vec<OpBenchRow>,
    /// Failure message when the query could not be planned or run.
    pub error: Option<String>,
}

fn failed(q: &EvalQuery, workload: &'static str, msg: String) -> QueryExecBench {
    QueryExecBench {
        id: q.id,
        workload,
        sql: String::new(),
        result_rows: 0,
        wall_us: 0.0,
        ops: Vec::new(),
        error: Some(msg),
    }
}

/// Runs every query of one workload `reps` times and keeps the median.
fn bench_workload(
    db: aqks_relational::Database,
    queries: Vec<EvalQuery>,
    workload: &'static str,
    reps: usize,
) -> Vec<QueryExecBench> {
    let engine = match Engine::new(db) {
        Ok(e) => e,
        Err(e) => {
            return queries.iter().map(|q| failed(q, workload, format!("engine: {e}"))).collect()
        }
    };
    queries
        .into_iter()
        .map(|q| {
            let generated = match engine.generate(q.text, 1) {
                Ok(g) if !g.is_empty() => g,
                Ok(_) => return failed(&q, workload, "no interpretation".into()),
                Err(e) => return failed(&q, workload, format!("generate: {e}")),
            };
            let g = &generated[0];
            let p = match plan(&g.sql, engine.database()) {
                Ok(p) => p,
                Err(e) => return failed(&q, workload, format!("plan: {e}")),
            };
            // Warm-up, then `reps` timed runs; keep the stats of the
            // median-time run so operator timings sum to the reported
            // wall time.
            if let Err(e) = run_plan(&p, engine.database()) {
                return failed(&q, workload, format!("execute: {e}"));
            }
            let mut samples: Vec<(f64, usize, ExecStats)> = Vec::with_capacity(reps);
            for _ in 0..reps.max(1) {
                let t = Instant::now();
                match run_plan(&p, engine.database()) {
                    Ok((table, stats)) => {
                        samples.push((t.elapsed().as_secs_f64() * 1e6, table.len(), stats))
                    }
                    Err(e) => return failed(&q, workload, format!("execute: {e}")),
                }
            }
            samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let (wall_us, result_rows, stats) = samples.swap_remove(samples.len() / 2);
            QueryExecBench {
                id: q.id,
                workload,
                sql: g.sql_text.clone(),
                result_rows,
                wall_us,
                ops: op_rows(&p, &stats),
                error: None,
            }
        })
        .collect()
}

/// Flattens a plan and its stats into per-operator rows, in node-id order.
fn op_rows(p: &PlanNode, stats: &ExecStats) -> Vec<OpBenchRow> {
    let mut rows = Vec::with_capacity(p.node_count());
    p.visit(&mut |n| {
        let m = &stats.ops[n.id];
        rows.push(OpBenchRow {
            id: n.id,
            label: n.label(),
            rows_in: m.rows_in,
            rows_out: m.rows_out,
            wall_us: m.wall.as_secs_f64() * 1e6,
        });
    });
    rows.sort_by_key(|r| r.id);
    rows
}

/// Runs the full benchmark: T1–T8 on TPC-H and A1–A8 on ACMDL.
pub fn run_exec_bench(scale: Scale, reps: usize) -> Vec<QueryExecBench> {
    let mut out =
        bench_workload(crate::workload::tpch_database(scale), tpch_queries(), "tpch", reps);
    out.extend(bench_workload(
        crate::workload::acmdl_database(scale),
        acmdl_queries(),
        "acmdl",
        reps,
    ));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes benchmark rows as the `BENCH_exec.json` document.
pub fn render_json(rows: &[QueryExecBench], scale: Scale, reps: usize) -> String {
    let scale_name = match scale {
        Scale::Small => "small",
        Scale::Paper => "paper-scale",
    };
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"scale\": \"{scale_name}\",\n  \"reps\": {reps},\n"));
    s.push_str("  \"queries\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"id\": \"{}\",\n", r.id));
        s.push_str(&format!("      \"workload\": \"{}\",\n", r.workload));
        if let Some(err) = &r.error {
            s.push_str(&format!("      \"error\": \"{}\"\n", json_escape(err)));
        } else {
            s.push_str(&format!("      \"sql\": \"{}\",\n", json_escape(&r.sql)));
            s.push_str(&format!("      \"result_rows\": {},\n", r.result_rows));
            s.push_str(&format!("      \"wall_us\": {:.1},\n", r.wall_us));
            s.push_str("      \"operators\": [\n");
            for (j, op) in r.ops.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"id\": {}, \"label\": \"{}\", \"rows_in\": {}, \"rows_out\": {}, \"wall_us\": {:.1}}}{}\n",
                    op.id,
                    json_escape(&op.label),
                    op.rows_in,
                    op.rows_out,
                    op.wall_us,
                    if j + 1 < r.ops.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
        }
        s.push_str(&format!("    }}{}\n", if i + 1 < rows.len() { "," } else { "" }));
    }
    s.push_str("  ]\n}\n");
    s
}
