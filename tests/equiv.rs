//! Differential tests for semantic plan equivalence: every equivalence
//! class the canonicalizer finds across the bundled workloads must be a
//! *behavioral* equivalence — all members execute to the same table —
//! and on randomized schemas canonicalize → verify → execute must never
//! change a query's result.

use aqks::core::Engine;
use aqks::datasets::university;
use aqks::equiv::{analyze, canonicalize};
use aqks::plancheck::verify;
use aqks::relational::{AttrType, Database, RelationSchema, Value};
use aqks::sqlgen::ast::OrderKey;
use aqks::sqlgen::{
    plan, plan_with_options, run_plan, AggFunc, ColumnRef, PlanNode, PlanOptions, Predicate,
    SelectItem, SelectStatement, TableExpr,
};

/// Plans the top-k interpretations of each query with and without
/// predicate pushdown — the mixed plan set a cache would accumulate.
fn workload_plans(db: &Database, queries: &[&str], k: usize) -> Vec<PlanNode> {
    let engine = Engine::new(db.clone()).expect("engine builds");
    let mut plans = Vec::new();
    for q in queries {
        for g in engine.generate(q, k).expect("interpretations generated") {
            plans.push(plan(&g.sql, db).expect("statement plans"));
            plans.push(
                plan_with_options(&g.sql, db, &PlanOptions { pushdown: false })
                    .expect("statement plans without pushdown"),
            );
        }
    }
    plans
}

/// Analyzes the workload's plan set and checks that every member of
/// every equivalence class executes to its classmates' table.
fn assert_classes_are_behavioral(db: &Database, queries: &[&str], workload: &str) {
    let plans = workload_plans(db, queries, 2);
    let analysis = analyze(&plans, db)
        .unwrap_or_else(|e| panic!("{workload}: canonicalization rejected a planner plan: {e}"));
    assert!(
        analysis.nontrivial_classes() >= 1,
        "{workload}: pushdown variants produced no duplicates"
    );
    for (ci, class) in analysis.classes.iter().enumerate() {
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for &m in &class.members {
            let (table, _) = run_plan(&plans[m], db)
                .unwrap_or_else(|e| panic!("{workload}: plan {m} fails to execute: {e}"));
            let rows = table.sorted().rows;
            match &reference {
                None => reference = Some(rows),
                Some(r) => {
                    assert_eq!(r, &rows, "{workload}: class {ci} members disagree (member {m})")
                }
            }
        }
    }
}

#[test]
fn university_equivalence_classes_execute_identically() {
    let db = university::normalized();
    let queries = [
        "Green SUM Credit",
        "Green George COUNT Code",
        "Java SUM Price",
        "COUNT Lecturer GROUPBY Course",
    ];
    assert_classes_are_behavioral(&db, &queries, "university");
}

#[test]
fn tpch_equivalence_classes_execute_identically() {
    use aqks_eval::{tpch_queries, Scale};
    let queries: Vec<String> = tpch_queries().iter().map(|q| q.text.to_string()).collect();
    let refs: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
    let normalized = aqks_eval::workload::tpch_database(Scale::Small);
    assert_classes_are_behavioral(&normalized, &refs, "tpch");
    let prime = aqks_eval::workload::tpch_prime_database(Scale::Small);
    assert_classes_are_behavioral(&prime, &refs, "tpch-prime");
}

#[test]
fn acmdl_equivalence_classes_execute_identically() {
    use aqks_eval::{acmdl_queries, Scale};
    let queries: Vec<String> = acmdl_queries().iter().map(|q| q.text.to_string()).collect();
    let refs: Vec<&str> = queries.iter().map(|s| s.as_str()).collect();
    let normalized = aqks_eval::workload::acmdl_database(Scale::Small);
    assert_classes_are_behavioral(&normalized, &refs, "acmdl");
    let prime = aqks_eval::workload::acmdl_prime_database(Scale::Small);
    assert_classes_are_behavioral(&prime, &refs, "acmdl-prime");
}

// ---------------------------------------------------------------------
// Randomized canonicalization property
// ---------------------------------------------------------------------

/// SplitMix64: deterministic across platforms.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, pct: usize) -> bool {
        self.below(100) < pct
    }
}

/// A small random FK-chain schema with populated tables.
fn random_database(rng: &mut Rng) -> Database {
    let payload_types = [AttrType::Int, AttrType::Float, AttrType::Text];
    let mut db = Database::new("prop");
    let n_rels = 2 + rng.below(3);
    let mut schemas: Vec<(Vec<AttrType>, Option<usize>)> = Vec::new();
    for i in 0..n_rels {
        let mut r = RelationSchema::new(format!("R{i}"));
        r.add_attr("Id", AttrType::Int);
        let mut tys = Vec::new();
        for j in 0..1 + rng.below(3) {
            let ty = payload_types[rng.below(payload_types.len())];
            r.add_attr(format!("P{j}"), ty);
            tys.push(ty);
        }
        r.set_primary_key(["Id"]);
        let parent = if i > 0 { Some(rng.below(i)) } else { None };
        if let Some(p) = parent {
            r.add_attr("Ref", AttrType::Int);
            r.add_foreign_key(["Ref"], format!("R{p}"), ["Id"]);
        }
        schemas.push((tys, parent));
        db.add_relation(r).expect("schema is valid");
    }
    let mut sizes: Vec<usize> = Vec::new();
    for (i, (tys, parent)) in schemas.iter().enumerate() {
        let rows = 2 + rng.below(6);
        for id in 0..rows {
            let mut row = vec![Value::Int(id as i64)];
            for ty in tys {
                row.push(match ty {
                    AttrType::Int => Value::Int(rng.below(50) as i64),
                    AttrType::Float => Value::Float(rng.below(50) as f64 / 2.0),
                    _ => Value::str(format!("t{}", rng.below(6))),
                });
            }
            if let Some(p) = parent {
                row.push(Value::Int(rng.below(sizes[*p]) as i64));
            }
            db.insert(&format!("R{i}"), row).expect("row matches schema");
        }
        sizes.push(rows);
    }
    db
}

/// A random interpretation-shaped statement over an FK chain: a plain
/// (optionally DISTINCT/ordered) projection or a key-grouped aggregate,
/// with optional literal and contains predicates for pushdown to chew on.
fn random_statement(rng: &mut Rng, db: &Database) -> SelectStatement {
    let rels: Vec<&RelationSchema> = db.tables().iter().map(|t| &t.schema).collect();
    let mut chain = vec![rng.below(rels.len())];
    loop {
        let rel = rels[*chain.last().expect("chain is non-empty")];
        let Some(fk) = rel.foreign_keys.first() else { break };
        let parent = rels.iter().position(|r| r.is_named(&fk.ref_relation)).expect("fk target");
        chain.push(parent);
        if rng.chance(40) {
            break;
        }
    }
    let alias = |i: usize| format!("X{i}");
    let mut stmt = SelectStatement::new();
    stmt.from = chain
        .iter()
        .enumerate()
        .map(|(i, &r)| TableExpr::Relation { name: rels[r].name.clone(), alias: alias(i) })
        .collect();
    stmt.predicates = (1..chain.len())
        .map(|i| {
            Predicate::JoinEq(ColumnRef::new(alias(i - 1), "Ref"), ColumnRef::new(alias(i), "Id"))
        })
        .collect();
    if rng.chance(60) {
        let i = rng.below(chain.len());
        let rel = rels[chain[i]];
        let a = &rel.attrs[1 + rng.below(rel.attrs.len() - 1)];
        let pred = match a.ty {
            AttrType::Int => Predicate::Eq(
                ColumnRef::new(alias(i), a.name.clone()),
                Value::Int(rng.below(50) as i64),
            ),
            AttrType::Float => Predicate::Eq(
                ColumnRef::new(alias(i), a.name.clone()),
                Value::Float(rng.below(50) as f64 / 2.0),
            ),
            _ => Predicate::Contains(
                ColumnRef::new(alias(i), a.name.clone()),
                format!("t{}", rng.below(6)),
            ),
        };
        stmt.predicates.push(pred);
    }
    if rng.chance(50) {
        let g = ColumnRef::new(alias(0), "Id");
        let tail = rels[*chain.last().expect("chain is non-empty")];
        let func =
            [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max][rng.below(5)];
        let numeric: Vec<&str> = tail
            .attrs
            .iter()
            .filter(|a| matches!(a.ty, AttrType::Int | AttrType::Float))
            .map(|a| a.name.as_str())
            .collect();
        let arg = numeric[rng.below(numeric.len())];
        stmt.items = vec![
            SelectItem::Column { col: g.clone(), alias: None },
            SelectItem::Aggregate {
                func,
                arg: ColumnRef::new(alias(chain.len() - 1), arg),
                distinct: rng.chance(25),
                alias: "aggval".into(),
            },
        ];
        stmt.group_by = vec![g];
        if rng.chance(40) {
            stmt.order_by =
                vec![OrderKey { column: ColumnRef::new("", "aggval"), desc: rng.chance(50) }];
        }
    } else {
        let rel = rels[chain[0]];
        let n_items = 1 + rng.below(rel.attrs.len());
        stmt.items = (0..n_items)
            .map(|j| SelectItem::Column {
                col: ColumnRef::new(alias(0), rel.attrs[j].name.clone()),
                alias: None,
            })
            .collect();
        stmt.distinct = rng.chance(30);
    }
    stmt
}

/// 200 random schema/statement rounds: the canonical plan must verify
/// clean and execute to exactly the original plan's rows. Fixed seed —
/// every run exercises the same cases.
#[test]
fn canonicalize_verify_execute_never_changes_results() {
    let mut rng = Rng(0xE9B1);
    for round in 0..200 {
        let db = random_database(&mut rng);
        let stmt = random_statement(&mut rng, &db);
        let pushdown = rng.chance(50);
        let p = plan_with_options(&stmt, &db, &PlanOptions { pushdown })
            .unwrap_or_else(|e| panic!("round {round}: plan: {e}"));
        let canon =
            canonicalize(&p, &db).unwrap_or_else(|e| panic!("round {round}: canonicalize: {e}"));
        assert_eq!(
            canon.perm,
            (0..p.cols.len()).collect::<Vec<_>>(),
            "round {round}: statement root was permuted"
        );
        verify(&canon.plan, &db, None)
            .unwrap_or_else(|e| panic!("round {round}: canonical plan rejected: {e}"));
        let (a, _) = run_plan(&p, &db).unwrap_or_else(|e| panic!("round {round}: original: {e}"));
        let (b, _) =
            run_plan(&canon.plan, &db).unwrap_or_else(|e| panic!("round {round}: canonical: {e}"));
        assert_eq!(
            a.sorted().rows,
            b.sorted().rows,
            "round {round}: canonicalization changed the result"
        );
    }
}
