//! Timing summaries for the benchmark harnesses.
//!
//! Both `fig11` and `execbench` repeat work and need a noise-aware
//! summary: the minimum (the least-disturbed run), the median (the
//! robust central estimate the paper-style tables report), and the 95th
//! percentile (tail latency). A bare mean would let one scheduler
//! hiccup shift every reported number.

use std::time::Instant;

/// Min/median/p95 of a set of wall-time samples, microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingSummary {
    /// Fastest observed run.
    pub min_us: f64,
    /// Median run.
    pub median_us: f64,
    /// 95th percentile (nearest-rank) run.
    pub p95_us: f64,
}

impl TimingSummary {
    /// A zero summary, for failed queries.
    pub fn zero() -> TimingSummary {
        TimingSummary { min_us: 0.0, median_us: 0.0, p95_us: 0.0 }
    }

    /// Summarizes raw samples (microseconds). Panics on an empty slice.
    pub fn from_samples(samples: &[f64]) -> TimingSummary {
        assert!(!samples.is_empty(), "no timing samples");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("timing samples are finite"));
        let n = sorted.len();
        // Nearest-rank percentile: ceil(p * n) - 1.
        let p95 = (n * 95).div_ceil(100).saturating_sub(1);
        TimingSummary { min_us: sorted[0], median_us: sorted[n / 2], p95_us: sorted[p95] }
    }
}

/// Runs `f` `reps` times (at least once) and summarizes the wall times.
pub fn measure<F: FnMut()>(mut f: F, reps: usize) -> TimingSummary {
    let mut samples = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    TimingSummary::from_samples(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_orders_statistics() {
        let s = TimingSummary::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.min_us, 1.0);
        assert_eq!(s.median_us, 3.0);
        assert_eq!(s.p95_us, 5.0);
    }

    #[test]
    fn single_sample_is_all_three() {
        let s = TimingSummary::from_samples(&[7.0]);
        assert_eq!((s.min_us, s.median_us, s.p95_us), (7.0, 7.0, 7.0));
    }

    #[test]
    fn p95_uses_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = TimingSummary::from_samples(&samples);
        assert_eq!(s.p95_us, 95.0);
    }
}
