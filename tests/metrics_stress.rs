//! Cross-thread counter-handoff stress test for the always-on metrics.
//!
//! The executor's determinism contract says the worker thread count is
//! invisible in every output — and the observability layer inherits it:
//! the per-operator `op:*` span totals (rows in/out) and the global
//! registry's per-operator row counters must be identical whether the
//! TPC-H' aggregate workload runs single-threaded or morsel-parallel
//! at 8 threads. Batch *counts* legitimately differ across thread
//! counts (the sequential path emits lazy 1024-row batches, the
//! parallel path per-morsel batches), so the comparison is row totals,
//! which the merge order cannot change.
//!
//! This also stresses the worker-exit counter handoff in
//! `aqks_sqlgen::par`: each worker merges its local task tally into the
//! shared registry exactly once, so totals must come out exact — not
//! approximately right — under real scheduling.

use std::collections::BTreeMap;

use aqks::core::Engine;
use aqks::datasets::{denormalize_tpch, generate_tpch, TpchConfig};
use aqks::obs::metrics::{self, MetricValue, Snapshot};
use aqks::obs::SpanNode;
use aqks_eval::tpch_queries;

/// Sums `rows_in`/`rows_out` over every `op:<Name>` span, keyed by
/// operator name, recursing through the grafted operator tree.
fn op_span_totals(node: &SpanNode, into: &mut SpanTotals) {
    if let Some(op) = node.name.strip_prefix("op:") {
        let e = into.entry(op.to_string()).or_default();
        e.0 += node.counter("rows_in").unwrap_or(0);
        e.1 += node.counter("rows_out").unwrap_or(0);
    }
    for c in &node.children {
        op_span_totals(c, into);
    }
}

/// Per-operator totals of the registry's `aqks_ops_rows` counter.
fn registry_op_rows(snap: &Snapshot) -> BTreeMap<String, u64> {
    snap.metrics
        .iter()
        .filter(|m| m.name == "aqks_ops_rows")
        .filter_map(|m| match (&m.label, &m.value) {
            (Some((_, op)), MetricValue::Counter(v)) => Some(((*op).to_string(), *v)),
            _ => None,
        })
        .collect()
}

/// `after - before`, dropping keys whose delta is zero.
fn delta(after: &BTreeMap<String, u64>, before: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    after
        .iter()
        .map(|(k, v)| (k.clone(), v - before.get(k).copied().unwrap_or(0)))
        .filter(|(_, d)| *d > 0)
        .collect()
}

/// Per-operator (rows_in, rows_out) totals from the span tree.
type SpanTotals = BTreeMap<String, (u64, u64)>;

/// One run of the workload at `threads` workers: the op-span row
/// totals, the registry row-counter deltas, and the parallel-pool
/// launch delta.
fn run_workload(engine: &mut Engine, threads: usize) -> (SpanTotals, BTreeMap<String, u64>, u64) {
    engine.set_threads(threads);
    let before = metrics::global().snapshot();
    let mut spans = BTreeMap::new();
    for q in tpch_queries() {
        let (answers, trace) =
            engine.answer_traced(q.text, 1).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        assert!(!answers.is_empty(), "{} answered", q.id);
        for root in &trace.roots {
            op_span_totals(root, &mut spans);
        }
    }
    let after = metrics::global().snapshot();
    let rows = delta(&registry_op_rows(&after), &registry_op_rows(&before));
    let pools = after.counter_total("aqks_par_pools") - before.counter_total("aqks_par_pools");
    (spans, rows, pools)
}

/// The whole comparison lives in one test function: the registry is
/// process-global, and a single test keeps the delta windows exact.
#[test]
fn op_totals_are_identical_at_1_and_8_threads() {
    metrics::set_enabled(true);
    // Sized past the executor's parallel threshold (4096 rows) so the
    // morsel-driven paths actually engage at 8 threads.
    let db = denormalize_tpch(&generate_tpch(&TpchConfig {
        seed: 42,
        parts: 120,
        suppliers: 80,
        customers: 60,
        orders: 6_000,
        parts_per_supplier: 40,
        max_orders_per_pair: 2,
    }));
    let mut engine = Engine::new(db).expect("engine builds");

    let (spans_1, rows_1, pools_1) = run_workload(&mut engine, 1);
    let (spans_8, rows_8, pools_8) = run_workload(&mut engine, 8);

    assert!(!spans_1.is_empty(), "workload produced operator spans");
    assert_eq!(spans_1, spans_8, "op:* span row totals diverge across thread counts");
    assert_eq!(rows_1, rows_8, "registry per-op row counters diverge across thread counts");
    // The comparison only means something if the 8-thread run actually
    // took the parallel path.
    assert_eq!(pools_1, 0, "threads=1 stays on the inline path");
    assert!(pools_8 > 0, "threads=8 launched no worker pool");
}
