//! Section 4 in action: querying *unnormalized* databases correctly.
//!
//! Shows, for Figure 8's single-relation `Enrolment` database and for
//! the denormalized TPCH' (Table 7):
//!
//! 1. the FD-driven normalized view `D'` (Algorithm 1) and the Table-1
//!    style projection mappings;
//! 2. the raw translation with one subquery per pattern node (Example 9);
//! 3. the rewritten SQL after Rules 1–3 (Example 10), and that both
//!    return identical answers.
//!
//! ```text
//! cargo run --example unnormalized_survival
//! ```

use aqks::core::{Engine, EngineOptions, RewriteOptions, TranslateOptions};
use aqks::datasets::{denormalize_tpch, generate_tpch, university, TpchConfig};
use aqks::relational::{Database, NormalizedView};

fn show_view(db: &Database) {
    let view = NormalizedView::build(&db.schema());
    println!("normalized view D' of `{}`:", db.name);
    for rel in &view.relations {
        let attrs: Vec<&str> = rel.schema.attr_names().collect();
        println!(
            "  {}({}) key=({})",
            rel.schema.name,
            attrs.join(", "),
            rel.schema.primary_key.join(", ")
        );
        for src in &rel.sources {
            println!(
                "     = Π{}{:?}({})",
                if src.distinct { "ᴰ" } else { "" },
                src.attrs,
                src.original
            );
        }
    }
    println!();
}

fn compare(db: Database, query: &str) -> Result<(), Box<dyn std::error::Error>> {
    let raw = Engine::with_options(
        db.clone(),
        EngineOptions {
            translate: TranslateOptions::default(),
            rewrite: RewriteOptions::default(),
            skip_rewrites: true,
            discover_fds: false,
        },
    )?;
    let rewritten = Engine::new(db)?;

    println!("query: {query}\n");
    let a = &raw.answer(query, 1)?[0];
    println!("-- raw translation (Example 9 style):\n{}\n", a.sql_text);
    let b = &rewritten.answer(query, 1)?[0];
    println!("-- after rewrite Rules 1-3 (Example 10 style):\n{}\n", b.sql_text);
    assert_eq!(a.result.rows, b.result.rows, "rewriting must not change answers");
    println!("identical answers ({} rows):\n{}", b.result.len(), b.result);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("##### Figure 8: Enrolment #####\n");
    let db = university::enrolment_fig8();
    show_view(&db);
    compare(db, "Green George COUNT Code")?;

    println!("\n##### Table 7: TPCH' #####\n");
    let db = denormalize_tpch(&generate_tpch(&TpchConfig::small()));
    show_view(&db);
    compare(db, r#"COUNT supplier "Indian black chocolate""#)?;
    Ok(())
}
