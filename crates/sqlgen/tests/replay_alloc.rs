//! Cached-rows replay is O(consumers), not O(rows): feeding a
//! materialized shared subtree to a consumer costs Arc reference-count
//! bumps per batch, never a per-row copy. A counting global allocator
//! pins the allocation count of a ~50k-row replay below a fixed bound
//! that a row-by-row copy would exceed by orders of magnitude; only the
//! measuring thread is counted (the libtest harness allocates at will).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use aqks_relational::{AttrType, Database, RelationSchema, Value};
use aqks_sqlgen::{
    materialize_shared, plan, ColumnBatch, ColumnRef, ExecOptions, SelectItem, SelectStatement,
    SharedRows, TableExpr,
};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    // Const-initialized and destructor-free, so reading it inside the
    // allocator can neither allocate nor touch torn-down TLS.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = TRACKING.try_with(|t| {
            if t.get() {
                ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
            }
        });
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// 50k-row replay to 8 consumers stays under a fixed allocation bound
/// per consumer — independent of the cached row count — and the
/// replayed columns are pointer-identical to the cached ones.
#[test]
fn cached_replay_allocations_are_independent_of_row_count() {
    // A tiny base table so the plan builds; the scan is then shadowed
    // by 50k cached rows. If replay silently fell back to scanning, the
    // row-count assertion below would catch it.
    let mut db = Database::new("replay");
    let mut t = RelationSchema::new("T");
    t.add_attr("a", AttrType::Int).add_attr("b", AttrType::Int);
    db.add_relation(t).expect("schema");
    db.insert("T", vec![Value::Int(1), Value::Int(2)]).expect("insert");

    let stmt = SelectStatement {
        distinct: false,
        items: vec![
            SelectItem::Column { col: ColumnRef::new("T", "a"), alias: None },
            SelectItem::Column { col: ColumnRef::new("T", "b"), alias: None },
        ],
        from: vec![TableExpr::Relation { name: "T".into(), alias: "T".into() }],
        predicates: vec![],
        group_by: vec![],
        ..Default::default()
    };
    let p = plan(&stmt, &db).expect("plan builds");

    // 50 batches x 1024 rows materialized once, shared at the plan root.
    const BATCH: usize = 1024;
    const BATCHES: usize = 50;
    let cached: Vec<ColumnBatch> = (0..BATCHES)
        .map(|b| {
            let rows: Vec<Vec<Value>> = (0..BATCH)
                .map(|i| vec![Value::Int((b * BATCH + i) as i64), Value::Int(i as i64)])
                .collect();
            ColumnBatch::from_rows(2, &rows)
        })
        .collect();
    let cached = Arc::new(cached);
    let mut shared = SharedRows::new();
    shared.insert(p.id, Arc::clone(&cached));

    // Warm-up consumer: first-touch lazy state must not pollute counts.
    let (warm, _) =
        materialize_shared(&p, &db, &shared, ExecOptions::default()).expect("replay runs");
    assert_eq!(warm.iter().map(ColumnBatch::len).sum::<usize>(), BATCHES * BATCH);
    assert!(
        Arc::ptr_eq(&warm[0].column_arc(0), &cached[0].column_arc(0)),
        "replayed column is not the cached column"
    );

    // A deep copy of 50k two-column integer rows would allocate at
    // least one Vec per row (>100k allocations); Arc replay needs a few
    // dozen per batch at most. The bound is deliberately generous so it
    // only fails when replay degenerates to copying.
    const PER_CONSUMER_BOUND: usize = 4096;
    for consumer in 0..8 {
        TRACKING.with(|t| t.set(true));
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let out = materialize_shared(&p, &db, &shared, ExecOptions::default());
        let used = ALLOCATIONS.load(Ordering::SeqCst) - before;
        TRACKING.with(|t| t.set(false));
        let (batches, _) = out.expect("replay runs");
        assert_eq!(batches.iter().map(ColumnBatch::len).sum::<usize>(), BATCHES * BATCH);
        assert!(
            used < PER_CONSUMER_BOUND,
            "consumer {consumer}: replay of {} rows made {used} allocations (bound {})",
            BATCHES * BATCH,
            PER_CONSUMER_BOUND
        );
    }
}
